"""The Connectivity and ConnectedComponents problems.

Connectivity: decide whether the input graph (on all n vertices) is
connected. ConnectedComponents: each vertex outputs the label of its
connected component; any labelling that is constant on components and
distinct across components is accepted (the paper does not fix a canonical
label).
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.algorithm import NO, YES
from repro.core.instance import BCCInstance
from repro.graphs.components import labels_agree_with_components
from repro.problems.base import DecisionProblem, LabellingProblem


class Connectivity(DecisionProblem):
    """Is the input graph connected? (No input promise.)"""

    name = "Connectivity"

    def promise(self, instance: BCCInstance) -> bool:
        return True

    def ground_truth(self, instance: BCCInstance) -> str:
        return YES if instance.input_graph().is_connected() else NO


class ConnectedComponents(LabellingProblem):
    """Each vertex outputs its component's label. (No input promise.)"""

    name = "ConnectedComponents"

    def promise(self, instance: BCCInstance) -> bool:
        return True

    def verify(self, instance: BCCInstance, outputs: Sequence[Any]) -> bool:
        labels = {v: outputs[v] for v in range(instance.n)}
        return labels_agree_with_components(instance.input_graph(), labels)
