"""The TwoCycle and MultiCycle promise problems.

TwoCycle (Section 3): the input graph is promised to be either one cycle on
all n vertices or two disjoint cycles covering all n vertices, each of
length at least 3; the algorithm must distinguish the two cases (YES = one
cycle, i.e. connected).

MultiCycle (Section 4): the input is either a single cycle or two *or more*
disjoint cycles, each of length at least 4. (The length->=4 promise comes
from the TwoPartition reduction: when every part has exactly two elements,
every cycle of G(P_A, P_B) alternates Alice/Bob edges with the l_i-r_i
rungs and thus has length at least 4.)
"""

from __future__ import annotations

from typing import List

from repro.core.algorithm import NO, YES
from repro.core.instance import BCCInstance
from repro.graphs.graph import Graph
from repro.problems.base import DecisionProblem


def cycle_lengths(graph: Graph) -> List[int]:
    """Lengths of the cycles of a 2-regular graph (ValueError otherwise)."""
    return sorted(len(c) for c in graph.cycle_decomposition())


class TwoCycle(DecisionProblem):
    """One cycle vs. exactly two disjoint cycles, each of length >= 3."""

    name = "TwoCycle"
    min_cycle_length = 3

    def promise(self, instance: BCCInstance) -> bool:
        g = instance.input_graph()
        if not g.is_disjoint_union_of_cycles():
            return False
        lengths = cycle_lengths(g)
        if len(lengths) == 1:
            return True
        return len(lengths) == 2 and all(l >= self.min_cycle_length for l in lengths)

    def ground_truth(self, instance: BCCInstance) -> str:
        return YES if instance.input_graph().is_connected() else NO


class MultiCycle(DecisionProblem):
    """One cycle vs. two or more disjoint cycles, each of length >= 4."""

    name = "MultiCycle"
    min_cycle_length = 4

    def promise(self, instance: BCCInstance) -> bool:
        g = instance.input_graph()
        if not g.is_disjoint_union_of_cycles():
            return False
        lengths = cycle_lengths(g)
        if len(lengths) == 1:
            return True
        return all(l >= self.min_cycle_length for l in lengths)

    def ground_truth(self, instance: BCCInstance) -> str:
        return YES if instance.input_graph().is_connected() else NO
