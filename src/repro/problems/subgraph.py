"""K4 detection: the [DKO14] contrast problem.

The introduction contrasts Connectivity with *hard* problems in BCC(b):
Drucker, Kuhn and Oshman prove that detecting a K4 in the input graph
needs Omega(n / b) rounds -- a polynomial bound, obtained by the same
bottleneck technique but with a quadratic information demand. This module
supplies the problem definition (so the upper-bound algorithms can be
exercised against it) and the closed-form [DKO14]-shaped bound for the
benchmark tables. The trivial matching upper bound is Theta(n) rounds in
BCC(1): full-adjacency exchange, then a local clique check.
"""

from __future__ import annotations

from itertools import combinations
from typing import Sequence

from repro.core.algorithm import NO, YES
from repro.core.instance import BCCInstance
from repro.graphs.graph import Graph
from repro.problems.base import DecisionProblem


def contains_k4(graph: Graph) -> bool:
    """Does the graph contain a clique on four vertices?

    Checks each edge's common neighborhood for an adjacent pair -- O(m *
    d^2) and exact; entirely adequate at simulator scales.
    """
    for u, v in graph.edges():
        common = graph.neighbors(u) & graph.neighbors(v)
        for a, b in combinations(sorted(common, key=repr), 2):
            if graph.has_edge(a, b):
                return True
    return False


class K4Detection(DecisionProblem):
    """Does the input graph contain a K4? (No promise.)"""

    name = "K4Detection"

    def promise(self, instance: BCCInstance) -> bool:
        return True

    def ground_truth(self, instance: BCCInstance) -> str:
        return YES if contains_k4(instance.input_graph()) else NO


def dko14_round_lower_bound(n: int, bandwidth: int) -> float:
    """The Omega(n / b) shape of the [DKO14] K4-detection bound.

    The reduction routes Omega(n^2) bits of a 2-party disjointness
    instance across a cut of bandwidth O(n * b) per round; the constant
    here is normalized to 1 (the benchmark compares shapes, not
    constants).
    """
    return n / bandwidth


def trivial_upper_bound_rounds(n: int) -> int:
    """Full-adjacency exchange solves K4 detection in n rounds of BCC(1)."""
    return n
