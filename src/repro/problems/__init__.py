"""Problem definitions: Connectivity, ConnectedComponents, TwoCycle, MultiCycle."""

from repro.problems.base import DecisionProblem, LabellingProblem, Problem
from repro.problems.connectivity import ConnectedComponents, Connectivity
from repro.problems.cycles import MultiCycle, TwoCycle, cycle_lengths
from repro.problems.subgraph import (
    K4Detection,
    contains_k4,
    dko14_round_lower_bound,
    trivial_upper_bound_rounds,
)

__all__ = [
    "ConnectedComponents",
    "Connectivity",
    "DecisionProblem",
    "K4Detection",
    "LabellingProblem",
    "MultiCycle",
    "Problem",
    "TwoCycle",
    "contains_k4",
    "cycle_lengths",
    "dko14_round_lower_bound",
    "trivial_upper_bound_rounds",
]
