"""Problem definitions: promises, ground truth, and output verification.

A :class:`Problem` bundles three things the lower-bound and upper-bound
machinery both need:

* ``promise(instance)`` -- does the instance satisfy the problem's input
  promise? (TwoCycle, for example, promises a single cycle or exactly two
  disjoint cycles of length >= 3.)
* ``ground_truth(instance)`` -- the correct answer;
* ``verify(instance, outputs)`` -- is a vector of per-vertex outputs
  correct for this instance under the model's decision semantics?

Decision problems answer YES/NO under the all-vertices-say-YES rule;
labelling problems (ConnectedComponents) accept any labelling constant on
components and distinct across them.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Sequence

from repro.core.algorithm import NO, YES
from repro.core.decision import system_decision
from repro.core.instance import BCCInstance


class Problem(ABC):
    """Base class for all problems posed to BCC algorithms."""

    #: Human-readable problem name.
    name: str = "problem"

    @abstractmethod
    def promise(self, instance: BCCInstance) -> bool:
        """True iff the instance satisfies the input promise."""

    @abstractmethod
    def verify(self, instance: BCCInstance, outputs: Sequence[Any]) -> bool:
        """True iff the per-vertex outputs are a correct answer."""


class DecisionProblem(Problem):
    """A YES/NO problem under the all-YES decision rule."""

    @abstractmethod
    def ground_truth(self, instance: BCCInstance) -> str:
        """The correct system decision (YES or NO) for the instance."""

    def verify(self, instance: BCCInstance, outputs: Sequence[Any]) -> bool:
        for out in outputs:
            if out not in (YES, NO):
                return False
        return system_decision(outputs) == self.ground_truth(instance)


class LabellingProblem(Problem):
    """A problem whose answer is one hashable label per vertex."""
