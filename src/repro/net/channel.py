"""Per-edge channels and the network manager that owns them.

This is the delivery layer extracted from ``Simulator._execute``: every
ordered pair of vertices gets a :class:`Channel`, and a
:class:`NetworkManager` applies the run's delivery pipeline per copy::

    broadcast --> fault filter (FaultRun, unchanged RNG stream)
              --> channel transmit (delay / duplicate / reorder queues)
              --> receiver port

A *pristine* plan (the default, and what plain ``faults=`` runs use)
allocates no channels at all: the manager delegates straight to the
fault layer, so pre-refactor faulted executions stay bit-identical and
the clean path stays channel-free entirely.

RNG discipline mirrors :class:`~repro.resilience.faults.FaultRun`: one
``random.Random(plan.seed)`` on the manager, consumed in fixed
(round, receiver, sender) order -- the exact order the simulator visits
deliveries -- with a fixed number of draws per non-silent transmission,
so the delivery schedule is a pure function of (plan, traffic).
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, List, Optional, Tuple

from repro.net.plan import NetworkEvent, NetworkPlan
from repro.resilience.faults import FaultRun

__all__ = ["Channel", "NetworkManager", "delivery_population"]


def delivery_population(stats: List[Dict[str, int]]) -> Dict[str, Dict[str, object]]:
    """Mergeable population sketches over per-edge delivery counters.

    ``stats`` is any iterable of :meth:`Channel.stats` dicts (one run's
    :meth:`NetworkManager.delivery_stats`, or many runs' concatenated).
    Returns serialized sketch states (see :mod:`repro.obs.sketches`):
    ``"edge_sent"`` / ``"edge_delivered"`` quantile sketches over the
    per-edge counters and a ``"disruptions"`` top-k sketch counting
    delayed/duplicated/reordered/dropped copies. The result is a pure
    function of the stats multiset, so populations from sharded sweeps
    fold to the same state regardless of worker count -- combine them
    with :func:`repro.obs.sketches.merge_population`.
    """
    # Lazy: sketches pulls in repro.parallel, which reaches back through
    # repro.resilience into modules that import this delivery layer.
    from repro.obs.sketches import QuantileSketch, TopKSketch

    sent = QuantileSketch()
    delivered = QuantileSketch()
    disruptions = TopKSketch()
    for entry in stats:
        sent.update(float(entry["sent"]))
        delivered.update(float(entry["delivered"]))
        for kind in ("delayed", "duplicated", "reordered", "dropped"):
            count = int(entry.get(kind, 0))
            if count:
                disruptions.update(kind, count)
    return {
        "edge_sent": sent.to_dict(),
        "edge_delivered": delivered.to_dict(),
        "disruptions": disruptions.to_dict(),
    }


class Channel:
    """One directed edge's delivery queue.

    ``_pending`` holds in-flight copies as ``(arrival, seq, sent_round,
    message, duplicate)`` tuples; tuple order defines FIFO (earliest
    arrival, then transmission order), which the reorder policy perturbs.
    """

    __slots__ = (
        "sender",
        "receiver",
        "_pending",
        "_seq",
        "sent",
        "delivered",
        "delayed",
        "duplicated",
        "reordered",
        "dropped",
    )

    def __init__(self, sender: int, receiver: int):
        self.sender = sender
        self.receiver = receiver
        self._pending: List[Tuple[int, int, int, str, bool]] = []
        self._seq = 0
        self.sent = 0
        self.delivered = 0
        self.delayed = 0
        self.duplicated = 0
        self.reordered = 0
        self.dropped = 0

    def transmit(
        self,
        t: int,
        message: str,
        plan: NetworkPlan,
        rng: random.Random,
        events: List[NetworkEvent],
    ) -> str:
        """Enqueue this round's copy, then deliver whatever is due.

        Returns the delivered message, or the empty broadcast ⊥ when
        nothing is due -- the receiver cannot tell a late message from
        silence. Draw order per non-silent transmission is fixed (delay
        then duplicate), keeping the RNG stream aligned with traffic.
        """
        if message != "":
            self.sent += 1
            delay = rng.randint(0, plan.max_delay) if plan.max_delay > 0 else 0
            duplicate = (
                plan.duplicate_rate > 0.0 and rng.random() < plan.duplicate_rate
            )
            self._enqueue(t + delay, t, message, False)
            if delay > 0:
                self.delayed += 1
                events.append(
                    NetworkEvent(
                        t=t,
                        kind="delayed",
                        sender=self.sender,
                        receiver=self.receiver,
                        sent_round=t,
                        arrival_round=t + delay,
                        message=message,
                    )
                )
            if duplicate:
                self._enqueue(t + delay + 1, t, message, True)
                self.duplicated += 1
                events.append(
                    NetworkEvent(
                        t=t,
                        kind="duplicated",
                        sender=self.sender,
                        receiver=self.receiver,
                        sent_round=t,
                        arrival_round=t + delay + 1,
                        message=message,
                        duplicate=True,
                    )
                )
        due = sorted(
            index
            for index, entry in enumerate(self._pending)
            if entry[0] <= t
        )
        if not due:
            return ""
        pick = due[0]
        if plan.reorder and len(due) > 1:
            choice = rng.randrange(len(due))
            pick = due[choice]
            if choice != 0:
                entry = self._pending[pick]
                self.reordered += 1
                events.append(
                    NetworkEvent(
                        t=t,
                        kind="reordered",
                        sender=self.sender,
                        receiver=self.receiver,
                        sent_round=entry[2],
                        arrival_round=t,
                        message=entry[3],
                        duplicate=entry[4],
                    )
                )
        entry = self._pending.pop(pick)
        self.delivered += 1
        return entry[3]

    def finish(self, final_round: int, events: List[NetworkEvent]) -> None:
        """Drop (and record) every copy still in flight at run end."""
        for arrival, _seq, sent_round, message, duplicate in self._pending:
            self.dropped += 1
            events.append(
                NetworkEvent(
                    t=final_round,
                    kind="dropped",
                    sender=self.sender,
                    receiver=self.receiver,
                    sent_round=sent_round,
                    arrival_round=arrival,
                    message=message,
                    duplicate=duplicate,
                )
            )
        self._pending.clear()

    def stats(self) -> Dict[str, int]:
        """Per-edge counters for ``repro report --session``."""
        return {
            "sender": self.sender,
            "receiver": self.receiver,
            "sent": self.sent,
            "delivered": self.delivered,
            "delayed": self.delayed,
            "duplicated": self.duplicated,
            "reordered": self.reordered,
            "dropped": self.dropped,
        }

    # ------------------------------------------------------------------
    def _enqueue(self, arrival: int, sent_round: int, message: str, duplicate: bool) -> None:
        self._pending.append((arrival, self._seq, sent_round, message, duplicate))
        self._pending.sort()
        self._seq += 1


class NetworkManager:
    """Per-run delivery state: fault filter first, channels second.

    Created by :meth:`repro.net.NetworkPlan.begin_run`. ``fault_run`` may
    be ``None`` (pure delivery policy, no corruption); channels exist
    only for non-pristine plans, so a pristine manager is a thin shim
    over the fault layer with zero extra RNG draws.
    """

    __slots__ = ("plan", "n", "fault_run", "events", "_rng", "_channels")

    def __init__(self, plan: NetworkPlan, n: int, fault_run: Optional[FaultRun] = None):
        self.plan = plan
        self.n = n
        self.fault_run = fault_run
        self.events: List[NetworkEvent] = []
        if plan.is_pristine:
            self._rng = None
            self._channels = None
        else:
            self._rng = random.Random(plan.seed)
            self._channels = [
                [Channel(u, v) if u != v else None for v in range(n)]
                for u in range(n)
            ]

    def filter_broadcasts(self, t: int, messages: Tuple[str, ...]) -> Tuple[str, ...]:
        """Sender-side faults (crash-stop); identity without a fault run."""
        if self.fault_run is None:
            return messages
        return self.fault_run.filter_broadcasts(t, messages)

    def deliver(self, t: int, sender: int, receiver: int, message: str) -> str:
        """One (sender, receiver) copy through the full delivery pipeline."""
        if self.fault_run is not None:
            message = self.fault_run.filter_delivery(t, sender, receiver, message)
        if self._channels is None:
            return message
        return self._channels[sender][receiver].transmit(
            t, message, self.plan, self._rng, self.events
        )

    def finish(self, final_round: int) -> None:
        """Close the run: record every still-queued copy as dropped."""
        if self._channels is None:
            return
        for row in self._channels:
            for channel in row:
                if channel is not None:
                    channel.finish(final_round, self.events)

    # ------------------------------------------------------------------
    @property
    def events_injected(self) -> int:
        return len(self.events)

    def delivery_stats(self) -> List[Dict[str, int]]:
        """Per-edge counters for edges that carried traffic, index order."""
        if self._channels is None:
            return []
        stats = []
        for row in self._channels:
            for channel in row:
                if channel is None:
                    continue
                if channel.sent or channel.delivered or channel.dropped:
                    stats.append(channel.stats())
        return stats

    def rng_digest(self) -> Optional[str]:
        """SHA-256 fingerprint of the channel RNG state (None if pristine)."""
        if self._rng is None:
            return None
        state = repr(self._rng.getstate()).encode("utf-8")
        return hashlib.sha256(state).hexdigest()
