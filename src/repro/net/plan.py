"""Delivery-policy plans for the per-edge channel network layer.

A :class:`NetworkPlan` is to *delivery* what a
:class:`~repro.resilience.faults.FaultPlan` is to *corruption*: a seeded,
fully deterministic description of how the complete network's n*(n-1)
directed edges behave. The plan composes with (and can carry) a fault
plan -- message-level faults are applied first, then the channel decides
*when* (and how many times) the surviving copy arrives:

``delay``
    Each non-silent transmission draws an arrival round in
    ``[t, t + max_delay]``. Until the copy arrives the receiver sees the
    empty broadcast ⊥ on that port -- a late message is adversarially
    indistinguishable from deliberate silence, which is exactly the
    asymmetry the paper's indistinguishability arguments exploit.

``duplication``
    With probability ``duplicate_rate`` a transmission enqueues a second
    copy one round after the first. In a broadcast model a duplicate is
    a *stale repeat* on one port, not extra information.

``reordering``
    When several copies are simultaneously due on an edge (possible only
    with delay/duplication), FIFO delivery is replaced by a seeded random
    pick -- deterministic under the plan seed, adversarial in effect.

Determinism contract: all channel randomness comes from one
``random.Random(seed)`` owned by the :class:`~repro.net.channel.NetworkManager`
and consumed in fixed (round, receiver, sender) order, mirroring the
fault layer's contract, so the same (instance, algorithm, plan) triple
always yields a bit-identical delivery schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

from repro.errors import DeliveryPolicyError
from repro.resilience.faults import FaultPlan

__all__ = ["DELIVERY_KINDS", "NetworkEvent", "NetworkPlan"]

#: The delivery anomaly kinds the channel layer emits (trace/session
#: ``delivery`` events); the analogue of ``resilience.FAULT_KINDS``.
DELIVERY_KINDS = ("delayed", "duplicated", "reordered", "dropped")


@dataclass(frozen=True)
class NetworkEvent:
    """One delivery anomaly as it actually happened on an edge.

    ``t`` is the round the anomaly was decided in (transmission round
    for delays/duplicates, delivery round for reorders, final round for
    end-of-run drops); ``sent_round`` is when the affected copy was
    broadcast and ``arrival_round`` when it was (or would have been)
    delivered.
    """

    t: int
    kind: str
    sender: int
    receiver: int
    sent_round: int
    arrival_round: int
    message: str
    duplicate: bool = False

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form, used by trace schema v5 ``delivery`` events."""
        return {
            "t": self.t,
            "kind": self.kind,
            "sender": self.sender,
            "receiver": self.receiver,
            "sent_round": self.sent_round,
            "arrival_round": self.arrival_round,
            "message": self.message,
            "duplicate": self.duplicate,
        }


@dataclass(frozen=True)
class NetworkPlan:
    """A seeded, deterministic per-edge delivery policy.

    The default plan is *pristine* (no delay, no duplication, no
    reordering): it adds zero channel state and delegates straight to
    the fault layer, which is how plain ``FaultPlan`` runs execute after
    the delivery refactor -- faults are now one pluggable policy among
    several, with their RNG stream untouched.
    """

    seed: int = 0
    max_delay: int = 0
    duplicate_rate: float = 0.0
    reorder: bool = False
    faults: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if self.max_delay < 0:
            raise DeliveryPolicyError(
                f"max_delay must be >= 0, got {self.max_delay}"
            )
        if not 0.0 <= self.duplicate_rate <= 1.0:
            raise DeliveryPolicyError(
                f"duplicate_rate must be in [0, 1], got {self.duplicate_rate}"
            )

    @property
    def is_pristine(self) -> bool:
        """True when the plan never touches delivery timing or multiplicity."""
        return (
            self.max_delay == 0
            and self.duplicate_rate == 0.0
            and not self.reorder
        )

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form (session logs persist the policy they ran under)."""
        return {
            "seed": self.seed,
            "max_delay": self.max_delay,
            "duplicate_rate": self.duplicate_rate,
            "reorder": self.reorder,
            "faults": self.faults.as_dict() if self.faults is not None else None,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "NetworkPlan":
        """Inverse of :meth:`as_dict`; validation reruns in ``__post_init__``."""
        faults = data.get("faults")
        return NetworkPlan(
            seed=data.get("seed", 0),
            max_delay=data.get("max_delay", 0),
            duplicate_rate=data.get("duplicate_rate", 0.0),
            reorder=data.get("reorder", False),
            faults=FaultPlan.from_dict(faults) if faults is not None else None,
        )

    def begin_run(self, n: int, faults: Optional[FaultPlan] = None):
        """Fresh per-execution network state (channels, RNG, event log).

        ``faults`` overrides the plan's own fault plan for this run; the
        simulator passes its resolved plan here so precedence stays in
        one place.
        """
        from repro.net.channel import NetworkManager

        plan = faults if faults is not None else self.faults
        fault_run = plan.begin_run(n) if plan is not None else None
        return NetworkManager(self, n, fault_run)
