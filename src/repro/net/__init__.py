"""Per-edge channel network layer for the BCC simulator.

``repro.net`` turns message delivery into an explicit, pluggable policy:
a :class:`NetworkPlan` describes how every directed edge behaves (delay,
duplication, deterministic reordering -- all seeded), a
:class:`NetworkManager` owns the per-run :class:`Channel` objects, and
the existing :class:`~repro.resilience.faults.FaultPlan` rides along as
the corruption stage of the same pipeline. See :mod:`repro.net.plan` for
the policy semantics and determinism contract.
"""

from repro.net.channel import Channel, NetworkManager, delivery_population
from repro.net.plan import DELIVERY_KINDS, NetworkEvent, NetworkPlan

__all__ = [
    "Channel",
    "DELIVERY_KINDS",
    "NetworkEvent",
    "NetworkManager",
    "NetworkPlan",
    "delivery_population",
]
