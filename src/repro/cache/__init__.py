"""Content-addressed result cache (see :mod:`repro.cache.store`).

The cache sits under the engine seam (:mod:`repro.engine`): whole
requests and individual shards are keyed by SHA-256 of their canonical
determinism tuple, payloads are digest-verified on every read, and
writes follow the checkpoint/session durability contract (retried,
rolled back, atomically published).
"""

from repro.cache.keys import (
    CACHE_KEY_VERSION,
    canonical_json,
    code_fingerprint,
    fingerprint_modules,
    item_key,
    kind_fingerprint,
    payload_digest,
    request_key,
    shard_key,
)
from repro.cache.shards import ShardCache
from repro.cache.store import CACHE_VERSION, CacheError, ResultCache

__all__ = [
    "CACHE_KEY_VERSION",
    "CACHE_VERSION",
    "CacheError",
    "ResultCache",
    "ShardCache",
    "canonical_json",
    "code_fingerprint",
    "fingerprint_modules",
    "item_key",
    "kind_fingerprint",
    "payload_digest",
    "request_key",
    "shard_key",
]
