"""Per-unit cache adapter: one request's view of the content store.

The sharded compute layers (:mod:`repro.lowerbounds.exhaustive`,
:mod:`repro.resilience.harness`) should not know about fingerprints or
key material -- they know "I am about to compute this shard / this grid
cell". :class:`ShardCache` closes over everything else (the backing
:class:`~repro.cache.store.ResultCache`, the engine kind, the normalized
request params, the kernel mode, the code fingerprint) so the compute
layer's cache surface shrinks to two calls::

    cached = shard_cache.get_item({"start": 0, "stop": 81, "seed": 1234})
    ...
    shard_cache.put_item({"start": 0, "stop": 81, "seed": 1234}, result)

Budget and resume state are deliberately *not* part of the binding: they
change which units a run covers, never the value of any unit, so a
budget-exhausted cold run and an unbounded warm run share entries --
which is exactly the delta-only resumption the per-shard granularity
exists for.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from repro.cache.keys import item_key
from repro.cache.store import ResultCache

__all__ = ["ShardCache"]


class ShardCache:
    """Get/put for one request's independent sub-units.

    A thin, stateless binding -- all counters live on the backing
    :class:`ResultCache`, so a run that mixes whole-request and per-shard
    traffic reports one coherent hit/miss tally.
    """

    def __init__(
        self,
        cache: ResultCache,
        kind: str,
        params: Mapping[str, Any],
        kernel: str = "auto",
        result_version: int = 1,
        fingerprint: str = "",
    ):
        self.cache = cache
        self.kind = str(kind)
        self.params = dict(params)
        self.kernel = str(kernel)
        self.result_version = int(result_version)
        self.fingerprint = str(fingerprint)

    def key_for(self, item: Mapping[str, Any]) -> str:
        return item_key(
            self.kind,
            self.params,
            item,
            kernel=self.kernel,
            result_version=self.result_version,
            fingerprint=self.fingerprint,
        )

    def get_item(self, item: Mapping[str, Any]) -> Optional[Dict[str, Any]]:
        """The cached result for one unit, or ``None`` on any miss."""
        return self.cache.get(self.key_for(item))

    def put_item(self, item: Mapping[str, Any], payload: Dict[str, Any]) -> bool:
        """Store one unit's result; returns whether it was written."""
        return self.cache.put(self.key_for(item), self.kind, payload)
