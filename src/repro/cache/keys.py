"""Cache-key derivation: canonical JSON, code fingerprints, SHA-256 keys.

A cache entry is only sound if its key pins *everything* the result
depends on. The repo's determinism contracts make that tuple small and
explicit: the engine kind, the normalized spec parameters (seed
included), the compute-kernel mode, and a fingerprint of the source
modules whose code the result flows through. Worker count is
deliberately **absent** -- the workers=1 ≡ workers=N byte-identity
contract (PR 4/5/9 golden + hypothesis suites) is exactly what makes a
``--workers 2`` warm run hit the entry a serial cold run wrote. The key
records that choice as an explicit ``workers_invariant`` flag instead of
silently omitting the field, so a future kind *without* the contract can
key on workers by flipping the flag rather than by schema archaeology.

Kernel mode, by contrast, *is* in the key even though the kernel
registry guarantees bit-identical results across modes: the cache sits
underneath the machinery that proves that contract, so it must never
assume it. A ``--kernel reference`` run and a ``--kernel packed`` run
get distinct entries; conflating them would make the identity suites
vacuously pass on cache hits.

Everything here is pure arithmetic on bytes -- no ``hash()`` (randomized
per process), no wall clock -- so keys agree across processes, hosts,
and sessions.
"""

from __future__ import annotations

import hashlib
import json
import os
from functools import lru_cache
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

__all__ = [
    "CACHE_KEY_VERSION",
    "canonical_json",
    "code_fingerprint",
    "fingerprint_modules",
    "item_key",
    "payload_digest",
    "request_key",
    "shard_key",
]

#: Bump when the key material layout changes incompatibly (old entries
#: become unreachable, which is the safe failure mode for a cache).
CACHE_KEY_VERSION = 1


def canonical_json(obj: Any) -> str:
    """The one true serialization of a JSON-able value.

    Sorted keys, no whitespace, ASCII-only: two structurally equal
    values always produce the same bytes, which is what makes digests of
    this string content addresses rather than representation addresses.
    Non-JSON types raise ``TypeError`` -- a cache key must never depend
    on ``repr`` fallbacks.
    """
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def payload_digest(payload: Any) -> str:
    """SHA-256 hex digest of a payload's canonical JSON form."""
    return hashlib.sha256(canonical_json(payload).encode("ascii")).hexdigest()


def _package_root() -> str:
    """Filesystem directory of the installed ``repro`` package."""
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))


def _iter_module_files(prefix: str) -> Sequence[str]:
    """Absolute paths of the ``.py`` files behind one module prefix.

    ``repro.lowerbounds`` maps to ``<root>/lowerbounds`` (every ``.py``
    under it, recursively, sorted) or ``<root>/lowerbounds.py``; the bare
    prefix ``repro`` maps to the whole package. Unknown prefixes return
    nothing rather than raising -- a fingerprint over a module that does
    not exist yet is simply a fingerprint that will change when it does.
    """
    root = _package_root()
    parts = prefix.split(".")
    if parts[0] != "repro":
        raise ValueError(f"fingerprint prefixes must start with 'repro', got {prefix!r}")
    base = os.path.join(root, *parts[1:]) if len(parts) > 1 else root
    files = []
    if os.path.isfile(base + ".py"):
        files.append(base + ".py")
    elif os.path.isdir(base):
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames.sort()
            for name in sorted(filenames):
                if name.endswith(".py"):
                    files.append(os.path.join(dirpath, name))
    return files


@lru_cache(maxsize=64)
def fingerprint_modules(prefixes: Tuple[str, ...]) -> str:
    """SHA-256 over the source bytes of every module under ``prefixes``.

    The digest covers ``(relative path, file sha256)`` pairs in sorted
    path order, so renames, edits, additions, and deletions all change
    it. Memoized per process: module sources do not change under a
    running interpreter, and the walk touches ~100 small files.
    """
    root = _package_root()
    acc = hashlib.sha256()
    seen = set()
    for prefix in sorted(set(prefixes)):
        for path in _iter_module_files(prefix):
            if path in seen:
                continue
            seen.add(path)
            with open(path, "rb") as handle:
                digest = hashlib.sha256(handle.read()).hexdigest()
            rel = os.path.relpath(path, root)
            acc.update(f"{rel}={digest}\n".encode("utf-8"))
    return acc.hexdigest()


def code_fingerprint(prefixes: Sequence[str]) -> str:
    """Convenience wrapper taking any sequence of module prefixes."""
    return fingerprint_modules(tuple(prefixes))


def request_key(
    kind: str,
    params: Mapping[str, Any],
    kernel: str = "auto",
    result_version: int = 1,
    fingerprint: str = "",
) -> str:
    """The whole-request content address.

    ``params`` must already be normalized (defaults filled, workers
    removed) -- the engine layer owns normalization so that two spellings
    of the same request collide on purpose.
    """
    material = {
        "cache_key_version": CACHE_KEY_VERSION,
        "kind": str(kind),
        "params": dict(params),
        "kernel": str(kernel),
        "workers_invariant": True,
        "result_version": int(result_version),
        "code_fingerprint": str(fingerprint),
    }
    return hashlib.sha256(canonical_json(material).encode("ascii")).hexdigest()


def item_key(
    kind: str,
    params: Mapping[str, Any],
    item: Mapping[str, Any],
    kernel: str = "auto",
    result_version: int = 1,
    fingerprint: str = "",
) -> str:
    """The content address of one independent sub-unit of a request.

    ``item`` names the unit within the request's decomposition -- a
    contiguous shard's ``{start, stop, seed}``, a fault-sweep cell's grid
    coordinates -- and the key binds it to the parent request material
    (minus budget/resume state, which only affect *how much* of the space
    gets covered, never any unit's value). Any plan that produces the
    same unit under the same params addresses the same entry, which is
    what lets a resumed or re-sharded run reuse completed pieces; the
    order-invariant monoid merge layer makes mixing cached and fresh
    units deterministic.
    """
    material = {
        "cache_key_version": CACHE_KEY_VERSION,
        "kind": str(kind),
        "params": dict(params),
        "kernel": str(kernel),
        "item": dict(item),
        "result_version": int(result_version),
        "code_fingerprint": str(fingerprint),
    }
    return hashlib.sha256(canonical_json(material).encode("ascii")).hexdigest()


def shard_key(
    kind: str,
    params: Mapping[str, Any],
    start: int,
    stop: int,
    seed: Optional[int] = None,
    kernel: str = "auto",
    result_version: int = 1,
    fingerprint: str = "",
) -> str:
    """The per-shard content address (a contiguous-range :func:`item_key`).

    Keys one contiguous slice of a request's index space: the shard's
    ``[start, stop)`` range and its SHA-256-derived seed
    (:func:`repro.parallel.shard.derive_seed`). A resume, a re-run with a
    different worker count, or an overlapping grid that cuts the same
    range with the same seed addresses the same entry.
    """
    return item_key(
        kind,
        params,
        {
            "start": int(start),
            "stop": int(stop),
            "seed": None if seed is None else int(seed),
        },
        kernel=kernel,
        result_version=result_version,
        fingerprint=fingerprint,
    )


#: Module prefixes whose source a kind's results flow through. Generous
#: on purpose: an over-wide fingerprint only costs invalidation (a cold
#: recompute after an unrelated edit); an under-wide one serves stale
#: results after a behavior change, which is a correctness bug.
FINGERPRINT_PREFIXES: Dict[str, Tuple[str, ...]] = {
    "run": (
        "repro.core",
        "repro.algorithms",
        "repro.instances",
        "repro.net",
        "repro.resilience",
        "repro.costs",
        "repro.graphs",
    ),
    "exhaustive": (
        "repro.lowerbounds",
        "repro.parallel",
        "repro.instances",
        "repro.crossing",
        "repro.indist",
        "repro.core",
        "repro.obs.sketches",
    ),
    "sampling": (
        "repro.information",
        "repro.twoparty",
        "repro.partitions",
        "repro.parallel",
        "repro.obs.sketches",
    ),
    "ranks": (
        "repro.partitions",
        "repro.kernels",
        "repro.parallel",
    ),
    "fault-sweep": (
        "repro.resilience",
        "repro.core",
        "repro.algorithms",
        "repro.instances",
        "repro.graphs",
        "repro.parallel",
        "repro.obs.sketches",
    ),
    "bench": ("repro",),
}


def kind_fingerprint(kind: str) -> str:
    """The code fingerprint for one engine kind (see the table above)."""
    prefixes = FINGERPRINT_PREFIXES.get(kind)
    if prefixes is None:
        raise ValueError(
            f"no fingerprint table entry for kind {kind!r}; "
            f"known: {sorted(FINGERPRINT_PREFIXES)}"
        )
    return fingerprint_modules(prefixes)
