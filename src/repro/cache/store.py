"""Content-addressed on-disk result cache.

Layout: ``root/objects/<key[:2]>/<key>.json``, one JSON envelope per
entry. The envelope carries the payload *and* a SHA-256 digest of the
payload's canonical JSON form::

    {
      "cache_version": 1,
      "key": "ab12...",                // the content address (redundant,
                                       // lets `verify` cross-check names)
      "kind": "exhaustive",
      "created_unix": 1754600000.0,
      "payload_sha256": "cd34...",
      "payload": { ... the exact EngineResult envelope ... }
    }

Correctness posture: the cache **never trusts disk**. Every read
re-derives the payload digest and compares it to the stored one; a torn
tail, a flipped bit, or a hand-edited blob all fail the check and the
entry is treated as a miss (and counted under ``cache.corrupt``) -- the
caller recomputes and overwrites. Serving a wrong-but-parseable result
is the one failure mode a result cache must not have.

Durability posture mirrors checkpoints and session stores: writes go
through :func:`repro.resilience.retry.retry_transient` (bounded backoff
on transient ``OSError``), each attempt rolls back its partial temp file
via seek+truncate before retrying, and publication is a same-directory
``os.replace`` so the named entry only ever flips complete-to-complete.
A process killed mid-write leaves at worst an orphaned ``.tmp`` file
(swept by :meth:`ResultCache.gc`), never a torn named entry.

Eviction is size-bounded LRU on file mtime: every hit bumps the entry's
mtime, ``gc(max_bytes)`` deletes oldest-first until under budget.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.cache.keys import canonical_json, payload_digest
from repro.errors import ReproError
from repro.resilience.retry import retry_transient

__all__ = ["CACHE_VERSION", "CacheError", "ResultCache"]

#: Bump when the on-disk entry envelope changes incompatibly.
CACHE_VERSION = 1

#: Default eviction budget for ``repro cache gc`` (256 MiB).
DEFAULT_GC_MAX_BYTES = 256 * 1024 * 1024


class CacheError(ReproError):
    """A cache operation failed persistently (I/O beyond retry)."""


class ResultCache:
    """Content-addressed store of engine results under one root directory.

    ``enabled=False`` turns every operation into a no-op that reports a
    miss -- callers thread one cache object unconditionally and the
    disabled path costs a single attribute check, mirroring the metrics
    registry's opt-in contract.

    Instance counters (``hits``/``misses``/``stored``/``bytes_saved``/
    ``corrupt``) always accrue; when a process-wide
    :class:`~repro.obs.metrics.MetricsRegistry` is installed the same
    events also land there under ``cache.hit`` / ``cache.miss`` /
    ``cache.stored`` / ``cache.bytes_saved`` / ``cache.corrupt``.
    """

    def __init__(self, root: str, enabled: bool = True):
        self.root = os.path.abspath(root)
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self.stored = 0
        self.bytes_saved = 0
        self.corrupt = 0

    # -- paths ----------------------------------------------------------
    @property
    def objects_dir(self) -> str:
        return os.path.join(self.root, "objects")

    def _entry_path(self, key: str) -> str:
        if len(key) < 3 or any(c not in "0123456789abcdef" for c in key):
            raise ValueError(f"cache key must be a hex digest, got {key!r}")
        return os.path.join(self.objects_dir, key[:2], key + ".json")

    # -- metrics --------------------------------------------------------
    def _count(self, name: str, amount: int = 1) -> None:
        from repro.obs.metrics import get_registry

        registry = get_registry()
        if registry is not None:
            registry.counter(f"cache.{name}").inc(amount)

    # -- read path ------------------------------------------------------
    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The payload stored under ``key``, or ``None`` on any miss.

        Misses are uniform: absent file, unparseable JSON (torn tail),
        wrong envelope version, and digest mismatch all return ``None``.
        Corruption additionally bumps ``cache.corrupt`` so `verify` and
        the dashboard can surface it, but it is *never* surfaced to the
        caller as anything other than "not cached" -- the recompute path
        is the recovery path.
        """
        if not self.enabled:
            return None
        path = self._entry_path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError, OSError):
            self.misses += 1
            self._count("miss")
            return None
        payload = self._validate_entry(entry, key)
        if payload is None:
            self.misses += 1
            self.corrupt += 1
            self._count("miss")
            self._count("corrupt")
            return None
        saved = len(canonical_json(payload).encode("ascii"))
        self.hits += 1
        self.bytes_saved += saved
        self._count("hit")
        self._count("bytes_saved", saved)
        # LRU recency: a hit makes the entry "young" for gc's mtime order.
        try:
            os.utime(path, None)
        except OSError:
            pass
        return payload

    @staticmethod
    def _validate_entry(entry: Any, key: str) -> Optional[Dict[str, Any]]:
        """The entry's payload iff the envelope and digest check out."""
        if not isinstance(entry, dict):
            return None
        if entry.get("cache_version") != CACHE_VERSION:
            return None
        if entry.get("key") != key:
            return None
        payload = entry.get("payload")
        stored_digest = entry.get("payload_sha256")
        if payload is None or not isinstance(stored_digest, str):
            return None
        try:
            actual = payload_digest(payload)
        except (TypeError, ValueError):
            return None
        if actual != stored_digest:
            return None
        return payload

    # -- write path -----------------------------------------------------
    def put(self, key: str, kind: str, payload: Dict[str, Any]) -> bool:
        """Store ``payload`` under ``key``; returns whether it was written.

        The write contract matches session/checkpoint stores: the entry
        body is serialized once, then each :func:`retry_transient`
        attempt writes it to a fresh-position temp file, **rolls the
        temp file back via seek+truncate if the write or fsync raises**,
        and only a fully fsynced temp file is published with
        ``os.replace``. Persistent failure degrades to "not cached"
        rather than raising -- a broken cache disk must not kill the
        computation whose result it was trying to save.
        """
        if not self.enabled:
            return False
        path = self._entry_path(key)
        entry = {
            "cache_version": CACHE_VERSION,
            "key": key,
            "kind": kind,
            "created_unix": time.time(),
            "payload_sha256": payload_digest(payload),
            "payload": payload,
        }
        data = canonical_json(entry)
        directory = os.path.dirname(path)
        try:
            os.makedirs(directory, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(
                prefix=".cache-", suffix=".tmp", dir=directory
            )
        except OSError:
            return False
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:

                def attempt() -> None:
                    position = handle.tell()
                    try:
                        handle.write(data)
                        handle.flush()
                        os.fsync(handle.fileno())
                    except BaseException:
                        # Roll back this attempt's partial bytes so the
                        # retry starts from a clean tail, exactly like
                        # the session store's append rollback.
                        handle.seek(position)
                        handle.truncate()
                        raise

                # All attempts append at position 0 (rollback restores
                # it), so the published file holds exactly one envelope.
                handle.seek(0)
                retry_transient(attempt)
            os.replace(tmp_path, path)
        except OSError:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            return False
        self.stored += 1
        self._count("stored")
        return True

    # -- maintenance ----------------------------------------------------
    def _iter_entries(self) -> Iterator[Tuple[str, str]]:
        """Yields ``(key, path)`` for every named entry file on disk."""
        objects = self.objects_dir
        if not os.path.isdir(objects):
            return
        for shard in sorted(os.listdir(objects)):
            shard_dir = os.path.join(objects, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json"):
                    yield name[: -len(".json")], os.path.join(shard_dir, name)

    def stats(self) -> Dict[str, Any]:
        """On-disk shape plus this instance's session counters."""
        entries = 0
        total_bytes = 0
        by_kind: Dict[str, int] = {}
        for key, path in self._iter_entries():
            entries += 1
            try:
                total_bytes += os.path.getsize(path)
                with open(path, "r", encoding="utf-8") as handle:
                    kind = json.load(handle).get("kind", "?")
            except (OSError, json.JSONDecodeError):
                kind = "?"
            by_kind[str(kind)] = by_kind.get(str(kind), 0) + 1
        return {
            "root": self.root,
            "enabled": self.enabled,
            "entries": entries,
            "bytes": total_bytes,
            "by_kind": dict(sorted(by_kind.items())),
            "session": self.counters(),
        }

    def counters(self) -> Dict[str, int]:
        """This instance's hit/miss accounting as a plain dict."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stored": self.stored,
            "bytes_saved": self.bytes_saved,
            "corrupt": self.corrupt,
        }

    def verify(self, delete: bool = False) -> Dict[str, Any]:
        """Digest-check every entry; optionally delete the bad ones.

        Returns ``{"checked": N, "ok": N, "corrupt": [keys...],
        "deleted": N}``. Corrupt covers everything :meth:`get` would
        refuse: unparseable, wrong version, key mismatch, digest
        mismatch.
        """
        checked = 0
        corrupt: List[str] = []
        deleted = 0
        for key, path in self._iter_entries():
            checked += 1
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    entry = json.load(handle)
            except (OSError, json.JSONDecodeError):
                entry = None
            if self._validate_entry(entry, key) is None:
                corrupt.append(key)
                if delete:
                    try:
                        os.unlink(path)
                        deleted += 1
                    except OSError:
                        pass
        return {
            "checked": checked,
            "ok": checked - len(corrupt),
            "corrupt": corrupt,
            "deleted": deleted,
        }

    def gc(self, max_bytes: int = DEFAULT_GC_MAX_BYTES) -> Dict[str, Any]:
        """Evict least-recently-used entries until under ``max_bytes``.

        Recency is file mtime (hits bump it). Also sweeps orphaned
        ``.tmp`` files left by killed writers -- they are unreachable by
        construction (publication is the final ``os.replace``), so
        removing them is always safe.
        """
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        swept_tmp = 0
        objects = self.objects_dir
        if os.path.isdir(objects):
            for shard in os.listdir(objects):
                shard_dir = os.path.join(objects, shard)
                if not os.path.isdir(shard_dir):
                    continue
                for name in os.listdir(shard_dir):
                    if name.endswith(".tmp"):
                        try:
                            os.unlink(os.path.join(shard_dir, name))
                            swept_tmp += 1
                        except OSError:
                            pass
        aged: List[Tuple[float, int, str]] = []
        total = 0
        for _key, path in self._iter_entries():
            try:
                stat = os.stat(path)
            except OSError:
                continue
            aged.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        aged.sort()  # oldest mtime first = least recently used first
        evicted = 0
        freed = 0
        for mtime, size, path in aged:
            if total <= max_bytes:
                break
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            freed += size
            evicted += 1
        return {
            "evicted": evicted,
            "freed_bytes": freed,
            "swept_tmp": swept_tmp,
            "remaining_bytes": total,
            "max_bytes": max_bytes,
        }
