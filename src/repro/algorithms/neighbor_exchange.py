"""Neighborhood-exchange algorithms: O(Delta log n) rounds in BCC(1).

These are the upper bounds that make the paper's Omega(log n) lower bounds
*tight* on uniformly sparse inputs (Section 1.1's closing remark): on
2-regular graphs -- the paper's own TwoCycle/MultiCycle instance family --
they solve Connectivity and ConnectedComponents in Theta(log n) rounds of
BCC(1), in both the KT-0 and KT-1 models.

The idea is elementary but exactly matches the model's information flow:

* (KT-0 only) **ID phase**, W rounds: every vertex broadcasts its own ID,
  fixed-width W bits, one bit per round. Afterwards every vertex knows the
  ID behind each of its ports -- it has bootstrapped to KT-1 knowledge.
* **Neighbor phase**, Delta * W rounds: every vertex broadcasts the IDs of
  its input-graph neighbors (sorted, one W-bit slot per neighbor, silent
  slots for missing neighbors -- silence is distinguishable from '0' in
  the three-character alphabet). Every vertex hears every list together
  with the sender's ID and reconstructs the entire input graph, then
  answers locally.

Total rounds: (Delta + 1) * W in KT-0 and Delta * W in KT-1, where W is
the ID width -- Theta(log n) for constant maximum degree Delta.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Mapping, Optional, Set, Tuple

from repro.core.algorithm import NO, YES, NodeAlgorithm
from repro.core.knowledge import InitialKnowledge
from repro.algorithms.bit_codec import encode_fixed, id_bit_width
from repro.graphs.components import UnionFind


class NeighborExchange(NodeAlgorithm):
    """The neighborhood-exchange algorithm; output mode set by subclass.

    Parameters
    ----------
    max_degree:
        The promised maximum degree Delta of the input graph (2 for the
        paper's cycle families). The schedule is common knowledge, so all
        vertices must be constructed with the same value.
    id_bits:
        Fixed ID width W. In KT-1 it may be left None (derived from the
        globally known ID set); in KT-0 the width is part of the common
        schedule and defaults to the width of 4n - 1, which covers both
        the canonical 0..n-1 IDs and the paper's 4n reduction IDs.
    """

    def __init__(self, max_degree: int = 2, id_bits: Optional[int] = None):
        if max_degree < 1:
            raise ValueError(f"max_degree must be >= 1, got {max_degree}")
        self._max_degree = max_degree
        self._id_bits = id_bits

    # ------------------------------------------------------------------
    # schedule
    # ------------------------------------------------------------------
    def setup(self, knowledge: InitialKnowledge) -> None:
        super().setup(knowledge)
        if self._id_bits is not None:
            self._width = self._id_bits
        elif knowledge.kt == 1:
            self._width = id_bit_width(max(knowledge.all_ids))
        else:
            self._width = id_bit_width(4 * knowledge.n - 1)
        self._id_phase_rounds = self._width if knowledge.kt == 0 else 0
        self._total_rounds = self._id_phase_rounds + self._max_degree * self._width
        # port -> sender ID (known at once in KT-1, learned in phase 1 in KT-0)
        self._port_ids: Dict[int, int] = (
            {p: p for p in knowledge.ports} if knowledge.kt == 1 else {}
        )
        self._received_bits: Dict[int, List[str]] = {p: [] for p in knowledge.ports}
        self._rounds_seen = 0
        self._graph_edges: Optional[Set[Tuple[int, int]]] = None
        self._all_ids: Optional[Set[int]] = (
            set(knowledge.all_ids) if knowledge.kt == 1 else None
        )

    def _my_payload(self) -> str:
        """The full bit schedule this vertex broadcasts, silence-padded.

        Returns a string over {'0','1','s'} where 's' marks a silent round.
        """
        parts: List[str] = []
        if self.knowledge.kt == 0:
            parts.append(encode_fixed(self.knowledge.vertex_id, self._width))
        if self.knowledge.kt == 1:
            neighbor_ids = sorted(self.knowledge.input_ports)
        else:
            # in KT-0 a vertex knows its input ports but not neighbor IDs;
            # it must wait for phase 1 before it can *name* neighbors.
            neighbor_ids = None
        if neighbor_ids is not None:
            for slot in range(self._max_degree):
                if slot < len(neighbor_ids):
                    parts.append(encode_fixed(neighbor_ids[slot], self._width))
                else:
                    parts.append("s" * self._width)
        return "".join(parts)

    def broadcast(self, round_index: int) -> str:
        if round_index > self._total_rounds:
            return ""
        if self.knowledge.kt == 1:
            payload = self._my_payload()
            char = payload[round_index - 1]
            return "" if char == "s" else char
        # KT-0: phase 1 is the own-ID broadcast
        if round_index <= self._id_phase_rounds:
            own = encode_fixed(self.knowledge.vertex_id, self._width)
            return own[round_index - 1]
        # phase 2: neighbor IDs become available after phase 1 completes
        offset = round_index - self._id_phase_rounds - 1
        slot, bit = divmod(offset, self._width)
        neighbor_ids = self._neighbor_ids_kt0()
        if slot >= len(neighbor_ids):
            return ""
        return encode_fixed(neighbor_ids[slot], self._width)[bit]

    def _neighbor_ids_kt0(self) -> List[int]:
        return sorted(
            self._port_ids[p] for p in self.knowledge.input_ports if p in self._port_ids
        )

    def receive(self, round_index: int, messages: Mapping[int, str]) -> None:
        if round_index > self._total_rounds:
            return
        self._rounds_seen = round_index
        for port, msg in messages.items():
            self._received_bits[port].append(msg)
        if self.knowledge.kt == 0 and round_index == self._id_phase_rounds:
            all_ids = set()
            for port, bits in self._received_bits.items():
                sender = int("".join(bits[: self._width]), 2)
                self._port_ids[port] = sender
                all_ids.add(sender)
            all_ids.add(self.knowledge.vertex_id)
            self._all_ids = all_ids
        if round_index == self._total_rounds:
            self._reconstruct()

    def _reconstruct(self) -> None:
        """Rebuild the entire input graph from the heard neighbor lists."""
        start = self._id_phase_rounds
        edges: Set[Tuple[int, int]] = set()
        for port, bits in self._received_bits.items():
            sender = self._port_ids[port]
            for slot in range(self._max_degree):
                chunk = bits[start + slot * self._width : start + (slot + 1) * self._width]
                if len(chunk) < self._width or "" in chunk:
                    continue  # silent slot: no neighbor
                neighbor = int("".join(chunk), 2)
                edges.add((min(sender, neighbor), max(sender, neighbor)))
        # own edges (needed in KT-0, where the vertex itself learns its
        # neighbor IDs only in phase 1; harmless duplication in KT-1)
        if self.knowledge.kt == 1:
            own_neighbors = sorted(self.knowledge.input_ports)
        else:
            own_neighbors = self._neighbor_ids_kt0()
        me = self.knowledge.vertex_id
        for u in own_neighbors:
            edges.add((min(me, u), max(me, u)))
        self._graph_edges = edges

    def finished(self) -> bool:
        return self._graph_edges is not None

    # ------------------------------------------------------------------
    # reconstructed-graph queries for the output subclasses
    # ------------------------------------------------------------------
    def _components(self) -> Optional[UnionFind]:
        """Components of the reconstructed graph, or None if the run was
        truncated before the exchange completed (in which case the output
        methods fall back to a fixed guess -- the behavior a lower-bound
        adversary exploits)."""
        if self._graph_edges is None or self._all_ids is None:
            return None
        uf = UnionFind(self._all_ids)
        for u, v in self._graph_edges:
            uf.union(u, v)
        return uf

    def output(self):  # pragma: no cover - overridden
        raise NotImplementedError


class NeighborExchangeConnectivity(NeighborExchange):
    """Decision output: YES iff the reconstructed graph is connected.

    If the execution was truncated before the schedule completed, the
    vertex guesses YES (any fixed guess works; the crossing adversary
    fools truncated runs either way).
    """

    def output(self) -> str:
        uf = self._components()
        if uf is None:
            return YES
        return YES if uf.component_count() == 1 else NO


class NeighborExchangeComponents(NeighborExchange):
    """Labelling output: the minimum ID in this vertex's component.

    A truncated vertex outputs its own ID (the round-0 guess).
    """

    def output(self) -> int:
        uf = self._components()
        mine = self.knowledge.vertex_id
        if uf is None:
            return mine
        members = [x for x in self._all_ids if uf.connected(x, mine)]
        return min(members)


def neighbor_exchange_rounds(kt: int, max_degree: int, id_bits: int) -> int:
    """Closed-form round count: (Delta + [kt == 0]) * W."""
    return (max_degree + (1 if kt == 0 else 0)) * id_bits


def connectivity_factory(
    max_degree: int = 2, id_bits: Optional[int] = None
) -> Callable[[], NeighborExchangeConnectivity]:
    """Factory of factories for the Connectivity decision variant."""
    return lambda: NeighborExchangeConnectivity(max_degree, id_bits)


def components_factory(
    max_degree: int = 2, id_bits: Optional[int] = None
) -> Callable[[], NeighborExchangeComponents]:
    """Factory of factories for the ConnectedComponents variant."""
    return lambda: NeighborExchangeComponents(max_degree, id_bits)
