"""Distributed Boruvka MST in BCC(Theta(log n)), KT-1.

The paper contrasts its Omega(log n) BCC bounds with the O(1)-round MST
algorithms of the unicast congested clique ([Heg+15; GP16; JN18]); the
natural broadcast-model counterpart is Boruvka at one announcement per
vertex per phase:

* every vertex knows the weights of its incident edges (local input);
* each phase, every vertex broadcasts the minimum-weight incident edge
  leaving its current fragment (encoded as the two endpoint IDs, W bits
  each, plus the weight's index in a globally known discretization --
  here: weights are integers below 2^weight_bits);
* every vertex hears all proposals, selects the minimum proposal per
  fragment (ties broken by edge), adds those edges, and merges fragments
  locally and identically.

With distinct weights this is exactly the deterministic Boruvka forest:
O(log n) phases, each one round of b = 2W + weight_bits bits -- the
broadcast analogue the Section 1.3 verification schemes certify.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Mapping, Optional, Set, Tuple

from repro.core.algorithm import NodeAlgorithm
from repro.core.knowledge import InitialKnowledge
from repro.algorithms.bit_codec import decode_fixed, encode_fixed, id_bit_width
from repro.graphs.components import UnionFind

#: local input: weights of incident edges keyed by (own ID, neighbor ID).
LocalWeights = Mapping[Tuple[int, int], int]


class BoruvkaMST(NodeAlgorithm):
    """Minimum spanning forest via broadcast Boruvka (KT-1, BCC(big-b)).

    Parameters
    ----------
    weights:
        Global map from canonical (low ID, high ID) edges to integer
        weights in [0, 2^weight_bits). Each vertex reads only its incident
        entries (the map is shared for convenience; the information used
        is local).
    weight_bits:
        Width of the weight field in broadcasts.
    """

    def __init__(self, weights: Mapping[Tuple[int, int], int], weight_bits: int = 16):
        self._weights = weights
        self._weight_bits = weight_bits

    def setup(self, knowledge: InitialKnowledge) -> None:
        super().setup(knowledge)
        if knowledge.kt != 1:
            raise ValueError("BoruvkaMST requires the KT-1 model")
        self._w = id_bit_width(max(knowledge.all_ids))
        self._message_bits = 2 * self._w + self._weight_bits
        if knowledge.bandwidth < self._message_bits:
            raise ValueError(
                f"bandwidth {knowledge.bandwidth} < message width {self._message_bits}"
            )
        me = knowledge.vertex_id
        self._me = me
        self._incident: Dict[int, int] = {}
        for nbr in knowledge.input_ports:
            edge = (min(me, nbr), max(me, nbr))
            if edge not in self._weights:
                raise ValueError(f"missing weight for incident edge {edge}")
            self._incident[nbr] = int(self._weights[edge])
        self._fragment: Dict[int, int] = {vid: vid for vid in knowledge.all_ids}
        self._forest: Set[Tuple[int, int]] = set()
        self._done = False

    # ------------------------------------------------------------------
    # per-phase proposal
    # ------------------------------------------------------------------
    def _my_proposal(self) -> Optional[Tuple[int, int, int]]:
        """(weight, low ID, high ID) of my lightest outgoing edge."""
        best: Optional[Tuple[int, int, int]] = None
        mine = self._fragment[self._me]
        for nbr, weight in sorted(self._incident.items()):
            if self._fragment[nbr] == mine:
                continue
            candidate = (weight, min(self._me, nbr), max(self._me, nbr))
            if best is None or candidate < best:
                best = candidate
        return best

    def broadcast(self, round_index: int) -> str:
        if self._done:
            return ""
        proposal = self._my_proposal()
        if proposal is None:
            return ""
        weight, lo, hi = proposal
        return (
            encode_fixed(weight, self._weight_bits)
            + encode_fixed(lo, self._w)
            + encode_fixed(hi, self._w)
        )

    def receive(self, round_index: int, messages: Mapping[int, str]) -> None:
        if self._done:
            return
        proposals: List[Tuple[int, int, int]] = []
        mine = self._my_proposal()
        if mine is not None:
            proposals.append(mine)
        for _sender, bits in messages.items():
            if not bits:
                continue
            weight = decode_fixed(bits[: self._weight_bits])
            lo = decode_fixed(bits[self._weight_bits : self._weight_bits + self._w])
            hi = decode_fixed(bits[self._weight_bits + self._w :])
            proposals.append((weight, lo, hi))
        if not proposals:
            self._done = True
            return
        # minimum proposal per fragment, then merge (identical everywhere)
        best_per_fragment: Dict[int, Tuple[int, int, int]] = {}
        for weight, lo, hi in proposals:
            for endpoint in (lo, hi):
                frag = self._fragment[endpoint]
                cur = best_per_fragment.get(frag)
                cand = (weight, lo, hi)
                # only edges actually leaving the fragment count for it
                if self._fragment[lo] == self._fragment[hi]:
                    continue
                if cur is None or cand < cur:
                    best_per_fragment[frag] = cand
        uf = UnionFind(set(self._fragment.values()))
        added = False
        for frag, (weight, lo, hi) in sorted(best_per_fragment.items()):
            if self._fragment[lo] != self._fragment[hi]:
                if uf.union(self._fragment[lo], self._fragment[hi]):
                    pass
                self._forest.add((lo, hi))
                added = True
        if not added:
            self._done = True
            return
        relabel: Dict[int, int] = {}
        for group in uf.components():
            rep = min(group)
            for frag in group:
                relabel[frag] = rep
        self._fragment = {vid: relabel[f] for vid, f in self._fragment.items()}

    def finished(self) -> bool:
        return self._done

    def output(self) -> frozenset:
        """The minimum spanning forest, as canonical (low, high) ID pairs.

        Every vertex outputs the same global forest -- all proposals were
        broadcast, so the computation is common knowledge.
        """
        return frozenset(self._forest)


def boruvka_mst_factory(
    weights: Mapping[Tuple[int, int], int], weight_bits: int = 16
) -> Callable[[], BoruvkaMST]:
    return lambda: BoruvkaMST(weights, weight_bits)


def mst_bandwidth(n: int, weight_bits: int = 16) -> int:
    """The b needed for one proposal per round: 2 ceil(log2 n) + weight_bits."""
    return 2 * id_bit_width(max(1, n - 1)) + weight_bits


def mst_max_rounds(n: int) -> int:
    """Boruvka phase budget: fragments at least halve per phase."""
    return math.ceil(math.log2(max(2, n))) + 2
