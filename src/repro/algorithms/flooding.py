"""Full-adjacency exchange: the Theta(n)-round BCC(1) baseline.

Every vertex broadcasts its adjacency row -- one bit per round, bit k
answering "am I adjacent to the k-th smallest ID?" -- so after n rounds
every vertex holds the entire input graph and answers locally. This is the
trivially correct KT-1 baseline against which the O(log n) algorithms for
sparse graphs are compared in the benchmarks: it works for *every* graph,
at Theta(n) rounds in BCC(1).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Set, Tuple

from repro.core.algorithm import NO, YES, NodeAlgorithm
from repro.core.knowledge import InitialKnowledge
from repro.graphs.components import UnionFind


class FullAdjacencyExchange(NodeAlgorithm):
    """Reconstructs the whole graph in exactly n rounds of BCC(1), KT-1."""

    def setup(self, knowledge: InitialKnowledge) -> None:
        super().setup(knowledge)
        if knowledge.kt != 1:
            raise ValueError("FullAdjacencyExchange requires the KT-1 model")
        self._order: List[int] = sorted(knowledge.all_ids)
        self._rows: Dict[int, List[str]] = {}
        self._round = 0
        self._edges: Set[Tuple[int, int]] = None  # type: ignore[assignment]

    def broadcast(self, round_index: int) -> str:
        if round_index > len(self._order):
            return ""
        target = self._order[round_index - 1]
        return "1" if target in self.knowledge.input_ports else "0"

    def receive(self, round_index: int, messages: Mapping[int, str]) -> None:
        if round_index > len(self._order):
            return
        for sender, bit in messages.items():
            self._rows.setdefault(sender, []).append(bit)
        self._round = round_index
        if round_index == len(self._order):
            self._reconstruct()

    def _reconstruct(self) -> None:
        edges: Set[Tuple[int, int]] = set()
        for sender, row in self._rows.items():
            for k, bit in enumerate(row):
                if bit == "1":
                    other = self._order[k]
                    edges.add((min(sender, other), max(sender, other)))
        me = self.knowledge.vertex_id
        for nbr in self.knowledge.input_ports:
            edges.add((min(me, nbr), max(me, nbr)))
        self._edges = edges

    def finished(self) -> bool:
        return self._edges is not None

    def _components(self):
        """Components of the reconstructed graph, or None if truncated."""
        if self._edges is None:
            return None
        uf = UnionFind(self._order)
        for u, v in self._edges:
            uf.union(u, v)
        return uf

    def output(self):  # pragma: no cover - overridden
        raise NotImplementedError


class FullAdjacencyConnectivity(FullAdjacencyExchange):
    """Decision variant: YES iff the reconstructed graph is connected.

    A truncated vertex guesses YES.
    """

    def output(self) -> str:
        uf = self._components()
        if uf is None:
            return YES
        return YES if uf.component_count() == 1 else NO


class FullAdjacencyComponents(FullAdjacencyExchange):
    """Labelling variant: minimum ID in this vertex's component.

    A truncated vertex outputs its own ID.
    """

    def output(self) -> int:
        uf = self._components()
        me = self.knowledge.vertex_id
        if uf is None:
            return me
        return min(x for x in self._order if uf.connected(x, me))


def full_adjacency_connectivity_factory() -> Callable[[], FullAdjacencyConnectivity]:
    return FullAdjacencyConnectivity


def full_adjacency_components_factory() -> Callable[[], FullAdjacencyComponents]:
    return FullAdjacencyComponents
