"""Peeling exchange: connectivity for *bounded-arboricity* graphs in BCC(1).

The paper's tightness remark concerns uniformly sparse graphs -- bounded
arboricity, not bounded degree ([MT16] gives a deterministic O(log n)
bound there via sketching). The neighborhood-exchange algorithm needs a
degree bound; this module covers the arboricity regime with a simple
deterministic *peeling* scheme:

A graph of arboricity <= a has average degree < 2a in every subgraph, so
(Markov) more than half of the surviving vertices always have surviving
degree <= 4a. The algorithm proceeds in phases over the surviving
(un-peeled) graph:

1. **status round**: every surviving vertex with surviving degree <= 4a
   broadcasts '1' (it peels this phase); everyone else stays silent.
   Every vertex now knows the exact peeling set (KT-1 ports are IDs).
2. **list rounds** (4a * W of them): each peeling vertex broadcasts the
   IDs of its surviving neighbors, W bits per slot, silent slots for the
   rest. Every vertex records those edges.

Each edge is announced by whichever endpoint peels first (same-phase
peels announce it twice -- harmless), so when everyone has peeled, every
vertex holds the entire input graph and answers locally. Surviving sets
shrink by more than half per phase, so there are at most ceil(log2 n) + 1
phases of 1 + 4a*W rounds each: **O(a log^2 n) rounds in BCC(1)** for
arboricity a -- polylogarithmic for uniformly sparse graphs of arbitrary
maximum degree (a hub vertex of degree n - 1 is fine: it simply peels
late, after its neighbors have announced all its edges).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Mapping, Optional, Set, Tuple

from repro.core.algorithm import NO, YES, NodeAlgorithm
from repro.core.knowledge import InitialKnowledge
from repro.algorithms.bit_codec import encode_fixed, id_bit_width
from repro.graphs.components import UnionFind


class PeelingExchange(NodeAlgorithm):
    """Graph reconstruction by arboricity-threshold peeling (KT-1, BCC(1))."""

    def __init__(self, arboricity: int, id_bits: Optional[int] = None):
        if arboricity < 1:
            raise ValueError(f"arboricity bound must be >= 1, got {arboricity}")
        self._a = arboricity
        self._id_bits = id_bits

    def setup(self, knowledge: InitialKnowledge) -> None:
        super().setup(knowledge)
        if knowledge.kt != 1:
            raise ValueError("PeelingExchange requires the KT-1 model")
        self._width = (
            self._id_bits if self._id_bits is not None else id_bit_width(max(knowledge.all_ids))
        )
        self._threshold = 4 * self._a
        self._phase_rounds = 1 + self._threshold * self._width
        self._all: Set[int] = set(knowledge.all_ids)
        self._me = knowledge.vertex_id
        self._neighbors: Set[int] = set(knowledge.input_ports)
        self._peeled: Set[int] = set()
        self._i_peeled = False
        self._phase_peelers: Set[int] = set()
        self._i_peel_now = False
        self._my_list: List[int] = []
        self._list_bits: Dict[int, List[str]] = {}
        self._edges: Set[Tuple[int, int]] = set()
        self._done = False

    # ------------------------------------------------------------------
    # schedule helpers
    # ------------------------------------------------------------------
    def _position(self, round_index: int) -> int:
        return (round_index - 1) % self._phase_rounds

    def _surviving_degree(self) -> int:
        return len(self._neighbors - self._peeled)

    # ------------------------------------------------------------------
    # round behaviour
    # ------------------------------------------------------------------
    def broadcast(self, round_index: int) -> str:
        if self._done:
            return ""
        pos = self._position(round_index)
        if pos == 0:
            self._i_peel_now = (
                not self._i_peeled and self._surviving_degree() <= self._threshold
            )
            if self._i_peel_now:
                self._my_list = sorted(self._neighbors - self._peeled)
                return "1"
            return ""
        if not self._i_peel_now:
            return ""
        slot, bit = divmod(pos - 1, self._width)
        if slot >= len(self._my_list):
            return ""
        return encode_fixed(self._my_list[slot], self._width)[bit]

    def receive(self, round_index: int, messages: Mapping[int, str]) -> None:
        if self._done:
            return
        pos = self._position(round_index)
        if pos == 0:
            self._phase_peelers = {s for s, m in messages.items() if m == "1"}
            if self._i_peel_now:
                self._phase_peelers.add(self._me)
            self._list_bits = {s: [] for s in self._phase_peelers}
            return
        for sender in self._phase_peelers:
            if sender != self._me:
                self._list_bits[sender].append(messages[sender])
        if pos == self._phase_rounds - 1:
            self._finish_phase()

    def _finish_phase(self) -> None:
        # decode every peeler's announced neighbor list
        for sender, bits in self._list_bits.items():
            if sender == self._me:
                announced = self._my_list
            else:
                announced = []
                for slot in range(self._threshold):
                    chunk = bits[slot * self._width : (slot + 1) * self._width]
                    if len(chunk) < self._width or "" in chunk:
                        continue
                    announced.append(int("".join(chunk), 2))
            for nbr in announced:
                self._edges.add((min(sender, nbr), max(sender, nbr)))
        if self._i_peel_now:
            self._i_peeled = True
        self._peeled |= self._phase_peelers
        if self._peeled == self._all:
            self._done = True

    def finished(self) -> bool:
        return self._done

    # ------------------------------------------------------------------
    # outputs
    # ------------------------------------------------------------------
    def _components(self) -> Optional[UnionFind]:
        if not self._done:
            return None
        uf = UnionFind(self._all)
        for u, v in self._edges:
            uf.union(u, v)
        return uf

    def output(self):  # pragma: no cover - overridden
        raise NotImplementedError


class PeelingConnectivity(PeelingExchange):
    """Decision variant; truncated vertices guess YES."""

    def output(self) -> str:
        uf = self._components()
        if uf is None:
            return YES
        return YES if uf.component_count() == 1 else NO


class PeelingComponents(PeelingExchange):
    """Labelling variant; truncated vertices output their own ID."""

    def output(self) -> int:
        uf = self._components()
        if uf is None:
            return self._me
        return min(x for x in self._all if uf.connected(x, self._me))


def peeling_connectivity_factory(
    arboricity: int, id_bits: Optional[int] = None
) -> Callable[[], PeelingConnectivity]:
    return lambda: PeelingConnectivity(arboricity, id_bits)


def peeling_components_factory(
    arboricity: int, id_bits: Optional[int] = None
) -> Callable[[], PeelingComponents]:
    return lambda: PeelingComponents(arboricity, id_bits)


def peeling_round_budget(n: int, arboricity: int, id_bits: Optional[int] = None) -> int:
    """A safe budget: (ceil(log2 n) + 2) phases of 1 + 4a*W rounds."""
    w = id_bits if id_bits is not None else id_bit_width(max(1, n - 1))
    phases = math.ceil(math.log2(max(2, n))) + 2
    return phases * (1 + 4 * arboricity * w)
