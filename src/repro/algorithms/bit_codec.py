"""Bit-serialization helpers for multi-round b-bit broadcasting.

BCC algorithms constantly need to pace a fixed-width binary payload out at
b bits per round, and to reassemble payloads (with the silence character
available as an out-of-band "no payload" marker). These helpers keep that
logic in one place.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence


def id_bit_width(max_id: int) -> int:
    """Bits needed for a fixed-width encoding of IDs in [0, max_id]."""
    if max_id < 0:
        raise ValueError(f"max_id must be >= 0, got {max_id}")
    return max(1, max_id.bit_length())


def encode_fixed(value: int, width: int) -> str:
    """Fixed-width big-endian binary string."""
    if value < 0 or value >= (1 << width):
        raise ValueError(f"{value} does not fit in {width} bits")
    return format(value, f"0{width}b")


def decode_fixed(bits: str) -> int:
    """Inverse of :func:`encode_fixed`."""
    if not bits or any(c not in "01" for c in bits):
        raise ValueError(f"not a non-empty bit string: {bits!r}")
    return int(bits, 2)


def schedule_bits(payload: str, bandwidth: int, round_index: int) -> str:
    """The chunk of ``payload`` to broadcast in 1-based ``round_index``.

    Returns the empty string (silence) once the payload is exhausted.
    """
    start = (round_index - 1) * bandwidth
    return payload[start : start + bandwidth]


def rounds_needed(payload_bits: int, bandwidth: int) -> int:
    """Rounds to pace out a payload at b bits per round."""
    return math.ceil(payload_bits / bandwidth) if payload_bits else 0


class ChunkAssembler:
    """Reassembles per-round chunks (possibly with trailing silence) into a
    payload string, tracking completeness against an expected width."""

    __slots__ = ("_expected", "_parts")

    def __init__(self, expected_bits: int):
        self._expected = expected_bits
        self._parts: List[str] = []

    def feed(self, chunk: str) -> None:
        self._parts.append(chunk)

    @property
    def bits(self) -> str:
        return "".join(self._parts)

    def complete(self) -> bool:
        return len(self.bits) >= self._expected

    def value(self) -> int:
        if not self.complete():
            raise ValueError("payload incomplete")
        return decode_fixed(self.bits[: self._expected])


def pack_symbols(symbols: Sequence[str]) -> str:
    """Encode a sequence of {0, 1, silence} characters at 2 bits each.

    Used by the Section 4.3 simulation protocol: silence -> ``00``,
    '0' -> ``10``, '1' -> ``11``.
    """
    mapping = {"": "00", "0": "10", "1": "11"}
    try:
        return "".join(mapping[s] for s in symbols)
    except KeyError as exc:
        raise ValueError(f"cannot pack symbol {exc.args[0]!r}") from exc


def unpack_symbols(bits: str, count: int) -> List[str]:
    """Inverse of :func:`pack_symbols` for ``count`` symbols."""
    if len(bits) != 2 * count:
        raise ValueError(f"expected {2 * count} bits, got {len(bits)}")
    mapping = {"00": "", "10": "0", "11": "1"}
    out = []
    for i in range(count):
        pair = bits[2 * i : 2 * i + 2]
        if pair not in mapping:
            raise ValueError(f"invalid symbol code {pair!r}")
        out.append(mapping[pair])
    return out
