"""AGM-style linear-sketch connectivity in the broadcast congested clique.

The paper's closing tightness remark cites sketching upper bounds for
Connectivity on sparse graphs [MT16]; this module implements the classic
*randomized* linear-sketching approach of Ahn, Guha and McGregor, adapted
to the broadcast model, as the general-graph comparator:

* every vertex v owns the signed incidence vector a_v over the C(n, 2)
  edge coordinates (+1 at {v, u} if v is the lower endpoint, -1 if the
  higher); for any vertex set S, sum_{v in S} a_v is supported exactly on
  the edges leaving S (internal edges cancel);
* an l0-sampler compresses a_v to O(log^2 n) bits per Boruvka phase while
  still allowing recovery of *one* nonzero coordinate of any summed
  sketch, with constant success probability per level set;
* in each phase every vertex broadcasts its fresh sketch; since broadcasts
  are global, every vertex locally sums member sketches per component,
  recovers an outgoing edge per component, and performs identical Boruvka
  merges. O(log n) phases suffice w.h.p.

With bandwidth b, a phase costs ceil(levels * 3 * 31 / b) rounds, so the
total is O(log^2 n / b * log n) -- polylogarithmic rounds in BCC(log n),
versus Theta(n) for the full-adjacency baseline on dense inputs. (The
deterministic O(log n) bound of [MT16] for bounded arboricity is covered
separately by the neighborhood-exchange algorithm.)

The public coin supplies all hash functions, so every vertex samples with
identical randomness -- exactly the shared-randomness regime of the model.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Mapping, Optional, Set, Tuple

from repro.core.algorithm import NO, YES, NodeAlgorithm
from repro.core.knowledge import InitialKnowledge
from repro.core.randomness import PublicCoin
from repro.algorithms.bit_codec import encode_fixed
from repro.graphs.components import UnionFind

#: Field modulus for fingerprints: the Mersenne prime 2^31 - 1.
PRIME = (1 << 31) - 1
#: Bits per sketch entry (three field elements per level).
ENTRY_BITS = 31
FIELDS_PER_LEVEL = 3


def edge_coordinate(i: int, j: int, n: int) -> int:
    """Index of the unordered pair {i, j} (positions 0 <= i < j < n) in the
    colexicographic enumeration of the C(n, 2) edge coordinates."""
    if not 0 <= i < j < n:
        raise ValueError(f"need 0 <= i < j < n, got ({i}, {j}) with n={n}")
    return j * (j - 1) // 2 + i


def coordinate_to_edge(coord: int, n: int) -> Tuple[int, int]:
    """Inverse of :func:`edge_coordinate`."""
    j = int((1 + math.isqrt(1 + 8 * coord)) // 2)
    while j * (j - 1) // 2 > coord:
        j -= 1
    while (j + 1) * j // 2 <= coord:
        j += 1
    i = coord - j * (j - 1) // 2
    if not 0 <= i < j < n:
        raise ValueError(f"coordinate {coord} out of range for n={n}")
    return i, j


class SketchSpec:
    """The shared per-phase sketch parameters, derived from the public coin.

    Every vertex constructs an identical SketchSpec (same coin, same phase
    index), which is what makes the summed sketches meaningful.
    """

    def __init__(self, coin: PublicCoin, phase: int, n: int, levels: Optional[int] = None):
        self._coin = coin.substream(f"agm-phase-{phase}")
        self.n = n
        self.levels = levels if levels is not None else 2 * max(1, math.ceil(math.log2(max(2, n)))) + 2
        # fingerprint base, shared across levels
        self.base = self._coin.randint("fingerprint-base", 2, PRIME - 2)

    def level_of(self, coord: int) -> int:
        """The deepest sampling level that includes this coordinate.

        Level l includes a coordinate with probability 2^-l (level 0
        includes everything); a coordinate is included in levels 0..L(e).
        """
        stream = self._coin.bits(f"lvl|{coord}", self.levels)
        depth = 0
        for bit in stream:
            if bit == 1:
                break
            depth += 1
        return depth

    def empty_sketch(self) -> List[List[int]]:
        """[count, weighted-sum, fingerprint] per level, all mod PRIME."""
        return [[0, 0, 0] for _ in range(self.levels)]

    def add_coordinate(self, sketch: List[List[int]], coord: int, sign: int) -> None:
        """Fold one +-1 coordinate into a sketch."""
        depth = self.level_of(coord)
        fp = (sign * pow(self.base, coord, PRIME)) % PRIME
        for level in range(min(depth, self.levels - 1) + 1):
            entry = sketch[level]
            entry[0] = (entry[0] + sign) % PRIME
            entry[1] = (entry[1] + sign * (coord + 1)) % PRIME
            entry[2] = (entry[2] + fp) % PRIME

    def combine(self, a: List[List[int]], b: List[List[int]]) -> List[List[int]]:
        """Entrywise sum of two sketches (linearity)."""
        return [
            [(x + y) % PRIME for x, y in zip(ea, eb)] for ea, eb in zip(a, b)
        ]

    def recover(self, sketch: List[List[int]]) -> Optional[Tuple[int, int]]:
        """Recover (coordinate, sign) from a summed sketch, if some level is
        1-sparse; None when every level fails the verification."""
        for level in range(self.levels - 1, -1, -1):
            count, weighted, fingerprint = sketch[level]
            for sign, c_val in ((1, 1), (-1, PRIME - 1)):
                if count != c_val:
                    continue
                w = weighted if sign == 1 else (PRIME - weighted) % PRIME
                coord = w - 1
                if not 0 <= coord < self.n * (self.n - 1) // 2:
                    continue
                expected = (sign * pow(self.base, coord, PRIME)) % PRIME
                if fingerprint == expected and self.level_of(coord) >= level:
                    return coord, sign
        return None

    def encode(self, sketch: List[List[int]]) -> str:
        """Serialize a sketch to a bit string."""
        return "".join(
            encode_fixed(value, ENTRY_BITS)
            for entry in sketch
            for value in entry
        )

    def decode(self, bits: str) -> List[List[int]]:
        """Inverse of :func:`encode`."""
        expected = self.levels * FIELDS_PER_LEVEL * ENTRY_BITS
        if len(bits) != expected:
            raise ValueError(f"expected {expected} bits, got {len(bits)}")
        values = [
            int(bits[k * ENTRY_BITS : (k + 1) * ENTRY_BITS], 2)
            for k in range(self.levels * FIELDS_PER_LEVEL)
        ]
        return [
            values[3 * level : 3 * level + 3] for level in range(self.levels)
        ]

    @property
    def payload_bits(self) -> int:
        return self.levels * FIELDS_PER_LEVEL * ENTRY_BITS


class AGMSketchComponents(NodeAlgorithm):
    """Randomized ConnectedComponents via broadcast l0-sketches (KT-1)."""

    def __init__(self, phases: Optional[int] = None):
        self._requested_phases = phases

    def setup(self, knowledge: InitialKnowledge) -> None:
        super().setup(knowledge)
        if knowledge.kt != 1:
            raise ValueError("AGMSketchComponents requires the KT-1 model")
        self._order: List[int] = sorted(knowledge.all_ids)
        self._pos: Dict[int, int] = {vid: k for k, vid in enumerate(self._order)}
        n = len(self._order)
        self._n = n
        self._phases = self._requested_phases or (math.ceil(math.log2(max(2, n))) + 3)
        self._spec_cache: Dict[int, SketchSpec] = {}
        spec0 = self._spec(0)
        self._rounds_per_phase = math.ceil(spec0.payload_bits / knowledge.bandwidth)
        self._total_rounds = self._phases * self._rounds_per_phase
        self._label: Dict[int, int] = {vid: vid for vid in self._order}
        self._incoming: Dict[int, List[str]] = {vid: [] for vid in self._order}
        self._done = False

    def _spec(self, phase: int) -> SketchSpec:
        if phase not in self._spec_cache:
            self._spec_cache[phase] = SketchSpec(self.knowledge.coin, phase, len(self.knowledge.all_ids))
        return self._spec_cache[phase]

    def _phase_and_offset(self, round_index: int) -> Tuple[int, int]:
        return divmod(round_index - 1, self._rounds_per_phase)

    def _my_sketch_bits(self, phase: int) -> str:
        cached = getattr(self, "_sketch_cache", None)
        if cached is not None and cached[0] == phase:
            return cached[1]
        bits = self._compute_sketch_bits(phase)
        self._sketch_cache = (phase, bits)
        return bits

    def _compute_sketch_bits(self, phase: int) -> str:
        spec = self._spec(phase)
        sketch = spec.empty_sketch()
        me = self._pos[self.knowledge.vertex_id]
        for nbr_id in self.knowledge.input_ports:
            other = self._pos[nbr_id]
            i, j = min(me, other), max(me, other)
            coord = edge_coordinate(i, j, self._n)
            spec.add_coordinate(sketch, coord, 1 if me == i else -1)
        return spec.encode(sketch)

    def broadcast(self, round_index: int) -> str:
        if self._done or round_index > self._total_rounds:
            return ""
        phase, offset = self._phase_and_offset(round_index)
        payload = self._my_sketch_bits(phase)
        b = self.knowledge.bandwidth
        return payload[offset * b : (offset + 1) * b]

    def receive(self, round_index: int, messages: Mapping[int, str]) -> None:
        if self._done or round_index > self._total_rounds:
            return
        for sender, bits in messages.items():
            self._incoming[sender].append(bits)
        phase, offset = self._phase_and_offset(round_index)
        if offset == self._rounds_per_phase - 1:
            self._finish_phase(phase)

    def _finish_phase(self, phase: int) -> None:
        spec = self._spec(phase)
        me = self.knowledge.vertex_id
        sketches: Dict[int, List[List[int]]] = {}
        for vid in self._order:
            if vid == me:
                sketches[vid] = spec.decode(self._my_sketch_bits(phase))
            else:
                bits = "".join(self._incoming[vid])[: spec.payload_bits]
                sketches[vid] = spec.decode(bits)
            self._incoming[vid] = []

        # sum sketches per component, recover one outgoing edge each
        component_sketch: Dict[int, List[List[int]]] = {}
        for vid in self._order:
            lab = self._label[vid]
            if lab in component_sketch:
                component_sketch[lab] = spec.combine(component_sketch[lab], sketches[vid])
            else:
                component_sketch[lab] = sketches[vid]

        uf = UnionFind(set(self._label.values()))
        merged_any = False
        for lab, sk in sorted(component_sketch.items()):
            recovered = spec.recover(sk)
            if recovered is None:
                continue
            coord, _sign = recovered
            i, j = coordinate_to_edge(coord, self._n)
            u, v = self._order[i], self._order[j]
            if self._label[u] != self._label[v]:
                uf.union(self._label[u], self._label[v])
                merged_any = True
        if merged_any:
            new_label: Dict[int, int] = {}
            for group in uf.components():
                rep = min(group)
                for lab in group:
                    new_label[lab] = rep
            self._label = {vid: new_label[lab] for vid, lab in self._label.items()}
        if phase == self._phases - 1:
            self._done = True

    def finished(self) -> bool:
        return self._done

    def output(self) -> int:
        return self._label[self.knowledge.vertex_id]


class AGMSketchConnectivity(AGMSketchComponents):
    """Decision variant: YES iff one component label remains."""

    def output(self) -> str:  # type: ignore[override]
        return YES if len(set(self._label.values())) == 1 else NO


def agm_components_factory(phases: Optional[int] = None) -> Callable[[], AGMSketchComponents]:
    return lambda: AGMSketchComponents(phases)


def agm_connectivity_factory(phases: Optional[int] = None) -> Callable[[], AGMSketchConnectivity]:
    return lambda: AGMSketchConnectivity(phases)


def agm_total_rounds(n: int, bandwidth: int, phases: Optional[int] = None) -> int:
    """Closed-form round count of the sketch algorithm."""
    levels = 2 * max(1, math.ceil(math.log2(max(2, n)))) + 2
    payload = levels * FIELDS_PER_LEVEL * ENTRY_BITS
    p = phases or (math.ceil(math.log2(max(2, n))) + 3)
    return p * math.ceil(payload / bandwidth)
