"""Boruvka-style ConnectedComponents in BCC(log n), KT-1.

This is the classic comparator from the upper-bound literature the paper
cites ([JN17]-era bounds before the O(log n / log log n) refinement): with
bandwidth b = Theta(log n), components can be merged in O(log n) Boruvka
phases of two rounds each.

Phase structure (all arithmetic on IDs):

1. **Label round**: every vertex broadcasts its current component label
   (W bits). Since KT-1 port labels are sender IDs, afterwards every
   vertex knows label(u) for every u.
2. **Proposal round**: every vertex broadcasts the minimum *foreign* label
   among its input-graph neighbors (or stays silent if all neighbors share
   its label). Every vertex now sees every proposal and deterministically
   computes, for each component, the minimum foreign label proposed by any
   of its members; merging those component pairs (transitively) is a local
   computation that every vertex performs identically.

Every component with any outgoing edge merges each phase, so the number of
non-final components at least halves: at most ceil(log2 n) + 1 phases. The
algorithm terminates the phase after every vertex stays silent, which every
vertex observes simultaneously.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Set

from repro.core.algorithm import NO, YES, NodeAlgorithm
from repro.core.knowledge import InitialKnowledge
from repro.algorithms.bit_codec import decode_fixed, encode_fixed, id_bit_width
from repro.graphs.components import UnionFind


class BoruvkaComponents(NodeAlgorithm):
    """ConnectedComponents in O(log n) rounds of BCC(Theta(log n)), KT-1."""

    def setup(self, knowledge: InitialKnowledge) -> None:
        super().setup(knowledge)
        if knowledge.kt != 1:
            raise ValueError("BoruvkaComponents requires the KT-1 model")
        self._width = id_bit_width(max(knowledge.all_ids))
        if knowledge.bandwidth < self._width:
            raise ValueError(
                f"bandwidth {knowledge.bandwidth} < ID width {self._width}; "
                f"run this algorithm in BCC(b) with b >= ceil(log2 max_id)"
            )
        self._label = knowledge.vertex_id
        self._labels: Dict[int, int] = {}  # vertex ID -> current label
        self._done = False

    # rounds alternate: odd = label round, even = proposal round
    def broadcast(self, round_index: int) -> str:
        if self._done:
            return ""
        if round_index % 2 == 1:
            return encode_fixed(self._label, self._width)
        proposal = self._my_proposal()
        return "" if proposal is None else encode_fixed(proposal, self._width)

    def _my_proposal(self) -> Optional[int]:
        foreign = [
            self._labels[nbr]
            for nbr in self.knowledge.input_ports
            if self._labels.get(nbr, self._label) != self._label
        ]
        return min(foreign) if foreign else None

    def receive(self, round_index: int, messages: Mapping[int, str]) -> None:
        if self._done:
            return
        if round_index % 2 == 1:
            self._labels = {
                sender: decode_fixed(bits) for sender, bits in messages.items() if bits
            }
            self._labels[self.knowledge.vertex_id] = self._label
            return
        # proposal round: fold in every vertex's proposal, merge locally
        proposals: Dict[int, int] = {}  # component label -> min foreign label
        my_proposal = self._my_proposal()
        all_pairs = list(messages.items()) + [(self.knowledge.vertex_id, None)]
        for sender, bits in all_pairs:
            if sender == self.knowledge.vertex_id:
                value = my_proposal
            else:
                value = decode_fixed(bits) if bits else None
            if value is None:
                continue
            label = self._labels[sender]
            if label not in proposals or value < proposals[label]:
                proposals[label] = value
        if not proposals:
            self._done = True
            return
        uf = UnionFind(set(self._labels.values()))
        for label, target in proposals.items():
            uf.union(label, target)
        # new label of a group = minimum old label in the group
        new_label: Dict[int, int] = {}
        for group in uf.components():
            rep = min(group)
            for lab in group:
                new_label[lab] = rep
        self._label = new_label[self._label]
        self._labels = {v: new_label[lab] for v, lab in self._labels.items()}

    def finished(self) -> bool:
        return self._done

    def output(self) -> int:
        return self._label


class BoruvkaConnectivity(BoruvkaComponents):
    """Decision variant: YES iff a single component label remains."""

    def output(self) -> str:  # type: ignore[override]
        labels = set(self._labels.values()) if self._labels else {self._label}
        return YES if len(labels) == 1 else NO


def boruvka_factory() -> Callable[[], BoruvkaComponents]:
    return BoruvkaComponents


def boruvka_connectivity_factory() -> Callable[[], BoruvkaConnectivity]:
    return BoruvkaConnectivity


def boruvka_max_rounds(n: int) -> int:
    """A safe round budget: 2 * (ceil(log2 n) + 2) phases' worth of rounds."""
    import math

    return 2 * (math.ceil(math.log2(max(2, n))) + 2)
