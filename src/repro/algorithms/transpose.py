"""Transpose: a clean range separation in the RCC(b, r) spectrum.

Every vertex i holds one private bit x_{i -> j} addressed to each other
vertex j; everyone must learn the bits addressed to them. This "transpose"
task isolates the bandwidth gap the paper's introduction leans on:

* with range r >= 2, one round suffices -- a vertex partitions its ports
  into "send 0" and "send 1" (two distinct messages);
* with range r = 1 (broadcast, i.e. BCC(b)), a vertex can only reveal b
  bits per round *in total*, and it must reveal all n - 1 addressed bits
  (they are independent), so ceil((n - 1) / b) rounds are necessary --
  and the schedule below achieves exactly that.

This is the executable core of the Becker et al. observation cited in
Section 1.3: the power of the congested clique spectrum grows with every
increase in range, which is why "bottleneck" lower-bound arguments work at
r = 1 but break at large r.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Mapping

from repro.core.range_model import RangeNodeAlgorithm

#: inputs[sender_id][target_id] = "0" | "1"
TransposeInput = Dict[int, Dict[int, str]]


class RangeTranspose(RangeNodeAlgorithm):
    """Solves transpose in 1 round at r >= 2, ceil((n-1)/b) rounds at r = 1."""

    def __init__(self, inputs: TransposeInput, use_range: bool):
        self._inputs = inputs
        self._use_range = use_range

    def setup(self, knowledge) -> None:
        super().setup(knowledge)
        if knowledge.kt != 1:
            raise ValueError("transpose addressing requires KT-1 (ports are IDs)")
        self._my_vector = dict(self._inputs[knowledge.vertex_id])
        self._targets = sorted(self._my_vector)
        self._received: Dict[int, str] = {}
        self._rounds_needed = (
            1
            if self._use_range
            else math.ceil(len(self._targets) / knowledge.bandwidth)
        )
        self._done = False

    def send(self, round_index: int):
        if self._done or round_index > self._rounds_needed:
            return ""
        if self._use_range:
            zeros = [t for t in self._targets if self._my_vector[t] == "0"]
            ones = [t for t in self._targets if self._my_vector[t] == "1"]
            out: Dict[str, list] = {}
            if zeros:
                out["0"] = zeros
            if ones:
                out["1"] = ones
            return out
        # broadcast schedule: bits addressed to targets in ID order, b per round
        b = self.knowledge.bandwidth
        start = (round_index - 1) * b
        chunk = "".join(
            self._my_vector[t] for t in self._targets[start : start + b]
        )
        return chunk

    def receive(self, round_index: int, messages: Mapping[int, str]) -> None:
        if self._done:
            return
        if self._use_range:
            # the message on port u IS the bit u addressed to me
            for sender, bit in messages.items():
                self._received[sender] = bit
            self._done = True
            return
        b = self.knowledge.bandwidth
        me = self.knowledge.vertex_id
        for sender, chunk in messages.items():
            # reconstruct which slot of the sender's schedule addressed me
            sender_targets = sorted(
                t for t in self.knowledge.all_ids if t != sender
            )
            my_slot = sender_targets.index(me)
            start = (round_index - 1) * b
            if start <= my_slot < start + len(chunk):
                self._received[sender] = chunk[my_slot - start]
        if round_index >= self._rounds_needed:
            self._done = True

    def finished(self) -> bool:
        return self._done

    def output(self) -> Dict[int, str]:
        return dict(self._received)


def transpose_factory(inputs: TransposeInput, use_range: bool) -> Callable[[], RangeTranspose]:
    return lambda: RangeTranspose(inputs, use_range)


def transpose_correct(inputs: TransposeInput, outputs_by_id: Mapping[int, Mapping[int, str]]) -> bool:
    """Did every vertex learn exactly the bits addressed to it?"""
    for sender, vector in inputs.items():
        for target, bit in vector.items():
            if outputs_by_id.get(target, {}).get(sender) != bit:
                return False
    return True


def broadcast_lower_bound_rounds(n: int, bandwidth: int) -> int:
    """At r = 1 a vertex must reveal n - 1 independent addressed bits at b
    bits per round: ceil((n-1)/b) rounds are information-theoretically
    necessary."""
    return math.ceil((n - 1) / bandwidth)
