"""Deterministic syndrome sketching: the [MT16] tightness algorithm.

The paper closes its introduction with: *"using a deterministic sketching
technique [MT16], it is possible to obtain a deterministic O(log n)-round
BCC(1) algorithm for Connectivity for graphs with arboricity bounded by a
constant. This implies that our lower bounds are tight for uniformly
sparse graphs."* This module implements that algorithm.

Every vertex v broadcasts, **once**, a deterministic linear sketch of its
neighborhood: the power sums

    p_k(v) = sum_{u in N(v)} (ID(u) + 1)^k  mod p,   k = 0 .. 2d,

with d = 4a for arboricity bound a. Two classical facts make this work:

* a multiset of at most 2d points with vanishing moments p_0..p_{2d-1}
  is empty (Vandermonde), so a vertex whose remaining degree p_0 is at
  most d has a *uniquely decodable* neighborhood;
* the sketch is linear, so when a vertex's neighborhood is decoded, its
  edges can be *subtracted from the other endpoint's sketch locally* --
  no further communication.

Decoding uses Berlekamp-Massey on the power-sum sequence to find the
locator polynomial and trial evaluation over the n known IDs to find its
roots. The arboricity bound guarantees that iterated local peeling
(decode every vertex with remaining count <= d, subtract, repeat) always
makes progress and terminates with the full edge set at every vertex.

Communication: one burst of (2d + 1) field elements per vertex --
O(a log n) bits, i.e. **O(log n) rounds of BCC(1) for constant
arboricity**, deterministically, in KT-1. Together with the Omega(log n)
lower bound this pins Connectivity on uniformly sparse graphs at
Theta(log n).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.algorithm import NO, YES, NodeAlgorithm
from repro.core.knowledge import InitialKnowledge
from repro.algorithms.bit_codec import encode_fixed, id_bit_width
from repro.graphs.components import UnionFind

#: Field modulus: Mersenne prime 2^31 - 1 (IDs + 1 must stay below it).
PRIME = (1 << 31) - 1
FIELD_BITS = 31


def berlekamp_massey(sequence: Sequence[int], p: int = PRIME) -> List[int]:
    """Minimal LFSR connection polynomial of a sequence over GF(p).

    Returns [1, c_1, .., c_L] such that
    s_n = -(c_1 s_{n-1} + ... + c_L s_{n-L}) for all valid n.
    """
    c = [1]
    b = [1]
    L, m, bb = 0, 1, 1
    for n, s_n in enumerate(sequence):
        delta = s_n % p
        for i in range(1, L + 1):
            delta = (delta + c[i] * sequence[n - i]) % p
        if delta == 0:
            m += 1
        elif 2 * L <= n:
            t = list(c)
            coef = (delta * pow(bb, p - 2, p)) % p
            c = c + [0] * (len(b) + m - len(c)) if len(b) + m > len(c) else c
            for i, bv in enumerate(b):
                c[i + m] = (c[i + m] - coef * bv) % p
            L = n + 1 - L
            b = t
            bb = delta
            m = 1
        else:
            coef = (delta * pow(bb, p - 2, p)) % p
            if len(b) + m > len(c):
                c = c + [0] * (len(b) + m - len(c))
            for i, bv in enumerate(b):
                c[i + m] = (c[i + m] - coef * bv) % p
            m += 1
    return [x % p for x in c]


class NeighborhoodSketch:
    """Power-sum syndromes of a neighborhood (linear, exactly decodable)."""

    __slots__ = ("d", "syndromes")

    def __init__(self, d: int, syndromes: Optional[List[int]] = None):
        self.d = d
        self.syndromes = syndromes if syndromes is not None else [0] * (2 * d + 1)

    @staticmethod
    def of_neighborhood(neighbor_ids: Sequence[int], d: int) -> "NeighborhoodSketch":
        sketch = NeighborhoodSketch(d)
        for u in neighbor_ids:
            sketch.add_point(u)
        return sketch

    def add_point(self, vertex_id: int, sign: int = 1) -> None:
        x = (vertex_id + 1) % PRIME
        power = 1
        for k in range(len(self.syndromes)):
            self.syndromes[k] = (self.syndromes[k] + sign * power) % PRIME
            power = (power * x) % PRIME

    def remove_point(self, vertex_id: int) -> None:
        self.add_point(vertex_id, sign=-1)

    @property
    def count(self) -> int:
        """p_0: the number of remaining points (exact while < PRIME)."""
        return self.syndromes[0]

    def is_empty(self) -> bool:
        return all(s == 0 for s in self.syndromes)

    def decode(self, candidate_ids: Sequence[int]) -> Optional[List[int]]:
        """Recover the point set if its size is at most d; else None.

        Berlekamp-Massey on p_1..p_{2d} yields the locator; roots are
        found by trial over the candidate universe and verified against
        every syndrome.
        """
        t = self.count
        if t == 0:
            return []
        if t > self.d:
            return None
        locator = berlekamp_massey(self.syndromes[1 : 2 * self.d + 1])
        degree = len(locator) - 1
        roots: List[int] = []
        for vid in candidate_ids:
            x = (vid + 1) % PRIME
            acc = 0
            xp = 1
            # locator[0] + locator[1] x + ... == 0 at the reciprocal roots;
            # with the BM convention the characteristic poly evaluated at
            # 1/x vanishes -- equivalently sum locator[i] * x^{-i} = 0, so
            # test sum locator[i] * x^{degree - i}.
            for i, coef in enumerate(locator):
                acc = (acc + coef * pow(x, degree - i, PRIME)) % PRIME
            if acc == 0:
                roots.append(vid)
        if len(roots) != t:
            return None
        check = NeighborhoodSketch.of_neighborhood(roots, self.d)
        if check.syndromes != self.syndromes:
            return None
        return sorted(roots)

    def encode_bits(self) -> str:
        return "".join(encode_fixed(s, FIELD_BITS) for s in self.syndromes)

    @staticmethod
    def decode_bits(bits: str, d: int) -> "NeighborhoodSketch":
        expected = (2 * d + 1) * FIELD_BITS
        if len(bits) != expected:
            raise ValueError(f"expected {expected} bits, got {len(bits)}")
        syndromes = [
            int(bits[k * FIELD_BITS : (k + 1) * FIELD_BITS], 2)
            for k in range(2 * d + 1)
        ]
        return NeighborhoodSketch(d, syndromes)


def peel_sketches(
    sketches: Dict[int, NeighborhoodSketch],
    all_ids: Sequence[int],
    d: int,
    max_iterations: Optional[int] = None,
) -> Optional[Set[Tuple[int, int]]]:
    """The local peeling decoder: recover the entire edge set, or None.

    Repeatedly decodes every vertex whose remaining count is <= d,
    removes its edges from the other endpoints' sketches, and repeats.
    Succeeds on every graph of arboricity <= d/4 (more than half the
    remaining vertices are decodable each iteration).
    """
    working = {vid: NeighborhoodSketch(d, list(s.syndromes)) for vid, s in sketches.items()}
    edges: Set[Tuple[int, int]] = set()
    resolved: Set[int] = set()
    budget = max_iterations if max_iterations is not None else len(all_ids) + 1
    for _ in range(budget):
        if len(resolved) == len(working):
            return edges
        progressed = False
        for vid in sorted(working):
            if vid in resolved:
                continue
            sketch = working[vid]
            if sketch.count > d:
                continue
            neighborhood = sketch.decode(all_ids)
            if neighborhood is None:
                continue
            for u in neighborhood:
                edges.add((min(vid, u), max(vid, u)))
                working[u].remove_point(vid)
            working[vid] = NeighborhoodSketch(d)
            resolved.add(vid)
            progressed = True
        if not progressed:
            return None
    return edges if len(resolved) == len(working) else None


class MT16Connectivity(NodeAlgorithm):
    """Deterministic sketch connectivity for bounded-arboricity graphs.

    One broadcast burst of (2d + 1) * 31 bits per vertex (paced at b bits
    per round), then purely local peeling. KT-1, deterministic, and
    O(a log n) rounds at b = 1: the tightness witness of Section 1.1.
    """

    #: Output mode: "connectivity" (YES/NO) or "components" (min-ID label).
    mode = "connectivity"

    def __init__(self, arboricity: int):
        if arboricity < 1:
            raise ValueError(f"arboricity bound must be >= 1, got {arboricity}")
        self._a = arboricity
        self._d = 4 * arboricity

    def setup(self, knowledge: InitialKnowledge) -> None:
        super().setup(knowledge)
        if knowledge.kt != 1:
            raise ValueError("MT16Connectivity requires the KT-1 model")
        self._all_ids = sorted(knowledge.all_ids)
        self._payload = NeighborhoodSketch.of_neighborhood(
            sorted(knowledge.input_ports), self._d
        ).encode_bits()
        self._total_rounds = math.ceil(len(self._payload) / knowledge.bandwidth)
        self._incoming: Dict[int, List[str]] = {vid: [] for vid in self._all_ids}
        self._edges: Optional[Set[Tuple[int, int]]] = None
        self._failed = False

    def broadcast(self, round_index: int) -> str:
        if round_index > self._total_rounds:
            return ""
        b = self.knowledge.bandwidth
        return self._payload[(round_index - 1) * b : round_index * b]

    def receive(self, round_index: int, messages: Mapping[int, str]) -> None:
        if self._edges is not None or self._failed:
            return
        for sender, bits in messages.items():
            self._incoming[sender].append(bits)
        if round_index == self._total_rounds:
            self._finish()

    def _finish(self) -> None:
        sketches: Dict[int, NeighborhoodSketch] = {}
        me = self.knowledge.vertex_id
        for vid in self._all_ids:
            if vid == me:
                sketches[vid] = NeighborhoodSketch.decode_bits(self._payload, self._d)
            else:
                bits = "".join(self._incoming[vid])[: len(self._payload)]
                sketches[vid] = NeighborhoodSketch.decode_bits(bits, self._d)
        edges = peel_sketches(sketches, self._all_ids, self._d)
        if edges is None:
            self._failed = True  # arboricity promise violated
        else:
            self._edges = edges

    def finished(self) -> bool:
        return self._edges is not None or self._failed

    def _components(self) -> Optional[UnionFind]:
        if self._edges is None:
            return None
        uf = UnionFind(self._all_ids)
        for u, v in self._edges:
            uf.union(u, v)
        return uf

    def output(self):
        uf = self._components()
        if self.mode == "components":
            me = self.knowledge.vertex_id
            if uf is None:
                return me
            return min(x for x in self._all_ids if uf.connected(x, me))
        if uf is None:
            return YES
        return YES if uf.component_count() == 1 else NO


class MT16Components(MT16Connectivity):
    mode = "components"


def mt16_connectivity_factory(arboricity: int) -> Callable[[], MT16Connectivity]:
    return lambda: MT16Connectivity(arboricity)


def mt16_components_factory(arboricity: int) -> Callable[[], MT16Components]:
    return lambda: MT16Components(arboricity)


def mt16_rounds(arboricity: int, bandwidth: int = 1) -> int:
    """(2 * 4a + 1) * 31 bits paced at b bits per round: O(a log n) at
    b = 1 (the field width plays the role of the log n factor)."""
    return math.ceil((2 * 4 * arboricity + 1) * FIELD_BITS / bandwidth)
