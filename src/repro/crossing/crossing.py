"""Port-preserving crossings (Definition 3.3, Figure 1).

Given an instance I and independent directed input edges e1 = (v1, u1),
e2 = (v2, u2), the crossing I(e1, e2) replaces the input edges e1, e2 with
the network edges e1' = (v1, u2), e2' = (v2, u1) and rewires the four
network edges so that every vertex keeps exactly the same port labels and
the same set of input ports. Concretely, with

    e1(p1, q1)    e2(p2, q2)    e1'(p1', q2')    e2'(p2', q1')

in I, the crossed instance has

    e1(p1', q1')  e2(p2', q2')  e1'(p1, q2)      e2'(p2, q1).

The rewiring is what makes the crossed instance *locally identical* at time
0: each vertex sees the same ports carrying input edges as before, so by
Lemma 3.4 the instances stay indistinguishable for as long as the crossed
endpoints broadcast matching message sequences.

Crossings are a KT-0 device: in KT-1 port labels are peer IDs, so moving an
edge to a different peer necessarily changes a port label, which is exactly
why the paper needs an entirely different technique (Section 4) there.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.instance import BCCInstance
from repro.crossing.independent import DirectedEdge, are_independent
from repro.errors import InvalidCrossingError


def cross(instance: BCCInstance, e1: DirectedEdge, e2: DirectedEdge) -> BCCInstance:
    """Return the crossed instance I(e1, e2) of Definition 3.3."""
    if instance.kt != 0:
        raise InvalidCrossingError(
            "port-preserving crossings require a KT-0 instance; in KT-1 port "
            "labels are neighbor IDs and cannot be preserved under rewiring"
        )
    v1, u1 = e1
    v2, u2 = e2
    if not instance.has_input_edge(v1, u1):
        raise InvalidCrossingError(f"e1={e1} is not an input edge")
    if not instance.has_input_edge(v2, u2):
        raise InvalidCrossingError(f"e2={e2} is not an input edge")
    if not are_independent(instance, e1, e2):
        raise InvalidCrossingError(f"edges {e1} and {e2} are not independent")

    # the eight ports of Definition 3.3
    p1 = instance.port_to_peer(v1, u1)
    q1 = instance.port_to_peer(u1, v1)
    p2 = instance.port_to_peer(v2, u2)
    q2 = instance.port_to_peer(u2, v2)
    p1p = instance.port_to_peer(v1, u2)
    q2p = instance.port_to_peer(u2, v1)
    p2p = instance.port_to_peer(v2, u1)
    q1p = instance.port_to_peer(u1, v2)

    # rebuild the four vertices' port->peer maps with the swap applied
    peers: List[Dict[int, int]] = [
        dict(_peer_map(instance, v)) for v in range(instance.n)
    ]
    peers[v1][p1] = u2  # e1' = (v1, u2) now uses v1's old input port p1
    peers[v1][p1p] = u1  # e1 survives as a network edge on port p1'
    peers[u1][q1] = v2  # e2' = (v2, u1) uses u1's old input port q1
    peers[u1][q1p] = v1
    peers[v2][p2] = u1  # e2' uses v2's old input port p2
    peers[v2][p2p] = u2
    peers[u2][q2] = v1  # e1' uses u2's old input port q2
    peers[u2][q2p] = v2

    new_edges = set(instance.input_edges)
    new_edges.discard(_canonical(v1, u1))
    new_edges.discard(_canonical(v2, u2))
    new_edges.add(_canonical(v1, u2))
    new_edges.add(_canonical(v2, u1))

    return instance.replace(peers=peers, input_edges=new_edges)


def crossed_edge_sets(e1: DirectedEdge, e2: DirectedEdge) -> Tuple[Tuple[int, int], Tuple[int, int]]:
    """The two input edges created by crossing e1 and e2."""
    (v1, u1), (v2, u2) = e1, e2
    return _canonical(v1, u2), _canonical(v2, u1)


def _canonical(u: int, v: int) -> Tuple[int, int]:
    return (u, v) if u < v else (v, u)


def _peer_map(instance: BCCInstance, v: int) -> Dict[int, int]:
    return {port: instance.peer_of_port(v, port) for port in instance.port_labels(v)}
