"""Port-preserving crossings and operational indistinguishability (Section 3)."""

from repro.crossing.active import (
    active_edges,
    directed_input_edges,
    edge_label,
    edge_labels,
    label_classes,
    largest_active_pair,
    largest_label_class,
)
from repro.crossing.crossing import cross, crossed_edge_sets
from repro.crossing.independent import (
    DirectedEdge,
    are_independent,
    independent_edge_set_on_cycle,
    independent_pairs,
)
from repro.crossing.indistinguishability import (
    check_lemma_3_4,
    distinguishing_vertices,
    indistinguishable_runs,
    lemma_3_4_premise_holds,
    operational_indistinguishability_graph,
    vertex_states,
)

__all__ = [
    "DirectedEdge",
    "active_edges",
    "are_independent",
    "check_lemma_3_4",
    "cross",
    "crossed_edge_sets",
    "directed_input_edges",
    "distinguishing_vertices",
    "edge_label",
    "edge_labels",
    "independent_edge_set_on_cycle",
    "independent_pairs",
    "indistinguishable_runs",
    "label_classes",
    "largest_active_pair",
    "largest_label_class",
    "lemma_3_4_premise_holds",
    "operational_indistinguishability_graph",
    "vertex_states",
]
