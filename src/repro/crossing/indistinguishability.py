"""Operational indistinguishability of instances (Lemma 3.4).

Two KT-0 instances are indistinguishable after t rounds of an algorithm A
iff every vertex has the same *state* -- initial knowledge plus t-round
transcript -- in both executions. This module checks that property on real
simulator runs, which is how the test suite validates Lemma 3.4: if the
heads of the crossed pair broadcast the same sequence x and the tails the
same sequence y during the first t rounds, then I and I(e1, e2) must be
indistinguishable after t rounds.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.algorithm import AlgorithmFactory
from repro.core.instance import BCCInstance
from repro.core.randomness import PublicCoin
from repro.core.simulator import RunResult, Simulator
from repro.crossing.independent import DirectedEdge


def vertex_states(
    simulator: Simulator, result: RunResult, rounds: Optional[int] = None
) -> Tuple[tuple, ...]:
    """The per-vertex states (knowledge + transcript prefix) of a run."""
    coin = PublicCoin()  # knowledge comparison excludes the coin; any works
    states = []
    for v in range(result.instance.n):
        knowledge = simulator.initial_knowledge(result.instance, v, coin)
        states.append(result.state_view(v, knowledge, rounds))
    return tuple(states)


def indistinguishable_runs(
    simulator: Simulator,
    run_a: RunResult,
    run_b: RunResult,
    rounds: Optional[int] = None,
) -> bool:
    """True iff every vertex has the same state in both runs."""
    return vertex_states(simulator, run_a, rounds) == vertex_states(simulator, run_b, rounds)


def distinguishing_vertices(
    simulator: Simulator,
    run_a: RunResult,
    run_b: RunResult,
    rounds: Optional[int] = None,
) -> List[int]:
    """Vertex indices whose states differ between the two runs."""
    states_a = vertex_states(simulator, run_a, rounds)
    states_b = vertex_states(simulator, run_b, rounds)
    return [v for v, (a, b) in enumerate(zip(states_a, states_b)) if a != b]


def lemma_3_4_premise_holds(
    run: RunResult, e1: DirectedEdge, e2: DirectedEdge, rounds: Optional[int] = None
) -> bool:
    """Check the hypothesis of Lemma 3.4 on a run of the *original* instance.

    The premise: heads v1, v2 broadcast the same sequence and tails u1, u2
    broadcast the same sequence during the first t rounds.
    """
    t = run.rounds_executed if rounds is None else rounds
    (v1, u1), (v2, u2) = e1, e2
    seq = lambda v: run.transcripts[v].sent_sequence()[:t]  # noqa: E731
    return seq(v1) == seq(v2) and seq(u1) == seq(u2)


def check_lemma_3_4(
    simulator: Simulator,
    instance: BCCInstance,
    crossed: BCCInstance,
    factory: AlgorithmFactory,
    e1: DirectedEdge,
    e2: DirectedEdge,
    rounds: int,
    coin: Optional[PublicCoin] = None,
) -> Tuple[bool, bool]:
    """Run the algorithm on I and I(e1, e2) and evaluate Lemma 3.4.

    Returns ``(premise, conclusion)``: whether the matching-sequences
    premise held on the run of I, and whether the two runs were
    indistinguishable. Lemma 3.4 asserts premise -> conclusion; the tests
    check exactly that implication (and, on cycles, typically also observe
    the converse for the vertices involved).
    """
    run_a = simulator.run(instance, factory, rounds, coin=coin)
    run_b = simulator.run(crossed, factory, rounds, coin=coin)
    premise = lemma_3_4_premise_holds(run_a, e1, e2, rounds)
    conclusion = indistinguishable_runs(simulator, run_a, run_b, rounds)
    return premise, conclusion


def operational_indistinguishability_graph(
    simulator: Simulator,
    factory: AlgorithmFactory,
    n: int,
    rounds: int,
    x: Tuple[str, ...],
    y: Tuple[str, ...],
    coin: Optional[PublicCoin] = None,
    kernel: str = "auto",
):
    """G^t_{x,y} built from real runs (Definition 3.6), as a BipartiteGraph.

    A crossing-layer front door to
    :func:`repro.indist.graph_builder.build_operational_graph`: Lemma 3.4
    consumers that already live here (premise checks, distinguishing
    vertices) can ask for the full indistinguishability graph without
    importing the indist package themselves. ``kernel`` picks the batched
    vs pair-by-pair independence filter; the graph is identical either
    way. The import is deferred because ``repro.indist`` itself imports
    this package's crossing primitives.
    """
    from repro.indist.graph_builder import build_operational_graph

    return build_operational_graph(
        simulator, factory, n, rounds, x, y, coin=coin, kernel=kernel
    )
