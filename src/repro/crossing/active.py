"""Active edges and edge labels extracted from real executions.

Section 3 assigns every directed input edge (v, u) of a t-round execution a
2t-character *label* over {0, 1, ⊥}: the t characters broadcast by the head
v followed by the t characters broadcast by the tail u. The edge is
*active* with respect to strings (x, y) iff v's sent sequence is x and u's
is y. These are the quantities behind both the warm-up pigeonhole argument
(Theorem 3.5) and the constant-error indistinguishability graph
(Definition 3.6).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, List, Tuple

from repro.core.simulator import RunResult
from repro.core.transcript import sent_label
from repro.crossing.independent import DirectedEdge


def directed_input_edges(result: RunResult) -> List[DirectedEdge]:
    """Both orientations of every input edge of the executed instance."""
    out: List[DirectedEdge] = []
    for u, v in sorted(result.instance.input_edges):
        out.append((u, v))
        out.append((v, u))
    return out


def edge_label(result: RunResult, edge: DirectedEdge) -> str:
    """The 2t-character label of a directed edge (head chars then tail chars)."""
    head, tail = edge
    return sent_label(result.transcripts[head], result.transcripts[tail])


def edge_labels(result: RunResult) -> Dict[DirectedEdge, str]:
    """Labels of all directed input edges of the execution."""
    return {e: edge_label(result, e) for e in directed_input_edges(result)}


def active_edges(result: RunResult, x: Tuple[str, ...], y: Tuple[str, ...]) -> List[DirectedEdge]:
    """Directed input edges (v, u) with v's sent sequence x and u's y."""
    out: List[DirectedEdge] = []
    for v, u in directed_input_edges(result):
        if result.sent_sequence(v) == x and result.sent_sequence(u) == y:
            out.append((v, u))
    return out


def label_classes(result: RunResult) -> Dict[str, List[DirectedEdge]]:
    """Group directed input edges by their 2t-character label.

    The pigeonhole step of Theorem 3.5 lower-bounds the size of the largest
    class by (number of directed edges) / 3^{2t}.
    """
    classes: Dict[str, List[DirectedEdge]] = defaultdict(list)
    for e, lab in edge_labels(result).items():
        classes[lab].append(e)
    return dict(classes)


def largest_label_class(result: RunResult) -> Tuple[str, List[DirectedEdge]]:
    """The most common label and its directed edges."""
    classes = label_classes(result)
    best = max(classes, key=lambda lab: (len(classes[lab]), lab))
    return best, classes[best]


def largest_active_pair(result: RunResult) -> Tuple[Tuple[str, ...], Tuple[str, ...], List[DirectedEdge]]:
    """The (x, y) message-sequence pair with the most active edges.

    Returns (x, y, edges); this is the pair the proof of Theorem 3.1 picks
    ("the strings that correspond to the largest set of active edges").
    """
    counter: Counter = Counter()
    for v, u in directed_input_edges(result):
        counter[(result.sent_sequence(v), result.sent_sequence(u))] += 1
    (x, y), _count = max(counter.items(), key=lambda kv: (kv[1], repr(kv[0])))
    return x, y, active_edges(result, x, y)
