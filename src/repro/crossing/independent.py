"""Independent edge pairs (Definition 3.2).

Two *directed* input edges e1 = (v1, u1) and e2 = (v2, u2) are independent
iff v1, u1, v2, u2 are four distinct vertices and neither {v1, u2} nor
{v2, u1} is an input edge. Directions matter: on a cycle oriented
clockwise, a consistently oriented pair at circular distance >= 3 is
independent, while the reversed orientation of the same undirected pair
typically is not (one of the would-be new edges already exists).
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.core.instance import BCCInstance

#: A directed input edge as an ordered (head, tail) pair of vertex indices.
DirectedEdge = Tuple[int, int]


def are_independent(instance: BCCInstance, e1: DirectedEdge, e2: DirectedEdge) -> bool:
    """Definition 3.2 for two directed input edges of an instance."""
    v1, u1 = e1
    v2, u2 = e2
    if len({v1, u1, v2, u2}) != 4:
        return False
    if not (instance.has_input_edge(v1, u1) and instance.has_input_edge(v2, u2)):
        return False
    return not (instance.has_input_edge(v1, u2) or instance.has_input_edge(v2, u1))


def independent_pairs(instance: BCCInstance) -> Iterator[Tuple[DirectedEdge, DirectedEdge]]:
    """All unordered pairs of independent directed edges.

    Every undirected input edge is considered in both orientations; a pair
    is yielded once, with the lexicographically smaller directed edge first.
    """
    directed: List[DirectedEdge] = []
    for u, v in sorted(instance.input_edges):
        directed.append((u, v))
        directed.append((v, u))
    for i, e1 in enumerate(directed):
        for e2 in directed[i + 1 :]:
            if are_independent(instance, e1, e2):
                yield (e1, e2)


def independent_edge_set_on_cycle(n: int, spacing: int = 3) -> List[DirectedEdge]:
    """A set of floor(n/spacing) pairwise independent edges on the canonical
    n-cycle 0-1-...-(n-1)-0, all oriented clockwise.

    This realizes footnote 3 of the paper: the clockwise edges at positions
    0, 3, 6, ... are pairwise independent (any two are >= 3 apart on the
    cycle), so |S| = floor(n/3) for the default spacing.
    """
    if spacing < 3:
        raise ValueError("edges closer than 3 apart on a cycle are never independent")
    return [(i, (i + 1) % n) for i in range(0, n - spacing + 1, spacing)][: n // spacing]
