"""Polygamous Hall's Theorem (Theorem 2.1) and k-matchings.

A *k-matching* of a bipartite graph G = (L, R, E) is a collection of
disjoint k-stars: a set A of left vertices, each assigned k distinct right
neighbors, with assignments disjoint across left vertices. Theorem 2.1
states that if |N(S)| >= k|S| for every S subseteq L then G has a
k-matching of size |L|.

The constructive content of the paper's proof -- clone every left vertex k
times and apply ordinary Hall / maximum matching -- is implemented here
directly: :func:`k_matching` builds the cloned graph and runs
Hopcroft-Karp, so when the Hall condition holds the returned k-matching
saturates L, and when it fails the deficiency is reported.

Engine note (PR 5): under ``kernel="packed"`` (the ``auto`` default)
the clones are never materialized -- the bitset engine
(:func:`repro.kernels.bitset_matching.k_matching_bitset`) runs on
``k * |L|`` *virtual* left nodes that share one adjacency mask per
original vertex. ``kernel="reference"`` keeps the explicit
:func:`cloned_graph` construction. Both produce maximum k-matchings of
identical size (the quantity every downstream Hall/saturation check
consumes).
"""

from __future__ import annotations

import random
from itertools import combinations
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.indist.matching import BipartiteGraph, hopcroft_karp
from repro.kernels import k_matching_bitset, resolve_kernel


def cloned_graph(graph: BipartiteGraph, k: int) -> BipartiteGraph:
    """The graph with k clones of every left vertex (proof of Theorem 2.1)."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    cloned = BipartiteGraph()
    for v in graph.iter_left():
        for i in range(k):
            cloned.add_left((v, i))
            for r in graph.iter_neighbors(v):
                cloned.add_edge((v, i), r)
    for r in graph.iter_right():
        cloned.add_right(r)
    return cloned


def k_matching(
    graph: BipartiteGraph, k: int, kernel: str = "auto"
) -> Dict[Hashable, Tuple[Hashable, ...]]:
    """A maximum k-matching, as a map left vertex -> assigned right vertices.

    Only left vertices that received all k partners appear in the result
    (partial stars are discarded, matching the paper's definition in which
    every star has exactly k leaves). ``kernel`` picks the engine; see
    the module docstring.
    """
    if resolve_kernel(kernel) == "packed":
        return k_matching_bitset(graph, k)
    matching = hopcroft_karp(cloned_graph(graph, k), kernel="reference")
    stars: Dict[Hashable, List[Hashable]] = {}
    for (v, _i), r in matching.items():
        stars.setdefault(v, []).append(r)
    return {v: tuple(sorted(rs, key=repr)) for v, rs in stars.items() if len(rs) == k}


def k_matching_size(graph: BipartiteGraph, k: int, kernel: str = "auto") -> int:
    """The size (number of k-stars) of a maximum k-matching."""
    return len(k_matching(graph, k, kernel=kernel))


def saturates(graph: BipartiteGraph, k: int, kernel: str = "auto") -> bool:
    """True iff a k-matching of size |L| exists."""
    return k_matching_size(graph, k, kernel=kernel) == graph.left_count()


def max_saturating_k(graph: BipartiteGraph, kernel: str = "auto") -> int:
    """The largest k with a k-matching of size |L| (0 if even k=1 fails)."""
    if not graph.left_count():
        return 0
    k = 0
    while saturates(graph, k + 1, kernel=kernel):
        k += 1
        if k > graph.right_count():
            break
    return k


def hall_condition_violations(
    graph: BipartiteGraph,
    k: int,
    subsets: Iterable[Sequence[Hashable]],
) -> List[Tuple[Tuple[Hashable, ...], int]]:
    """Subsets S with |N(S)| < k|S|, reported as (S, |N(S)|)."""
    violations = []
    for subset in subsets:
        hood = graph.neighborhood(subset)
        if len(hood) < k * len(subset):
            violations.append((tuple(subset), len(hood)))
    return violations


def all_subsets_satisfy_hall(graph: BipartiteGraph, k: int) -> bool:
    """Exhaustive Hall check; only feasible for small |L| (<= ~18)."""
    left = sorted(graph.iter_left(), key=repr)
    if len(left) > 20:
        raise ValueError(f"exhaustive Hall check infeasible for |L|={len(left)}")
    for size in range(1, len(left) + 1):
        for subset in combinations(left, size):
            if len(graph.neighborhood(subset)) < k * size:
                return False
    return True


def sampled_hall_check(
    graph: BipartiteGraph,
    k: int,
    rng: random.Random,
    samples: int = 200,
    max_subset: Optional[int] = None,
) -> List[Tuple[Tuple[Hashable, ...], int]]:
    """Randomized Hall check over sampled subsets; returns violations found.

    An empty return does not *prove* the Hall condition, but Theorem 2.1's
    hypothesis is about all subsets and large instance spaces force
    sampling; the exhaustive check covers small cases in the tests.
    """
    left = sorted(graph.iter_left(), key=repr)
    if not left:
        return []
    cap = max_subset if max_subset is not None else len(left)
    subsets = []
    for _ in range(samples):
        size = rng.randint(1, max(1, cap))
        subsets.append(rng.sample(left, min(size, len(left))))
    return hall_condition_violations(graph, k, subsets)


def is_valid_k_matching(
    graph: BipartiteGraph, k: int, stars: Dict[Hashable, Tuple[Hashable, ...]]
) -> bool:
    """Validate a k-matching: k distinct neighbors per star, disjoint stars."""
    used: Set[Hashable] = set()
    for v, rights in stars.items():
        if len(rights) != k or len(set(rights)) != k:
            return False
        nbrs = graph.iter_neighbors(v)
        for r in rights:
            if r not in nbrs or r in used:
                return False
            used.add(r)
    return True
