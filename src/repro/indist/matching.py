"""Maximum bipartite matching via Hopcroft-Karp, from scratch.

The polygamous-Hall machinery (Theorem 2.1) reduces k-matchings to ordinary
bipartite matchings on a graph with k clones of every left vertex; this
module supplies the matching engine. Left and right vertices are arbitrary
hashable objects.

Two engines sit behind :func:`hopcroft_karp`:

* ``reference`` -- the original dict-of-set implementation below,
  operating directly on hashable vertices;
* ``packed`` (the ``auto`` default) -- the integer-indexed bitset
  engine of :mod:`repro.kernels.bitset_matching`, which compiles the
  graph once and walks big-int adjacency masks.

Both always return a *valid maximum* matching of identical size; the
specific edges may differ between engines (maximum matchings are not
unique, and no caller in this repo depends on which one is found --
pinned by ``tests/kernels/test_bitset_matching.py``).

The copying accessors (``left``/``right``/``neighbors``) hand external
callers defensive copies, as before. Hot loops -- both engines, plus
Hall-condition checks -- use the non-copying ``iter_*`` /
``left_count``-style paths added in PR 5 so that a BFS visit no longer
allocates a fresh set per vertex.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, Iterator, List, Mapping, Optional, Set

from repro.kernels import hopcroft_karp_bitset, resolve_kernel
from repro.obs.spans import span

INF = float("inf")

#: Shared empty neighborhood for vertices with no edges (never mutated).
_EMPTY: frozenset = frozenset()


class BipartiteGraph:
    """An explicit bipartite graph with adjacency from the left side."""

    __slots__ = ("_left", "_right", "_adj")

    def __init__(self) -> None:
        self._left: Set[Hashable] = set()
        self._right: Set[Hashable] = set()
        self._adj: Dict[Hashable, Set[Hashable]] = {}

    def add_left(self, v: Hashable) -> None:
        self._left.add(v)
        self._adj.setdefault(v, set())

    def add_right(self, v: Hashable) -> None:
        self._right.add(v)

    def add_edge(self, left: Hashable, right: Hashable) -> None:
        self.add_left(left)
        self.add_right(right)
        self._adj[left].add(right)

    @property
    def left(self) -> Set[Hashable]:
        """A defensive *copy* of the left vertex set (external callers)."""
        return set(self._left)

    @property
    def right(self) -> Set[Hashable]:
        """A defensive *copy* of the right vertex set (external callers)."""
        return set(self._right)

    def neighbors(self, left: Hashable) -> Set[Hashable]:
        """A defensive *copy* of N(left) (external callers)."""
        return set(self._adj.get(left, set()))

    # -- non-copying paths (hot loops; do NOT mutate what they yield) --

    def iter_left(self) -> Iterator[Hashable]:
        """Iterate left vertices without copying the set."""
        return iter(self._left)

    def iter_right(self) -> Iterator[Hashable]:
        """Iterate right vertices without copying the set."""
        return iter(self._right)

    def iter_neighbors(self, left: Hashable) -> Iterable[Hashable]:
        """N(left) by reference -- no copy. Treat as read-only."""
        return self._adj.get(left, _EMPTY)

    def left_count(self) -> int:
        return len(self._left)

    def right_count(self) -> int:
        return len(self._right)

    def neighborhood(self, subset: Iterable[Hashable]) -> Set[Hashable]:
        """N(S) for a set of left vertices."""
        out: Set[Hashable] = set()
        for v in subset:
            out |= self._adj.get(v, set())
        return out

    def degree(self, left: Hashable) -> int:
        return len(self._adj.get(left, set()))

    def edge_count(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj.values())

    def __repr__(self) -> str:
        return (
            f"BipartiteGraph(|L|={len(self._left)}, |R|={len(self._right)}, "
            f"m={self.edge_count()})"
        )


def hopcroft_karp(
    graph: BipartiteGraph, kernel: str = "auto"
) -> Dict[Hashable, Hashable]:
    """Maximum matching; returns a left-vertex -> right-vertex map.

    ``kernel`` selects the engine: ``packed`` (the ``auto`` default)
    compiles the graph to the integer bitset engine of
    :mod:`repro.kernels.bitset_matching`; ``reference`` keeps the
    original dict-of-set implementation. Both return valid maximum
    matchings of identical size.
    """
    engine = resolve_kernel(kernel)
    with span(
        "indist.hopcroft_karp",
        left=graph.left_count(),
        right=graph.right_count(),
        edges=graph.edge_count(),
        engine=engine,
    ):
        if engine == "packed":
            return hopcroft_karp_bitset(graph)
        return _hopcroft_karp_impl(graph)


def _hopcroft_karp_impl(graph: BipartiteGraph) -> Dict[Hashable, Hashable]:
    left = sorted(graph.iter_left(), key=repr)
    match_l: Dict[Hashable, Optional[Hashable]] = {v: None for v in left}
    match_r: Dict[Hashable, Optional[Hashable]] = {}

    def bfs() -> bool:
        dist: Dict[Hashable, float] = {}
        queue: deque = deque()
        for v in left:
            if match_l[v] is None:
                dist[v] = 0
                queue.append(v)
            else:
                dist[v] = INF
        found = False
        while queue:
            v = queue.popleft()
            for r in graph.iter_neighbors(v):
                nxt = match_r.get(r)
                if nxt is None:
                    found = True
                elif dist.get(nxt, INF) == INF:
                    dist[nxt] = dist[v] + 1
                    queue.append(nxt)
        bfs.dist = dist  # type: ignore[attr-defined]
        return found

    def dfs(v: Hashable) -> bool:
        dist = bfs.dist  # type: ignore[attr-defined]
        for r in graph.iter_neighbors(v):
            nxt = match_r.get(r)
            if nxt is None or (dist.get(nxt, INF) == dist[v] + 1 and dfs(nxt)):
                match_l[v] = r
                match_r[r] = v
                return True
        dist[v] = INF
        return False

    while bfs():
        for v in left:
            if match_l[v] is None:
                dfs(v)
    return {v: r for v, r in match_l.items() if r is not None}


def maximum_matching_size(graph: BipartiteGraph, kernel: str = "auto") -> int:
    """Size of a maximum matching (identical under every kernel)."""
    return len(hopcroft_karp(graph, kernel=kernel))


def is_valid_matching(graph: BipartiteGraph, matching: Mapping[Hashable, Hashable]) -> bool:
    """Check that a left->right map is a matching along edges of the graph."""
    rights = list(matching.values())
    if len(set(rights)) != len(rights):
        return False
    return all(r in graph.iter_neighbors(v) for v, r in matching.items())
