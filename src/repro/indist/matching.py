"""Maximum bipartite matching via Hopcroft-Karp, from scratch.

The polygamous-Hall machinery (Theorem 2.1) reduces k-matchings to ordinary
bipartite matchings on a graph with k clones of every left vertex; this
module supplies the matching engine. Left and right vertices are arbitrary
hashable objects.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Set

from repro.obs.spans import span

INF = float("inf")


class BipartiteGraph:
    """An explicit bipartite graph with adjacency from the left side."""

    __slots__ = ("_left", "_right", "_adj")

    def __init__(self) -> None:
        self._left: Set[Hashable] = set()
        self._right: Set[Hashable] = set()
        self._adj: Dict[Hashable, Set[Hashable]] = {}

    def add_left(self, v: Hashable) -> None:
        self._left.add(v)
        self._adj.setdefault(v, set())

    def add_right(self, v: Hashable) -> None:
        self._right.add(v)

    def add_edge(self, left: Hashable, right: Hashable) -> None:
        self.add_left(left)
        self.add_right(right)
        self._adj[left].add(right)

    @property
    def left(self) -> Set[Hashable]:
        return set(self._left)

    @property
    def right(self) -> Set[Hashable]:
        return set(self._right)

    def neighbors(self, left: Hashable) -> Set[Hashable]:
        return set(self._adj.get(left, set()))

    def neighborhood(self, subset: Iterable[Hashable]) -> Set[Hashable]:
        """N(S) for a set of left vertices."""
        out: Set[Hashable] = set()
        for v in subset:
            out |= self._adj.get(v, set())
        return out

    def degree(self, left: Hashable) -> int:
        return len(self._adj.get(left, set()))

    def edge_count(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj.values())

    def __repr__(self) -> str:
        return (
            f"BipartiteGraph(|L|={len(self._left)}, |R|={len(self._right)}, "
            f"m={self.edge_count()})"
        )


def hopcroft_karp(graph: BipartiteGraph) -> Dict[Hashable, Hashable]:
    """Maximum matching; returns a left-vertex -> right-vertex map."""
    with span(
        "indist.hopcroft_karp",
        left=len(graph.left),
        right=len(graph.right),
        edges=graph.edge_count(),
    ):
        return _hopcroft_karp_impl(graph)


def _hopcroft_karp_impl(graph: BipartiteGraph) -> Dict[Hashable, Hashable]:
    left = sorted(graph.left, key=repr)
    match_l: Dict[Hashable, Optional[Hashable]] = {v: None for v in left}
    match_r: Dict[Hashable, Optional[Hashable]] = {}

    def bfs() -> bool:
        dist: Dict[Hashable, float] = {}
        queue: deque = deque()
        for v in left:
            if match_l[v] is None:
                dist[v] = 0
                queue.append(v)
            else:
                dist[v] = INF
        found = False
        while queue:
            v = queue.popleft()
            for r in graph.neighbors(v):
                nxt = match_r.get(r)
                if nxt is None:
                    found = True
                elif dist.get(nxt, INF) == INF:
                    dist[nxt] = dist[v] + 1
                    queue.append(nxt)
        bfs.dist = dist  # type: ignore[attr-defined]
        return found

    def dfs(v: Hashable) -> bool:
        dist = bfs.dist  # type: ignore[attr-defined]
        for r in graph.neighbors(v):
            nxt = match_r.get(r)
            if nxt is None or (dist.get(nxt, INF) == dist[v] + 1 and dfs(nxt)):
                match_l[v] = r
                match_r[r] = v
                return True
        dist[v] = INF
        return False

    while bfs():
        for v in left:
            if match_l[v] is None:
                dfs(v)
    return {v: r for v, r in match_l.items() if r is not None}


def maximum_matching_size(graph: BipartiteGraph) -> int:
    """Size of a maximum matching."""
    return len(hopcroft_karp(graph))


def is_valid_matching(graph: BipartiteGraph, matching: Mapping[Hashable, Hashable]) -> bool:
    """Check that a left->right map is a matching along edges of the graph."""
    rights = list(matching.values())
    if len(set(rights)) != len(rights):
        return False
    return all(r in graph.neighbors(v) for v, r in matching.items())
