"""Degree statistics of the indistinguishability graph (Lemmas 3.7-3.9).

The counting lemmas of Section 3.1 concern the t = 0 graph G^0:

* Lemma 3.7: a one-cycle instance with d active edges has, for every
  3 <= i <= d/2, on the order of d neighbors whose own degree is on the
  order of i * (d - i) (the two-cycle instances with split i).
* Lemma 3.8: the Hall-style expansion |N(S)| >= |S| * Theta(log d).
* Lemma 3.9: |V2| = |V1| * Theta(log n).

This module measures all three exactly on enumerated instance spaces and
also evaluates the closed-form predictions, so benchmarks can print
paper-vs-measured side by side. Measured degrees are reported as-is; note
that an unordered two-cycle cover admits *two* orientation-variants of each
cross-cycle crossing, so measured two-cycle degrees are 2 * i * (n - i)
where the paper's orientation-fixed accounting says i * (n - i) -- a
constant factor that cancels everywhere in the Theta() statements.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.instances.enumeration import (
    CycleCover,
    count_one_cycle_covers,
    count_two_cycle_covers,
    count_two_cycle_covers_with_split,
)
from repro.indist.graph_builder import crossing_neighbors, one_cycle_two_cycle_neighbors
from repro.indist.matching import BipartiteGraph


def one_cycle_degree(n: int) -> int:
    """Exact degree of a one-cycle cover in G^0: n(n-5)/2.

    For each of the n input edges, the partners that survive Definition 3.2
    are the edges at circular distance >= 3 *in both directions*: crossing
    with a distance-2 edge would create an edge that already exists. That
    leaves n - 5 partners per edge (excluding itself, the two adjacent
    edges, and the two distance-2 edges), i.e. n(n-5)/2 unordered pairs.
    The paper's Lemma 3.9 quotes n(n-3)/2, which skips the distance-2
    exclusion; the difference is an additive O(n) that vanishes in every
    Theta() statement, and the enumeration tests pin the exact value.
    """
    return n * (n - 5) // 2


def measured_one_cycle_degree(cover: CycleCover) -> int:
    """Measured number of two-cycle crossing neighbors of a one-cycle cover."""
    return len(one_cycle_two_cycle_neighbors(cover))


def two_cycle_degree(n: int, i: int) -> int:
    """Measured-model degree of a two-cycle cover with split i: 2 i (n - i).

    Crossing one edge from each cycle merges them; each unordered pair of
    undirected edges admits two orientation variants, both yielding (and
    generally distinct) one-cycle covers.
    """
    return 2 * i * (n - i)


def measured_two_cycle_degree(cover: CycleCover) -> int:
    """Measured number of one-cycle crossing neighbors of a two-cycle cover."""
    return sum(1 for c in crossing_neighbors(cover) if c.num_cycles == 1)


def one_cycle_neighbor_split_counts(cover: CycleCover) -> Dict[int, int]:
    """Lemma 3.7 profile: #two-cycle neighbors per smaller-cycle length i.

    The paper predicts n neighbors for each 3 <= i < n/2 and n/2 for
    i = n/2 (when n is even).
    """
    counts: Dict[int, int] = {}
    for nbr in one_cycle_two_cycle_neighbors(cover):
        i = nbr.cycle_lengths()[0]
        counts[i] = counts.get(i, 0) + 1
    return counts


def predicted_split_counts(n: int) -> Dict[int, int]:
    """Lemma 3.9's per-split neighbor counts of a one-cycle instance."""
    counts = {}
    for i in range(3, n // 2 + 1):
        if n - i < 3:
            continue
        counts[i] = n // 2 if 2 * i == n else n
    return counts


def split_population_bound(n: int, i: int) -> float:
    """Lemma 3.9's bound |T_i| <= |V1| * n / (i (n - i))."""
    return count_one_cycle_covers(n) * n / (i * (n - i))


def measured_split_population(n: int, i: int) -> int:
    """Exact |T_i| from the closed-form count."""
    return count_two_cycle_covers_with_split(n, i)


def harmonic(k: int) -> float:
    """The k-th harmonic number H_k."""
    return sum(1.0 / j for j in range(1, k + 1))


def predicted_v2_v1_ratio(n: int) -> float:
    """Exact closed-form |V2| / |V1| = sum_{i} n / (2 i (n - i)), halving
    the i = n/2 term; asymptotically (1/2) ln n + O(1) (Lemma 3.9)."""
    total = 0.0
    for i in range(3, n // 2 + 1):
        if n - i < 3:
            continue
        term = n / (2.0 * i * (n - i))
        if 2 * i == n:
            term /= 2.0
        total += term
    return total


def lemma_3_9_table(ns: List[int]) -> List[Tuple[int, int, int, float, float]]:
    """Rows (n, |V1|, |V2|, ratio, (1/2) ln n) for the Lemma 3.9 benchmark."""
    rows = []
    for n in ns:
        v1 = count_one_cycle_covers(n)
        v2 = count_two_cycle_covers(n)
        rows.append((n, v1, v2, v2 / v1, 0.5 * math.log(n)))
    return rows


def hall_expansion_curve(graph: BipartiteGraph, sizes: List[int], rng) -> List[Tuple[int, float]]:
    """Measured min |N(S)| / |S| over sampled S of each size (Lemma 3.8)."""
    left = sorted(graph.iter_left(), key=repr)
    rows = []
    for size in sizes:
        if size > len(left):
            continue
        worst = float("inf")
        for _ in range(30):
            subset = rng.sample(left, size)
            worst = min(worst, len(graph.neighborhood(subset)) / size)
        rows.append((size, worst))
    return rows
