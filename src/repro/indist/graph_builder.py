"""Construction of indistinguishability graphs (Definition 3.6).

The indistinguishability graph G^t_{x,y} is bipartite: left vertices are
the one-cycle instances V1, right vertices the two-cycle instances V2, and
{I1, I2} is an edge iff I2 = I1(e1, e2) for some pair of *active*
independent directed edges of I1 (active = head broadcasts x, tail
broadcasts y over the first t rounds).

Two builders are provided.

* :func:`build_combinatorial_graph` constructs G^0 (t = 0, empty strings,
  every directed edge active) purely combinatorially on cycle covers.
  This is the graph behind the counting lemmas 3.7-3.9.
* :func:`build_operational_graph` constructs G^t_{x,y} for an actual
  algorithm by running the simulator on a canonically wired instance of
  every one-cycle cover and reading activity off the transcripts.

Instances are identified with their input-graph structure
(:class:`~repro.instances.enumeration.CycleCover`); the paper's crossing
travels the port wiring along with the input edges, so crossing-reachable
instances are in bijection with crossing-reachable covers.

Engine note (PR 5): the O(active^2) independence filter at the heart of
every builder has a batched engine
(:func:`repro.kernels.crossing_batch.valid_crossing_pairs`) that scores
all candidate pairs of a cover in one numpy block; ``kernel="packed"``
(the ``auto`` default) uses it, ``kernel="reference"`` keeps the
pair-by-pair :func:`cross_cover` loop. Both apply the exact same three
conditions, so the produced neighbor sets -- and therefore the graphs
-- are equal element for element under every kernel (pinned by
``tests/kernels/test_crossing_batch.py``).
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.algorithm import AlgorithmFactory
from repro.core.instance import BCCInstance
from repro.core.randomness import PublicCoin
from repro.core.simulator import Simulator
from repro.crossing.active import active_edges, directed_input_edges
from repro.crossing.independent import DirectedEdge
from repro.graphs.graph import Graph
from repro.instances.enumeration import (
    CycleCover,
    enumerate_one_cycle_covers,
    enumerate_two_cycle_covers,
)
from repro.indist.matching import BipartiteGraph
from repro.kernels import resolve_kernel, valid_crossing_pairs
from repro.obs.spans import span

UEdge = Tuple[int, int]


def _edge(u: int, v: int) -> UEdge:
    return (u, v) if u < v else (v, u)


def cover_from_edges(n: int, edges: Iterable[UEdge]) -> CycleCover:
    """Reconstruct a CycleCover from a 2-regular edge set."""
    g = Graph(range(n), edges)
    cycles = tuple(tuple(c) for c in g.cycle_decomposition())
    return CycleCover.from_cycles(n, cycles)


def cross_cover(
    cover: CycleCover, e1: DirectedEdge, e2: DirectedEdge
) -> Optional[CycleCover]:
    """The cover obtained by crossing directed edges e1, e2, or None.

    Returns None when the pair is not independent in the sense of
    Definition 3.2 (shared endpoints, or a would-be new edge already
    present).
    """
    (v1, u1), (v2, u2) = e1, e2
    if len({v1, u1, v2, u2}) != 4:
        return None
    edges = cover.edges
    if _edge(v1, u1) not in edges or _edge(v2, u2) not in edges:
        return None
    new1, new2 = _edge(v1, u2), _edge(v2, u1)
    if new1 in edges or new2 in edges:
        return None
    crossed = (edges - {_edge(v1, u1), _edge(v2, u2)}) | {new1, new2}
    return cover_from_edges(cover.n, crossed)


def _crossed_cover(cover: CycleCover, e1: DirectedEdge, e2: DirectedEdge) -> CycleCover:
    """The crossed cover of a pair already known to be independent.

    The construction tail of :func:`cross_cover`, skipping the validity
    checks -- used by the packed path after the batched filter.
    """
    (v1, u1), (v2, u2) = e1, e2
    crossed = (cover.edges - {_edge(v1, u1), _edge(v2, u2)}) | {
        _edge(v1, u2),
        _edge(v2, u1),
    }
    return cover_from_edges(cover.n, crossed)


def crossing_neighbors(
    cover: CycleCover,
    active: Optional[Sequence[DirectedEdge]] = None,
    kernel: str = "auto",
) -> Set[CycleCover]:
    """All covers reachable from ``cover`` by one crossing.

    ``active`` restricts the crossable directed edges (Definition 3.6);
    by default every directed orientation of every input edge is active,
    which is the t = 0 situation. ``kernel`` picks the independence
    filter (batched vs pair-by-pair); the result set is identical.
    """
    if active is None:
        active = []
        for u, v in sorted(cover.edges):
            active.append((u, v))
            active.append((v, u))
    if resolve_kernel(kernel) == "packed":
        pairs = valid_crossing_pairs(cover.n, cover.edges, active)
        return {_crossed_cover(cover, e1, e2) for e1, e2 in pairs}
    out: Set[CycleCover] = set()
    for e1, e2 in combinations(active, 2):
        crossed = cross_cover(cover, e1, e2)
        if crossed is not None:
            out.add(crossed)
    return out


def one_cycle_two_cycle_neighbors(
    cover: CycleCover,
    active: Optional[Sequence[DirectedEdge]] = None,
    kernel: str = "auto",
) -> Set[CycleCover]:
    """Crossing neighbors of a one-cycle cover that are two-cycle covers."""
    return {
        c
        for c in crossing_neighbors(cover, active, kernel=kernel)
        if c.num_cycles == 2
    }


def build_combinatorial_graph(n: int, kernel: str = "auto") -> BipartiteGraph:
    """G^0: every directed input edge active (t = 0, empty message strings).

    Left vertices: all (n-1)!/2 one-cycle covers. Right vertices: all
    two-cycle covers (every two-cycle cover arises as a crossing of some
    one-cycle cover, so the right side is fully populated by construction;
    the tests verify it against the closed-form |V2| count).
    """
    engine = resolve_kernel(kernel)
    with span("indist.build_graph", n=n, kind="combinatorial", engine=engine):
        graph = BipartiteGraph()
        for one in enumerate_one_cycle_covers(n):
            graph.add_left(one)
            for two in one_cycle_two_cycle_neighbors(one, kernel=kernel):
                graph.add_edge(one, two)
        return graph


def build_operational_graph(
    simulator: Simulator,
    factory: AlgorithmFactory,
    n: int,
    rounds: int,
    x: Tuple[str, ...],
    y: Tuple[str, ...],
    coin: Optional[PublicCoin] = None,
    kernel: str = "auto",
) -> BipartiteGraph:
    """G^t_{x,y} for a concrete algorithm (Definition 3.6), on canonical
    rotation-wired KT-0 instances of every one-cycle cover.

    The right side is restricted to two-cycle covers actually reachable by
    an active crossing; isolated two-cycle covers carry no constraint in
    the lower-bound argument.
    """
    engine = resolve_kernel(kernel)
    with span(
        "indist.build_graph", n=n, kind="operational", rounds=rounds, engine=engine
    ):
        graph = BipartiteGraph()
        for one in enumerate_one_cycle_covers(n):
            graph.add_left(one)
            instance = BCCInstance.kt0_from_graph(one.to_graph())
            result = simulator.run(instance, factory, rounds, coin=coin)
            act = active_edges(result, x, y)
            for two in one_cycle_two_cycle_neighbors(one, act, kernel=kernel):
                graph.add_edge(one, two)
        return graph


def all_two_cycle_covers_present(graph: BipartiteGraph, n: int) -> bool:
    """Sanity check: the right side of G^0 is all of V2."""
    expected = set(enumerate_two_cycle_covers(n))
    return graph.right == expected
