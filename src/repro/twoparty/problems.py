"""The 2-party problems of Section 4: Partition, TwoPartition, PartitionComp.

* **Partition** [HMT88]: Alice holds a set partition P_A of [n], Bob holds
  P_B; output 1 iff P_A ∨ P_B = 1 (the trivial one-block partition).
* **TwoPartition** (Section 4.1): the promise restriction where every block
  of both inputs has exactly two elements.
* **PartitionComp** (Section 4.4): same inputs, but both parties must
  output the join P_A ∨ P_B itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

from repro.partitions.set_partition import SetPartition, joins_to_top


@dataclass(frozen=True)
class PartitionProblem:
    """Decision: is P_A ∨ P_B the trivial partition?"""

    n: int
    name: str = "Partition"

    def valid_input(self, pa: SetPartition, pb: SetPartition) -> bool:
        return pa.n == self.n and pb.n == self.n

    def answer(self, pa: SetPartition, pb: SetPartition) -> int:
        return 1 if joins_to_top(pa, pb) else 0


@dataclass(frozen=True)
class TwoPartitionProblem:
    """Partition restricted to perfect-matching inputs (even n)."""

    n: int
    name: str = "TwoPartition"

    def __post_init__(self) -> None:
        if self.n % 2 != 0:
            raise ValueError(f"TwoPartition needs an even ground set, got n={self.n}")

    def valid_input(self, pa: SetPartition, pb: SetPartition) -> bool:
        return (
            pa.n == self.n
            and pb.n == self.n
            and pa.is_perfect_matching()
            and pb.is_perfect_matching()
        )

    def answer(self, pa: SetPartition, pb: SetPartition) -> int:
        return 1 if joins_to_top(pa, pb) else 0


@dataclass(frozen=True)
class PartitionCompProblem:
    """Search: output the join P_A ∨ P_B itself."""

    n: int
    name: str = "PartitionComp"

    def valid_input(self, pa: SetPartition, pb: SetPartition) -> bool:
        return pa.n == self.n and pb.n == self.n

    def answer(self, pa: SetPartition, pb: SetPartition) -> SetPartition:
        return pa.join(pb)

    def correct(self, pa: SetPartition, pb: SetPartition, output: Any) -> bool:
        return output == self.answer(pa, pb)
