"""Trivial upper-bound protocols for Partition and PartitionComp.

Section 4 opens with the matching upper bound: "Alice sends all the
connected components induced by E_A to Bob", i.e. Alice ships her whole
partition, Bob joins locally -- O(n log n) bits. Together with
Corollary 2.4 this pins the deterministic communication complexity of
Partition at Theta(n log n).
"""

from __future__ import annotations

import math
from typing import Any, List, Optional

from repro.algorithms.bit_codec import decode_fixed, encode_fixed
from repro.partitions.set_partition import SetPartition, joins_to_top
from repro.twoparty.protocol import ALICE, BOB, TwoPartyProtocol, Turn


def rgs_bit_width(n: int) -> int:
    """Bits per RGS entry: block labels are < n."""
    return max(1, math.ceil(math.log2(max(2, n))))


def encode_partition(p: SetPartition) -> str:
    """Fixed-width encoding of a partition via its RGS: n * ceil(log n) bits."""
    w = rgs_bit_width(p.n)
    return "".join(encode_fixed(label, w) for label in p.rgs())


def decode_partition(n: int, bits: str) -> SetPartition:
    """Inverse of :func:`encode_partition`."""
    w = rgs_bit_width(n)
    if len(bits) != n * w:
        raise ValueError(f"expected {n * w} bits, got {len(bits)}")
    rgs = [decode_fixed(bits[i * w : (i + 1) * w]) for i in range(n)]
    return SetPartition.from_rgs(rgs)


class TrivialPartitionProtocol(TwoPartyProtocol):
    """Alice sends P_A verbatim; Bob answers the Partition decision.

    Communication: n * ceil(log2 n) + 1 bits -- the O(n log n) upper bound
    the rank bound of Corollary 2.4 is tight against.
    """

    def __init__(self, n: int):
        self.n = n

    def next_speaker(self, turns: List[Turn]) -> Optional[str]:
        return [ALICE, BOB, None][len(turns)] if len(turns) < 3 else None

    def message(self, speaker: str, own_input: SetPartition, turns: List[Turn]) -> str:
        if speaker == ALICE:
            return encode_partition(own_input)
        pa = decode_partition(self.n, turns[0].bits)
        return "1" if joins_to_top(pa, own_input) else "0"

    def alice_output(self, alice_input: SetPartition, turns: List[Turn]) -> int:
        return 1 if turns[1].bits == "1" else 0

    def bob_output(self, bob_input: SetPartition, turns: List[Turn]) -> int:
        pa = decode_partition(self.n, turns[0].bits)
        return 1 if joins_to_top(pa, bob_input) else 0


class TrivialPartitionCompProtocol(TwoPartyProtocol):
    """Alice sends P_A; Bob sends back the join. Both output P_A ∨ P_B.

    Communication: 2 n ceil(log n) bits = Theta(n log n), matching the
    information-theoretic lower bound of Theorem 4.5.
    """

    def __init__(self, n: int):
        self.n = n

    def next_speaker(self, turns: List[Turn]) -> Optional[str]:
        return [ALICE, BOB][len(turns)] if len(turns) < 2 else None

    def message(self, speaker: str, own_input: SetPartition, turns: List[Turn]) -> str:
        if speaker == ALICE:
            return encode_partition(own_input)
        pa = decode_partition(self.n, turns[0].bits)
        return encode_partition(pa.join(own_input))

    def alice_output(self, alice_input: SetPartition, turns: List[Turn]) -> SetPartition:
        return decode_partition(self.n, turns[1].bits)

    def bob_output(self, bob_input: SetPartition, turns: List[Turn]) -> SetPartition:
        pa = decode_partition(self.n, turns[0].bits)
        return pa.join(bob_input)


class LossyPartitionCompProtocol(TrivialPartitionCompProtocol):
    """A deliberately erring PartitionComp protocol for the Theorem 4.5
    experiments: on a fixed fraction of Alice's inputs (selected by a hash
    of the input) Alice sends a fixed garbage partition instead of P_A.

    This realizes the "-error protocol weighted by the hard distribution"
    whose mutual information the information-theoretic argument still
    forces to be (1 - eps) * H(P_A) - ish.
    """

    def __init__(self, n: int, error_rate: float):
        super().__init__(n)
        if not 0 <= error_rate < 1:
            raise ValueError(f"error_rate must be in [0, 1), got {error_rate}")
        self.error_rate = error_rate

    def _corrupted(self, p: SetPartition) -> bool:
        import hashlib

        digest = hashlib.sha256(repr(p).encode()).digest()
        return (int.from_bytes(digest[:8], "big") / 2**64) < self.error_rate

    def message(self, speaker: str, own_input: SetPartition, turns: List[Turn]) -> str:
        if speaker == ALICE and self._corrupted(own_input):
            return encode_partition(SetPartition.finest(self.n))
        return super().message(speaker, own_input, turns)
