"""Combinatorial rectangles: the structure behind the rank bound.

The deterministic communication lower bounds the paper invokes
(Corollaries 2.4 / 4.2 via [KN97] Lemma 1.28) rest on the fundamental
fact that a c-bit deterministic protocol partitions the input matrix into
at most 2^c *monochromatic combinatorial rectangles* -- transcript classes
of the form A x B. This module makes that fact checkable on the library's
actual protocol objects:

* :func:`transcript_partition` runs a protocol on a grid of inputs and
  groups input pairs by transcript;
* :func:`is_rectangle` tests the A x B product structure of a class;
* :func:`partition_is_monochromatic` checks constancy of a target
  function on every class;
* :func:`rectangle_count_bound` is the 2^c counting bound.

Together with the rank machinery this closes the loop: rank(M) many
linearly independent rows force > log2 rank(M) bits, because fewer bits
would tile M with too few monochromatic rectangles to realize its rank.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Sequence, Set, Tuple

from repro.twoparty.protocol import TwoPartyProtocol

InputPair = Tuple[Hashable, Hashable]


def transcript_partition(
    protocol: TwoPartyProtocol,
    xs: Sequence[Hashable],
    ys: Sequence[Hashable],
) -> Dict[str, Set[InputPair]]:
    """Group the grid xs x ys by the protocol's transcript string."""
    partition: Dict[str, Set[InputPair]] = {}
    for x in xs:
        for y in ys:
            result = protocol.run(x, y)
            partition.setdefault(result.transcript_string(), set()).add((x, y))
    return partition


def is_rectangle(pairs: Set[InputPair]) -> bool:
    """True iff the set equals (its rows) x (its columns)."""
    rows = {x for x, _y in pairs}
    cols = {y for _x, y in pairs}
    return len(pairs) == len(rows) * len(cols) and all(
        (x, y) in pairs for x in rows for y in cols
    )


def all_classes_are_rectangles(partition: Dict[str, Set[InputPair]]) -> bool:
    """The rectangle property of deterministic protocols, checked."""
    return all(is_rectangle(pairs) for pairs in partition.values())


def partition_is_monochromatic(
    partition: Dict[str, Set[InputPair]],
    f: Callable[[Hashable, Hashable], Hashable],
) -> bool:
    """Is the target function constant on every transcript class?"""
    for pairs in partition.values():
        values = {f(x, y) for x, y in pairs}
        if len(values) > 1:
            return False
    return True


def worst_case_bits(
    protocol: TwoPartyProtocol,
    xs: Sequence[Hashable],
    ys: Sequence[Hashable],
) -> int:
    """Maximum total bits over the grid."""
    return max(protocol.run(x, y).total_bits for x in xs for y in ys)


def rectangle_count_bound(bits: int) -> int:
    """A c-bit protocol has at most 2^c distinct transcripts."""
    return 2**bits


def verify_rectangle_structure(
    protocol: TwoPartyProtocol,
    xs: Sequence[Hashable],
    ys: Sequence[Hashable],
    f: Callable[[Hashable, Hashable], Hashable],
) -> Tuple[bool, bool, int, int]:
    """One-shot check returning (rectangles ok, monochromatic ok,
    #classes, 2^worst-case-bits)."""
    partition = transcript_partition(protocol, xs, ys)
    return (
        all_classes_are_rectangles(partition),
        partition_is_monochromatic(partition, f),
        len(partition),
        rectangle_count_bound(worst_case_bits(protocol, xs, ys)),
    )
