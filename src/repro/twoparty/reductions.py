"""The reduction graphs G(P_A, P_B) of Section 4.2 (Figure 2).

**Partition -> 2-party Connectivity.** Alice creates vertex sets
A = {a_1..a_n} and L = {l_1..l_n}; Bob creates R = {r_1..r_n} and
B = {b_1..b_n}. The rungs (l_i, r_i) exist for every i independent of the
inputs. Alice wires a_i to every l_j with j in the i-th part of P_A (empty
parts get nothing), and connects every otherwise-isolated a-vertex to the
designated l* = l_n; Bob mirrors this with B and R. Theorem 4.3: the
connected components of G(P_A, P_B), restricted to L (equivalently R),
induce exactly the partition P_A ∨ P_B -- so G is connected iff
P_A ∨ P_B = 1.

**TwoPartition -> 2-party MultiCycle.** When every part has exactly two
elements the sets A and B are dropped: Alice adds the edge (l_i, l_j) for
every pair {i, j} in P_A, Bob adds (r_i, r_j) for every pair in P_B. Every
vertex then has degree exactly 2, so every component is a cycle, and each
cycle alternates rungs with Alice/Bob pair-edges, making its length >= 4.

Both constructions are provided as abstract graphs over named vertices and
as fully wired KT-1 :class:`BCCInstance` objects using the paper's ID
scheme (a_i, l_i, r_i, b_i get IDs i, n+i, 2n+i, 3n+i), with the hosting
split (Alice: A ∪ L, Bob: B ∪ R) exposed for the Section 4.3 simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.instance import BCCInstance
from repro.graphs.graph import Graph
from repro.partitions.set_partition import SetPartition

#: Named vertices of the reduction graphs.
NamedVertex = Tuple[str, int]  # ("a" | "l" | "r" | "b", 1-based index)


@dataclass(frozen=True)
class ReductionGraph:
    """A reduction graph plus its bookkeeping."""

    n: int
    graph: Graph  # over NamedVertex
    alice_vertices: FrozenSet[NamedVertex]
    bob_vertices: FrozenSet[NamedVertex]
    has_ab_sets: bool  # True for the Partition variant, False for TwoPartition

    def l_vertices(self) -> List[NamedVertex]:
        return [("l", i) for i in range(1, self.n + 1)]

    def r_vertices(self) -> List[NamedVertex]:
        return [("r", i) for i in range(1, self.n + 1)]

    def induced_partition_on_l(self) -> SetPartition:
        """The partition of [n] induced by components on L (Theorem 4.3)."""
        blocks: Dict[int, Set[int]] = {}
        component_of: Dict[NamedVertex, int] = {}
        for idx, comp in enumerate(self.graph.connected_components()):
            for v in comp:
                component_of[v] = idx
        for i in range(1, self.n + 1):
            blocks.setdefault(component_of[("l", i)], set()).add(i)
        return SetPartition(self.n, blocks.values())

    def induced_partition_on_r(self) -> SetPartition:
        """Same partition read off the R side."""
        blocks: Dict[int, Set[int]] = {}
        component_of: Dict[NamedVertex, int] = {}
        for idx, comp in enumerate(self.graph.connected_components()):
            for v in comp:
                component_of[v] = idx
        for i in range(1, self.n + 1):
            blocks.setdefault(component_of[("r", i)], set()).add(i)
        return SetPartition(self.n, blocks.values())

    def is_connected(self) -> bool:
        return self.graph.is_connected()


def build_partition_reduction(pa: SetPartition, pb: SetPartition) -> ReductionGraph:
    """G(P_A, P_B) for the Partition -> Connectivity reduction (Fig. 2 left)."""
    n = _common_n(pa, pb)
    g = Graph()
    for i in range(1, n + 1):
        for kind in ("a", "l", "r", "b"):
            g.add_vertex((kind, i))
        g.add_edge(("l", i), ("r", i))

    _wire_side(g, pa, owner="a", column="l", n=n)
    _wire_side(g, pb, owner="b", column="r", n=n)

    alice = frozenset([("a", i) for i in range(1, n + 1)] + [("l", i) for i in range(1, n + 1)])
    bob = frozenset([("b", i) for i in range(1, n + 1)] + [("r", i) for i in range(1, n + 1)])
    return ReductionGraph(n=n, graph=g, alice_vertices=alice, bob_vertices=bob, has_ab_sets=True)


def build_two_partition_reduction(pa: SetPartition, pb: SetPartition) -> ReductionGraph:
    """G(P_A, P_B) for TwoPartition -> MultiCycle (Fig. 2 right).

    Requires perfect-matching inputs; the result is 2-regular.
    """
    n = _common_n(pa, pb)
    if not (pa.is_perfect_matching() and pb.is_perfect_matching()):
        raise ValueError("TwoPartition reduction requires perfect-matching inputs")
    g = Graph()
    for i in range(1, n + 1):
        g.add_vertex(("l", i))
        g.add_vertex(("r", i))
        g.add_edge(("l", i), ("r", i))
    for i, j in pa.blocks:
        g.add_edge(("l", i), ("l", j))
    for i, j in pb.blocks:
        g.add_edge(("r", i), ("r", j))
    alice = frozenset(("l", i) for i in range(1, n + 1))
    bob = frozenset(("r", i) for i in range(1, n + 1))
    return ReductionGraph(n=n, graph=g, alice_vertices=alice, bob_vertices=bob, has_ab_sets=False)


def _wire_side(g: Graph, partition: SetPartition, owner: str, column: str, n: int) -> None:
    """Alice's (or Bob's) A-to-L wiring, including the l* catch-all."""
    used_owners = 0
    for block in partition.blocks:
        used_owners += 1
        for j in block:
            g.add_edge((owner, used_owners), (column, j))
    # remaining owner vertices attach to the arbitrary anchor column vertex l*
    for k in range(used_owners + 1, n + 1):
        g.add_edge((owner, k), (column, n))


# ----------------------------------------------------------------------
# KT-1 instances with the paper's ID scheme, plus the hosting split
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HostedInstance:
    """A KT-1 BCC instance together with the Alice/Bob vertex hosting."""

    instance: BCCInstance
    alice_indices: Tuple[int, ...]
    bob_indices: Tuple[int, ...]
    name_of_index: Tuple[NamedVertex, ...]

    @property
    def n_vertices(self) -> int:
        return self.instance.n


def paper_id(kind: str, i: int, n: int) -> int:
    """The paper's ID scheme: a_i -> i, l_i -> n+i, r_i -> 2n+i, b_i -> 3n+i."""
    offset = {"a": 0, "l": 1, "r": 2, "b": 3}[kind]
    return offset * n + i


def to_kt1_instance(reduction: ReductionGraph) -> HostedInstance:
    """Wire a reduction graph into a KT-1 BCC instance.

    Vertex indices are assigned in ID order, and vertex IDs follow the
    paper's scheme so that both parties can derive everything about their
    hosted vertices from their own input alone.
    """
    n = reduction.n
    named = sorted(reduction.graph.vertices(), key=lambda v: paper_id(v[0], v[1], n))
    index_of = {name: idx for idx, name in enumerate(named)}
    ids = [paper_id(kind, i, n) for kind, i in named]
    index_graph = Graph(range(len(named)))
    for u, v in reduction.graph.edges():
        index_graph.add_edge(index_of[u], index_of[v])
    instance = BCCInstance.kt1_from_graph(index_graph, ids=ids)
    alice = tuple(sorted(index_of[v] for v in reduction.alice_vertices))
    bob = tuple(sorted(index_of[v] for v in reduction.bob_vertices))
    return HostedInstance(
        instance=instance,
        alice_indices=alice,
        bob_indices=bob,
        name_of_index=tuple(named),
    )


def _common_n(pa: SetPartition, pb: SetPartition) -> int:
    if pa.n != pb.n:
        raise ValueError(f"inputs over different ground sets [{pa.n}] vs [{pb.n}]")
    return pa.n
