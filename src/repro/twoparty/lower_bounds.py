"""Communication-complexity lower-bound calculators.

The classical facts the paper invokes, made executable:

* **Rank bound** ([KN97] Lemma 1.28, Mehlhorn-Schmidt): the deterministic
  communication complexity of f is at least log2 rank(M_f).
* **Fooling sets**: a fooling set of size s forces >= log2 s bits.
* **Protocol-partition counting**: a c-bit deterministic protocol
  partitions the input matrix into at most 2^c monochromatic rectangles;
  :func:`verify_rank_bound_on_protocol` checks a concrete protocol's cost
  against the rank bound.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, List, Sequence, Tuple

from repro.partitions.linalg import rank_exact


def rank_lower_bound(
    matrix: Sequence[Sequence[int]], workers: int = 1, kernel: str = "auto"
) -> float:
    """log2 rank(M_f): a lower bound on deterministic communication.

    ``workers`` / ``kernel`` are forwarded to
    :func:`repro.partitions.linalg.rank_exact`; the bound is identical
    under every combination.
    """
    r = rank_exact(matrix, workers=workers, kernel=kernel)
    return math.log2(r) if r > 0 else 0.0


def rank_lower_bound_from_rank(rank: int) -> float:
    """log2 of an already-known rank."""
    return math.log2(rank) if rank > 0 else 0.0


def is_fooling_set(
    pairs: Sequence[Tuple[object, object]],
    f: Callable[[object, object], int],
) -> bool:
    """Check the fooling-set property for f-value-1 pairs: every pair has
    f = 1 and every two pairs have a crossed evaluation with f = 0."""
    for x, y in pairs:
        if f(x, y) != 1:
            return False
    for i, (x1, y1) in enumerate(pairs):
        for x2, y2 in pairs[i + 1 :]:
            if f(x1, y2) == 1 and f(x2, y1) == 1:
                return False
    return True


def fooling_set_lower_bound(size: int) -> float:
    """log2 of the fooling set size."""
    return math.log2(size) if size > 0 else 0.0


def verify_rank_bound_on_protocol(
    protocol,
    inputs: Iterable[Tuple[object, object]],
    matrix: Sequence[Sequence[int]],
) -> Tuple[float, int]:
    """Run a protocol on a family of inputs; return (rank bound in bits,
    worst-case measured bits). The measured cost must dominate the bound
    -- the tests assert exactly that inequality."""
    bound = rank_lower_bound(matrix)
    worst = 0
    for x, y in inputs:
        result = protocol.run(x, y)
        worst = max(worst, result.total_bits)
    return bound, worst
