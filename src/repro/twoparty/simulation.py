"""The Section 4.3 reduction: simulating a KT-1 BCC algorithm by 2 parties.

Given an r-round KT-1 BCC(1) algorithm A, Alice (holding P_A) and Bob
(holding P_B) simulate A on the reduction graph G(P_A, P_B): Alice hosts
the vertices in A ∪ L (or just L in the TwoPartition variant), Bob hosts
B ∪ R (or R). Because vertex IDs follow the fixed public scheme and every
hosted vertex's input edges touch only the host's own input (plus the
input-independent rungs l_i - r_i), each party can construct its hosted
vertices' complete KT-1 initial knowledge from its own input alone.

Each simulated round costs one message from each party: the characters
(from {0, 1, ⊥}) broadcast by its hosted vertices, in increasing ID order,
packed at 2 bits per character. The position of a character in the message
identifies the sender, so both parties can extend every hosted vertex's
transcript. Total communication: Theta(n) bits per simulated round, hence
an r-round algorithm yields an O(r * n)-bit protocol -- the inequality
that converts the Omega(n log n) communication bounds into Omega(log n)
round bounds (Theorem 4.4 / Theorem 4.5).

The implementation is deliberately *replay-based*: a party's message for
turn k is a pure function of (its own input, the transcript so far), which
makes the information constraint structural rather than merely asserted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.core.algorithm import NO, YES, AlgorithmFactory, NodeAlgorithm
from repro.core.knowledge import InitialKnowledge
from repro.core.randomness import PublicCoin
from repro.algorithms.bit_codec import pack_symbols, unpack_symbols
from repro.costs.ledger import get_ledger
from repro.errors import ProtocolError
from repro.obs.metrics import get_registry
from repro.partitions.set_partition import SetPartition
from repro.twoparty.protocol import ALICE, BOB, TwoPartyProtocol, Turn
from repro.twoparty.reductions import paper_id

#: Reduction variants.
PARTITION = "partition"  # A/L/R/B graph (Connectivity)
TWO_PARTITION = "two_partition"  # L/R graph (MultiCycle), 2-regular


def _hosted_structure(
    variant: str, side: str, partition: SetPartition
) -> Tuple[int, List[int], Dict[int, List[int]], List[int]]:
    """The hosted vertices of one party, from its own input alone.

    Returns (total vertex count N, all IDs sorted, hosted vertex ID ->
    sorted neighbor IDs, hosted IDs sorted).
    """
    n = partition.n
    if variant == PARTITION:
        all_ids = sorted(paper_id(k, i, n) for k in "alrb" for i in range(1, n + 1))
        kinds = ("a", "l") if side == ALICE else ("b", "r")
        column = "l" if side == ALICE else "r"
        owner = "a" if side == ALICE else "b"
        neighbors: Dict[int, List[int]] = {}
        for i in range(1, n + 1):
            neighbors[paper_id(owner, i, n)] = []
            rung = paper_id("r" if column == "l" else "l", i, n)
            neighbors[paper_id(column, i, n)] = [rung]
        used = 0
        for block in partition.blocks:
            used += 1
            owner_id = paper_id(owner, used, n)
            for j in block:
                col_id = paper_id(column, j, n)
                neighbors[owner_id].append(col_id)
                neighbors[col_id].append(owner_id)
        anchor = paper_id(column, n, n)
        for k in range(used + 1, n + 1):
            owner_id = paper_id(owner, k, n)
            neighbors[owner_id].append(anchor)
            neighbors[anchor].append(owner_id)
        hosted = sorted(neighbors)
        return 4 * n, all_ids, {v: sorted(nbrs) for v, nbrs in neighbors.items()}, hosted
    if variant == TWO_PARTITION:
        if not partition.is_perfect_matching():
            raise ProtocolError("TwoPartition simulation needs perfect-matching inputs")
        all_ids = sorted(paper_id(k, i, n) for k in "lr" for i in range(1, n + 1))
        column = "l" if side == ALICE else "r"
        other = "r" if side == ALICE else "l"
        neighbors = {
            paper_id(column, i, n): [paper_id(other, i, n)] for i in range(1, n + 1)
        }
        for i, j in partition.blocks:
            neighbors[paper_id(column, i, n)].append(paper_id(column, j, n))
            neighbors[paper_id(column, j, n)].append(paper_id(column, i, n))
        hosted = sorted(neighbors)
        return 2 * n, all_ids, {v: sorted(nbrs) for v, nbrs in neighbors.items()}, hosted
    raise ProtocolError(f"unknown reduction variant {variant!r}")


class BCCSimulationProtocol(TwoPartyProtocol):
    """Alice/Bob simulation of a KT-1 BCC(b) algorithm on G(P_A, P_B).

    Parameters
    ----------
    variant:
        ``"partition"`` or ``"two_partition"``.
    factory:
        The node-algorithm factory being simulated (a KT-1 algorithm).
    rounds:
        Number r of BCC rounds to simulate.
    bandwidth:
        The BCC bandwidth b (1 for all of the paper's statements).
    mode:
        ``"decision"``: after the simulation each party sends one extra bit
        (the AND of its hosted vertices' YES/NO outputs) so that both
        output the system decision. ``"components"``: no extra bits; each
        party reads the join P_A ∨ P_B off its hosted column's labels
        (the PartitionComp output).
    coin:
        The shared public coin handed to every simulated vertex.
    """

    def __init__(
        self,
        variant: str,
        factory: AlgorithmFactory,
        rounds: int,
        bandwidth: int = 1,
        mode: str = "decision",
        coin: Optional[PublicCoin] = None,
        metrics=None,
    ):
        if mode not in ("decision", "components"):
            raise ProtocolError(f"unknown mode {mode!r}")
        self.variant = variant
        self.factory = factory
        self.rounds = rounds
        self.bandwidth = bandwidth
        self.mode = mode
        self.coin = coin if coin is not None else PublicCoin()
        self._metrics = metrics

    # ------------------------------------------------------------------
    # protocol tree
    # ------------------------------------------------------------------
    def next_speaker(self, turns: List[Turn]) -> Optional[str]:
        total = 2 * self.rounds + (2 if self.mode == "decision" else 0)
        if len(turns) >= total:
            return None
        return ALICE if len(turns) % 2 == 0 else BOB

    def message(self, speaker: str, own_input: SetPartition, turns: List[Turn]) -> str:
        k = len(turns)
        if k < 2 * self.rounds:
            t = k // 2 + 1  # the BCC round being simulated
            nodes, _outputs = self._replay(speaker, own_input, turns, upto_round=t - 1)
            symbols = [node.broadcast(t) for _vid, node in nodes]
            bits = pack_symbols(symbols)
            self._record_turn(
                speaker, bits, simulated_round=t, closes_round=(k % 2 == 1), turns=turns
            )
            return bits
        # final decision bits
        nodes, outputs = self._replay(speaker, own_input, turns, upto_round=self.rounds)
        bits = "1" if all(out == YES for out in outputs) else "0"
        self._record_turn(speaker, bits, simulated_round=None, closes_round=False, turns=turns)
        return bits

    def _record_turn(
        self,
        speaker: str,
        bits: str,
        simulated_round: Optional[int],
        closes_round: bool,
        turns: List[Turn],
    ) -> None:
        """Per-turn bit accounting (no-op unless a registry/ledger is active)."""
        ledger = get_ledger()
        if ledger is not None:
            # Ledger vertices are the two parties; the "round" is the BCC
            # round this turn simulates (0 for the decision exchange), and
            # the phase separates simulation traffic from decision bits.
            ledger.record_bits(
                speaker,
                simulated_round if simulated_round is not None else 0,
                len(bits),
                phase="simulate" if simulated_round is not None else "decision",
            )
        metrics = self._metrics if self._metrics is not None else get_registry()
        if metrics is None:
            return
        metrics.counter("twoparty.turns").inc()
        metrics.counter("twoparty.bits_sent").inc(len(bits))
        metrics.histogram("twoparty.bits_per_turn").observe(len(bits))
        if simulated_round is not None and closes_round:
            # this turn completes BCC round ``simulated_round``: its cost
            # is this message plus the other party's message for the round
            metrics.counter("twoparty.simulated_rounds").inc()
            round_bits = len(bits) + len(turns[-1].bits)
            metrics.histogram("twoparty.bits_per_simulated_round").observe(round_bits)

    # ------------------------------------------------------------------
    # replay machinery
    # ------------------------------------------------------------------
    def _replay(
        self,
        side: str,
        own_input: SetPartition,
        turns: List[Turn],
        upto_round: int,
    ) -> Tuple[List[Tuple[int, NodeAlgorithm]], List[Any]]:
        """Reconstruct this party's hosted node states after ``upto_round``
        simulated rounds, using only (own input, transcript)."""
        total_n, all_ids, neighbors, hosted = _hosted_structure(
            self.variant, side, own_input
        )
        id_set = set(all_ids)
        nodes: List[Tuple[int, NodeAlgorithm]] = []
        for vid in hosted:
            node = self.factory()
            node.setup(
                InitialKnowledge(
                    vertex_id=vid,
                    n=total_n,
                    bandwidth=self.bandwidth,
                    kt=1,
                    ports=tuple(sorted(id_set - {vid})),
                    input_ports=frozenset(neighbors[vid]),
                    all_ids=tuple(all_ids),
                    coin=self.coin,
                )
            )
            nodes.append((vid, node))

        half = total_n // 2
        for t in range(1, upto_round + 1):
            own_symbols = [node.broadcast(t) for _vid, node in nodes]
            alice_turn = turns[2 * (t - 1)]
            bob_turn = turns[2 * (t - 1) + 1]
            if side == ALICE:
                other_symbols = unpack_symbols(bob_turn.bits, half)
                other_ids = self._hosted_ids(BOB, all_ids, own_input)
                own_ids = [vid for vid, _ in nodes]
            else:
                other_symbols = unpack_symbols(alice_turn.bits, half)
                other_ids = self._hosted_ids(ALICE, all_ids, own_input)
                own_ids = [vid for vid, _ in nodes]
            message_of: Dict[int, str] = dict(zip(own_ids, own_symbols))
            message_of.update(dict(zip(other_ids, other_symbols)))
            for vid, node in nodes:
                received = {u: message_of[u] for u in all_ids if u != vid}
                node.receive(t, received)
        metrics = self._metrics if self._metrics is not None else get_registry()
        if metrics is not None:
            metrics.counter("twoparty.replays").inc()
            metrics.counter("twoparty.replayed_node_rounds").inc(
                upto_round * len(nodes)
            )
        # outputs are only well-defined once the full simulation has run
        outputs = (
            [node.output() for _vid, node in nodes]
            if upto_round >= self.rounds
            else []
        )
        return nodes, outputs

    def _hosted_ids(self, side: str, all_ids: List[int], own_input: SetPartition) -> List[int]:
        """The other party's hosted IDs -- derivable from the public ID
        scheme alone (no knowledge of the other input needed)."""
        n = own_input.n
        if self.variant == PARTITION:
            kinds = ("a", "l") if side == ALICE else ("b", "r")
        else:
            kinds = ("l",) if side == ALICE else ("r",)
        return sorted(paper_id(k, i, n) for k in kinds for i in range(1, n + 1))

    # ------------------------------------------------------------------
    # outputs
    # ------------------------------------------------------------------
    def alice_output(self, alice_input: SetPartition, turns: List[Turn]) -> Any:
        return self._output(ALICE, alice_input, turns)

    def bob_output(self, bob_input: SetPartition, turns: List[Turn]) -> Any:
        return self._output(BOB, bob_input, turns)

    def _output(self, side: str, own_input: SetPartition, turns: List[Turn]) -> Any:
        if self.mode == "decision":
            alice_bit = turns[2 * self.rounds].bits
            bob_bit = turns[2 * self.rounds + 1].bits
            return 1 if alice_bit == "1" and bob_bit == "1" else 0
        # components mode: group the own column's labels into a partition
        _nodes, outputs = self._replay(side, own_input, turns, upto_round=self.rounds)
        n = own_input.n
        column = "l" if side == ALICE else "r"
        hosted = self._hosted_ids(side, [], own_input)
        label_of: Dict[int, Any] = dict(zip(hosted, outputs))
        blocks: Dict[Any, List[int]] = {}
        for i in range(1, n + 1):
            lab = label_of[paper_id(column, i, n)]
            blocks.setdefault(lab, []).append(i)
        return SetPartition(n, blocks.values())


def simulation_bits_per_round(variant: str, n: int) -> int:
    """Exact per-simulated-round communication: 2 bits per hosted vertex
    per party = 2 * N bits total, N = 4n or 2n."""
    total = 4 * n if variant == PARTITION else 2 * n
    return 2 * total


def rounds_lower_bound_from_cc(cc_bits: float, variant: str, n: int) -> float:
    """Invert the simulation cost: any algorithm needs at least
    cc_bits / (bits per simulated round) BCC rounds (Theorem 4.4's
    arithmetic, made explicit)."""
    return cc_bits / simulation_bits_per_round(variant, n)
