"""Two-party communication protocols with exact bit accounting.

The KT-1 lower bounds (Section 4) are reductions to 2-party communication
complexity, so the library carries a small protocol framework: a
:class:`TwoPartyProtocol` runs Alice and Bob in alternating *turns*, each
turn transferring a bit-string, and records the full transcript. The
quantity of interest is ``total_bits`` -- Corollaries 2.4/4.2 lower-bound
it by log2 of a matrix rank, and the Section 4.3 simulation shows a
t-round BCC(1) algorithm yields a protocol with O(t * n) bits.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.errors import ProtocolError

#: Who speaks: Alice or Bob.
ALICE = "alice"
BOB = "bob"


@dataclass(frozen=True)
class Turn:
    """One message of a protocol run."""

    speaker: str
    bits: str

    def __post_init__(self) -> None:
        if self.speaker not in (ALICE, BOB):
            raise ProtocolError(f"unknown speaker {self.speaker!r}")
        if any(c not in "01" for c in self.bits):
            raise ProtocolError(f"message {self.bits!r} is not a bit string")


@dataclass
class ProtocolResult:
    """Everything observable about one protocol execution."""

    turns: List[Turn]
    alice_output: Any
    bob_output: Any

    @property
    def total_bits(self) -> int:
        return sum(len(t.bits) for t in self.turns)

    @property
    def alice_bits(self) -> int:
        return sum(len(t.bits) for t in self.turns if t.speaker == ALICE)

    @property
    def bob_bits(self) -> int:
        return sum(len(t.bits) for t in self.turns if t.speaker == BOB)

    @property
    def rounds(self) -> int:
        return len(self.turns)

    def transcript_string(self) -> str:
        """The transcript as a single delimited string (used as the random
        variable Pi in the information-theoretic argument of Theorem 4.5)."""
        return "|".join(f"{t.speaker[0]}:{t.bits}" for t in self.turns)


class TwoPartyProtocol(ABC):
    """A deterministic protocol, specified by per-turn message functions.

    Subclasses implement :meth:`next_turn`: given the inputs-so-far view
    (the party's own input and the transcript), return the next
    (speaker, bits) or None when the conversation is over, after which
    :meth:`alice_output` / :meth:`bob_output` are read. The framework
    enforces that each party's messages depend only on its own input and
    the transcript -- ``next_turn`` receives exactly one input, selected by
    whose turn it is.
    """

    #: Safety valve against non-terminating protocols.
    max_turns: int = 100_000

    @abstractmethod
    def next_speaker(self, turns: List[Turn]) -> Optional[str]:
        """Whose turn it is, or None when the protocol has ended.

        May depend only on the transcript (the standard requirement that
        the protocol tree's structure is common knowledge).
        """

    @abstractmethod
    def message(self, speaker: str, own_input: Any, turns: List[Turn]) -> str:
        """The bits the speaker sends, from its own input + transcript."""

    @abstractmethod
    def alice_output(self, alice_input: Any, turns: List[Turn]) -> Any:
        """Alice's output from her input and the transcript."""

    @abstractmethod
    def bob_output(self, bob_input: Any, turns: List[Turn]) -> Any:
        """Bob's output from his input and the transcript."""

    def run(self, alice_input: Any, bob_input: Any) -> ProtocolResult:
        """Execute the protocol."""
        turns: List[Turn] = []
        for _ in range(self.max_turns):
            speaker = self.next_speaker(turns)
            if speaker is None:
                break
            own = alice_input if speaker == ALICE else bob_input
            turns.append(Turn(speaker, self.message(speaker, own, turns)))
        else:
            raise ProtocolError(f"protocol exceeded {self.max_turns} turns")
        return ProtocolResult(
            turns=turns,
            alice_output=self.alice_output(alice_input, turns),
            bob_output=self.bob_output(bob_input, turns),
        )


def encode_int(value: int, width: int) -> str:
    """Fixed-width big-endian binary encoding."""
    if value < 0 or value >= (1 << width):
        raise ProtocolError(f"{value} does not fit in {width} bits")
    return format(value, f"0{width}b")


def decode_int(bits: str) -> int:
    """Inverse of :func:`encode_int`."""
    return int(bits, 2) if bits else 0
