"""Two-party communication: protocols, reductions (Sec. 4.2), simulation (Sec. 4.3)."""

from repro.twoparty.lower_bounds import (
    fooling_set_lower_bound,
    is_fooling_set,
    rank_lower_bound,
    rank_lower_bound_from_rank,
    verify_rank_bound_on_protocol,
)
from repro.twoparty.problems import (
    PartitionCompProblem,
    PartitionProblem,
    TwoPartitionProblem,
)
from repro.twoparty.protocol import (
    ALICE,
    BOB,
    ProtocolResult,
    Turn,
    TwoPartyProtocol,
    decode_int,
    encode_int,
)
from repro.twoparty.rectangles import (
    all_classes_are_rectangles,
    is_rectangle,
    partition_is_monochromatic,
    rectangle_count_bound,
    transcript_partition,
    verify_rectangle_structure,
    worst_case_bits,
)
from repro.twoparty.reductions import (
    HostedInstance,
    NamedVertex,
    ReductionGraph,
    build_partition_reduction,
    build_two_partition_reduction,
    paper_id,
    to_kt1_instance,
)
from repro.twoparty.simulation import (
    PARTITION,
    TWO_PARTITION,
    BCCSimulationProtocol,
    rounds_lower_bound_from_cc,
    simulation_bits_per_round,
)
from repro.twoparty.upper_bounds import (
    LossyPartitionCompProtocol,
    TrivialPartitionCompProtocol,
    TrivialPartitionProtocol,
    decode_partition,
    encode_partition,
    rgs_bit_width,
)

__all__ = [
    "ALICE",
    "BCCSimulationProtocol",
    "BOB",
    "HostedInstance",
    "LossyPartitionCompProtocol",
    "NamedVertex",
    "PARTITION",
    "PartitionCompProblem",
    "PartitionProblem",
    "ProtocolResult",
    "ReductionGraph",
    "TWO_PARTITION",
    "TrivialPartitionCompProtocol",
    "TrivialPartitionProtocol",
    "Turn",
    "TwoPartitionProblem",
    "TwoPartyProtocol",
    "all_classes_are_rectangles",
    "build_partition_reduction",
    "build_two_partition_reduction",
    "decode_int",
    "decode_partition",
    "encode_int",
    "encode_partition",
    "fooling_set_lower_bound",
    "is_fooling_set",
    "is_rectangle",
    "paper_id",
    "partition_is_monochromatic",
    "rank_lower_bound",
    "rank_lower_bound_from_rank",
    "rectangle_count_bound",
    "rgs_bit_width",
    "transcript_partition",
    "verify_rectangle_structure",
    "worst_case_bits",
    "rounds_lower_bound_from_cc",
    "simulation_bits_per_round",
    "to_kt1_instance",
    "verify_rank_bound_on_protocol",
]
