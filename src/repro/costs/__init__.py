"""Communication-cost observability: ledger, calculus, conformance.

Three layers, mirroring the structure of :mod:`repro.obs`:

* :mod:`repro.costs.ledger` -- a thread-safe :class:`CostLedger`
  accumulating measured bits per (vertex, round, phase), opt-in via
  :func:`use_ledger` with the same one-``None``-check disabled path as
  the metrics registry; the per-run view is ``RunResult.cost_summary``
  and the trace-v4 ``cost_summary`` event;
* :mod:`repro.costs.calculus` -- closed-form round/bit expressions in
  symbols (n, t, ...), evaluated exactly by a dependency-free tree walk
  and cross-checked through sympy when it is importable
  (:data:`HAVE_SYMPY`); results are identical either way;
* :mod:`repro.costs.specs` / :mod:`repro.costs.conformance` -- the
  bundled per-protocol cost declarations and the checker that
  substitutes finite n into each one and asserts the measured ledger
  matches (or, for Omega floors, clears) the prediction. Exposed as
  ``repro cost-check`` and ``tests/costs/``.
"""

from repro.costs.calculus import (
    HAVE_SYMPY,
    Expr,
    bits_width,
    ceil,
    dfact,
    evaluate,
    floor,
    log2,
    symbols,
    sympy_cross_check,
)
from repro.costs.conformance import ConformanceResult, check_all, check_spec
from repro.costs.ledger import (
    DEFAULT_PHASE,
    CostLedger,
    cost_summary_from_broadcasts,
    get_ledger,
    message_cost_bits,
    run_cost_summary,
    set_ledger,
    use_ledger,
)
from repro.costs.specs import CostSpec, MeasuredCost, get_spec, spec_names, specs

__all__ = [
    "DEFAULT_PHASE",
    "HAVE_SYMPY",
    "ConformanceResult",
    "CostLedger",
    "CostSpec",
    "Expr",
    "MeasuredCost",
    "bits_width",
    "ceil",
    "check_all",
    "check_spec",
    "cost_summary_from_broadcasts",
    "dfact",
    "evaluate",
    "floor",
    "get_ledger",
    "get_spec",
    "log2",
    "message_cost_bits",
    "run_cost_summary",
    "set_ledger",
    "spec_names",
    "specs",
    "symbols",
    "sympy_cross_check",
    "use_ledger",
]
