"""The per-(vertex, round, phase) communication-bit ledger.

:class:`repro.core.simulator.Simulator` already measures total bits per
round; the ledger keeps the *ledger-grade* version of that number: every
broadcast attributed to the vertex that sent it, the round it was sent
in, and the phase of the pipeline it belongs to (``broadcast`` for BCC
rounds, ``simulate``/``decision`` for the two-party Section 4.3
simulation). That attribution is what the symbolic cost calculus checks
against -- a closed form like ``2nW`` is a statement about *who* sends
*how much* *when*, not just a grand total.

The contract mirrors :mod:`repro.obs.metrics` exactly: a ledger is
**opt-in**, installed process-wide with :func:`use_ledger` (or passed to
``Simulator(costs=...)``), resolved once per run, and the disabled path
costs a single ``is not None`` check per round. Silence is first-class:
a silent broadcast (the paper's ⊥, encoded as the empty string) counts
**0 bits** and one silent round for its vertex -- and the rendered form
``"⊥"`` is likewise 0 bits, so a ledger fed from a rendered transcript
(replay tooling, fault reports) can never inflate a crashed vertex's
spend by the width of the silence glyph.

The module is dependency-free of ``repro.core`` so the simulator can
import it without cycles; :func:`run_cost_summary` therefore duck-types
its transcripts (anything with ``bits_sent()`` / ``silence_count()``).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

__all__ = [
    "DEFAULT_PHASE",
    "CostLedger",
    "cost_summary_from_broadcasts",
    "get_ledger",
    "message_cost_bits",
    "run_cost_summary",
    "set_ledger",
    "use_ledger",
]

#: The phase the simulator's own broadcasts are charged to.
DEFAULT_PHASE = "broadcast"

#: Zero-cost encodings of silence: the on-channel empty broadcast and
#: its rendered ⊥ form (mirrors repro.core.model.SILENT / SILENT_CHAR;
#: duplicated as literals so this module stays core-import-free).
_SILENT_FORMS = ("", "⊥")

Vertex = Union[int, str]


def message_cost_bits(message: str) -> int:
    """Channel cost of one broadcast: silence (raw or rendered ⊥) is 0."""
    return 0 if message in _SILENT_FORMS else len(message)


class CostLedger:
    """Thread-safe accumulator of measured bits per (vertex, round, phase).

    Like a :class:`~repro.obs.metrics.MetricsRegistry`, an installed
    ledger accumulates across every run executed while it is active --
    the per-run view lives on ``RunResult.cost_summary`` (see
    :func:`run_cost_summary`).
    """

    __slots__ = ("_lock", "_bits", "_silences")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: (vertex, round, phase) -> accumulated bits
        self._bits: Dict[Tuple[Vertex, int, str], int] = {}
        #: vertex -> silent broadcasts observed
        self._silences: Dict[Vertex, int] = {}

    # -- recording ------------------------------------------------------
    def record(
        self, vertex: Vertex, round_index: int, message: str, phase: str = DEFAULT_PHASE
    ) -> None:
        """Charge one broadcast message to (vertex, round, phase)."""
        bits = message_cost_bits(message)
        with self._lock:
            if bits:
                key = (vertex, round_index, phase)
                self._bits[key] = self._bits.get(key, 0) + bits
            else:
                self._silences[vertex] = self._silences.get(vertex, 0) + 1
                # a silent round still creates the (vertex, round) cell so
                # per-round/per-vertex breakdowns show 0, not absence
                self._bits.setdefault((vertex, round_index, phase), 0)

    def record_bits(
        self, vertex: Vertex, round_index: int, bits: int, phase: str = DEFAULT_PHASE
    ) -> None:
        """Charge a raw bit count (for callers that never go silent,
        e.g. two-party protocol turns)."""
        if bits < 0:
            raise ValueError(f"cannot record {bits} bits (negative)")
        with self._lock:
            key = (vertex, round_index, phase)
            self._bits[key] = self._bits.get(key, 0) + bits

    def record_round(
        self, round_index: int, messages: Sequence[str], phase: str = DEFAULT_PHASE
    ) -> None:
        """Charge one simulator round: ``messages[v]`` is vertex v's
        broadcast (the simulator's hot-path entry point)."""
        for vertex, message in enumerate(messages):
            self.record(vertex, round_index, message, phase)

    # -- aggregation ----------------------------------------------------
    def total_bits(self) -> int:
        with self._lock:
            return sum(self._bits.values())

    def rounds(self) -> int:
        """The highest round index charged (0 for an empty ledger)."""
        with self._lock:
            return max((key[1] for key in self._bits), default=0)

    def bits_by_vertex(self) -> Dict[Vertex, int]:
        out: Dict[Vertex, int] = {}
        with self._lock:
            for (vertex, _t, _phase), bits in self._bits.items():
                out[vertex] = out.get(vertex, 0) + bits
        return out

    def bits_by_round(self) -> Dict[int, int]:
        out: Dict[int, int] = {}
        with self._lock:
            for (_vertex, t, _phase), bits in self._bits.items():
                out[t] = out.get(t, 0) + bits
        return out

    def bits_by_phase(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        with self._lock:
            for (_vertex, _t, phase), bits in self._bits.items():
                out[phase] = out.get(phase, 0) + bits
        return out

    def silence_by_vertex(self) -> Dict[Vertex, int]:
        with self._lock:
            return dict(self._silences)

    # -- export ---------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """A JSON-ready summary: totals plus per-vertex / per-phase rows.

        Vertices are rendered as strings (simulator indices and party
        names like ``"alice"`` share one namespace in JSON).
        """
        per_vertex = self.bits_by_vertex()
        silences = self.silence_by_vertex()
        return {
            "total_bits": self.total_bits(),
            "rounds": self.rounds(),
            "per_vertex": [
                {
                    "vertex": str(vertex),
                    "bits": per_vertex.get(vertex, 0),
                    "silent_rounds": silences.get(vertex, 0),
                }
                for vertex in sorted(
                    set(per_vertex) | set(silences), key=lambda v: (isinstance(v, str), v)
                )
            ],
            "per_phase": {
                phase: bits for phase, bits in sorted(self.bits_by_phase().items())
            },
        }

    def population(self) -> Dict[str, Dict[str, Any]]:
        """Mergeable population sketches over the ledger's cells.

        Serialized sketch states (see :mod:`repro.obs.sketches`):
        ``"cell_bits"`` -- quantile sketch over every (vertex, round,
        phase) cell's bit count; ``"phase_bits"`` / ``"vertex_bits"`` --
        top-k sketches weighting phases and vertices by the bits they
        carried. The result is a pure function of the ledger's cell
        multiset: build per-shard populations and fold them with
        :func:`repro.obs.sketches.merge_population` when the shards
        charge *disjoint* cells (as the sharded sweeps do), or
        :meth:`merge` the ledgers first and take one population when
        cells may overlap.
        """
        # Lazy: sketches imports repro.parallel, whose package __init__
        # reaches modules that install cost ledgers.
        from repro.obs.sketches import QuantileSketch, TopKSketch

        cell_bits = QuantileSketch()
        phase_bits = TopKSketch()
        vertex_bits = TopKSketch()
        with self._lock:
            cells = list(self._bits.items())
        for (vertex, _t, phase), bits in cells:
            cell_bits.update(float(bits))
            if bits:
                phase_bits.update(phase, bits)
                vertex_bits.update(str(vertex), bits)
        return {
            "cell_bits": cell_bits.to_dict(),
            "phase_bits": phase_bits.to_dict(),
            "vertex_bits": vertex_bits.to_dict(),
        }

    def merge(self, other: "CostLedger") -> None:
        """Fold another ledger's cells into this one (associative)."""
        with other._lock:
            bits = dict(other._bits)
            silences = dict(other._silences)
        with self._lock:
            for key, value in bits.items():
                self._bits[key] = self._bits.get(key, 0) + value
            for vertex, count in silences.items():
                self._silences[vertex] = self._silences.get(vertex, 0) + count

    def reset(self) -> None:
        with self._lock:
            self._bits.clear()
            self._silences.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._bits)


def run_cost_summary(transcripts: Sequence[Any], rounds_executed: int) -> Dict[str, Any]:
    """The per-run cost summary attached to ``RunResult.cost_summary``
    and emitted as the trace-v4 ``cost_summary`` event.

    ``transcripts`` is anything with ``bits_sent()`` and
    ``silence_count()`` (duck-typed to keep this module free of
    ``repro.core`` imports).
    """
    per_vertex: List[Dict[str, Any]] = []
    total = 0
    for vertex, transcript in enumerate(transcripts):
        bits = transcript.bits_sent()
        total += bits
        per_vertex.append(
            {
                "vertex": str(vertex),
                "bits": bits,
                "silent_rounds": transcript.silence_count(),
            }
        )
    return {"total_bits": total, "rounds": rounds_executed, "per_vertex": per_vertex}


def cost_summary_from_broadcasts(
    history: Sequence[Sequence[str]],
) -> Dict[str, Any]:
    """Rebuild a run's cost summary from recorded per-round broadcasts.

    ``history[t][v]`` is vertex v's broadcast in the (t+1)-th executed
    round -- exactly the ``broadcasts`` field of a session log's ``step``
    events (:mod:`repro.replay`). Costs are charged with
    :func:`message_cost_bits`, the same rule live transcripts use (both
    silence encodings are 0 bits), so for any run the rebuilt summary
    equals ``RunResult.cost_summary`` *by construction* -- which is what
    lets ``repro report --session`` assert cost parity between a recorded
    session and its recorded result without re-executing anything.
    """
    n = len(history[0]) if history else 0
    bits = [0] * n
    silences = [0] * n
    for messages in history:
        for vertex, message in enumerate(messages):
            cost = message_cost_bits(message)
            bits[vertex] += cost
            if cost == 0 and message in _SILENT_FORMS:
                silences[vertex] += 1
    return {
        "total_bits": sum(bits),
        "rounds": len(history),
        "per_vertex": [
            {
                "vertex": str(vertex),
                "bits": bits[vertex],
                "silent_rounds": silences[vertex],
            }
            for vertex in range(n)
        ],
    }


# ----------------------------------------------------------------------
# the process-wide opt-in ledger (same contract as metrics.get_registry)
# ----------------------------------------------------------------------
_active_ledger: Optional[CostLedger] = None
_active_lock = threading.Lock()


def get_ledger() -> Optional[CostLedger]:
    """The installed ledger, or None when cost accounting is off.

    Instrumented call sites hold the result in a local and guard every
    recording with ``if ledger is not None`` -- the entire disabled-path
    cost.
    """
    return _active_ledger


def set_ledger(ledger: Optional[CostLedger]) -> Optional[CostLedger]:
    """Install (or, with None, remove) the process-wide ledger; returns
    the previous one so callers can restore it."""
    global _active_ledger
    with _active_lock:
        previous = _active_ledger
        _active_ledger = ledger
    return previous


@contextmanager
def use_ledger(ledger: Optional[CostLedger]) -> Iterator[Optional[CostLedger]]:
    """Scoped :func:`set_ledger`: install for the block, then restore."""
    previous = set_ledger(ledger)
    try:
        yield ledger
    finally:
        set_ledger(previous)
