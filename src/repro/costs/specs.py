"""Bundled symbolic cost specs for the repo's protocols and experiments.

Each :class:`CostSpec` pairs a closed-form round/bit expression (built
from :mod:`repro.costs.calculus`) with a ``measure`` function that runs
the real protocol under a fresh :class:`~repro.costs.ledger.CostLedger`
and reports what the simulator actually spent. The conformance layer
substitutes the measurement's parameters into the expressions and
compares -- exactly (``kind="exact"``) or as a declared lower-bound
floor (``kind="floor"``, the paper's Omega statements at finite n).

Closed forms encoded here (W(x) = max(1, floor(log2 x) + 1), the fixed
ID width of :func:`repro.algorithms.bit_codec.id_bit_width`):

* ``constant_cycle`` -- the always-broadcast baseline: rounds = t,
  bits = n * t (every vertex spends its full BCC(1) budget each round).
* ``silent_star`` -- the always-silent algorithm: rounds = t, bits = 0
  (t rounds of ⊥ cost nothing; the ledger must agree).
* ``neighbor_exchange_kt0`` -- NeighborExchange on a one-cycle at KT-0
  with the 4n-ID space: (Delta + 1) * W phases with Delta = 2, so
  rounds = 3 * W(4n - 1) and every vertex sends one bit per round:
  bits = 3n * W(4n - 1).
* ``neighbor_exchange_kt1`` -- same at KT-1 (IDs in [0, n-1], no echo
  phase): rounds = 2 * W(n - 1), bits = 2n * W(n - 1).
* ``two_partition_simulation`` -- the Section 4.3 Alice/Bob simulation
  of an r-round KT-1 algorithm, r = 2 * W(3n): one turn per party per
  simulated round at 2 bits per hosted vertex (N = 2n), so
  turns = 2r = 4 * W(3n) and bits = 2 * 2n * r = 8n * W(3n).
* ``omega_total_bits_kt1`` (floor) -- Theorem 4.4's Omega(n log n)
  total-bit bound at finite n: measured NeighborExchange KT-1 bits
  must sit at or above n * log2(n).
* ``multicycle_round_floor`` (floor) -- Theorem 4.4's round bound via
  Lemma 4.1: rank(E_n) = (n-1)!!, so any KT-1 BCC(1) algorithm needs
  >= log2((n-1)!!) / (4n) rounds; the measured NeighborExchange round
  count must clear that floor.

All experiment imports are deferred into the measure bodies (the
:mod:`repro.obs.bench` idiom), so this module is eagerly importable
from ``repro.costs.__init__`` without cycles through ``repro.core``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Union

from repro.costs.calculus import Expr, bits_width, dfact, log2, symbols

__all__ = ["CostSpec", "MeasuredCost", "get_spec", "spec_names", "specs"]

Number = Union[int, float]


@dataclass(frozen=True)
class MeasuredCost:
    """What one protocol execution actually spent.

    ``env`` maps symbol names to the concrete parameter values the
    conformance checker substitutes into the spec's expressions.
    ``ledger_bits`` is the CostLedger's independent count of the same
    execution (None when the measure has no ledger-instrumented path);
    conformance additionally asserts it equals ``bits``.
    """

    rounds: Number
    bits: Number
    env: Dict[str, Number]
    ledger_bits: Optional[int] = None
    details: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class CostSpec:
    """A protocol's declared communication cost, checkable at finite n."""

    name: str
    description: str
    #: "exact": measured == predicted. "floor": measured >= predicted
    #: (a lower bound the measurement must clear, never match).
    kind: str
    rounds_expr: Optional[Expr]
    bits_expr: Optional[Expr]
    measure: Callable[[Dict[str, Any]], MeasuredCost]
    quick_params: Dict[str, Any]
    full_params: Dict[str, Any]

    def __post_init__(self) -> None:
        if self.kind not in ("exact", "floor"):
            raise ValueError(f"kind must be 'exact' or 'floor', got {self.kind!r}")
        if self.rounds_expr is None and self.bits_expr is None:
            raise ValueError(f"spec {self.name!r} declares no expressions")

    def params(self, quick: bool) -> Dict[str, Any]:
        return dict(self.quick_params if quick else self.full_params)


# ----------------------------------------------------------------------
# measure functions (imports deferred, bench.py-style)
# ----------------------------------------------------------------------
def _simulator_measure(params: Dict[str, Any], factory_name: str) -> MeasuredCost:
    """Shared body for the fixed-budget simulator specs."""
    from repro.core import BCC1_KT0, ConstantAlgorithm, SilentAlgorithm, Simulator
    from repro.costs.ledger import CostLedger, use_ledger
    from repro.instances import one_cycle_instance

    factory = {"constant": ConstantAlgorithm, "silent": SilentAlgorithm}[factory_name]
    n, t = params["n"], params["rounds"]
    ledger = CostLedger()
    with use_ledger(ledger):
        result = Simulator(BCC1_KT0).run(one_cycle_instance(n, kt=0), factory, t)
    return MeasuredCost(
        rounds=result.rounds_executed,
        bits=result.total_bits_broadcast(),
        env={"n": n, "t": t},
        ledger_bits=ledger.total_bits(),
        details={"cost_summary": result.cost_summary},
    )


def _measure_constant(params: Dict[str, Any]) -> MeasuredCost:
    return _simulator_measure(params, "constant")


def _measure_silent(params: Dict[str, Any]) -> MeasuredCost:
    return _simulator_measure(params, "silent")


def _measure_neighbor_exchange(params: Dict[str, Any], kt: int) -> MeasuredCost:
    from repro.algorithms import connectivity_factory
    from repro.core import BCC1_KT0, BCC1_KT1, Simulator
    from repro.costs.ledger import CostLedger, use_ledger
    from repro.instances import one_cycle_instance

    n = params["n"]
    model = BCC1_KT0 if kt == 0 else BCC1_KT1
    ledger = CostLedger()
    with use_ledger(ledger):
        result = Simulator(model).run_until_done(
            one_cycle_instance(n, kt=kt), connectivity_factory(2), 10_000
        )
    return MeasuredCost(
        rounds=result.rounds_executed,
        bits=result.total_bits_broadcast(),
        env={"n": n},
        ledger_bits=ledger.total_bits(),
        details={"cost_summary": result.cost_summary},
    )


def _measure_ne_kt0(params: Dict[str, Any]) -> MeasuredCost:
    return _measure_neighbor_exchange(params, kt=0)


def _measure_ne_kt1(params: Dict[str, Any]) -> MeasuredCost:
    return _measure_neighbor_exchange(params, kt=1)


def _measure_two_partition(params: Dict[str, Any]) -> MeasuredCost:
    import random

    from repro.algorithms import components_factory, id_bit_width, neighbor_exchange_rounds
    from repro.costs.ledger import CostLedger, use_ledger
    from repro.partitions import random_perfect_matching
    from repro.twoparty import BCCSimulationProtocol

    n, seed = params["n"], params["seed"]
    rng = random.Random(seed)
    pa = random_perfect_matching(n, rng)
    pb = random_perfect_matching(n, rng)
    bcc_rounds = neighbor_exchange_rounds(1, 2, id_bit_width(3 * n))
    proto = BCCSimulationProtocol(
        "two_partition", components_factory(2), bcc_rounds, mode="components"
    )
    ledger = CostLedger()
    with use_ledger(ledger):
        result = proto.run(pa, pb)
    return MeasuredCost(
        rounds=result.rounds,  # protocol turns, 2 per simulated BCC round
        bits=result.total_bits,
        env={"n": n},
        ledger_bits=ledger.total_bits(),
        details={
            "bcc_rounds": bcc_rounds,
            "alice_bits": result.alice_bits,
            "bob_bits": result.bob_bits,
            "join_correct": result.bob_output == pa.join(pb),
            "per_phase": ledger.bits_by_phase(),
        },
    )


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------
_n, _t = symbols("n t")
_W_KT1 = bits_width(_n - 1)  # ID width for IDs 0..n-1
_W_KT0 = bits_width(4 * _n - 1)  # KT-0 runs in the padded 4n ID space
_W_SIM = bits_width(3 * _n)  # the reduction graph's ID space tops out at 3n

_SPECS: List[CostSpec] = [
    CostSpec(
        name="constant_cycle",
        description="always-broadcast baseline on a one-cycle: full budget every round",
        kind="exact",
        rounds_expr=_t,
        bits_expr=_n * _t,
        measure=_measure_constant,
        quick_params={"n": 8, "rounds": 3},
        full_params={"n": 32, "rounds": 6},
    ),
    CostSpec(
        name="silent_star",
        description="always-silent algorithm: t rounds of ⊥ cost exactly 0 bits",
        kind="exact",
        rounds_expr=_t,
        bits_expr=_n * 0,
        measure=_measure_silent,
        quick_params={"n": 8, "rounds": 3},
        full_params={"n": 32, "rounds": 6},
    ),
    CostSpec(
        name="neighbor_exchange_kt0",
        description="NeighborExchange KT-0 on a one-cycle: 3W(4n-1) rounds, one bit per vertex per round",
        kind="exact",
        rounds_expr=3 * _W_KT0,
        bits_expr=3 * _n * _W_KT0,
        measure=_measure_ne_kt0,
        quick_params={"n": 8},
        full_params={"n": 32},
    ),
    CostSpec(
        name="neighbor_exchange_kt1",
        description="NeighborExchange KT-1 on a one-cycle: 2W(n-1) rounds, 2nW(n-1) bits",
        kind="exact",
        rounds_expr=2 * _W_KT1,
        bits_expr=2 * _n * _W_KT1,
        measure=_measure_ne_kt1,
        quick_params={"n": 8},
        full_params={"n": 32},
    ),
    CostSpec(
        name="two_partition_simulation",
        description="Section 4.3 Alice/Bob simulation: 4W(3n) turns, 8nW(3n) bits",
        kind="exact",
        rounds_expr=4 * _W_SIM,
        bits_expr=8 * _n * _W_SIM,
        measure=_measure_two_partition,
        quick_params={"n": 4, "seed": 5},
        full_params={"n": 8, "seed": 5},
    ),
    CostSpec(
        name="omega_total_bits_kt1",
        description="Theorem 4.4 floor: measured KT-1 connectivity bits >= n log2 n",
        kind="floor",
        rounds_expr=None,
        bits_expr=_n * log2(_n),
        measure=_measure_ne_kt1,
        quick_params={"n": 8},
        full_params={"n": 32},
    ),
    CostSpec(
        name="multicycle_round_floor",
        description="Theorem 4.4 / Lemma 4.1 floor: rounds >= log2((n-1)!!) / 4n",
        kind="floor",
        rounds_expr=log2(dfact(_n - 1)) / (4 * _n),
        bits_expr=None,
        measure=_measure_ne_kt1,
        quick_params={"n": 8},
        full_params={"n": 32},
    ),
]

_SPEC_BY_NAME: Dict[str, CostSpec] = {spec.name: spec for spec in _SPECS}


def specs() -> List[CostSpec]:
    """All bundled cost specs, in registry order."""
    return list(_SPECS)


def spec_names() -> List[str]:
    return [spec.name for spec in _SPECS]


def get_spec(name: str) -> CostSpec:
    spec = _SPEC_BY_NAME.get(name)
    if spec is None:
        raise KeyError(
            f"unknown cost spec {name!r}; known: {', '.join(spec_names())}"
        )
    return spec
