"""A symbolic cost calculus for communication-complexity predictions.

The paper's statements are closed-form functions of the model parameters
-- Theta((Delta + 1) * W) NeighborExchange rounds, 4n bits per simulated
round, Omega(n log n) total bits -- and this module makes those formulas
*first-class values*: small expression trees over named symbols (``n``,
``t``, ``W``, ...) that can be printed, composed with ordinary Python
operators, and evaluated exactly at finite parameter values. The
conformance layer (:mod:`repro.costs.conformance`) substitutes a concrete
``n`` into each protocol's declared expression and compares the result
against what the simulator actually measured, following the sympy
per-phase cost-accounting idiom of pia-mpc's ``complexity.py``.

Two backends, one answer:

* the **dependency-free evaluator** (this module's own tree walk) is the
  source of truth -- integer arithmetic stays exact (``bits``/``ceil``/
  ``floor``/``dfact`` never round through floats on int inputs), so a
  predicted bit count is an ``int`` comparable with ``==``;
* when **sympy is importable** (:data:`HAVE_SYMPY`), every expression
  also converts via :meth:`Expr.to_sympy`, and
  :func:`sympy_cross_check` re-evaluates it there -- a second,
  independently implemented opinion that the conformance checker treats
  as a self-test of the calculus. Results are identical with and
  without sympy; only the cross-check disappears.

Usage::

    n, t = symbols("n t")
    bits = n * t                     # ConstantAlgorithm on any instance
    rounds = 2 * bits_width(n - 1)   # NeighborExchange KT-1, Delta = 2
    evaluate(bits, {"n": 16, "t": 4})    # -> 64 (exact int)
"""

from __future__ import annotations

import math
from typing import Any, Dict, FrozenSet, Mapping, Tuple, Union

try:  # the optional second opinion; never required
    import sympy  # type: ignore

    HAVE_SYMPY = True
except ImportError:  # pragma: no cover - exercised via the _NoSympy stub
    sympy = None  # type: ignore
    HAVE_SYMPY = False

__all__ = [
    "HAVE_SYMPY",
    "Expr",
    "Sym",
    "Const",
    "bits_width",
    "ceil",
    "dfact",
    "evaluate",
    "floor",
    "log2",
    "symbols",
    "sympy_cross_check",
]

Number = Union[int, float]


def _wrap(value: Any) -> "Expr":
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"cannot use {value!r} in a cost expression")
    return Const(value)


class Expr:
    """Base of the expression tree; supports +, -, *, /, //, **.

    Subclasses implement :meth:`evaluate` (exact, dependency-free),
    :meth:`free_symbols`, ``__str__``, and :meth:`to_sympy`.
    """

    def evaluate(self, env: Mapping[str, Number]) -> Number:
        raise NotImplementedError

    def free_symbols(self) -> FrozenSet[str]:
        raise NotImplementedError

    def to_sympy(self) -> Any:
        raise NotImplementedError

    # -- operator sugar -------------------------------------------------
    def __add__(self, other: Any) -> "Expr":
        return BinOp("+", self, _wrap(other))

    def __radd__(self, other: Any) -> "Expr":
        return BinOp("+", _wrap(other), self)

    def __sub__(self, other: Any) -> "Expr":
        return BinOp("-", self, _wrap(other))

    def __rsub__(self, other: Any) -> "Expr":
        return BinOp("-", _wrap(other), self)

    def __mul__(self, other: Any) -> "Expr":
        return BinOp("*", self, _wrap(other))

    def __rmul__(self, other: Any) -> "Expr":
        return BinOp("*", _wrap(other), self)

    def __truediv__(self, other: Any) -> "Expr":
        return BinOp("/", self, _wrap(other))

    def __rtruediv__(self, other: Any) -> "Expr":
        return BinOp("/", _wrap(other), self)

    def __floordiv__(self, other: Any) -> "Expr":
        return BinOp("//", self, _wrap(other))

    def __rfloordiv__(self, other: Any) -> "Expr":
        return BinOp("//", _wrap(other), self)

    def __pow__(self, other: Any) -> "Expr":
        return BinOp("**", self, _wrap(other))

    def __rpow__(self, other: Any) -> "Expr":
        return BinOp("**", _wrap(other), self)

    def __neg__(self) -> "Expr":
        return BinOp("-", Const(0), self)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self!s})"


class Sym(Expr):
    """A named symbol (``n``, ``t``, ``W``, ``b``, ``error``, ...)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not name or not name.replace("_", "").isalnum():
            raise ValueError(f"symbol name must be alphanumeric, got {name!r}")
        self.name = name

    def evaluate(self, env: Mapping[str, Number]) -> Number:
        try:
            return env[self.name]
        except KeyError:
            raise KeyError(
                f"symbol {self.name!r} has no value; provided: {sorted(env)}"
            ) from None

    def free_symbols(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def to_sympy(self) -> Any:
        return sympy.Symbol(self.name, positive=True)

    def __str__(self) -> str:
        return self.name


class Const(Expr):
    """A literal int or float."""

    __slots__ = ("value",)

    def __init__(self, value: Number):
        self.value = value

    def evaluate(self, env: Mapping[str, Number]) -> Number:
        return self.value

    def free_symbols(self) -> FrozenSet[str]:
        return frozenset()

    def to_sympy(self) -> Any:
        return sympy.Integer(self.value) if isinstance(self.value, int) else sympy.Float(self.value)

    def __str__(self) -> str:
        return str(self.value)


class BinOp(Expr):
    """One arithmetic node; division is the only op that may produce floats
    from int operands (truediv), everything else preserves exactness."""

    __slots__ = ("op", "left", "right")

    _OPS = ("+", "-", "*", "/", "//", "**")

    def __init__(self, op: str, left: Expr, right: Expr):
        if op not in self._OPS:
            raise ValueError(f"unknown operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, env: Mapping[str, Number]) -> Number:
        a = self.left.evaluate(env)
        b = self.right.evaluate(env)
        if self.op == "+":
            return a + b
        if self.op == "-":
            return a - b
        if self.op == "*":
            return a * b
        if self.op == "/":
            return a / b
        if self.op == "//":
            return a // b
        return a**b

    def free_symbols(self) -> FrozenSet[str]:
        return self.left.free_symbols() | self.right.free_symbols()

    def to_sympy(self) -> Any:
        a, b = self.left.to_sympy(), self.right.to_sympy()
        if self.op == "+":
            return a + b
        if self.op == "-":
            return a - b
        if self.op == "*":
            return a * b
        if self.op == "/":
            return a / b
        if self.op == "//":
            return sympy.floor(a / b)
        return a**b

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


class Call(Expr):
    """A named function application (``bits``, ``log2``, ``ceil``, ...)."""

    __slots__ = ("fn", "args")

    #: fn -> (exact evaluator, sympy constructor)
    _FNS: Dict[str, Tuple[Any, Any]] = {}

    def __init__(self, fn: str, *args: Expr):
        if fn not in self._FNS:
            raise ValueError(f"unknown cost function {fn!r}")
        self.fn = fn
        self.args = tuple(args)

    def evaluate(self, env: Mapping[str, Number]) -> Number:
        exact, _ = self._FNS[self.fn]
        return exact(*(a.evaluate(env) for a in self.args))

    def free_symbols(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for a in self.args:
            out |= a.free_symbols()
        return out

    def to_sympy(self) -> Any:
        _, build = self._FNS[self.fn]
        return build(*(a.to_sympy() for a in self.args))

    def __str__(self) -> str:
        return f"{self.fn}({', '.join(str(a) for a in self.args)})"


# ----------------------------------------------------------------------
# the function vocabulary
# ----------------------------------------------------------------------
def _exact_bits(x: Number) -> int:
    """Fixed ID width: bits to encode integers in [0, x] -- exactly
    :func:`repro.algorithms.bit_codec.id_bit_width` (duplicated as pure
    arithmetic so the calculus stays import-free of the algorithm layer)."""
    if x != int(x) or x < 0:
        raise ValueError(f"bits() needs an integer >= 0, got {x!r}")
    return max(1, int(x).bit_length())


def _exact_dfact(x: Number) -> int:
    """Double factorial x!! (the perfect-matching count (m-1)!! behind
    rank(E_m), Lemma 4.1)."""
    if x != int(x) or x < -1:
        raise ValueError(f"dfact() needs an integer >= -1, got {x!r}")
    out, k = 1, int(x)
    while k > 1:
        out *= k
        k -= 2
    return out


def _exact_ceil(x: Number) -> int:
    return math.ceil(x)


def _exact_floor(x: Number) -> int:
    return math.floor(x)


def _exact_log2(x: Number) -> Number:
    if isinstance(x, int) and x > 0 and (x & (x - 1)) == 0:
        return x.bit_length() - 1  # powers of two stay exact ints
    return math.log2(x)


def _sympy_bits(x: Any) -> Any:
    return sympy.Max(1, sympy.floor(sympy.log(x, 2)) + 1)


def _sympy_dfact(x: Any) -> Any:
    return sympy.factorial2(x)


Call._FNS = {
    "bits": (_exact_bits, _sympy_bits),
    "dfact": (_exact_dfact, _sympy_dfact),
    "ceil": (_exact_ceil, lambda a: sympy.ceiling(a)),
    "floor": (_exact_floor, lambda a: sympy.floor(a)),
    "log2": (_exact_log2, lambda a: sympy.log(a, 2)),
}


def bits_width(x: Any) -> Expr:
    """Symbolic fixed ID width ``W`` for IDs in [0, x] (max(1, floor(log2 x) + 1))."""
    return Call("bits", _wrap(x))


def dfact(x: Any) -> Expr:
    """Symbolic double factorial ``x!!``."""
    return Call("dfact", _wrap(x))


def ceil(x: Any) -> Expr:
    return Call("ceil", _wrap(x))


def floor(x: Any) -> Expr:
    return Call("floor", _wrap(x))


def log2(x: Any) -> Expr:
    return Call("log2", _wrap(x))


def symbols(names: str) -> Tuple[Sym, ...]:
    """``symbols("n t W")`` -> a tuple of :class:`Sym`, sympy-style."""
    return tuple(Sym(name) for name in names.replace(",", " ").split())


def evaluate(expr: Any, env: Mapping[str, Number]) -> Number:
    """Evaluate an expression (or a plain number) at concrete values."""
    if isinstance(expr, (int, float)) and not isinstance(expr, bool):
        return expr
    if not isinstance(expr, Expr):
        raise TypeError(f"cannot evaluate {expr!r} as a cost expression")
    return expr.evaluate(env)


def sympy_cross_check(
    expr: Expr, env: Mapping[str, Number], tolerance: float = 1e-9
) -> bool:
    """Re-evaluate ``expr`` through sympy and compare with the exact walk.

    Returns True when sympy agrees (or trivially when sympy is absent --
    there is nothing to cross-check and the dependency-free answer
    stands). A disagreement raises ``ArithmeticError``: the two backends
    implementing one formula differently is a calculus bug, not data.
    """
    if not HAVE_SYMPY:
        return False
    own = expr.evaluate(env)
    via = expr.to_sympy().subs({sympy.Symbol(k, positive=True): v for k, v in env.items()})
    via_value = float(sympy.N(via))
    if not math.isclose(float(own), via_value, rel_tol=tolerance, abs_tol=tolerance):
        raise ArithmeticError(
            f"sympy disagrees with the exact evaluator on {expr}: "
            f"{own} (exact) vs {via_value} (sympy) at {dict(env)}"
        )
    return True
