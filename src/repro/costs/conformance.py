"""The conformance checker: measured ledgers vs symbolic predictions.

For each :class:`~repro.costs.specs.CostSpec` the checker runs the
spec's measurement, substitutes the measurement's parameters into the
spec's round/bit expressions, and compares:

* ``exact`` specs must match to the bit -- the closed form *is* the
  protocol's cost, and any drift (an extra phase, a widened encoding, a
  crashed vertex miscounted at ⊥-glyph width) is a regression;
* ``floor`` specs must be cleared -- the paper's Omega statements
  evaluated at finite n, which a measured upper-bound protocol must sit
  at or above (floats are compared with a 1e-9 slack, exact ints with
  none).

Two consistency obligations ride along: when the measurement carries an
independent :class:`~repro.costs.ledger.CostLedger` count, it must equal
the transcript-derived bit total (the ledger and ``total_bits_broadcast``
agreeing is itself part of the contract); and when sympy is importable,
every expression is re-evaluated through :meth:`Expr.to_sympy` and must
agree with the dependency-free walk -- results are identical either way,
sympy only adds the self-check.

Exposed as ``repro cost-check`` (CLI) and ``tests/costs/``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.costs.calculus import HAVE_SYMPY, Expr, evaluate, sympy_cross_check
from repro.costs.specs import CostSpec, MeasuredCost, get_spec, spec_names, specs

__all__ = ["ConformanceResult", "check_all", "check_spec"]

Number = Union[int, float]

#: Slack for float-valued floor comparisons (log2 terms); exact integer
#: comparisons use none.
_FLOAT_SLACK = 1e-9


@dataclass(frozen=True)
class ConformanceResult:
    """One spec's verdict: predictions, measurements, and any violations."""

    name: str
    kind: str
    quick: bool
    params: Dict[str, Any]
    env: Dict[str, Number]
    predicted_rounds: Optional[Number]
    measured_rounds: Number
    predicted_bits: Optional[Number]
    measured_bits: Number
    ledger_bits: Optional[int]
    sympy_checked: bool
    ok: bool
    problems: List[str] = field(default_factory=list)

    def row(self) -> List[Any]:
        """A table row for the ``repro cost-check`` CLI."""

        def fmt(value: Optional[Number]) -> Any:
            if value is None:
                return "-"
            return round(value, 3) if isinstance(value, float) else value

        relation = "==" if self.kind == "exact" else ">="
        return [
            self.name,
            self.kind,
            fmt(self.measured_rounds),
            "-" if self.predicted_rounds is None else f"{relation} {fmt(self.predicted_rounds)}",
            fmt(self.measured_bits),
            "-" if self.predicted_bits is None else f"{relation} {fmt(self.predicted_bits)}",
            "sympy+exact" if self.sympy_checked else "exact",
            "ok" if self.ok else "MISMATCH",
        ]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "quick": self.quick,
            "params": dict(self.params),
            "env": dict(self.env),
            "predicted_rounds": self.predicted_rounds,
            "measured_rounds": self.measured_rounds,
            "predicted_bits": self.predicted_bits,
            "measured_bits": self.measured_bits,
            "ledger_bits": self.ledger_bits,
            "sympy_checked": self.sympy_checked,
            "ok": self.ok,
            "problems": list(self.problems),
        }


def _conforms(kind: str, measured: Number, predicted: Number) -> bool:
    if kind == "exact":
        return measured == predicted
    # floor: measured must clear the bound; only float bounds get slack
    if isinstance(predicted, float):
        return measured >= predicted - _FLOAT_SLACK
    return measured >= predicted


def _check_expr(
    kind: str,
    label: str,
    expr: Optional[Expr],
    measured_value: Number,
    env: Dict[str, Number],
    problems: List[str],
) -> Optional[Number]:
    """Evaluate one expression, compare, cross-check; returns the prediction."""
    if expr is None:
        return None
    predicted = evaluate(expr, env)
    if not _conforms(kind, measured_value, predicted):
        relation = "==" if kind == "exact" else ">="
        problems.append(
            f"{label}: measured {measured_value} fails {relation} "
            f"{predicted} (spec {expr} at {env})"
        )
    if HAVE_SYMPY:
        # raises ArithmeticError if the two backends ever disagree --
        # that is a calculus bug, not a protocol mismatch
        sympy_cross_check(expr, env)
    return predicted


def check_spec(spec: CostSpec, quick: bool = True) -> ConformanceResult:
    """Run one spec's measurement and compare against its closed forms."""
    params = spec.params(quick)
    cost: MeasuredCost = spec.measure(params)
    problems: List[str] = []
    predicted_rounds = _check_expr(
        spec.kind, "rounds", spec.rounds_expr, cost.rounds, cost.env, problems
    )
    predicted_bits = _check_expr(
        spec.kind, "bits", spec.bits_expr, cost.bits, cost.env, problems
    )
    if cost.ledger_bits is not None and cost.ledger_bits != cost.bits:
        problems.append(
            f"ledger disagreement: CostLedger counted {cost.ledger_bits} bits "
            f"but the transcript total is {cost.bits}"
        )
    return ConformanceResult(
        name=spec.name,
        kind=spec.kind,
        quick=quick,
        params=params,
        env=dict(cost.env),
        predicted_rounds=predicted_rounds,
        measured_rounds=cost.rounds,
        predicted_bits=predicted_bits,
        measured_bits=cost.bits,
        ledger_bits=cost.ledger_bits,
        sympy_checked=HAVE_SYMPY,
        ok=not problems,
        problems=problems,
    )


def check_all(
    quick: bool = True, names: Optional[Sequence[str]] = None
) -> List[ConformanceResult]:
    """Check the named specs (default: every bundled spec), in order."""
    if names is None:
        chosen = specs()
    else:
        chosen = [get_spec(name) for name in names]
    return [check_spec(spec, quick=quick) for spec in chosen]
