"""Proof-labeling schemes in the broadcast congested clique (Section 1.3).

The paper situates its KT-0 result against proof-labeling schemes (PLS)
[KKP10; BFP15; PP17]: a *prover* assigns each vertex a label, and a
one-round distributed *verifier* must accept every correctly-labelled YES
instance and reject every labelling of a NO instance. In the broadcast
congested clique variant (Patt-Shamir & Perry), each vertex broadcasts its
label (the *verification complexity* is the label length) and then decides
from its local view plus everyone's labels.

This module provides the framework; :mod:`repro.pls.spanning_tree` gives
the classic O(log n)-bit scheme for Connectivity, and
:mod:`repro.pls.from_bcc` implements the reduction the paper sketches:
any t-round deterministic BCC(1) algorithm yields a PLS with t-character
labels -- so a PLS verification lower bound transfers to a round lower
bound.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.instance import BCCInstance

#: A labelling: vertex index -> label bit-string (over the scheme alphabet).
Labelling = Dict[int, str]


@dataclass(frozen=True)
class VertexView:
    """What one vertex sees during verification.

    Mirrors the KT-1 broadcast-verification setting of [PP17]: the vertex
    knows its own ID, its input-graph neighbors' IDs, the full ID list,
    its own label, and -- after the single broadcast round -- the label of
    every other vertex keyed by ID.
    """

    vertex_id: int
    all_ids: Tuple[int, ...]
    neighbor_ids: Tuple[int, ...]
    own_label: str
    labels_by_id: Mapping[int, str]


@dataclass
class VerificationResult:
    """Outcome of running a PLS verifier on a labelled instance."""

    accepted: bool
    rejecting_vertices: List[int]
    verification_bits: int  # the longest broadcast label

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.accepted


class ProofLabelingScheme(ABC):
    """A prover/verifier pair for a predicate on BCC instances."""

    #: Human-readable scheme name.
    name: str = "pls"

    @abstractmethod
    def predicate(self, instance: BCCInstance) -> bool:
        """The global predicate being verified (e.g. connectivity)."""

    @abstractmethod
    def prove(self, instance: BCCInstance) -> Labelling:
        """The honest prover: labels for a predicate-satisfying instance."""

    @abstractmethod
    def verify_at(self, view: VertexView) -> bool:
        """The local verifier at one vertex (True = accept)."""

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------
    def run(self, instance: BCCInstance, labels: Labelling) -> VerificationResult:
        """Broadcast all labels and evaluate every vertex's verdict."""
        labels_by_id = {
            instance.vertex_id(v): labels.get(v, "") for v in range(instance.n)
        }
        all_ids = tuple(sorted(instance.ids))
        rejecting = []
        for v in range(instance.n):
            view = VertexView(
                vertex_id=instance.vertex_id(v),
                all_ids=all_ids,
                neighbor_ids=tuple(
                    sorted(instance.vertex_id(u) for u in instance.input_neighbors(v))
                ),
                own_label=labels.get(v, ""),
                labels_by_id=labels_by_id,
            )
            if not self.verify_at(view):
                rejecting.append(v)
        return VerificationResult(
            accepted=not rejecting,
            rejecting_vertices=rejecting,
            verification_bits=max((len(l) for l in labels.values()), default=0),
        )

    def completeness_holds(self, instance: BCCInstance) -> bool:
        """YES instance + honest prover => accepted."""
        if not self.predicate(instance):
            raise ValueError("completeness is only defined on YES instances")
        return self.run(instance, self.prove(instance)).accepted

    def soundness_holds(self, instance: BCCInstance, labels: Labelling) -> bool:
        """NO instance + any labelling => rejected."""
        if self.predicate(instance):
            raise ValueError("soundness is only defined on NO instances")
        return not self.run(instance, labels).accepted
