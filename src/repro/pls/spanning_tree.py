"""The classic spanning-tree proof-labeling scheme for Connectivity.

Labels are (root ID, distance to root, parent ID), each W bits -- so the
verification complexity is 3W = O(log n) bits. Every vertex checks, from
the broadcast labels:

* everyone claims the same root;
* the root claims distance 0 and is its own parent;
* every non-root's parent is one of its *input-graph* neighbors with
  claimed distance exactly one less.

Completeness: a BFS tree of a connected graph satisfies all checks.
Soundness: distances strictly decrease along claimed parent edges, so
every vertex has a genuine input path to the claimed root -- impossible in
a disconnected graph, whatever the prover writes.

This is the O(log n) upper bound against which the Omega(log n)
*verification* lower bound of [PP17] is tight, and the scheme from which
the paper's Section 1.3 derives its context.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional

from repro.core.instance import BCCInstance
from repro.algorithms.bit_codec import decode_fixed, encode_fixed, id_bit_width
from repro.pls.scheme import Labelling, ProofLabelingScheme, VertexView


class SpanningTreePLS(ProofLabelingScheme):
    """(root, distance, parent) labels certifying connectivity."""

    name = "spanning-tree"

    def __init__(self, id_bits: Optional[int] = None):
        self._id_bits = id_bits

    def predicate(self, instance: BCCInstance) -> bool:
        return instance.input_graph().is_connected()

    # ------------------------------------------------------------------
    # prover
    # ------------------------------------------------------------------
    def prove(self, instance: BCCInstance) -> Labelling:
        width = self._width(instance)
        root = min(range(instance.n), key=instance.vertex_id)
        parent: Dict[int, int] = {root: root}
        distance: Dict[int, int] = {root: 0}
        queue = deque([root])
        while queue:
            v = queue.popleft()
            for u in sorted(instance.input_neighbors(v)):
                if u not in distance:
                    distance[u] = distance[v] + 1
                    parent[u] = v
                    queue.append(u)
        if len(distance) != instance.n:
            raise ValueError("honest prover requires a connected instance")
        labels: Labelling = {}
        for v in range(instance.n):
            labels[v] = (
                encode_fixed(instance.vertex_id(root), width)
                + encode_fixed(distance[v], width)
                + encode_fixed(instance.vertex_id(parent[v]), width)
            )
        return labels

    # ------------------------------------------------------------------
    # verifier
    # ------------------------------------------------------------------
    def verify_at(self, view: VertexView) -> bool:
        width = id_bit_width(max(view.all_ids))
        if self._id_bits is not None:
            width = self._id_bits
        parsed = _parse(view.own_label, width)
        if parsed is None:
            return False
        root, dist, parent = parsed
        if root not in view.all_ids:
            return False
        # global agreement on the root (everything is broadcast)
        for label in view.labels_by_id.values():
            other = _parse(label, width)
            if other is None or other[0] != root:
                return False
        if view.vertex_id == root:
            return dist == 0 and parent == view.vertex_id
        if dist <= 0:
            return False
        if parent not in view.neighbor_ids:
            return False
        parent_parsed = _parse(view.labels_by_id.get(parent, ""), width)
        return parent_parsed is not None and parent_parsed[1] == dist - 1

    def _width(self, instance: BCCInstance) -> int:
        if self._id_bits is not None:
            return self._id_bits
        return id_bit_width(max(instance.ids))

    def verification_complexity(self, instance: BCCInstance) -> int:
        """3W bits: the O(log n) upper bound."""
        return 3 * self._width(instance)


def _parse(label: str, width: int):
    if len(label) != 3 * width or any(c not in "01" for c in label):
        return None
    return (
        decode_fixed(label[:width]),
        decode_fixed(label[width : 2 * width]),
        decode_fixed(label[2 * width :]),
    )
