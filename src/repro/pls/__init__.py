"""Proof-labeling schemes in the broadcast clique (Section 1.3 machinery)."""

from repro.pls.from_bcc import TranscriptPLS
from repro.pls.randomized import RandomizedSpanningTreePLS
from repro.pls.scheme import (
    Labelling,
    ProofLabelingScheme,
    VerificationResult,
    VertexView,
)
from repro.pls.spanning_tree import SpanningTreePLS

__all__ = [
    "Labelling",
    "ProofLabelingScheme",
    "RandomizedSpanningTreePLS",
    "SpanningTreePLS",
    "TranscriptPLS",
    "VerificationResult",
    "VertexView",
]
