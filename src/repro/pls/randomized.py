"""Randomized proof-labeling: fingerprint-compressed verification (BFP15).

Baruch, Fraigniaud and Patt-Shamir show that a deterministic PLS with
verification complexity kappa can be made randomized (one-sided error)
with complexity O(log kappa): the verifier broadcasts *fingerprints* of
labels instead of the labels themselves. The paper leans on this in
Section 1.3 (O(log log n)-bit randomized MST verification) to highlight
how much stronger its own Omega(log n) Monte-Carlo lower bound is.

This module instantiates the mechanism on the spanning-tree scheme. Each
vertex still *holds* its full (root, distance, parent) label, but
broadcasts only ``h(root, distance)`` for a public-coin random linear hash
h over a prime field. The checks become:

* every vertex recomputes the fingerprint its parent *should* broadcast --
  h(my root, my distance - 1) -- and compares it against the parent's
  actual broadcast;
* every vertex checks the claimed root's broadcast equals h(root, 0);
* parent-is-a-neighbor and root-self-consistency are local (they use only
  the vertex's own held label).

Completeness is perfect (honest labels always accepted). Soundness is
one-sided: a cheating labelling survives only if some required-unequal
pair of (root, distance) values collides under h -- probability at most
(number of checks) / p over the public coin, measurable here exactly by
sweeping seeds.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.instance import BCCInstance
from repro.core.randomness import PublicCoin
from repro.algorithms.bit_codec import id_bit_width
from repro.pls.scheme import Labelling, VerificationResult
from repro.pls.spanning_tree import SpanningTreePLS, _parse


def _next_prime(lower: int) -> int:
    """The smallest prime >= lower (trial division; fine at these sizes)."""
    candidate = max(2, lower)
    while True:
        if all(candidate % d for d in range(2, int(candidate**0.5) + 1)):
            return candidate
        candidate += 1


class RandomizedSpanningTreePLS:
    """Spanning-tree connectivity verification at fingerprint size.

    Parameters
    ----------
    field_bits:
        The fingerprint field is the smallest prime with at least this
        many bits; the broadcast per vertex is ``field_bits``-ish bits and
        the per-check collision probability is < 2^-(field_bits - 1)
        (up to the encoding slack).
    """

    name = "randomized-spanning-tree"

    def __init__(self, field_bits: int = 16):
        if field_bits < 4:
            raise ValueError("field must have at least 4 bits")
        self._field_bits = field_bits
        self._inner = SpanningTreePLS()

    def predicate(self, instance: BCCInstance) -> bool:
        return self._inner.predicate(instance)

    def prove(self, instance: BCCInstance) -> Labelling:
        """Same labels as the deterministic scheme (held, not broadcast)."""
        return self._inner.prove(instance)

    # ------------------------------------------------------------------
    # fingerprints
    # ------------------------------------------------------------------
    def _hash_params(self, coin: PublicCoin, max_id: int) -> Tuple[int, int, int]:
        # encode (root, dist) as root * (max_id + 2) + dist < (max_id+2)^2
        bound = (max_id + 2) ** 2
        p = _next_prime(max(bound + 1, 1 << self._field_bits))
        a = coin.randint("pls-fp-a", 1, p - 1)
        b = coin.randint("pls-fp-b", 0, p - 1)
        return p, a, b

    @staticmethod
    def _encode(root: int, dist: int, max_id: int) -> int:
        return root * (max_id + 2) + min(dist, max_id + 1)

    def fingerprint(self, root: int, dist: int, coin: PublicCoin, max_id: int) -> int:
        p, a, b = self._hash_params(coin, max_id)
        return (a * self._encode(root, dist, max_id) + b) % p

    def verification_bits(self, instance: BCCInstance) -> int:
        p, _a, _b = self._hash_params(PublicCoin(), max(instance.ids))
        return p.bit_length()

    # ------------------------------------------------------------------
    # the randomized verifier
    # ------------------------------------------------------------------
    def run(
        self, instance: BCCInstance, labels: Labelling, coin: Optional[PublicCoin] = None
    ) -> VerificationResult:
        the_coin = coin if coin is not None else PublicCoin()
        max_id = max(instance.ids)
        width = id_bit_width(max_id)

        parsed: Dict[int, Optional[Tuple[int, int, int]]] = {
            v: _parse(labels.get(v, ""), width) for v in range(instance.n)
        }
        # each vertex broadcasts h(root, dist) -- or a sentinel on garbage
        broadcast: Dict[int, Optional[int]] = {}
        for v in range(instance.n):
            if parsed[v] is None:
                broadcast[instance.vertex_id(v)] = None
            else:
                root, dist, _parent = parsed[v]
                broadcast[instance.vertex_id(v)] = self.fingerprint(
                    root, dist, the_coin, max_id
                )

        rejecting: List[int] = []
        for v in range(instance.n):
            if not self._verify_vertex(instance, v, parsed[v], broadcast, the_coin, max_id):
                rejecting.append(v)
        return VerificationResult(
            accepted=not rejecting,
            rejecting_vertices=rejecting,
            verification_bits=self.verification_bits(instance),
        )

    def _verify_vertex(self, instance, v, own, broadcast, coin, max_id) -> bool:
        if own is None:
            return False
        root, dist, parent = own
        ids = set(instance.ids)
        if root not in ids:
            return False
        me = instance.vertex_id(v)
        if me == root:
            return dist == 0 and parent == me
        if dist <= 0:
            return False
        neighbor_ids = {instance.vertex_id(u) for u in instance.input_neighbors(v)}
        if parent not in neighbor_ids:
            return False
        # fingerprint checks replace reading the labels themselves
        expected_parent = self.fingerprint(root, dist - 1, coin, max_id)
        if broadcast.get(parent) != expected_parent:
            return False
        expected_root = self.fingerprint(root, 0, coin, max_id)
        return broadcast.get(root) == expected_root

    # ------------------------------------------------------------------
    # measurement helpers
    # ------------------------------------------------------------------
    def completeness_holds(self, instance: BCCInstance, seeds: Sequence[str] = ("a", "b", "c")) -> bool:
        """Honest labels must be accepted under *every* coin."""
        labels = self.prove(instance)
        return all(self.run(instance, labels, PublicCoin(s)).accepted for s in seeds)

    def soundness_rejection_rate(
        self, instance: BCCInstance, labels: Labelling, seeds: Sequence[str]
    ) -> float:
        """Fraction of coins under which a cheating labelling is rejected.

        BFP15-style one-sided error: this should be 1 - O(1/p); the tests
        sweep seeds and assert a high measured rate.
        """
        rejected = sum(
            0 if self.run(instance, labels, PublicCoin(s)).accepted else 1
            for s in seeds
        )
        return rejected / len(seeds)
