"""From BCC algorithms to proof-labeling schemes (the Section 1.3 bridge).

The paper's related-work discussion derives its deterministic KT-0 bound
from proof-labeling schemes: *"if there were a faster BCC(1) Connectivity
algorithm, the prover could use the transcript of the algorithm at each
vertex v as the label at v. The verifier could then broadcast these
transcripts and locally, at each vertex v, simulate the algorithm at v."*

:class:`TranscriptPLS` implements exactly that: given a t-round
deterministic BCC(1) algorithm,

* the **prover** labels each vertex with the t characters it broadcasts
  (packed at 2 bits per {0, 1, ⊥} character: 2t-bit labels);
* the **verifier** at vertex v replays v's own node algorithm against the
  *claimed* characters of the other vertices (each claimed label arrives
  on the wire of its sender, so v feeds it to the correct port), checking
  that v's own recomputed broadcasts match its claimed label and that v's
  final output is YES.

Completeness: honest labels are the real sent sequences, so every check
passes iff the algorithm answers YES. Soundness: if every vertex accepts,
an induction over rounds shows the claimed characters *are* the genuine
execution's characters, hence the outputs are the algorithm's outputs --
and a correct algorithm says NO somewhere on a disconnected instance.

Consequence (executable here, proved in [PP17]): the Omega(log n) lower
bound on PLS verification complexity for connectivity-type predicates
transfers to t = Omega(log n) for deterministic BCC(1) algorithms.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.algorithm import YES, AlgorithmFactory
from repro.core.instance import BCCInstance
from repro.core.randomness import PublicCoin
from repro.core.simulator import Simulator
from repro.algorithms.bit_codec import pack_symbols, unpack_symbols
from repro.pls.scheme import Labelling, VerificationResult


class TranscriptPLS:
    """The transcript-as-label scheme built from a BCC(1) algorithm."""

    name = "transcript"

    def __init__(
        self,
        simulator: Simulator,
        factory: AlgorithmFactory,
        rounds: int,
        coin: Optional[PublicCoin] = None,
    ):
        self.simulator = simulator
        self.factory = factory
        self.rounds = rounds
        self.coin = coin if coin is not None else PublicCoin()

    def predicate(self, instance: BCCInstance) -> bool:
        return instance.input_graph().is_connected()

    # ------------------------------------------------------------------
    # prover
    # ------------------------------------------------------------------
    def prove(self, instance: BCCInstance) -> Labelling:
        """Labels = the real execution's per-vertex sent sequences."""
        run = self.simulator.run(instance, self.factory, self.rounds, coin=self.coin)
        return {
            v: pack_symbols(list(run.sent_sequence(v)) + [""] * (self.rounds - run.rounds_executed))
            for v in range(instance.n)
        }

    # ------------------------------------------------------------------
    # verifier
    # ------------------------------------------------------------------
    def run(self, instance: BCCInstance, labels: Labelling) -> VerificationResult:
        """Replay every vertex locally against the claimed characters."""
        claimed: Dict[int, List[str]] = {}
        for v in range(instance.n):
            label = labels.get(v, "")
            try:
                claimed[v] = unpack_symbols(label, self.rounds)
            except ValueError:
                claimed[v] = None  # malformed label: automatic reject
        rejecting: List[int] = []
        for v in range(instance.n):
            if claimed[v] is None or not self._verify_vertex(instance, v, claimed):
                rejecting.append(v)
        return VerificationResult(
            accepted=not rejecting,
            rejecting_vertices=rejecting,
            verification_bits=max((len(l) for l in labels.values()), default=0),
        )

    def _verify_vertex(
        self, instance: BCCInstance, v: int, claimed: Dict[int, Optional[List[str]]]
    ) -> bool:
        """Re-run v's own node program against the claimed characters."""
        for u in range(instance.n):
            if claimed[u] is None:
                return False
        node = self.factory()
        node.setup(self.simulator.initial_knowledge(instance, v, self.coin))
        for t in range(1, self.rounds + 1):
            mine = node.broadcast(t)
            if mine != claimed[v][t - 1]:
                return False
            received = {
                instance.port_to_peer(v, u): claimed[u][t - 1]
                for u in range(instance.n)
                if u != v
            }
            node.receive(t, received)
        return node.output() == YES

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    def verification_complexity(self) -> int:
        """2t bits: two bits per broadcast character."""
        return 2 * self.rounds

    def completeness_holds(self, instance: BCCInstance) -> bool:
        if not self.predicate(instance):
            raise ValueError("completeness is only defined on YES instances")
        return self.run(instance, self.prove(instance)).accepted

    def soundness_holds(self, instance: BCCInstance, labels: Labelling) -> bool:
        if self.predicate(instance):
            raise ValueError("soundness is only defined on NO instances")
        return not self.run(instance, labels).accepted
