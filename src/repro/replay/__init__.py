"""repro.replay: record, replay, rewind, and verify deterministic sessions.

The session layer turns any of the repo's deterministic engines into a
recorded artifact: a crash-safe JSONL log (trace-v5 wire format) of
parameters, steps, and result that can be byte-identically re-executed
(:func:`replay_session`), navigated step by step
(:class:`SessionCursor`), or branched into counterfactuals that provably
share the recorded past. See ``docs/SESSIONS.md`` for the file format.
"""

from repro.replay.engines import (
    RECORD_KINDS,
    execute_record,
    execute_run,
    record_session,
)
from repro.replay.session import SessionCursor
from repro.replay.store import (
    ENVELOPE_FIELDS,
    SESSION_SCHEMA_VERSION,
    RecordedSession,
    SessionStore,
    read_session,
    round_digest,
    validate_session_events,
)
from repro.replay.verify import (
    Divergence,
    ReplayReport,
    compare_sessions,
    replay_session,
)

__all__ = [
    "Divergence",
    "ENVELOPE_FIELDS",
    "RECORD_KINDS",
    "RecordedSession",
    "ReplayReport",
    "SESSION_SCHEMA_VERSION",
    "SessionCursor",
    "SessionStore",
    "compare_sessions",
    "execute_record",
    "execute_run",
    "read_session",
    "record_session",
    "replay_session",
    "round_digest",
    "validate_session_events",
]
