"""Replay verification: re-execute a recorded session and diff per step.

The verifier is the payoff of the whole record/replay layer: because
every engine is deterministic given its ``params`` header (seeded fault
RNG, seeded network RNG, seeded public coin, seeded sampling RNG), a
replayed session must be byte-identical to the recorded one -- not
"close", identical. :func:`replay_session` re-executes the header into
an in-memory session log and compares the two logs step by step
(post-JSON, envelope stripped, so representation quirks cannot create
false divergences), then compares the result payloads.

A mismatch means one of exactly three things: the log was tampered with
or corrupted mid-file, the code changed behavior since recording, or a
determinism bug crept in. All three are things the user wants to hear
about loudly, so the CLI maps a :class:`Divergence` to exit code 4.

Truncated sessions (hard kill or SIGINT mid-record) are *partial*, not
divergent: the recorded prefix is compared against the replay's prefix
and the absent tail and result are simply not compared.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, TextIO, Union

from repro.replay.store import RecordedSession, read_session

__all__ = [
    "Divergence",
    "ReplayReport",
    "compare_sessions",
    "diff_steps",
    "replay_session",
]


@dataclass(frozen=True)
class Divergence:
    """The first point where the replay disagrees with the recording."""

    location: str  #: "step 3", "result", or "step count"
    field: Optional[str]  #: first differing key inside the step/result
    recorded: Any
    replayed: Any

    def describe(self) -> str:
        where = self.location if self.field is None else f"{self.location}.{self.field}"
        return (
            f"first divergence at {where}: "
            f"recorded={self.recorded!r} replayed={self.replayed!r}"
        )


@dataclass
class ReplayReport:
    """Outcome of one record-vs-replay comparison."""

    run_id: str
    kind: str
    steps_recorded: int
    steps_replayed: int
    steps_compared: int
    result_compared: bool
    partial: bool  #: the recording was truncated (no complete seal)
    divergence: Optional[Divergence] = None
    replayed: Optional[RecordedSession] = field(default=None, repr=False)

    @property
    def matched(self) -> bool:
        return self.divergence is None

    def describe(self) -> str:
        status = "MATCH" if self.matched else "DIVERGED"
        lines = [
            f"replay {status}: session {self.run_id} (kind={self.kind})",
            f"  steps: {self.steps_compared} compared"
            f" ({self.steps_recorded} recorded, {self.steps_replayed} replayed)"
            + (" [partial recording]" if self.partial else ""),
            f"  result: {'compared' if self.result_compared else 'not compared'}",
        ]
        if self.divergence is not None:
            lines.append("  " + self.divergence.describe())
        return "\n".join(lines)


def _first_differing_field(recorded: Any, replayed: Any) -> Optional[str]:
    if isinstance(recorded, dict) and isinstance(replayed, dict):
        for key in sorted(set(recorded) | set(replayed)):
            if recorded.get(key) != replayed.get(key):
                return key
    return None


def diff_steps(
    recorded: Dict[str, Any], replayed: Dict[str, Any], location: str
) -> Optional[Divergence]:
    """First divergence between two stripped step dicts, or None."""
    if recorded == replayed:
        return None
    key = _first_differing_field(recorded, replayed)
    if key is None:
        return Divergence(location, None, recorded, replayed)
    return Divergence(location, key, recorded.get(key), replayed.get(key))


def compare_sessions(
    recorded: RecordedSession, replayed: RecordedSession
) -> ReplayReport:
    """Diff two parsed sessions; recorded may be a truncated prefix."""
    compared = min(recorded.step_count, replayed.step_count)
    divergence: Optional[Divergence] = None
    for index in range(compared):
        divergence = diff_steps(
            recorded.step(index), replayed.step(index), f"step {index}"
        )
        if divergence is not None:
            break
    result_compared = False
    if divergence is None and recorded.complete:
        # A sealed recording pins the full shape: the replay must have
        # exactly as many steps and an equal result payload.
        if replayed.step_count != recorded.step_count:
            divergence = Divergence(
                "step count", None, recorded.step_count, replayed.step_count
            )
        elif recorded.result != replayed.result:
            result_compared = True
            key = _first_differing_field(recorded.result, replayed.result)
            divergence = Divergence(
                "result",
                key,
                recorded.result if key is None else (recorded.result or {}).get(key),
                replayed.result if key is None else (replayed.result or {}).get(key),
            )
        else:
            result_compared = True
    return ReplayReport(
        run_id=recorded.run_id,
        kind=recorded.kind,
        steps_recorded=recorded.step_count,
        steps_replayed=replayed.step_count,
        steps_compared=compared,
        result_compared=result_compared,
        partial=not recorded.complete,
        divergence=divergence,
        replayed=replayed,
    )


def replay_session(source: Union[str, TextIO, RecordedSession]) -> ReplayReport:
    """Re-execute a recorded session and report the first divergence.

    ``source`` is a session-log path, an open text stream, or an
    already-parsed :class:`RecordedSession`. The replay runs the same
    engine from the same ``params`` header into an in-memory log (the
    original file is never written), and both sides are compared after
    the same JSON round-trip.
    """
    from repro.replay.engines import record_session

    recorded = (
        source if isinstance(source, RecordedSession) else read_session(source)
    )
    buffer = io.StringIO()
    record_session(recorded.kind, recorded.params, buffer, run_id=recorded.run_id)
    replayed = read_session(io.StringIO(buffer.getvalue()))
    return compare_sessions(recorded, replayed)
