"""Step-addressable navigation over recorded sessions: rewind and branch.

A :class:`SessionCursor` treats a recorded session as a tape of steps
(for ``run`` sessions, one step per simulator round, carrying the
round's broadcasts, per-vertex transcript digests, fault and delivery
events, and RNG digests). ``rewind(t)`` / ``step()`` move a position
along the tape with no re-execution at all -- the log is the state.

``branch()`` is where determinism pays out: re-execute the session's
header with overridden parameters (a different fault plan from round t,
more rounds, a tampered channel) and *prove* the counterfactual shares
the original's past by checking per-step digest prefix agreement up to
the cursor. This mirrors the paper's indistinguishability argument --
two executions whose per-round digests agree on a prefix are
indistinguishable to every vertex through that prefix -- so a branch
that passes the check is a legitimate "what if the adversary had acted
differently *from here*" experiment, and one that fails raises
:class:`~repro.errors.ReplayDivergenceError` naming the first round of
disagreement rather than silently comparing apples to oranges.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, TextIO, Union

from repro.errors import ReplayDivergenceError, SessionError
from repro.replay.store import RecordedSession, read_session

__all__ = ["SessionCursor"]

#: Step fields compared for prefix agreement when branching. Digests pin
#: the full per-vertex transcript state; broadcasts pin the wire.
_PREFIX_FIELDS = ("digests", "broadcasts", "t")


class SessionCursor:
    """A movable position over a :class:`RecordedSession`'s steps."""

    def __init__(self, source: Union[str, TextIO, RecordedSession]):
        self._session = (
            source if isinstance(source, RecordedSession) else read_session(source)
        )
        self._position = 0

    # -- introspection ----------------------------------------------------
    @property
    def session(self) -> RecordedSession:
        return self._session

    @property
    def position(self) -> int:
        """Index of the step the cursor stands on (0-based)."""
        return self._position

    @property
    def exhausted(self) -> bool:
        return self._position >= self._session.step_count

    def current(self) -> Dict[str, Any]:
        """The step under the cursor (envelope already stripped)."""
        return self._session.step(self._position)

    # -- movement ---------------------------------------------------------
    def rewind(self, t: int) -> Dict[str, Any]:
        """Move the cursor to step ``t`` and return that step.

        For ``run`` sessions steps are rounds, so ``rewind(t)`` lands on
        round ``t`` exactly; for batch sessions it is a plain index.
        """
        if not 0 <= t < self._session.step_count:
            raise SessionError(
                f"cannot rewind to step {t}: session has "
                f"{self._session.step_count} steps"
            )
        self._position = t
        return self.current()

    def step(self) -> Dict[str, Any]:
        """Return the step under the cursor, then advance by one."""
        record = self.current()  # raises past the end
        self._position += 1
        return record

    # -- counterfactuals --------------------------------------------------
    def branch(
        self,
        overrides: Optional[Mapping[str, Any]] = None,
        sink: Optional[str] = None,
    ) -> RecordedSession:
        """Re-execute with ``overrides`` merged into the header params.

        The branched execution must agree with the recording on every
        step *before* the cursor (compared on round number, broadcasts,
        and per-vertex digests); an override that changes the past --
        e.g. a fault plan already active before the rewind point --
        raises :class:`~repro.errors.ReplayDivergenceError` carrying the
        first divergence. Returns the branched session, parsed; the
        recording on disk is never touched. ``sink`` (a path) saves the
        branched session log -- written only *after* the prefix check
        passes, so a divergent branch never leaves a file behind.

        With no overrides this is a pure replay of the prefix (and the
        check then extends to the full session via
        :func:`repro.replay.verify.replay_session`, which callers should
        prefer for verification).
        """
        import io

        from repro.replay.engines import record_session
        from repro.replay.verify import diff_steps

        params = dict(self._session.params)
        if overrides:
            params.update(overrides)
        buffer = io.StringIO()
        record_session(
            self._session.kind, params, buffer, run_id=self._session.run_id
        )
        branched = read_session(io.StringIO(buffer.getvalue()))
        prefix = min(self._position, branched.step_count)
        if branched.step_count < self._position:
            raise ReplayDivergenceError(
                f"branch ended after {branched.step_count} steps, before the "
                f"rewind point ({self._position}); overrides changed the past",
            )
        for index in range(prefix):
            recorded = _prefix_view(self._session.step(index))
            candidate = _prefix_view(branched.step(index))
            divergence = diff_steps(recorded, candidate, f"step {index}")
            if divergence is not None:
                raise ReplayDivergenceError(
                    "branch diverges before the rewind point -- "
                    + divergence.describe(),
                    divergence=divergence,
                )
        if sink is not None:
            with open(sink, "w", encoding="utf-8") as handle:
                handle.write(buffer.getvalue())
        return branched


def _prefix_view(step: Mapping[str, Any]) -> Dict[str, Any]:
    """The prefix-agreement projection of a step.

    Run-session steps compare on round/broadcasts/digests (fault and
    delivery *events* may legitimately differ under a branched plan even
    while the delivered state agrees); batch-session steps have none of
    those fields and fall back to whole-step comparison.
    """
    view = {k: step[k] for k in _PREFIX_FIELDS if k in step}
    return view if view else dict(step)
