"""The step-addressable session store: record once, re-execute forever.

A *session log* is a crash-safe JSONL file on the trace v5 wire format
(envelope ``run_id`` / ``seq`` / ``ts`` / ``event`` per line, parsed and
torn-tail-tolerated by :func:`repro.obs.read_trace`) that captures one
execution completely enough to re-run it bit-identically::

    {"event": "trace_start",   "schema_version": 5, ...}
    {"event": "session_start", "session_version": 1, "kind": "run",
     "params": {...everything needed to rebuild the execution...}}
    {"event": "step", "step": 0, "t": 1, "broadcasts": [...],
     "digests": ["sha256...", ...], "faults": [...], "deliveries": [...],
     "rng": {"faults": "sha256...", "net": null}, "all_finished": false}
    ...
    {"event": "result",      "payload": {...normalized outcome...}}
    {"event": "session_end", "steps": 7, "complete": true,
     "interrupted": false}

For simulator runs a step is one synchronous round: the on-channel
broadcast vector, a per-vertex SHA-256 digest of that round's transcript
record (``RoundRecord.comparable()`` -- two executions agree on every
per-round digest prefix iff every vertex's ``state_view`` prefix agrees),
the fault and delivery events injected that round, and the post-round
RNG state digests of the fault and channel layers. For the batch engines
(exhaustive / sampling / ranks / fault-sweep) a step is one unit of the
computation (a report, a curve point).

Crash safety is the trace contract plus two session-specific pieces:

* every line write goes through :func:`repro.resilience.retry_transient`
  (bounded retries on transient ``OSError``/EINTR), with the partially
  written tail rolled back (seek + truncate) before each retry so a
  retried line can never corrupt the middle of the file;
* an open store registers with
  :func:`repro.resilience.register_flush_hook`, so
  ``graceful_interrupts`` seals the log with an
  ``interrupted`` ``session_end`` on SIGINT/SIGTERM -- a killed run
  replays cleanly up to its last complete step.

Parallel recording: workers cannot share one append stream, so sharded
engines write *segment files* (``<path>.shard-<k>``) in completion order
and :meth:`SessionStore.merge_shard_steps` folds them into the main log
in shard-index order -- the same order-invariance discipline as the
:mod:`repro.parallel.merge` monoids, so the recorded session is
independent of worker scheduling.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, TextIO, Tuple, Union

from repro.errors import SessionError
from repro.obs.trace import TRACE_SCHEMA_VERSION, read_trace, validate_trace_events
from repro.resilience.interrupt import register_flush_hook, unregister_flush_hook
from repro.resilience.retry import retry_transient

__all__ = [
    "SESSION_SCHEMA_VERSION",
    "RecordedSession",
    "SessionStore",
    "read_session",
    "round_digest",
    "validate_session_events",
]

#: Bump when the session-log surface changes incompatibly.
SESSION_SCHEMA_VERSION = 1

#: Envelope fields stamped by the writer; stripped before comparisons.
ENVELOPE_FIELDS = ("run_id", "seq", "ts")


def round_digest(record) -> str:
    """SHA-256 of one vertex's :class:`RoundRecord` in canonical JSON.

    Digesting ``RoundRecord.comparable()`` -- ``(sent, sorted received
    port/message pairs)`` -- makes per-step comparison exactly the
    paper's ``state_view`` comparison: two executions whose digests
    agree on a prefix are indistinguishable to every vertex over it.
    """
    comparable = record.comparable()
    blob = json.dumps(comparable, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class SessionStore:
    """Writes one execution's session log; the simulator's ``session`` hook.

    Parameters mirror :class:`repro.obs.RunTrace`: ``sink`` is a path
    (opened line-buffered for append) or an open text stream (ownership
    stays with the caller), ``fsync`` forces every line to disk. The
    store is thread-safe and idempotently closeable; it seals itself
    with an ``interrupted`` session_end if the process is interrupted
    inside :func:`repro.resilience.graceful_interrupts`.
    """

    def __init__(
        self,
        sink: Union[str, TextIO],
        run_id: Optional[str] = None,
        fsync: bool = False,
    ):
        self.run_id = run_id if run_id is not None else uuid.uuid4().hex
        self._lock = threading.RLock()
        self._seq = 0
        self._steps = 0
        self._path: Optional[str] = None
        if isinstance(sink, (str, bytes)):
            self._path = os.fspath(sink)
            self._stream: TextIO = open(sink, "a", encoding="utf-8", buffering=1)
            self._owns_stream = True
        else:
            self._stream = sink
            self._owns_stream = False
        self._fsync = fsync
        self._closed = False
        self._started = False
        self._finished = False
        self._shard_buffers: Dict[int, List[Dict[str, Any]]] = {}
        self._flush_handle = register_flush_hook(self.interrupt)
        self._emit("trace_start", schema_version=TRACE_SCHEMA_VERSION)

    # -- writer core ----------------------------------------------------
    def _emit(self, event: str, **fields: Any) -> Dict[str, Any]:
        """Append one event line, retrying transient I/O errors.

        A failed attempt rolls the stream back to the line boundary
        (seek + truncate, when the sink supports it) before retrying, so
        retries can only ever re-write the *final* line -- mid-file
        corruption stays impossible and the torn-tail reader contract
        holds.
        """
        with self._lock:
            if self._closed:
                raise SessionError("session store is closed")
            record: Dict[str, Any] = {
                "run_id": self.run_id,
                "seq": self._seq,
                "ts": time.time(),
                "event": event,
            }
            record.update(fields)
            line = json.dumps(record, sort_keys=False, default=_jsonable) + "\n"

            def attempt() -> None:
                try:
                    position = self._stream.tell()
                except (OSError, io.UnsupportedOperation, ValueError):
                    position = None
                try:
                    self._stream.write(line)
                    self._stream.flush()
                    if self._fsync:
                        os.fsync(self._stream.fileno())
                except OSError:
                    if position is not None:
                        try:
                            self._stream.seek(position)
                            self._stream.truncate()
                        except (OSError, io.UnsupportedOperation):
                            pass
                    raise
                except (AttributeError, io.UnsupportedOperation):
                    pass  # in-memory sinks have no file descriptor to fsync

            retry_transient(attempt)
            self._seq += 1
            return record

    # -- lifecycle -------------------------------------------------------
    def start(self, kind: str, params: Mapping[str, Any]) -> None:
        """Write the session header; must precede any step."""
        with self._lock:
            if self._started:
                raise SessionError("session already started")
            self._started = True
            self._emit(
                "session_start",
                kind=kind,
                session_version=SESSION_SCHEMA_VERSION,
                params=dict(params),
            )

    def record_round(
        self,
        t: int,
        messages: Sequence[str],
        transcripts,
        all_finished: bool,
        fault_events: Sequence = (),
        net_events: Sequence = (),
        fault_rng: Optional[str] = None,
        net_rng: Optional[str] = None,
    ) -> None:
        """One simulator round -> one step event (the Simulator hook)."""
        with self._lock:
            digests = [round_digest(tr.record(t)) for tr in transcripts]
            self._emit(
                "step",
                step=self._steps,
                t=t,
                broadcasts=list(messages),
                digests=digests,
                all_finished=all_finished,
                faults=[event.as_dict() for event in fault_events],
                deliveries=[event.as_dict() for event in net_events],
                rng={"faults": fault_rng, "net": net_rng},
            )
            self._steps += 1

    def write_step(self, name: str, data: Mapping[str, Any]) -> None:
        """One generic engine step (a report, a sweep cell, a rank row)."""
        with self._lock:
            self._emit("step", step=self._steps, name=name, data=dict(data))
            self._steps += 1

    def write_result(self, payload: Mapping[str, Any]) -> None:
        """The execution's normalized outcome (volatile fields zeroed)."""
        self._emit("result", payload=dict(payload))

    def finish(self, complete: bool = True) -> None:
        """Seal the log with a ``session_end`` and close the store."""
        with self._lock:
            if self._finished:
                return
            self._finished = True
            self._emit(
                "session_end",
                steps=self._steps,
                complete=complete,
                interrupted=False,
            )
            self.close()

    def interrupt(self) -> None:
        """Seal the log as interrupted (idempotent; the SIGINT/SIGTERM hook)."""
        with self._lock:
            if self._finished or self._closed:
                return
            self._finished = True
            try:
                self._emit(
                    "session_end",
                    steps=self._steps,
                    complete=False,
                    interrupted=True,
                )
            finally:
                self.close()

    def close(self) -> None:
        """Idempotent close; only closes streams this store opened."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            unregister_flush_hook(self._flush_handle)
            try:
                self._stream.flush()
            except (OSError, ValueError):
                pass
            if self._owns_stream:
                self._stream.close()

    def __enter__(self) -> "SessionStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    @property
    def steps_recorded(self) -> int:
        return self._steps

    @property
    def closed(self) -> bool:
        return self._closed

    # -- shard segments ---------------------------------------------------
    def shard_segment_path(self, shard: int) -> Optional[str]:
        """Where shard ``shard`` appends its steps (None for stream sinks)."""
        if self._path is None:
            return None
        return f"{self._path}.shard-{shard}"

    def write_shard_step(self, shard: int, name: str, data: Mapping[str, Any]) -> None:
        """Append one step to shard ``shard``'s segment, in completion order.

        Segments are plain JSONL (one ``{"name", "data"}`` object per
        line) with no envelope: step numbering is assigned only at merge
        time, in shard-index order, so the final log is independent of
        which worker finished first. Stream-sink stores buffer segments
        in memory instead (tests, in-process recording).
        """
        path = self.shard_segment_path(shard)
        entry = {"name": name, "data": dict(data)}
        if path is None:
            with self._lock:
                self._shard_buffers.setdefault(shard, []).append(entry)
            return
        line = json.dumps(entry, sort_keys=False, default=_jsonable) + "\n"

        def attempt() -> None:
            with open(path, "a", encoding="utf-8") as handle:
                handle.write(line)
                handle.flush()

        retry_transient(attempt)

    def merge_shard_steps(self, shards: int) -> int:
        """Fold segments 0..shards-1 into the main log; returns steps merged.

        Shard-index order makes the merge order-invariant (the
        :mod:`repro.parallel.merge` discipline); consumed segment files
        are deleted so a sealed session is a single self-contained log.
        """
        merged = 0
        for shard in range(shards):
            path = self.shard_segment_path(shard)
            if path is None:
                entries = self._shard_buffers.pop(shard, [])
            else:
                entries = []
                try:
                    with open(path, "r", encoding="utf-8") as handle:
                        for line in handle:
                            line = line.strip()
                            if line:
                                entries.append(json.loads(line))
                except FileNotFoundError:
                    entries = []
            for entry in entries:
                self.write_step(entry["name"], entry["data"])
                merged += 1
            if path is not None:
                try:
                    os.unlink(path)
                except OSError:
                    pass
        return merged


def _jsonable(value: Any) -> Any:
    """json.dumps fallback for tuples-in-dicts and exotic values."""
    if isinstance(value, (list, tuple)):
        return list(value)
    return repr(value)


# ----------------------------------------------------------------------
# reading and validation
# ----------------------------------------------------------------------
@dataclass
class RecordedSession:
    """A parsed session log, step-addressable and replayable."""

    run_id: str
    kind: str
    params: Dict[str, Any]
    session_version: int
    steps: List[Dict[str, Any]] = field(default_factory=list)
    result: Optional[Dict[str, Any]] = None
    complete: bool = False
    interrupted: bool = False

    @property
    def step_count(self) -> int:
        return len(self.steps)

    def step(self, index: int) -> Dict[str, Any]:
        """Step ``index`` (0-based) with the envelope stripped."""
        if not 0 <= index < len(self.steps):
            raise SessionError(
                f"step {index} not in session of {len(self.steps)} steps"
            )
        return self.steps[index]


def validate_session_events(events: List[Dict[str, Any]]) -> List[str]:
    """Schema violations for a parsed session log (empty = valid).

    Layered on :func:`repro.obs.validate_trace_events` (envelope and
    per-event field shapes), then the session-structure contract:
    exactly one ``session_start`` right after the header, step indices
    contiguous from 0, at most one ``result`` (after all steps), and a
    final ``session_end`` whose ``steps`` matches the count -- absent
    only in truncated (crashed/interrupted-before-seal) logs, which are
    valid *partial* sessions.
    """
    problems = list(validate_trace_events(events))
    if not events:
        return problems
    starts = [e for e in events if e.get("event") == "session_start"]
    if not starts:
        problems.append("session log has no session_start event")
        return problems
    if len(starts) > 1:
        problems.append(f"session log has {len(starts)} session_start events")
    start = starts[0]
    version = start.get("session_version")
    if isinstance(version, int) and version > SESSION_SCHEMA_VERSION:
        problems.append(
            f"session_version {version} is newer than supported "
            f"{SESSION_SCHEMA_VERSION}"
        )
    if events[0].get("event") == "trace_start" and events[1] is not start:
        problems.append("session_start is not the first event after trace_start")
    expected_step = 0
    seen_result = False
    seen_end = False
    for index, event in enumerate(events):
        name = event.get("event")
        if seen_end and name in ("step", "result", "session_end"):
            problems.append(f"event {index} appears after session_end")
        if name == "step":
            if seen_result:
                problems.append(f"step event {index} appears after result")
            if event.get("step") != expected_step:
                problems.append(
                    f"step event {index} has step={event.get('step')!r}, "
                    f"expected {expected_step} (steps must be contiguous from 0)"
                )
            expected_step += 1
        elif name == "result":
            if seen_result:
                problems.append(f"session log has a second result at event {index}")
            seen_result = True
        elif name == "session_end":
            seen_end = True
            steps = event.get("steps")
            if isinstance(steps, int) and steps != expected_step:
                problems.append(
                    f"session_end declares {steps} steps but {expected_step} "
                    f"were recorded"
                )
    return problems


def read_session(source: Union[str, TextIO]) -> RecordedSession:
    """Parse (and validate) a session log into a :class:`RecordedSession`.

    Tolerates a torn final line and a missing seal -- a truncated log
    (hard kill mid-record) comes back as a valid partial session with
    ``complete=False`` -- but raises :class:`~repro.errors.SessionError`
    on any structural violation earlier in the file.
    """
    try:
        events = read_trace(source)
    except (OSError, ValueError) as exc:
        raise SessionError(f"cannot read session log: {exc}") from exc
    problems = validate_session_events(events)
    if problems:
        summary = "; ".join(problems[:3])
        more = f" (+{len(problems) - 3} more)" if len(problems) > 3 else ""
        raise SessionError(f"invalid session log: {summary}{more}")
    start = next(e for e in events if e.get("event") == "session_start")
    steps = [
        _strip_envelope(e) for e in events if e.get("event") == "step"
    ]
    result = None
    complete = False
    interrupted = False
    for event in events:
        if event.get("event") == "result":
            result = event.get("payload")
        elif event.get("event") == "session_end":
            complete = bool(event.get("complete"))
            interrupted = bool(event.get("interrupted"))
    return RecordedSession(
        run_id=str(start.get("run_id")),
        kind=str(start.get("kind")),
        params=dict(start.get("params", {})),
        session_version=int(start.get("session_version", 0)),
        steps=steps,
        result=result,
        complete=complete,
        interrupted=interrupted,
    )


def _strip_envelope(event: Mapping[str, Any]) -> Dict[str, Any]:
    return {k: v for k, v in event.items() if k not in ENVELOPE_FIELDS}
