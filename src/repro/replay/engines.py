"""The execution engines a session can record and re-run.

A recorded session is only as replayable as its header: ``params`` must
pin *everything* the execution depends on. This module is the registry
that maps a ``(kind, params)`` pair to a deterministic execution --
used identically by ``repro record`` (live, writing the session) and
``repro replay`` (re-executing from the header), which is what makes
record -> replay a pure function comparison rather than a best-effort
diff.

Kinds
-----
``run``
    One simulator execution of a harness algorithm on a cycle instance,
    optionally under fault and/or network plans. The rewindable kind:
    every round becomes a step (broadcasts, per-vertex digests, fault and
    delivery events, RNG digests). Runs with a private
    :class:`~repro.costs.CostLedger` so ``cost_summary`` lands in the
    recorded result -- replay must reproduce it bit-for-bit.
``exhaustive`` / ``sampling`` / ``ranks`` / ``fault-sweep``
    The repo's batch engines. Steps are the engines' natural units
    (a report, a rank row, a sweep cell); results are the engines'
    payloads with volatile fields (timestamps, wall time) zeroed.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Tuple

from repro.errors import SessionError
from repro.replay.store import SessionStore

__all__ = ["RECORD_KINDS", "execute_record", "execute_run", "record_session"]

#: The session kinds ``repro record`` / ``repro replay`` understand.
RECORD_KINDS = ("run", "exhaustive", "sampling", "ranks", "fault-sweep")


def execute_run(params: Mapping[str, Any], session=None, trace=None, metrics=None):
    """Run one simulator execution from a ``run`` header; returns RunResult.

    Exposed separately from :func:`execute_record` so golden tests (and
    the rewind cursor's branch re-execution) can compare full
    :class:`~repro.core.simulator.RunResult` objects, not just payloads.
    The body lives in :func:`repro.engine.core.execute_run`; this is the
    session-header spelling of the same call.
    """
    from repro.engine.core import execute_run as engine_execute_run

    return engine_execute_run(params, session=session, trace=trace, metrics=metrics)


def execute_record(
    kind: str, params: Mapping[str, Any], session=None
) -> Dict[str, Any]:
    """Execute ``(kind, params)``; returns the normalized result payload.

    ``session`` (when given) receives the execution's steps as they
    happen. Payloads contain no wall-clock or host-dependent fields, so
    a recorded payload and a replayed one compare with plain equality.

    Delegates to :func:`repro.engine.core.run_record` -- the engine owns
    the execution bodies now, and the session schema pins their payload
    shapes: any engine change that altered a payload here would break
    replay of previously recorded sessions.
    """
    from repro.engine.core import run_record

    return run_record(kind, params, session=session)


def record_session(
    kind: str,
    params: Mapping[str, Any],
    sink,
    run_id: Optional[str] = None,
    fsync: bool = False,
) -> Tuple[Dict[str, Any], SessionStore]:
    """Execute ``(kind, params)`` while recording it into ``sink``.

    Returns ``(payload, store)`` with the store sealed (``session_end``,
    ``complete=true``) on success. On ``KeyboardInterrupt`` the store is
    sealed as interrupted (the
    :func:`~repro.resilience.graceful_interrupts` flush hook does the
    same if the interrupt fires elsewhere) and the interrupt re-raises,
    leaving a valid partial session behind.
    """
    if kind not in RECORD_KINDS:
        raise SessionError(f"unknown session kind {kind!r}; known: {RECORD_KINDS}")
    store = SessionStore(sink, run_id=run_id, fsync=fsync)
    store.start(kind, dict(params))
    try:
        payload = execute_record(kind, params, session=store)
    except KeyboardInterrupt:
        store.interrupt()
        raise
    except BaseException:
        store.close()
        raise
    store.write_result(payload)
    store.finish(complete=True)
    return payload, store
