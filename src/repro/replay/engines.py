"""The execution engines a session can record and re-run.

A recorded session is only as replayable as its header: ``params`` must
pin *everything* the execution depends on. This module is the registry
that maps a ``(kind, params)`` pair to a deterministic execution --
used identically by ``repro record`` (live, writing the session) and
``repro replay`` (re-executing from the header), which is what makes
record -> replay a pure function comparison rather than a best-effort
diff.

Kinds
-----
``run``
    One simulator execution of a harness algorithm on a cycle instance,
    optionally under fault and/or network plans. The rewindable kind:
    every round becomes a step (broadcasts, per-vertex digests, fault and
    delivery events, RNG digests). Runs with a private
    :class:`~repro.costs.CostLedger` so ``cost_summary`` lands in the
    recorded result -- replay must reproduce it bit-for-bit.
``exhaustive`` / ``sampling`` / ``ranks`` / ``fault-sweep``
    The repo's batch engines. Steps are the engines' natural units
    (a report, a rank row, a sweep cell); results are the engines'
    payloads with volatile fields (timestamps, wall time) zeroed.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.errors import SessionError
from repro.replay.store import SessionStore

__all__ = ["RECORD_KINDS", "execute_record", "execute_run", "record_session"]

#: The session kinds ``repro record`` / ``repro replay`` understand.
RECORD_KINDS = ("run", "exhaustive", "sampling", "ranks", "fault-sweep")


def execute_run(params: Mapping[str, Any], session=None, trace=None, metrics=None):
    """Run one simulator execution from a ``run`` header; returns RunResult.

    Exposed separately from :func:`execute_record` so golden tests (and
    the rewind cursor's branch re-execution) can compare full
    :class:`~repro.core.simulator.RunResult` objects, not just payloads.
    """
    from repro.core.randomness import PublicCoin
    from repro.core.simulator import Simulator
    from repro.costs.ledger import CostLedger
    from repro.instances import one_cycle_instance, two_cycle_instance
    from repro.net.plan import NetworkPlan
    from repro.resilience.faults import FaultPlan
    from repro.resilience.harness import HARNESS_ALGORITHMS

    algorithm = params.get("algorithm")
    if algorithm not in HARNESS_ALGORITHMS:
        raise SessionError(
            f"unknown algorithm {algorithm!r}; known: {sorted(HARNESS_ALGORITHMS)}"
        )
    spec = HARNESS_ALGORITHMS[algorithm]
    n = int(params["n"])
    family = params.get("instance", "one_cycle")
    if family == "one_cycle":
        instance = one_cycle_instance(n, kt=spec.kt)
    elif family == "two_cycle":
        split = params.get("split")
        if split is None:
            raise SessionError("two_cycle instances need a 'split' parameter")
        instance = two_cycle_instance(n, int(split), kt=spec.kt)
    else:
        raise SessionError(
            f"unknown instance family {family!r}; "
            f"expected 'one_cycle' or 'two_cycle'"
        )
    rounds = params.get("rounds")
    rounds = spec.rounds(n) if rounds is None else int(rounds)
    coin_seed = params.get("coin_seed")
    coin = PublicCoin(str(coin_seed)) if coin_seed is not None else None
    faults = params.get("faults")
    plan = FaultPlan.from_dict(faults) if faults is not None else None
    network = params.get("network")
    net = NetworkPlan.from_dict(network) if network is not None else None
    simulator = Simulator(spec.model(n), metrics=metrics, trace=trace, costs=CostLedger())
    return simulator.run(
        instance,
        spec.factory(n),
        rounds,
        coin=coin,
        faults=plan,
        network=net,
        session=session,
    )


def _run_payload(result) -> Dict[str, Any]:
    from repro.core.decision import decision_of_run

    return {
        "decision": decision_of_run(result),
        "outputs": list(result.outputs),
        "rounds_executed": result.rounds_executed,
        "all_finished": result.all_finished,
        "total_bits": result.total_bits_broadcast(),
        "faults_injected": len(result.fault_events),
        "crashed_vertices": list(result.crashed_vertices),
        "failed_vertices": list(result.failed_vertices),
        "delivery_anomalies": len(result.network_events),
        "delivery_stats": [dict(stats) for stats in result.delivery_stats],
        "cost_summary": result.cost_summary,
    }


def execute_record(
    kind: str, params: Mapping[str, Any], session=None
) -> Dict[str, Any]:
    """Execute ``(kind, params)``; returns the normalized result payload.

    ``session`` (when given) receives the execution's steps as they
    happen. Payloads contain no wall-clock or host-dependent fields, so
    a recorded payload and a replayed one compare with plain equality.
    """
    if kind == "run":
        return _run_payload(execute_run(params, session=session))
    if kind == "exhaustive":
        from repro.lowerbounds.exhaustive import universal_bound_id_oblivious

        report = universal_bound_id_oblivious(
            int(params["n"]),
            workers=int(params.get("workers", 1)),
            vectorize=params.get("vectorize"),
        )
        payload = {
            "n": report.n,
            "class_size": report.class_size,
            "minimum_forced_error": report.minimum_forced_error,
            "worst_assignment": list(report.worst_assignment),
            "is_constant": report.is_constant,
        }
        if session is not None:
            session.write_step("report", payload)
        return payload
    if kind == "sampling":
        from repro.information.sampling import estimate_protocol_information
        from repro.twoparty import (
            LossyPartitionCompProtocol,
            TrivialPartitionCompProtocol,
        )

        n = int(params["n"])
        eps = float(params.get("eps", 0.0))
        protocol = (
            LossyPartitionCompProtocol(n, eps)
            if eps > 0
            else TrivialPartitionCompProtocol(n)
        )
        rng = random.Random(int(params.get("seed", 0)))
        report = estimate_protocol_information(
            protocol,
            n,
            int(params["samples"]),
            rng,
            workers=int(params.get("workers", 1)),
        )
        payload = {
            "n": report.n,
            "samples": report.samples,
            "information_estimate": report.information_estimate,
            "corrected_information": report.corrected_information,
            "true_input_entropy": report.true_input_entropy,
            "distinct_inputs_seen": report.distinct_inputs_seen,
            "distinct_transcripts_seen": report.distinct_transcripts_seen,
            "error_rate_estimate": report.error_rate_estimate,
            "saturated": report.saturated,
        }
        if session is not None:
            session.write_step("report", payload)
        return payload
    if kind == "ranks":
        from repro.partitions.matrices import e_matrix_rank, m_matrix_rank

        ns = [int(n) for n in params.get("ns", ())]
        if not ns:
            raise SessionError("ranks sessions need a non-empty 'ns' parameter")
        workers = int(params.get("workers", 1))
        kernel = params.get("kernel", "auto")
        rows = []
        for n in ns:
            m_rank = m_matrix_rank(n, workers=workers, kernel=kernel)
            row: Dict[str, Any] = {"n": n, "m_rank": m_rank}
            if n % 2 == 0:
                row["e_rank"] = e_matrix_rank(n, workers=workers, kernel=kernel)
            rows.append(row)
            if session is not None:
                session.write_step(f"rank/{n}", row)
        return {"rows": rows}
    if kind == "fault-sweep":
        from repro.resilience.harness import fault_sweep

        report = fault_sweep(
            algorithms=tuple(
                params.get(
                    "algorithms",
                    ("neighbor_exchange", "flooding", "boruvka", "sketch"),
                )
            ),
            kinds=tuple(params.get("kinds", ("bit_flip", "erasure", "crash"))),
            rates=tuple(params.get("rates", (0.0, 0.01, 0.05, 0.1, 0.2))),
            n=int(params.get("n", 8)),
            trials=int(params.get("trials", 10)),
            seed=int(params.get("seed", 0)),
            workers=int(params.get("workers", 1)),
            session=session,
        )
        payload = report.as_payload()
        # Volatile fields zeroed: a payload must compare equal across
        # record and replay, and wall time is not part of the result.
        payload["created_unix"] = 0.0
        payload["wall_time_seconds"] = 0.0
        return payload
    raise SessionError(f"unknown session kind {kind!r}; known: {RECORD_KINDS}")


def record_session(
    kind: str,
    params: Mapping[str, Any],
    sink,
    run_id: Optional[str] = None,
    fsync: bool = False,
) -> Tuple[Dict[str, Any], SessionStore]:
    """Execute ``(kind, params)`` while recording it into ``sink``.

    Returns ``(payload, store)`` with the store sealed (``session_end``,
    ``complete=true``) on success. On ``KeyboardInterrupt`` the store is
    sealed as interrupted (the
    :func:`~repro.resilience.graceful_interrupts` flush hook does the
    same if the interrupt fires elsewhere) and the interrupt re-raises,
    leaving a valid partial session behind.
    """
    if kind not in RECORD_KINDS:
        raise SessionError(f"unknown session kind {kind!r}; known: {RECORD_KINDS}")
    store = SessionStore(sink, run_id=run_id, fsync=fsync)
    store.start(kind, dict(params))
    try:
        payload = execute_record(kind, params, session=store)
    except KeyboardInterrupt:
        store.interrupt()
        raise
    except BaseException:
        store.close()
        raise
    store.write_result(payload)
    store.finish(complete=True)
    return payload, store
