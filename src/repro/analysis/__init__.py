"""Analysis utilities: growth fitting and table reporting."""

from repro.analysis.fitting import (
    LogFit,
    fit_linear,
    fit_logarithmic,
    is_logarithmic_growth,
    ratio_stability,
)
from repro.analysis.reporting import (
    emit_table,
    format_cell,
    print_table,
    render_table,
    table_payload,
)

__all__ = [
    "LogFit",
    "emit_table",
    "fit_linear",
    "fit_logarithmic",
    "format_cell",
    "is_logarithmic_growth",
    "print_table",
    "ratio_stability",
    "render_table",
    "table_payload",
]
