"""Growth-shape fitting: is a measured series Theta(log n)?

The asymptotic claims of the paper become, at finite n, statements about
the *shape* of measured series. This module provides a tiny least-squares
engine (no numpy needed) for the model y = a * ln(x) + b, plus an R^2
goodness measure and a ratio-stability check used by the benchmarks and
the integration tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class LogFit:
    """The fit y ~= slope * ln(x) + intercept."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.slope * math.log(x) + self.intercept


def fit_logarithmic(xs: Sequence[float], ys: Sequence[float]) -> LogFit:
    """Least-squares fit of y against ln(x)."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two matched samples")
    ls = [math.log(x) for x in xs]
    mean_l = sum(ls) / len(ls)
    mean_y = sum(ys) / len(ys)
    sxx = sum((l - mean_l) ** 2 for l in ls)
    if sxx == 0:
        raise ValueError("x values must not all be equal")
    sxy = sum((l - mean_l) * (y - mean_y) for l, y in zip(ls, ys))
    slope = sxy / sxx
    intercept = mean_y - slope * mean_l
    ss_res = sum((y - (slope * l + intercept)) ** 2 for l, y in zip(ls, ys))
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return LogFit(slope=slope, intercept=intercept, r_squared=r2)


def fit_linear(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float, float]:
    """Least-squares fit y ~= a x + b; returns (a, b, r^2)."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two matched samples")
    mean_x = sum(xs) / len(xs)
    mean_y = sum(ys) / len(ys)
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        raise ValueError("x values must not all be equal")
    a = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / sxx
    b = mean_y - a * mean_x
    ss_res = sum((y - (a * x + b)) ** 2 for x, y in zip(xs, ys))
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return a, b, r2


def is_logarithmic_growth(
    xs: Sequence[float],
    ys: Sequence[float],
    min_r_squared: float = 0.95,
) -> bool:
    """Heuristic Theta(log) test: an excellent logarithmic fit with a
    positive slope, and a clearly worse linear fit slope contribution."""
    log_fit = fit_logarithmic(xs, ys)
    return log_fit.slope > 0 and log_fit.r_squared >= min_r_squared


def ratio_stability(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float]:
    """(min, max) of y / ln(x): a Theta(log n) series keeps this in a
    bounded positive band."""
    ratios = [y / math.log(x) for x, y in zip(xs, ys) if x > 1]
    return min(ratios), max(ratios)
