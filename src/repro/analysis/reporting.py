"""Plain-text table rendering for benchmark output.

Benchmarks print paper-predicted quantities next to measured ones; a tiny
fixed-width table keeps that output legible in CI logs without pulling in
a formatting dependency. Every table also has a machine-readable twin:
:func:`table_payload` turns the same (title, headers, rows) triple into a
JSON-serializable dict, and :func:`emit_table` switches between the two
representations (the CLI's ``--json`` flag).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence


def format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Render a fixed-width ASCII table."""
    cells = [[format_cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[c]), *(len(row[c]) for row in cells)) if cells else len(headers[c])
        for c in range(len(headers))
    ]
    lines: List[str] = []
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(title: str, headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> None:
    """Print a titled table (benchmarks' standard output format)."""
    print()
    print(f"== {title} ==")
    print(render_table(headers, rows))


def _json_cell(value: Any) -> Any:
    """A JSON-serializable rendering of one cell (repr for exotic types)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


def table_payload(
    title: str, headers: Sequence[str], rows: Sequence[Sequence[Any]]
) -> Dict[str, Any]:
    """The machine-readable twin of :func:`print_table`."""
    return {
        "title": title,
        "headers": list(headers),
        "rows": [[_json_cell(v) for v in row] for row in rows],
    }


def emit_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    as_json: bool = False,
) -> None:
    """Print either the human table or its JSON payload (one object)."""
    if as_json:
        print(json.dumps(table_payload(title, headers, rows)))
    else:
        print_table(title, headers, rows)
