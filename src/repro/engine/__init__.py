"""Library-level engine API: requests in, schema-versioned results out.

Build an :class:`EngineRequest`, hand it to :func:`execute`, get an
:class:`EngineResult` whose payload is canonical-JSON-shaped and -- for
the kinds in :data:`CACHEABLE_KINDS` -- byte-identical whether it was
computed fresh or served from an attached
:class:`repro.cache.ResultCache`::

    from repro.cache import ResultCache
    from repro.engine import EngineRequest, execute

    cache = ResultCache(".repro-cache")
    result = execute(EngineRequest("exhaustive", {"n": 6}), cache=cache)
    again = execute(EngineRequest("exhaustive", {"n": 6}), cache=cache)
    assert again.cached and again.payload == result.payload

The CLI subcommands and :mod:`repro.replay.engines` are thin adapters
over this module.
"""

from repro.engine.core import (
    execute,
    execute_run,
    run_payload,
    run_record,
    sweep_rows_from_payload,
)
from repro.engine.request import (
    CACHEABLE_KINDS,
    ENGINE_KINDS,
    ENGINE_RESULT_VERSION,
    EngineOptions,
    EngineRequest,
    EngineResult,
    normalize_params,
)

__all__ = [
    "CACHEABLE_KINDS",
    "ENGINE_KINDS",
    "ENGINE_RESULT_VERSION",
    "EngineOptions",
    "EngineRequest",
    "EngineResult",
    "execute",
    "execute_run",
    "normalize_params",
    "run_payload",
    "run_record",
    "sweep_rows_from_payload",
]
