"""Engine request/result envelopes and per-kind parameter normalization.

The engine API is the repo's library-level seam: everything the CLI
subcommands and the record/replay layer can execute is expressed as an
:class:`EngineRequest` -- a kind from :data:`ENGINE_KINDS` plus its spec
parameters -- dispatched by :func:`repro.engine.core.execute`, which
returns a schema-versioned :class:`EngineResult`. The CLI and
:mod:`repro.replay.engines` are thin adapters over this seam, and it is
where the content-addressed result cache (:mod:`repro.cache`) plugs in:
two different spellings of the same request must normalize to the same
parameter dict, because the cache key is a digest of that dict.

Normalization rules (``normalize_params``):

* every optional field is filled with its default, so ``{"n": 6}`` and
  ``{"n": 6, "eps": 0.0}`` collide on purpose;
* ``workers`` never appears -- it lives on the request itself and is
  excluded from cache keys by the workers=1 ≡ N byte-identity contract;
* values are coerced to canonical JSON types (ints, floats, lists) so
  ``("a","b")`` and ``["a","b"]`` are the same request.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional

from repro.errors import EngineError

__all__ = [
    "CACHEABLE_KINDS",
    "ENGINE_KINDS",
    "ENGINE_RESULT_VERSION",
    "EngineOptions",
    "EngineRequest",
    "EngineResult",
    "normalize_params",
]

#: Every kind :func:`repro.engine.core.execute` dispatches.
ENGINE_KINDS = ("run", "exhaustive", "sampling", "ranks", "fault-sweep", "bench")

#: Kinds whose payloads are pure functions of their normalized params.
#: ``bench`` is deliberately absent: its payload measures wall time, so a
#: cache hit could never be byte-identical to a recompute.
CACHEABLE_KINDS = ("run", "exhaustive", "sampling", "ranks", "fault-sweep")

#: Bump when any kind's payload layout changes incompatibly; part of the
#: cache key, so old entries become unreachable rather than wrong.
ENGINE_RESULT_VERSION = 1


@dataclass(frozen=True)
class EngineRequest:
    """One executable unit of work: a kind plus its spec parameters.

    ``params`` is the *raw* spelling -- :func:`normalize_params` runs
    inside :func:`~repro.engine.core.execute`, so callers never need to
    pre-fill defaults. ``kernel`` and ``workers`` ride outside ``params``
    because they select *how* to compute, not *what*: kernel is still
    part of the cache key (conservatively -- the cache must not assume
    the kernel-identity contract it sits under), workers is not.
    """

    kind: str
    params: Mapping[str, Any]
    kernel: str = "auto"
    workers: int = 1


@dataclass
class EngineOptions:
    """Execution-time knobs that never affect a result's value.

    Budget, checkpointing, and resume state change how much of a request
    gets computed before an interruption -- never the value of what was
    computed -- so none of them participate in cache keys. ``session``
    disables whole-request memoization (a recorded session must contain
    the execution's actual steps); ``trace`` receives ``cache`` events
    on hit/miss, with the caveat that a whole-request hit elides the
    compute's own events.
    """

    budget: Optional[Any] = None
    checkpoint_path: Optional[str] = None
    resume: Optional[str] = None
    session: Optional[Any] = None
    trace: Optional[Any] = None
    metrics: Optional[Any] = None
    #: ``bench`` kind only: where BENCH_<name>.json files land.
    out_dir: Optional[str] = None


@dataclass(frozen=True)
class EngineResult:
    """A schema-versioned engine result.

    ``payload`` is canonical-JSON-shaped (lists, dicts, scalars -- the
    product of a JSON round-trip), so a freshly computed result compares
    byte-for-byte equal to a cache hit. ``cached`` and ``key`` describe
    how this particular object was obtained; they are not part of the
    payload and never reach the cache.
    """

    kind: str
    params: Dict[str, Any]
    kernel: str
    payload: Dict[str, Any]
    cached: bool = False
    key: Optional[str] = None
    schema_version: int = ENGINE_RESULT_VERSION


def _int(params: Mapping[str, Any], name: str, default: Optional[int] = None) -> int:
    value = params.get(name, default)
    if value is None:
        raise EngineError(f"missing required parameter {name!r}")
    try:
        return int(value)
    except (TypeError, ValueError) as exc:
        raise EngineError(f"parameter {name!r} must be an integer, got {value!r}") from exc


def _opt_int(params: Mapping[str, Any], name: str) -> Optional[int]:
    value = params.get(name)
    return None if value is None else _int(params, name)


def _float(params: Mapping[str, Any], name: str, default: float) -> float:
    value = params.get(name, default)
    try:
        return float(value)
    except (TypeError, ValueError) as exc:
        raise EngineError(f"parameter {name!r} must be a number, got {value!r}") from exc


def _str_list(params: Mapping[str, Any], name: str, default) -> List[str]:
    value = params.get(name)
    if value is None:
        value = default
    return [str(item) for item in value]


def _int_list(params: Mapping[str, Any], name: str) -> List[int]:
    try:
        return [int(item) for item in params.get(name, ())]
    except (TypeError, ValueError) as exc:
        raise EngineError(f"parameter {name!r} must be a list of integers") from exc


def _normalize_run(params: Mapping[str, Any]) -> Dict[str, Any]:
    algorithm = params.get("algorithm")
    if not isinstance(algorithm, str):
        raise EngineError("run requests need a string 'algorithm' parameter")
    split = params.get("split")
    rounds = params.get("rounds")
    coin_seed = params.get("coin_seed")
    faults = params.get("faults")
    network = params.get("network")
    return {
        "algorithm": algorithm,
        "n": _int(params, "n"),
        "instance": str(params.get("instance", "one_cycle")),
        "split": None if split is None else int(split),
        "rounds": None if rounds is None else int(rounds),
        "coin_seed": None if coin_seed is None else str(coin_seed),
        "faults": None if faults is None else dict(faults),
        "network": None if network is None else dict(network),
    }


def _normalize_exhaustive(params: Mapping[str, Any]) -> Dict[str, Any]:
    vectorize = params.get("vectorize")
    return {
        "n": _int(params, "n"),
        "alphabet": _str_list(params, "alphabet", ("", "0", "1")),
        # The RAW requested flag, not the resolved one: auto (None)
        # resolves differently per worker count, and resolving before
        # keying would break the workers-invariant hit the key promises.
        "vectorize": None if vectorize is None else bool(vectorize),
        "population": bool(params.get("population", False)),
    }


def _normalize_sampling(params: Mapping[str, Any]) -> Dict[str, Any]:
    return {
        "n": _int(params, "n"),
        "samples": _int(params, "samples"),
        "seed": _int(params, "seed", 0),
        "eps": _float(params, "eps", 0.0),
    }


def _normalize_ranks(params: Mapping[str, Any]) -> Dict[str, Any]:
    """Two spellings: the replay ``ns`` list, or the CLI's M/E grids.

    The ``ns`` form computes ``m_rank`` per n (``e_rank`` when n is
    even) and yields ``{"rows": [...]}`` -- byte-compatible with what
    recorded ranks sessions have always replayed. The grid form names
    the M and E size lists separately and yields ``{"m_rows", "e_rows"}``
    with the paper-predicted values alongside each rank.
    """
    streamed = params.get("streamed")
    normalized: Dict[str, Any] = {
        "streamed": None if streamed is None else bool(streamed),
        "block_rows": _opt_int(params, "block_rows"),
    }
    if params.get("ns") is not None:
        ns = _int_list(params, "ns")
        if not ns:
            raise EngineError("ranks requests need a non-empty 'ns' parameter")
        normalized["ns"] = ns
        return normalized
    m_ns = _int_list(params, "m_ns")
    e_ns = _int_list(params, "e_ns")
    if not m_ns and not e_ns:
        raise EngineError("ranks requests need 'ns' or 'm_ns'/'e_ns' parameters")
    if any(n % 2 for n in e_ns):
        raise EngineError(f"'e_ns' sizes must be even, got {e_ns}")
    normalized["m_ns"] = m_ns
    normalized["e_ns"] = e_ns
    return normalized


def _normalize_fault_sweep(params: Mapping[str, Any]) -> Dict[str, Any]:
    return {
        "algorithms": _str_list(
            params,
            "algorithms",
            ("neighbor_exchange", "flooding", "boruvka", "sketch"),
        ),
        "kinds": _str_list(params, "kinds", ("bit_flip", "erasure", "crash")),
        "rates": [
            float(rate) for rate in params.get("rates", (0.0, 0.01, 0.05, 0.1, 0.2))
        ],
        "n": _int(params, "n", 8),
        "trials": _int(params, "trials", 10),
        "seed": _int(params, "seed", 0),
    }


def _normalize_bench(params: Mapping[str, Any]) -> Dict[str, Any]:
    only = params.get("only")
    return {
        "quick": bool(params.get("quick", False)),
        "only": None if only is None else [str(name) for name in only],
    }


_NORMALIZERS = {
    "run": _normalize_run,
    "exhaustive": _normalize_exhaustive,
    "sampling": _normalize_sampling,
    "ranks": _normalize_ranks,
    "fault-sweep": _normalize_fault_sweep,
    "bench": _normalize_bench,
}


def normalize_params(kind: str, params: Mapping[str, Any]) -> Dict[str, Any]:
    """The canonical parameter dict for ``(kind, params)``.

    Deterministic and idempotent: normalizing an already-normalized dict
    returns an equal dict, which is what makes the digest of this dict a
    content address for the request.
    """
    normalizer = _NORMALIZERS.get(kind)
    if normalizer is None:
        raise EngineError(
            f"unknown engine kind {kind!r}; known: {list(ENGINE_KINDS)}"
        )
    return normalizer(params)
