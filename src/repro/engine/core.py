"""The engine dispatcher: one ``execute`` for every run path in the repo.

This module holds the execution bodies that used to live inline in
``cli.py`` subcommands and :mod:`repro.replay.engines`. Both are now
thin adapters: the CLI builds an :class:`~repro.engine.request.EngineRequest`
and formats the returned payload; record/replay calls
:func:`run_record`, which executes the same runners with session
recording and the exact payload shapes sessions have always stored.

The content-addressed cache plugs in here, at two granularities:

* **whole-request** -- ``execute(request, cache=...)`` keys the
  normalized request (:func:`repro.cache.request_key`) and returns the
  stored payload on a hit without touching the compute layer;
* **per-shard** -- cacheable fan-out kinds additionally thread a
  :class:`repro.cache.ShardCache` into their compute layer
  (``exhaustive`` shards, ``fault-sweep`` grid cells), so a re-run that
  shares only *part* of its work with history computes the delta and the
  order-invariant monoid merges reassemble mixed cached+fresh pieces.

Hit/recompute byte-identity is structural, not hoped-for: every fresh
payload is round-tripped through canonical JSON before being returned
*or* stored, so the object a caller sees never depends on whether the
cache was warm. Payloads contain no wall-clock fields (``fault-sweep``'s
volatile ``created_unix`` / ``wall_time_seconds`` are zeroed, as the
record/replay layer has always done).

All experiment imports stay inside function bodies -- the repo's
convention for keeping the observability/CLI layers cycle-free.
"""

from __future__ import annotations

import json
import random
from typing import Any, Dict, List, Mapping, Optional

from repro.engine.request import (
    CACHEABLE_KINDS,
    ENGINE_KINDS,
    ENGINE_RESULT_VERSION,
    EngineOptions,
    EngineRequest,
    EngineResult,
    normalize_params,
)
from repro.errors import EngineError, SessionError

__all__ = [
    "execute",
    "execute_run",
    "run_payload",
    "run_record",
    "sweep_rows_from_payload",
]


# ----------------------------------------------------------------------
# the ``run`` kind (one simulator execution)
# ----------------------------------------------------------------------
def execute_run(params: Mapping[str, Any], session=None, trace=None, metrics=None):
    """Run one simulator execution from ``run`` params; returns RunResult.

    Exposed separately from the payload path so golden tests (and the
    rewind cursor's branch re-execution) can compare full
    :class:`~repro.core.simulator.RunResult` objects, not just payloads.
    """
    from repro.core.randomness import PublicCoin
    from repro.core.simulator import Simulator
    from repro.costs.ledger import CostLedger
    from repro.instances import one_cycle_instance, two_cycle_instance
    from repro.net.plan import NetworkPlan
    from repro.resilience.faults import FaultPlan
    from repro.resilience.harness import HARNESS_ALGORITHMS

    algorithm = params.get("algorithm")
    if algorithm not in HARNESS_ALGORITHMS:
        raise SessionError(
            f"unknown algorithm {algorithm!r}; known: {sorted(HARNESS_ALGORITHMS)}"
        )
    spec = HARNESS_ALGORITHMS[algorithm]
    n = int(params["n"])
    family = params.get("instance", "one_cycle")
    if family == "one_cycle":
        instance = one_cycle_instance(n, kt=spec.kt)
    elif family == "two_cycle":
        split = params.get("split")
        if split is None:
            raise SessionError("two_cycle instances need a 'split' parameter")
        instance = two_cycle_instance(n, int(split), kt=spec.kt)
    else:
        raise SessionError(
            f"unknown instance family {family!r}; "
            f"expected 'one_cycle' or 'two_cycle'"
        )
    rounds = params.get("rounds")
    rounds = spec.rounds(n) if rounds is None else int(rounds)
    coin_seed = params.get("coin_seed")
    coin = PublicCoin(str(coin_seed)) if coin_seed is not None else None
    faults = params.get("faults")
    plan = FaultPlan.from_dict(faults) if faults is not None else None
    network = params.get("network")
    net = NetworkPlan.from_dict(network) if network is not None else None
    simulator = Simulator(spec.model(n), metrics=metrics, trace=trace, costs=CostLedger())
    return simulator.run(
        instance,
        spec.factory(n),
        rounds,
        coin=coin,
        faults=plan,
        network=net,
        session=session,
    )


def run_payload(result) -> Dict[str, Any]:
    """The deterministic JSON payload of one simulator RunResult."""
    from repro.core.decision import decision_of_run

    return {
        "decision": decision_of_run(result),
        "outputs": list(result.outputs),
        "rounds_executed": result.rounds_executed,
        "all_finished": result.all_finished,
        "total_bits": result.total_bits_broadcast(),
        "faults_injected": len(result.fault_events),
        "crashed_vertices": list(result.crashed_vertices),
        "failed_vertices": list(result.failed_vertices),
        "delivery_anomalies": len(result.network_events),
        "delivery_stats": [dict(stats) for stats in result.delivery_stats],
        "cost_summary": result.cost_summary,
    }


# ----------------------------------------------------------------------
# per-kind runners (payload shapes are frozen: sessions replay them)
# ----------------------------------------------------------------------
def _run_exhaustive(
    params: Mapping[str, Any],
    workers: int = 1,
    session=None,
    budget=None,
    checkpoint_path: Optional[str] = None,
    resume: Optional[str] = None,
    metrics=None,
    shard_cache=None,
) -> Dict[str, Any]:
    from repro.lowerbounds.exhaustive import universal_bound_id_oblivious

    report = universal_bound_id_oblivious(
        int(params["n"]),
        alphabet=tuple(params.get("alphabet", ("", "0", "1"))),
        metrics=metrics,
        budget=budget,
        checkpoint_path=checkpoint_path,
        resume=resume,
        workers=int(workers),
        vectorize=params.get("vectorize"),
        population=bool(params.get("population", False)),
        shard_cache=shard_cache,
    )
    payload = {
        "n": report.n,
        "class_size": report.class_size,
        "minimum_forced_error": report.minimum_forced_error,
        "worst_assignment": list(report.worst_assignment),
        "is_constant": report.is_constant,
    }
    if report.population is not None:
        payload["population"] = report.population
    if session is not None:
        session.write_step("report", payload)
    return payload


def _run_sampling(
    params: Mapping[str, Any],
    workers: int = 1,
    session=None,
    budget=None,
    checkpoint_path: Optional[str] = None,
    resume: Optional[str] = None,
) -> Dict[str, Any]:
    from repro.information.sampling import estimate_protocol_information
    from repro.twoparty import (
        LossyPartitionCompProtocol,
        TrivialPartitionCompProtocol,
    )

    n = int(params["n"])
    eps = float(params.get("eps", 0.0))
    protocol = (
        LossyPartitionCompProtocol(n, eps)
        if eps > 0
        else TrivialPartitionCompProtocol(n)
    )
    rng = random.Random(int(params.get("seed", 0)))
    report = estimate_protocol_information(
        protocol,
        n,
        int(params["samples"]),
        rng,
        budget=budget,
        checkpoint_path=checkpoint_path,
        resume=resume,
        workers=int(workers),
    )
    payload = {
        "n": report.n,
        "samples": report.samples,
        "information_estimate": report.information_estimate,
        "corrected_information": report.corrected_information,
        "true_input_entropy": report.true_input_entropy,
        "distinct_inputs_seen": report.distinct_inputs_seen,
        "distinct_transcripts_seen": report.distinct_transcripts_seen,
        "error_rate_estimate": report.error_rate_estimate,
        "saturated": report.saturated,
    }
    if session is not None:
        session.write_step("report", payload)
    return payload


def _run_ranks(
    params: Mapping[str, Any],
    workers: int = 1,
    kernel: str = "auto",
    session=None,
) -> Dict[str, Any]:
    from repro.partitions import (
        DEFAULT_BLOCK_ROWS,
        bell_number,
        perfect_matching_count,
    )
    from repro.partitions.matrices import e_matrix_rank, m_matrix_rank

    streamed = params.get("streamed")
    block_rows = params.get("block_rows")
    if block_rows is None:
        block_rows = DEFAULT_BLOCK_ROWS
    block_rows = int(block_rows)
    workers = int(workers)

    def _m_rank(n: int) -> int:
        return m_matrix_rank(
            n, workers=workers, kernel=kernel, streamed=streamed, block_rows=block_rows
        )

    def _e_rank(n: int) -> int:
        return e_matrix_rank(
            n, workers=workers, kernel=kernel, streamed=streamed, block_rows=block_rows
        )

    if params.get("ns") is not None:
        ns = [int(n) for n in params["ns"]]
        if not ns:
            raise SessionError("ranks sessions need a non-empty 'ns' parameter")
        rows: List[Dict[str, Any]] = []
        for n in ns:
            row: Dict[str, Any] = {"n": n, "m_rank": _m_rank(n)}
            if n % 2 == 0:
                row["e_rank"] = _e_rank(n)
            rows.append(row)
            if session is not None:
                session.write_step(f"rank/{n}", row)
        return {"rows": rows}
    m_rows = [
        {"n": n, "rank": _m_rank(n), "predicted": bell_number(n)}
        for n in [int(n) for n in params.get("m_ns", ())]
    ]
    e_rows = [
        {"n": n, "rank": _e_rank(n), "predicted": perfect_matching_count(n)}
        for n in [int(n) for n in params.get("e_ns", ())]
    ]
    return {"m_rows": m_rows, "e_rows": e_rows}


def _run_fault_sweep(
    params: Mapping[str, Any],
    workers: int = 1,
    session=None,
    trace=None,
    metrics=None,
    cell_cache=None,
) -> Dict[str, Any]:
    from repro.resilience.harness import fault_sweep

    report = fault_sweep(
        algorithms=tuple(
            params.get(
                "algorithms",
                ("neighbor_exchange", "flooding", "boruvka", "sketch"),
            )
        ),
        kinds=tuple(params.get("kinds", ("bit_flip", "erasure", "crash"))),
        rates=tuple(params.get("rates", (0.0, 0.01, 0.05, 0.1, 0.2))),
        n=int(params.get("n", 8)),
        trials=int(params.get("trials", 10)),
        seed=int(params.get("seed", 0)),
        metrics=metrics,
        trace=trace,
        workers=int(workers),
        session=session,
        cell_cache=cell_cache,
    )
    payload = report.as_payload()
    # Volatile fields zeroed: a payload must compare equal across record
    # and replay -- and across cold and warm cache runs -- so wall time
    # is not part of the result.
    payload["created_unix"] = 0.0
    payload["wall_time_seconds"] = 0.0
    return payload


def _run_bench(
    params: Mapping[str, Any],
    workers: int = 1,
    kernel: str = "auto",
    out_dir: Optional[str] = None,
) -> Dict[str, Any]:
    from repro.obs.bench import BenchmarkHarness

    harness = BenchmarkHarness(
        out_dir=out_dir,
        quick=bool(params.get("quick", False)),
        workers=int(workers),
        kernel=kernel,
    )
    results = harness.run(params.get("only") or None)
    return {
        "results": [
            {
                "name": r.name,
                "ok": r.ok,
                "wall_time_seconds": r.wall_time_seconds,
                "path": r.path,
            }
            for r in results
        ]
    }


# ----------------------------------------------------------------------
# record/replay adapter (payload shapes frozen since the sessions PR)
# ----------------------------------------------------------------------
def run_record(kind: str, params: Mapping[str, Any], session=None) -> Dict[str, Any]:
    """Execute a recordable ``(kind, params)`` pair; returns the payload.

    The compatibility seam for :func:`repro.replay.engines.execute_record`:
    kernel/workers ride inside ``params`` (that is where session headers
    keep them), payloads are byte-for-byte what sessions have always
    stored, and unknown kinds raise :class:`~repro.errors.SessionError`.
    """
    workers = int(params.get("workers", 1))
    if kind == "run":
        return run_payload(execute_run(params, session=session))
    if kind == "exhaustive":
        return _run_exhaustive(params, workers=workers, session=session)
    if kind == "sampling":
        return _run_sampling(params, workers=workers, session=session)
    if kind == "ranks":
        if params.get("ns") is None:
            raise SessionError("ranks sessions need a non-empty 'ns' parameter")
        return _run_ranks(
            params,
            workers=workers,
            kernel=params.get("kernel", "auto"),
            session=session,
        )
    if kind == "fault-sweep":
        return _run_fault_sweep(params, workers=workers, session=session)
    from repro.replay.engines import RECORD_KINDS

    raise SessionError(f"unknown session kind {kind!r}; known: {RECORD_KINDS}")


# ----------------------------------------------------------------------
# presentation helper shared by the CLI and the dashboards
# ----------------------------------------------------------------------
def sweep_rows_from_payload(payload: Mapping[str, Any]) -> List[List[Any]]:
    """Flat CLI-table rows from a ``fault_sweep`` payload.

    Mirrors :meth:`repro.resilience.FaultSweepReport.rows` exactly, but
    reads the JSON payload -- the only form a cache hit has.
    """
    rows: List[List[Any]] = []
    for curve in payload.get("curves", ()):
        for point in curve.get("points", ()):
            rows.append(
                [
                    curve["algorithm"],
                    curve["fault_kind"],
                    point["rate"],
                    point["trials"],
                    point["correct"],
                    round(point["correctness_rate"], 4),
                    point["faults_injected"],
                    round(point["mean_rounds"], 2),
                ]
            )
    return rows


# ----------------------------------------------------------------------
# the dispatcher
# ----------------------------------------------------------------------
def _json_roundtrip(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Canonical-JSON-shaped copy: tuples become lists, keys become str.

    Applied to *every* fresh payload -- cache on or off -- so the object
    a caller receives never depends on cache temperature.
    """
    from repro.cache.keys import canonical_json

    return json.loads(canonical_json(payload))


def _emit_cache_event(trace, status: str, kind: str, key: str) -> None:
    if trace is not None:
        trace.emit("cache", status=status, kind=kind, key=key)


def execute(
    request: EngineRequest,
    cache=None,
    options: Optional[EngineOptions] = None,
) -> EngineResult:
    """Dispatch one :class:`EngineRequest`; returns an :class:`EngineResult`.

    With ``cache`` (a :class:`repro.cache.ResultCache`) attached and the
    kind cacheable, the normalized request is looked up first -- a hit
    returns the stored payload byte-identically and never touches the
    compute layer. On a miss the fan-out kinds additionally carry a
    :class:`~repro.cache.ShardCache` into their compute layer, the fresh
    payload is stored, and the request's key is returned either way.
    ``cache=None`` (or a disabled cache) is *exactly* the legacy path:
    no key derivation, no fingerprinting, no lookups.

    A budget-exhausted run propagates
    :class:`~repro.errors.BudgetExceededError` and stores nothing at the
    request granularity (the partial is not the result), but shards that
    *completed* under the budget are already cached -- the next
    invocation computes only the delta.
    """
    opts = options if options is not None else EngineOptions()
    kind = request.kind
    if kind not in ENGINE_KINDS:
        raise EngineError(
            f"unknown engine kind {kind!r}; known: {list(ENGINE_KINDS)}"
        )
    params = normalize_params(kind, request.params)
    kernel = str(request.kernel)
    workers = int(request.workers)

    use_cache = (
        cache is not None
        and getattr(cache, "enabled", False)
        and kind in CACHEABLE_KINDS
        and opts.session is None
    )
    key: Optional[str] = None
    fingerprint = ""
    if use_cache:
        from repro.cache.keys import kind_fingerprint, request_key

        fingerprint = kind_fingerprint(kind)
        key = request_key(
            kind,
            params,
            kernel=kernel,
            result_version=ENGINE_RESULT_VERSION,
            fingerprint=fingerprint,
        )
        hit = cache.get(key)
        if hit is not None:
            _emit_cache_event(opts.trace, "hit", kind, key)
            return EngineResult(
                kind=kind, params=params, kernel=kernel, payload=hit,
                cached=True, key=key,
            )
        _emit_cache_event(opts.trace, "miss", kind, key)

    shard_cache = None
    if use_cache and kind == "exhaustive":
        from repro.cache.shards import ShardCache

        shard_cache = ShardCache(
            cache, kind, params, kernel=kernel,
            result_version=ENGINE_RESULT_VERSION, fingerprint=fingerprint,
        )
    cell_cache = None
    if use_cache and kind == "fault-sweep":
        from repro.cache.shards import ShardCache

        # Cells are pure functions of (coordinates, n, trials, seed) --
        # NOT of the full grid -- so the binding drops the algorithm/
        # kind/rate lists and overlapping grids share per-cell entries.
        cell_cache = ShardCache(
            cache,
            kind,
            {"n": params["n"], "trials": params["trials"], "seed": params["seed"]},
            kernel=kernel,
            result_version=ENGINE_RESULT_VERSION,
            fingerprint=fingerprint,
        )

    if kind == "run":
        payload = run_payload(
            execute_run(
                params, session=opts.session, trace=opts.trace, metrics=opts.metrics
            )
        )
    elif kind == "exhaustive":
        payload = _run_exhaustive(
            params,
            workers=workers,
            session=opts.session,
            budget=opts.budget,
            checkpoint_path=opts.checkpoint_path,
            resume=opts.resume,
            metrics=opts.metrics,
            shard_cache=shard_cache,
        )
    elif kind == "sampling":
        payload = _run_sampling(
            params,
            workers=workers,
            session=opts.session,
            budget=opts.budget,
            checkpoint_path=opts.checkpoint_path,
            resume=opts.resume,
        )
    elif kind == "ranks":
        payload = _run_ranks(
            params, workers=workers, kernel=kernel, session=opts.session
        )
    elif kind == "fault-sweep":
        payload = _run_fault_sweep(
            params,
            workers=workers,
            session=opts.session,
            trace=opts.trace,
            metrics=opts.metrics,
            cell_cache=cell_cache,
        )
    else:  # bench
        payload = _run_bench(
            params, workers=workers, kernel=kernel, out_dir=opts.out_dir
        )

    payload = _json_roundtrip(payload)
    if use_cache:
        cache.put(key, kind, payload)
    return EngineResult(
        kind=kind, params=params, kernel=kernel, payload=payload,
        cached=False, key=key,
    )
