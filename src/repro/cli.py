"""Command-line interface: run any of the paper's experiments directly.

    python -m repro.cli list
    python -m repro.cli crossing      --n 12 --rounds 4
    python -m repro.cli star          --n 30 --rounds 3
    python -m repro.cli forced-error  --n 6  --rounds 2
    python -m repro.cli ratio         --max-exp 6
    python -m repro.cli ranks         --max-n 6
    python -m repro.cli reduction     --n 8  --seed 1
    python -m repro.cli information   --n 5  --eps 0.3
    python -m repro.cli upper-bounds  --n 32
    python -m repro.cli exhaustive    --n 6 --checkpoint ck.json
    python -m repro.cli sampling      --n 6 --samples 500
    python -m repro.cli fault-sweep   --quick
    python -m repro.cli bench         --quick --history
    python -m repro.cli cache         stats
    python -m repro.cli report
    python -m repro.cli spans         --bench exhaustive --quick
    python -m repro.cli compare       --fail-on-regress
    python -m repro.cli cost-check    --quick
    python -m repro.cli trace-validate run.jsonl --stats
    python -m repro.cli record run    --session s.jsonl --algorithm flooding --n 8
    python -m repro.cli replay s.jsonl --verify
    python -m repro.cli rewind s.jsonl --to 3 --walk 2
    python -m repro.cli report --session s.jsonl

Each subcommand prints a paper-vs-measured table; see EXPERIMENTS.md for
the mapping to the paper's lemmas and theorems. Observability:

* every experiment subcommand takes ``--json`` (emit the table as one
  JSON object instead of ASCII);
* the simulation-backed subcommands (crossing, star, forced-error,
  reduction, fault-sweep) take ``--trace FILE`` to append a structured
  JSONL run trace (see `repro.obs.trace`); ``trace-validate`` checks one
  (any schema version, ``--stats`` for per-run event counts);
* ``bench`` runs the machine-readable benchmark harness and writes
  schema-versioned ``BENCH_<name>.json`` files (``--history`` appends a
  one-line record to ``BENCH_HISTORY.jsonl``); ``report`` validates and
  summarizes them;
* ``spans`` profiles one harness kernel with the hierarchical span
  recorder (see `repro.obs.spans`): indented tree, self-time hotspots,
  ``--out`` span-tree JSON, ``--trace`` v3 mirroring;
* ``compare`` runs the median+MAD perf-regression detector over the
  history (``--fail-on-regress`` for a CI gate, ``--dashboard`` to
  regenerate ``docs/PERF.md``) and prints warn-only communication-cost
  changes from the history's bits columns;
* ``cost-check`` runs the symbolic cost-conformance suite (see
  `repro.costs`): every bundled spec's protocol executes under a
  ``CostLedger`` and the measured bits/rounds are compared against the
  closed forms at the run's n (exit 1 on any mismatch); ``report
  --per-vertex`` breaks a payload's ledger down by vertex;
* ``ranks`` and ``bench`` take ``--kernel
  {auto,packed,four-russians,sparse,reference}`` to pick the compute
  engines (see `repro.kernels`); every mode produces identical results,
  only the wall time differs. ``ranks`` additionally takes
  ``--streamed {auto,on,off}`` / ``--block-rows R`` to build M_n / E_n
  through the block-streamed pipeline (peak memory bounded per block;
  construction parallelizes over ``--workers``);
* the engine-backed subcommands (exhaustive, sampling, ranks,
  fault-sweep) and ``bench`` take ``--cache [DIR]`` (default
  ``.repro-cache``; ``REPRO_CACHE_DIR`` works too) to memoize results
  in a content-addressed on-disk store (see `repro.cache`): a repeated
  invocation becomes a hash lookup whose payload is byte-identical to
  the recompute, and a one-line hit/miss summary lands on stderr.
  ``cache stats|verify|gc`` inspects, digest-checks, or size-bounds
  the store; ``dash --cache DIR`` adds a cache panel.

Resilience (see `repro.resilience`): ``exhaustive`` and ``sampling``
take ``--budget-seconds`` / work caps plus ``--checkpoint FILE`` and
``--resume FILE``; SIGINT and SIGTERM flush a final checkpoint before
exiting. ``fault-sweep`` measures correctness-vs-fault-rate degradation
curves for the upper-bound algorithms.

Record/replay (see `repro.replay`): ``record`` executes any of the
engines (a simulator run -- optionally under ``--bit-flip-rate`` /
``--crash-at`` faults and ``--max-delay`` / ``--duplicate-rate`` /
``--reorder`` adversarial delivery -- or exhaustive / sampling / ranks /
fault-sweep) while writing a step-addressable session log; ``replay``
re-executes it and diffs every step, ``rewind`` navigates and branches
counterfactuals, and ``report --session`` summarizes one (rounds,
faults, per-edge delivery anomalies, cost parity).

Exit codes: 0 success; 1 experiment-level failure (a FAIL row); 2 user
error (bad arguments, invalid instance, unreadable checkpoint -- one
line on stderr, never a traceback); 3 budget exhausted (partial results
printed); 4 replay divergence (the recorded session and the live
re-execution disagree -- first divergence on stderr or in the report);
130 interrupted (after flushing any configured checkpoint and sealing
any open session log).
"""

from __future__ import annotations

import argparse
import math
import random
import sys
from typing import List, Optional

from repro.analysis.reporting import emit_table


def _emit(args: argparse.Namespace, title: str, headers, rows) -> None:
    """Table or JSON, depending on the subcommand's ``--json`` flag."""
    emit_table(title, headers, rows, as_json=getattr(args, "json", False))


def _open_trace(args: argparse.Namespace):
    """A RunTrace for ``--trace FILE``, or None when the flag is absent."""
    path = getattr(args, "trace", None)
    if not path:
        return None
    from repro.obs import RunTrace

    return RunTrace(path)


def _cmd_crossing(args: argparse.Namespace) -> int:
    from repro.core import BCC1_KT0, ConstantAlgorithm, Simulator
    from repro.crossing import check_lemma_3_4, cross
    from repro.instances import one_cycle_instance

    n = args.n
    inst = one_cycle_instance(n, kt=0)
    e1, e2 = (0, 1), (n // 2, n // 2 + 1)
    crossed = cross(inst, e1, e2)
    trace = _open_trace(args)
    try:
        premise, conclusion = check_lemma_3_4(
            Simulator(BCC1_KT0, trace=trace),
            inst,
            crossed,
            ConstantAlgorithm,
            e1,
            e2,
            args.rounds,
        )
    finally:
        if trace is not None:
            trace.close()
    comps = sorted(len(c) for c in crossed.input_graph().connected_components())
    _emit(
        args,
        "Figure 1 / Lemma 3.4 (E1)",
        ["n", "crossed split", "rounds", "premise", "indistinguishable"],
        [[n, str(comps), args.rounds, premise, conclusion]],
    )
    return 0


def _cmd_star(args: argparse.Namespace) -> int:
    from repro.core import BCC1_KT0, SilentAlgorithm, Simulator
    from repro.lowerbounds import fool_algorithm, theorem_3_5_error_bound

    trace = _open_trace(args)
    try:
        report = fool_algorithm(
            Simulator(BCC1_KT0, trace=trace), SilentAlgorithm, args.n, args.rounds
        )
    finally:
        if trace is not None:
            trace.close()
    _emit(
        args,
        "Theorem 3.5 star adversary (E2)",
        ["n", "t", "|S|", "|S'|", "fooled", "verified", "achieved error", "closed-form floor"],
        [
            [
                report.n,
                report.rounds,
                report.independent_set_size,
                report.largest_class_size,
                report.fooled_pairs,
                report.indistinguishable_pairs,
                report.achieved_error,
                theorem_3_5_error_bound(args.n, args.rounds),
            ]
        ],
    )
    return 0


def _cmd_forced_error(args: argparse.Namespace) -> int:
    from repro.core import BCC1_KT0, SilentAlgorithm, Simulator
    from repro.algorithms import connectivity_factory
    from repro.lowerbounds import forced_error_of_algorithm

    trace = _open_trace(args)
    sim = Simulator(BCC1_KT0, trace=trace)
    rows = []
    try:
        for name, factory in [
            ("silent", SilentAlgorithm),
            ("neighbor-exchange", connectivity_factory(2)),
        ]:
            rep = forced_error_of_algorithm(sim, factory, args.n, args.rounds)
            rows.append(
                [name, rep.one_cycle_count, rep.fooled_two_cycle_instances, rep.forced_error]
            )
    finally:
        if trace is not None:
            trace.close()
    _emit(
        args,
        f"Theorem 3.1 forced error at n={args.n}, t={args.rounds} (E5)",
        ["algorithm", "|V1|", "fooled NO-instances", "forced error"],
        rows,
    )
    return 0


def _cmd_ratio(args: argparse.Namespace) -> int:
    from repro.indist import predicted_v2_v1_ratio

    rows = []
    for k in range(1, args.max_exp + 1):
        n = 10**k
        r = predicted_v2_v1_ratio(n)
        rows.append([n, r, 0.5 * math.log(n), r / math.log(n)])
    _emit(
        args,
        "Lemma 3.9: |V2|/|V1| vs (1/2) ln n (E4)",
        ["n", "ratio", "(1/2) ln n", "ratio / ln n"],
        rows,
    )
    return 0


def _cmd_ranks(args: argparse.Namespace) -> int:
    from repro.engine import EngineRequest, execute
    from repro.partitions import DEFAULT_BLOCK_ROWS

    workers = _resolved_workers(args)
    kernel = getattr(args, "kernel", "auto")
    streamed = {"auto": None, "on": True, "off": False}[
        getattr(args, "streamed", "auto")
    ]
    block_rows = getattr(args, "block_rows", None)
    if block_rows is None:
        block_rows = DEFAULT_BLOCK_ROWS
    if block_rows < 1:
        print(f"error: --block-rows must be >= 1, got {block_rows}", file=sys.stderr)
        return 2
    cache = _cache_from_args(args)
    result = execute(
        EngineRequest(
            "ranks",
            {
                "m_ns": list(range(1, args.max_n + 1)),
                "e_ns": list(range(2, args.max_n + 3, 2)),
                "streamed": streamed,
                "block_rows": block_rows,
            },
            kernel=kernel,
            workers=workers,
        ),
        cache=cache,
    )
    rows = [
        ["M", row["n"], row["rank"], row["predicted"]]
        for row in result.payload["m_rows"]
    ] + [
        ["E", row["n"], row["rank"], row["predicted"]]
        for row in result.payload["e_rows"]
    ]
    _emit(
        args,
        "Theorem 2.3 / Lemma 4.1 exact ranks (E6)",
        ["matrix", "n", "rank", "predicted"],
        rows,
    )
    _cache_status(cache)
    return 0


def _cmd_reduction(args: argparse.Namespace) -> int:
    from repro.algorithms import components_factory, id_bit_width, neighbor_exchange_rounds
    from repro.partitions import random_perfect_matching
    from repro.twoparty import (
        BCCSimulationProtocol,
        build_two_partition_reduction,
        simulation_bits_per_round,
    )

    rng = random.Random(args.seed)
    n = args.n
    pa = random_perfect_matching(n, rng)
    pb = random_perfect_matching(n, rng)
    red = build_two_partition_reduction(pa, pb)
    rounds = neighbor_exchange_rounds(1, 2, id_bit_width(3 * n))
    proto = BCCSimulationProtocol("two_partition", components_factory(2), rounds, mode="components")
    res = proto.run(pa, pb)
    trace = _open_trace(args)
    if trace is not None:
        trace.emit(
            "protocol_start",
            variant="two_partition",
            n=n,
            seed=args.seed,
            bcc_rounds=rounds,
            p_a=str(pa),
            p_b=str(pb),
        )
        for index, turn in enumerate(res.turns):
            trace.emit(
                "turn", index=index, speaker=turn.speaker, bits=len(turn.bits)
            )
        trace.emit(
            "protocol_end",
            total_bits=res.total_bits,
            bob_output=str(res.bob_output),
            join=str(pa.join(pb)),
            correct=res.bob_output == pa.join(pb),
        )
        trace.close()
    _emit(
        args,
        "Figure 2 / Theorem 4.3 / Section 4.3 (E7, E8)",
        ["P_A", "P_B", "join", "simulated", "BCC rounds", "bits", "bits/round"],
        [
            [
                str(pa),
                str(pb),
                str(pa.join(pb)),
                str(res.bob_output),
                rounds,
                res.total_bits,
                simulation_bits_per_round("two_partition", n),
            ]
        ],
    )
    if res.bob_output != pa.join(pb):
        print(
            f"FAIL: simulated join disagrees with ground truth: "
            f"expected {pa.join(pb)}, got {res.bob_output} "
            f"(n={n}, seed={args.seed}, rounds={rounds})",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_information(args: argparse.Namespace) -> int:
    from repro.information import evaluate_protocol, information_lower_bound
    from repro.twoparty import LossyPartitionCompProtocol, TrivialPartitionCompProtocol

    n = args.n
    rows = []
    clean = evaluate_protocol(TrivialPartitionCompProtocol(n), n)
    rows.append(["error-free", clean.error_rate, clean.information, clean.input_entropy])
    lossy = evaluate_protocol(LossyPartitionCompProtocol(n, args.eps), n)
    rows.append(
        [
            f"lossy (~{args.eps})",
            lossy.error_rate,
            lossy.information,
            information_lower_bound(n, lossy.error_rate),
        ]
    )
    _emit(
        args,
        f"Theorem 4.5 information accounting, n={n} (E9)",
        ["protocol", "measured eps", "I(P_A;Pi)", "floor"],
        rows,
    )
    return 0


def _cmd_upper_bounds(args: argparse.Namespace) -> int:
    from repro.algorithms import (
        agm_total_rounds,
        boruvka_max_rounds,
        id_bit_width,
        mt16_rounds,
        neighbor_exchange_rounds,
        peeling_round_budget,
    )
    from repro.lowerbounds import multicycle_round_bound

    n = args.n
    lb = multicycle_round_bound(max(4, (n // 4) * 2)).round_lower_bound
    _emit(
        args,
        "Upper bounds vs the Omega(log n) lower bound (E10)",
        ["algorithm", "model", "rounds (closed form)"],
        [
            ["Theorem 4.4 lower bound", "BCC(1) KT-1", f">= {lb:.3f}"],
            [
                "NeighborExchange (deg<=2)",
                "BCC(1) KT-1",
                neighbor_exchange_rounds(1, 2, id_bit_width(n - 1)),
            ],
            [
                "NeighborExchange (deg<=2)",
                "BCC(1) KT-0",
                neighbor_exchange_rounds(0, 2, id_bit_width(4 * n - 1)),
            ],
            ["Peeling (arboricity<=2)", "BCC(1) KT-1", peeling_round_budget(n, 2)],
            ["MT16 sketch (arboricity<=2)", "BCC(1) KT-1", mt16_rounds(2)],
            ["Boruvka", "BCC(log n) KT-1", boruvka_max_rounds(n)],
            ["FullAdjacency", "BCC(1) KT-1", n],
            ["AGM sketch", "BCC(32) KT-1", agm_total_rounds(n, 32)],
        ],
    )
    return 0


def _budget_from_args(args: argparse.Namespace, max_units: Optional[int]) -> object:
    """A Budget from --budget-seconds / a work cap, or None when unlimited."""
    seconds = getattr(args, "budget_seconds", None)
    if seconds is None and max_units is None:
        return None
    from repro.resilience import Budget

    return Budget(wall_seconds=seconds, max_units=max_units)


def _interrupted(checkpoint: Optional[str]) -> int:
    """One-line 130 exit after Ctrl-C / SIGTERM, naming the checkpoint."""
    import os

    if checkpoint and not os.path.exists(checkpoint):
        checkpoint = None  # interrupted before the first flush
    if checkpoint:
        print(
            f"interrupted: checkpoint written to {checkpoint} "
            f"(continue with --resume {checkpoint})",
            file=sys.stderr,
        )
    else:
        print("interrupted", file=sys.stderr)
    return 130


def _budget_exhausted(exc: Exception) -> None:
    """One-line budget notice on stderr (the partial table already printed)."""
    path = getattr(exc, "checkpoint_path", None)
    hint = f" (continue with --resume {path})" if path else ""
    print(f"budget exhausted: {exc}{hint}", file=sys.stderr)


def _cache_dir_from_env() -> Optional[str]:
    import os

    return os.environ.get("REPRO_CACHE_DIR") or None


def _cache_from_args(args: argparse.Namespace):
    """A ResultCache from --cache (or REPRO_CACHE_DIR), else None (off).

    ``None`` means the engine takes the exact legacy path: no key
    derivation, no fingerprinting, no lookups.
    """
    directory = getattr(args, "cache", None)
    if directory is None:
        directory = _cache_dir_from_env()
    if directory is None:
        return None
    from repro.cache import ResultCache

    return ResultCache(directory)


def _cache_status(cache) -> None:
    """One stderr line of this invocation's cache traffic.

    stderr so ``--json`` stdout stays a single parseable object, and so
    cold/warm stdout stays byte-identical.
    """
    if cache is None:
        return
    counters = cache.counters()
    print(
        "cache: hits={hits} misses={misses} stored={stored} "
        "bytes_saved={bytes_saved}".format(**counters),
        file=sys.stderr,
    )


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.cache import ResultCache

    directory = args.dir or _cache_dir_from_env() or ".repro-cache"
    cache = ResultCache(directory)
    if args.cache_command == "stats":
        stats = cache.stats()
        rows = [
            ["root", stats["root"]],
            ["entries", stats["entries"]],
            ["bytes", stats["bytes"]],
        ]
        for kind, count in sorted(stats["by_kind"].items()):
            rows.append([f"entries[{kind}]", count])
        _emit(args, f"result cache at {directory}", ["field", "value"], rows)
        return 0
    if args.cache_command == "verify":
        report = cache.verify(delete=args.delete)
        rows = [
            ["checked", report["checked"]],
            ["ok", report["ok"]],
            ["corrupt", len(report["corrupt"])],
            ["deleted", report["deleted"]],
        ]
        _emit(args, f"cache verify at {directory}", ["field", "value"], rows)
        for key in report["corrupt"]:
            print(f"INVALID cache entry: {key}", file=sys.stderr)
        return 1 if report["corrupt"] and not args.delete else 0
    # gc
    report = cache.gc(max_bytes=args.max_bytes)
    rows = [
        ["evicted", report["evicted"]],
        ["freed bytes", report["freed_bytes"]],
        ["swept tmp", report["swept_tmp"]],
        ["remaining bytes", report["remaining_bytes"]],
        ["max bytes", report["max_bytes"]],
    ]
    _emit(args, f"cache gc at {directory}", ["field", "value"], rows)
    return 0


def _cmd_exhaustive(args: argparse.Namespace) -> int:
    from repro.engine import EngineOptions, EngineRequest, execute
    from repro.errors import BudgetExceededError
    from repro.resilience import graceful_interrupts

    budget = _budget_from_args(args, args.max_assignments)
    cache = _cache_from_args(args)

    def _emit_report(n, class_size, min_error, is_constant, worst, note: str) -> None:
        _emit(
            args,
            f"universal 1-round KT-0 bound at n={args.n} (exhaustive class search)",
            ["n", "class size", "min forced error", "constant?", "worst assignment", "status"],
            [
                [
                    n,
                    class_size,
                    min_error,
                    is_constant,
                    "".join(c if c else "-" for c in worst),
                    note,
                ]
            ],
        )

    try:
        with graceful_interrupts():
            result = execute(
                EngineRequest(
                    "exhaustive",
                    {"n": args.n, "vectorize": args.vectorize},
                    workers=_resolved_workers(args),
                ),
                cache=cache,
                options=EngineOptions(
                    budget=budget,
                    checkpoint_path=args.checkpoint,
                    resume=args.resume,
                ),
            )
    except BudgetExceededError as exc:
        if exc.partial is not None:
            report = exc.partial
            _emit_report(
                report.n,
                report.class_size,
                report.minimum_forced_error,
                report.is_constant,
                report.worst_assignment,
                "partial (budget exhausted)",
            )
        _budget_exhausted(exc)
        return 3
    except KeyboardInterrupt:
        return _interrupted(args.checkpoint)
    payload = result.payload
    _emit_report(
        payload["n"],
        payload["class_size"],
        payload["minimum_forced_error"],
        payload["is_constant"],
        payload["worst_assignment"],
        "complete",
    )
    _cache_status(cache)
    return 0


def _cmd_sampling(args: argparse.Namespace) -> int:
    from repro.engine import EngineOptions, EngineRequest, execute
    from repro.errors import BudgetExceededError
    from repro.resilience import graceful_interrupts

    budget = _budget_from_args(args, args.max_samples)
    cache = _cache_from_args(args)

    def _emit_report(values, note: str) -> None:
        _emit(
            args,
            f"sampled information estimate at n={args.n} (Theorem 4.5 distribution)",
            [
                "n",
                "samples",
                "I estimate",
                "corrected",
                "H(P_A) true",
                "saturated",
                "error rate",
                "status",
            ],
            [list(values) + [note]],
        )

    try:
        with graceful_interrupts():
            result = execute(
                EngineRequest(
                    "sampling",
                    {
                        "n": args.n,
                        "samples": args.samples,
                        "seed": args.seed,
                        "eps": args.eps,
                    },
                    workers=_resolved_workers(args),
                ),
                cache=cache,
                options=EngineOptions(
                    budget=budget,
                    checkpoint_path=args.checkpoint,
                    resume=args.resume,
                ),
            )
    except BudgetExceededError as exc:
        if exc.partial is not None:
            report = exc.partial
            _emit_report(
                (
                    report.n,
                    report.samples,
                    report.information_estimate,
                    report.corrected_information,
                    report.true_input_entropy,
                    report.saturated,
                    report.error_rate_estimate,
                ),
                "partial (budget exhausted)",
            )
        _budget_exhausted(exc)
        return 3
    except KeyboardInterrupt:
        return _interrupted(args.checkpoint)
    payload = result.payload
    _emit_report(
        (
            payload["n"],
            payload["samples"],
            payload["information_estimate"],
            payload["corrected_information"],
            payload["true_input_entropy"],
            payload["saturated"],
            payload["error_rate_estimate"],
        ),
        "complete",
    )
    _cache_status(cache)
    return 0


def _cmd_fault_sweep(args: argparse.Namespace) -> int:
    import json

    from repro.engine import (
        EngineOptions,
        EngineRequest,
        execute,
        sweep_rows_from_payload,
    )
    from repro.resilience import validate_fault_sweep_payload

    if args.quick:
        algorithms = ["neighbor_exchange", "flooding"]
        kinds = list(args.kinds or ("bit_flip", "erasure", "crash"))
        rates = [0.0, 0.1]
        n = 6
        trials = 4
    else:
        algorithms = list(args.algorithms)
        kinds = list(args.kinds or ("bit_flip", "erasure", "crash"))
        rates = [float(r) for r in args.rates]
        n = args.n
        trials = args.trials
    from contextlib import nullcontext

    live_scope = nullcontext()
    if getattr(args, "live", False):
        from repro.obs.stream import EventBus, line_printer, use_bus

        live_bus = EventBus()
        live_bus.subscribe(line_printer())
        live_scope = use_bus(live_bus)
    cache = _cache_from_args(args)
    trace = _open_trace(args)
    try:
        with live_scope:
            result = execute(
                EngineRequest(
                    "fault-sweep",
                    {
                        "algorithms": algorithms,
                        "kinds": kinds,
                        "rates": rates,
                        "n": n,
                        "trials": trials,
                        "seed": args.seed,
                    },
                    workers=_resolved_workers(args),
                ),
                cache=cache,
                options=EngineOptions(trace=trace),
            )
    finally:
        if trace is not None:
            trace.close()
    payload = result.payload
    problems = validate_fault_sweep_payload(payload)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    _emit(
        args,
        f"fault-injection degradation sweep (n={n}, {trials} trials/point)",
        ["algorithm", "fault kind", "rate", "trials", "correct", "correctness", "faults", "mean rounds"],
        sweep_rows_from_payload(payload),
    )
    _cache_status(cache)
    if problems:
        for problem in problems:
            print(f"INVALID payload: {problem}", file=sys.stderr)
        return 1
    return 0


def _cmd_all(args: argparse.Namespace) -> int:
    from repro.lowerbounds import full_report

    report = full_report()
    _emit(
        args,
        "All three results, one pass (laptop scale)",
        ["result", "quantity", "value"],
        report.rows(),
    )
    return 0


def _round_percentiles(metrics: dict) -> tuple:
    """(p50 ms, p99 ms) of simulator.round_seconds, or ('-', '-')."""
    summary = metrics.get("histograms", {}).get("simulator.round_seconds")
    if not isinstance(summary, dict) or not summary.get("count"):
        return "-", "-"
    return (
        round(summary.get("p50", summary.get("mean", 0.0)) * 1e3, 4),
        round(summary.get("p99", summary.get("mean", 0.0)) * 1e3, 4),
    )


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.obs import BenchmarkHarness

    workers = _resolved_workers(args)
    kernel = getattr(args, "kernel", "auto")
    cache_dir = getattr(args, "cache", None)
    harness = BenchmarkHarness(
        out_dir=args.out_dir,
        quick=args.quick,
        workers=workers,
        kernel=kernel,
        cache_dir=cache_dir,
    )
    results = harness.run(args.only or None)
    rows = []
    for r in results:
        counters = r.metrics.get("counters", {})
        p50, p99 = _round_percentiles(r.metrics)
        rows.append(
            [
                r.name,
                r.ok,
                r.wall_time_seconds,
                counters.get("simulator.rounds_executed", 0),
                counters.get("simulator.bits_broadcast", 0),
                p50,
                p99,
                r.path or "-",
            ]
        )
    _emit(
        args,
        f"benchmark harness ({'quick' if args.quick else 'full'} parameters)",
        [
            "benchmark",
            "ok",
            "wall s",
            "sim rounds",
            "sim bits",
            "round p50 ms",
            "round p99 ms",
            "file",
        ],
        rows,
    )
    if args.history:
        from repro.obs.regress import append_history, current_git_sha, history_record

        record = history_record(
            results,
            quick=args.quick,
            git_sha=current_git_sha(),
            workers=workers,
            kernel=kernel,
            cache="on" if cache_dir else "off",
        )
        append_history(record, args.history)
        if not getattr(args, "json", False):
            print(
                f"history: appended {len(record['entries'])} entries to {args.history}"
            )
    failures = [r.name for r in results if not r.ok]
    if failures:
        print(f"FAIL: benchmarks not ok: {', '.join(failures)}", file=sys.stderr)
        return 1
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    if getattr(args, "session", None):
        return _report_session(args)
    from repro.obs import load_bench_payloads, validate_bench_payload

    payloads = load_bench_payloads(args.dir)
    if not payloads:
        print(f"no BENCH_*.json files found in {args.dir!r}", file=sys.stderr)
        return 1
    rows = []
    invalid = []
    for path, payload in payloads:
        problems = validate_bench_payload(payload)
        if problems:
            invalid.append((path, problems))
        counters = payload.get("metrics", {}).get("counters", {})
        costs = payload.get("costs", {})
        rows.append(
            [
                payload.get("name", "?"),
                payload.get("schema_version", "?"),
                payload.get("quick", "?"),
                payload.get("ok", "?"),
                payload.get("wall_time_seconds", "?"),
                counters.get("simulator.rounds_executed", 0),
                counters.get("simulator.bits_broadcast", 0),
                costs.get("total_bits", "-") if isinstance(costs, dict) else "-",
                "valid" if not problems else f"{len(problems)} problem(s)",
            ]
        )
    _emit(
        args,
        f"benchmark history in {args.dir} ({len(payloads)} files)",
        [
            "benchmark",
            "schema",
            "quick",
            "ok",
            "wall s",
            "sim rounds",
            "sim bits",
            "ledger bits",
            "schema check",
        ],
        rows,
    )
    if getattr(args, "per_vertex", False):
        vertex_rows = []
        for _path, payload in payloads:
            costs = payload.get("costs")
            if not isinstance(costs, dict):
                continue
            for entry in costs.get("per_vertex", []) or []:
                if not isinstance(entry, dict):
                    continue
                vertex_rows.append(
                    [
                        payload.get("name", "?"),
                        entry.get("vertex", "?"),
                        entry.get("bits", "?"),
                        entry.get("silent_rounds", "?"),
                    ]
                )
        if vertex_rows:
            _emit(
                args,
                f"per-vertex communication cost in {args.dir}",
                ["benchmark", "vertex", "bits sent", "silent rounds"],
                vertex_rows,
            )
        elif not getattr(args, "json", False):
            print(
                "per-vertex: no payload carries a costs section "
                "(re-run `repro bench` to record ledgers)"
            )
    if getattr(args, "per_phase", False):
        phase_rows = []
        for _path, payload in payloads:
            costs = payload.get("costs")
            if not isinstance(costs, dict):
                continue
            per_phase = costs.get("per_phase")
            if not isinstance(per_phase, dict):
                continue
            total = sum(
                bits for bits in per_phase.values() if isinstance(bits, int)
            )
            for phase, bits in sorted(per_phase.items()):
                share = f"{bits / total:.1%}" if total else "-"
                phase_rows.append(
                    [payload.get("name", "?"), phase, bits, share]
                )
        if phase_rows:
            _emit(
                args,
                f"per-phase communication cost in {args.dir} "
                "(two-party runs split simulate/decision)",
                ["benchmark", "phase", "bits", "share"],
                phase_rows,
            )
        elif not getattr(args, "json", False):
            print(
                "per-phase: no payload carries a per-phase ledger "
                "(re-run `repro bench` to record ledgers)"
            )
    for path, problems in invalid:
        for problem in problems:
            print(f"INVALID {path}: {problem}", file=sys.stderr)
    return 1 if invalid else 0


def _cmd_spans(args: argparse.Namespace) -> int:
    import json as _json

    from repro.obs import (
        BenchmarkHarness,
        SpanRecorder,
        bench_names,
        render_hotspots,
        render_span_tree,
        use_recorder,
        validate_span_tree_payload,
    )

    if args.bench not in bench_names():
        print(
            f"error: unknown benchmark {args.bench!r}; known: "
            f"{', '.join(bench_names())}",
            file=sys.stderr,
        )
        return 2
    trace = _open_trace(args)
    recorder = SpanRecorder(trace=trace)
    harness = BenchmarkHarness(out_dir=None, quick=args.quick)
    try:
        with use_recorder(recorder):
            result = harness.run_one(args.bench)
    finally:
        if trace is not None:
            trace.close()
    payload = recorder.tree_payload()
    problems = validate_span_tree_payload(payload)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            _json.dump(payload, handle, indent=2, sort_keys=False)
            handle.write("\n")
    if args.json:
        print(
            _json.dumps(
                {
                    "bench": args.bench,
                    "quick": args.quick,
                    "ok": result.ok,
                    "wall_time_seconds": result.wall_time_seconds,
                    "span_count": recorder.span_count(),
                    "tree": payload,
                },
                sort_keys=False,
            )
        )
    else:
        mode = "quick" if args.quick else "full"
        print(
            f"span profile: {args.bench} ({mode} parameters, "
            f"{recorder.span_count()} spans, "
            f"wall {result.wall_time_seconds:.3f}s)"
        )
        print()
        print(render_span_tree(payload, max_depth=args.max_depth))
        print()
        print(render_hotspots(payload, top=args.top))
    for problem in problems:
        print(f"INVALID span tree: {problem}", file=sys.stderr)
    if problems or not result.ok:
        return 1
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    import json as _json

    from repro.obs.regress import (
        detect_regressions,
        normalize_baseline,
        read_history,
        render_perf_dashboard,
    )

    history = read_history(args.history)
    if not history:
        print(f"error: no records in {args.history!r}", file=sys.stderr)
        return 2
    if args.baseline:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline = normalize_baseline(_json.load(handle))
        newest = history[-1]
        baseline = dict(baseline)
        baseline["quick"] = newest.get("quick")  # force a comparable mode
        baseline["workers"] = newest.get("workers", 1)  # never cross worker counts
        baseline["kernel"] = newest.get("kernel", "auto")  # nor kernel modes
        findings = detect_regressions(
            [baseline, newest], threshold=args.threshold, min_samples=1
        )
    else:
        findings = detect_regressions(
            history, threshold=args.threshold, min_samples=args.min_samples
        )
    _emit(
        args,
        f"perf comparison over {args.history} "
        f"(threshold {args.threshold}x median + MAD gate)",
        ["kernel", "baseline runs", "median ms", "MAD ms", "latest ms", "ratio", "status"],
        [f.row() for f in findings],
    )
    if args.dashboard:
        with open(args.dashboard, "w", encoding="utf-8") as handle:
            handle.write(
                render_perf_dashboard(
                    history, threshold=args.threshold, min_samples=args.min_samples
                )
            )
        if not getattr(args, "json", False):
            print(f"dashboard: wrote {args.dashboard}")
    # Communication-cost changes are warn-only by design: bits are
    # deterministic per (quick, workers, kernel), so a change is real --
    # but an intentional protocol change legitimately moves the number,
    # and the reviewer (not the gate) decides whether it was meant.
    cost_changed = [f for f in findings if f.cost_changed]
    if cost_changed:
        _emit(
            args,
            "communication-cost changes (warn-only; deterministic per mode)",
            ["kernel", "bits", "baseline bits", "status"],
            [f.cost_row() for f in cost_changed],
        )
        print(
            f"COST CHANGED: {', '.join(f.name for f in cost_changed)}",
            file=sys.stderr,
        )
    regressed = [f.name for f in findings if f.regressed]
    if regressed:
        print(f"REGRESSED: {', '.join(regressed)}", file=sys.stderr)
        if args.fail_on_regress:
            return 1
    return 0


def _cmd_cost_check(args: argparse.Namespace) -> int:
    from repro.costs import HAVE_SYMPY, check_all, spec_names

    names = args.only or None
    if names:
        unknown = [n for n in names if n not in spec_names()]
        if unknown:
            print(
                f"error: unknown cost spec(s) {', '.join(unknown)}; known: "
                f"{', '.join(spec_names())}",
                file=sys.stderr,
            )
            return 2
    results = check_all(quick=args.quick, names=names)
    backend = "sympy cross-check on" if HAVE_SYMPY else "exact backend only"
    _emit(
        args,
        f"cost conformance ({'quick' if args.quick else 'full'} parameters, "
        f"{backend})",
        [
            "spec",
            "kind",
            "rounds",
            "vs spec",
            "bits",
            "vs spec",
            "backend",
            "verdict",
        ],
        [r.row() for r in results],
    )
    bad = [r for r in results if not r.ok]
    for r in bad:
        for problem in r.problems:
            print(f"MISMATCH {r.name}: {problem}", file=sys.stderr)
    return 1 if bad else 0


def _cmd_trace_validate(args: argparse.Namespace) -> int:
    import json as _json

    from repro.obs import read_trace, trace_stats, validate_trace_events

    events = read_trace(args.file, schema_version=args.schema_version)
    problems = validate_trace_events(events)
    stats = trace_stats(events)
    if args.json:
        print(
            _json.dumps(
                {
                    "file": args.file,
                    "events": len(events),
                    "runs": len(stats),
                    "problems": problems,
                    "stats": stats,
                },
                sort_keys=False,
            )
        )
    else:
        verdict = "valid" if not problems else f"{len(problems)} problem(s)"
        print(f"{args.file}: {len(events)} events, {len(stats)} run(s), {verdict}")
        if args.stats:
            rows = []
            for run_id, entry in sorted(stats.items()):
                by_event = " ".join(
                    f"{name}={count}"
                    for name, count in sorted(entry["by_event"].items())
                )
                sessions = entry.get("sessions")
                if sessions:
                    kinds = ",".join(
                        f"{kind}x{count}"
                        for kind, count in sorted(sessions["kinds"].items())
                    )
                    session_cell = (
                        f"{kinds or '-'} steps={sessions['steps']} "
                        f"complete={sessions['complete']}"
                    )
                else:
                    session_cell = "-"
                cache_stats = entry.get("cache")
                cache_cell = (
                    f"hits={cache_stats['hits']} misses={cache_stats['misses']}"
                    if cache_stats
                    else "-"
                )
                rows.append(
                    [
                        run_id,
                        entry["schema_version"],
                        entry["events"],
                        by_event,
                        entry.get("cost_bits", "-"),
                        cache_cell,
                        session_cell,
                    ]
                )
            _emit(
                args,
                f"trace statistics for {args.file}",
                ["run id", "schema", "events", "by event", "cost bits", "cache", "sessions"],
                rows,
            )
    for problem in problems:
        print(f"INVALID {args.file}: {problem}", file=sys.stderr)
    return 1 if problems else 0


def _cmd_dash(args: argparse.Namespace) -> int:
    import json as _json

    from repro.obs import load_bench_payloads, read_history
    from repro.obs.dash import build_dashboard, validate_dashboard_html

    def _load_json(path: str, what: str):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return _json.load(handle)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read {what} {path!r}: {exc}", file=sys.stderr)
            return None

    history = []
    if args.history:
        try:
            history = read_history(args.history)
        except OSError as exc:
            print(
                f"error: cannot read history {args.history!r}: {exc}",
                file=sys.stderr,
            )
            return 2
    bench_payloads = load_bench_payloads(args.dir)
    sweep = None
    if args.sweep:
        sweep = _load_json(args.sweep, "fault-sweep payload")
        if sweep is None:
            return 2
    span_payload = None
    if args.spans:
        span_payload = _load_json(args.spans, "span tree payload")
        if span_payload is None:
            return 2
    sessions = []
    if args.sessions:
        from repro.errors import SessionError
        from repro.replay import read_session

        for path in args.sessions:
            try:
                sessions.append(read_session(path))
            except SessionError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
    cache_stats = None
    if args.cache:
        from repro.cache import ResultCache

        cache_stats = ResultCache(args.cache).stats()
    html = build_dashboard(
        history=history,
        bench_payloads=bench_payloads,
        sweep=sweep,
        sessions=sessions,
        span_payload=span_payload,
        cache_stats=cache_stats,
        timestamp=args.timestamp,
        title=args.title,
    )
    problems = validate_dashboard_html(html)
    if problems:
        for problem in problems:
            print(f"INVALID dashboard: {problem}", file=sys.stderr)
        return 1
    with open(args.out, "w", encoding="utf-8") as handle:
        handle.write(html)
    sources = sum(
        [
            1 if history else 0,
            1 if bench_payloads else 0,
            1 if sweep else 0,
            1 if span_payload else 0,
            len(sessions),
        ]
    )
    print(
        f"dash: wrote {args.out} ({len(html.encode('utf-8'))} bytes, "
        f"{sources} source(s), self-contained)"
    )
    return 0


def _parse_crash_at(specs) -> list:
    """``--crash-at V:T`` occurrences -> ScheduledFault dicts."""
    scheduled = []
    for spec in specs or ():
        try:
            vertex, round_index = spec.split(":", 1)
            scheduled.append(
                {
                    "round_index": int(round_index),
                    "kind": "crash",
                    "vertex": int(vertex),
                }
            )
        except ValueError:
            raise ValueError(
                f"--crash-at expects VERTEX:ROUND (e.g. 3:2), got {spec!r}"
            ) from None
    return scheduled


def _record_params(args: argparse.Namespace) -> dict:
    """The session ``params`` header for ``repro record`` -- everything
    the chosen engine needs to re-execute deterministically."""
    kind = args.kind
    if kind == "run":
        params = {"algorithm": args.algorithm, "n": args.n}
        if args.instance != "one_cycle":
            params["instance"] = args.instance
        if args.split is not None:
            params["split"] = args.split
        if args.rounds is not None:
            params["rounds"] = args.rounds
        if args.coin_seed is not None:
            params["coin_seed"] = args.coin_seed
        faults = {}
        if args.bit_flip_rate:
            faults["bit_flip_rate"] = args.bit_flip_rate
        if args.erasure_rate:
            faults["erasure_rate"] = args.erasure_rate
        if args.crash_rate:
            faults["crash_rate"] = args.crash_rate
        scheduled = _parse_crash_at(args.crash_at)
        if scheduled:
            faults["scheduled"] = scheduled
        if faults:
            faults["seed"] = args.fault_seed
            if args.max_crashes is not None:
                faults["max_crashes"] = args.max_crashes
            params["faults"] = faults
        network = {}
        if args.max_delay:
            network["max_delay"] = args.max_delay
        if args.duplicate_rate:
            network["duplicate_rate"] = args.duplicate_rate
        if args.reorder:
            network["reorder"] = True
        if network:
            network["seed"] = args.net_seed
            params["network"] = network
        return params
    if kind == "exhaustive":
        return {"n": args.n, "workers": _resolved_workers(args)}
    if kind == "sampling":
        return {
            "n": args.n,
            "eps": args.eps,
            "samples": args.samples,
            "seed": args.seed,
            "workers": _resolved_workers(args),
        }
    if kind == "ranks":
        return {
            "ns": [int(n) for n in args.ns],
            "kernel": args.kernel,
            "workers": _resolved_workers(args),
        }
    # fault-sweep
    return {
        "algorithms": list(args.algorithms),
        "kinds": list(args.kinds or ("bit_flip", "erasure", "crash")),
        "rates": [float(r) for r in args.rates],
        "n": args.n,
        "trials": args.trials,
        "seed": args.seed,
        "workers": _resolved_workers(args),
    }


def _cmd_record(args: argparse.Namespace) -> int:
    from repro.replay import record_session
    from repro.resilience import graceful_interrupts

    params = _record_params(args)
    with graceful_interrupts():
        payload, store = record_session(args.kind, params, args.session)
    if args.kind == "run":
        outcome = (
            f"decision={payload['decision']} "
            f"rounds={payload['rounds_executed']} bits={payload['total_bits']} "
            f"faults={payload['faults_injected']} "
            f"anomalies={payload['delivery_anomalies']}"
        )
    else:
        outcome = f"{len(payload)} result fields"
    _emit(
        args,
        f"recorded session -> {args.session}",
        ["kind", "steps", "sealed", "outcome"],
        [[args.kind, store.steps_recorded, True, outcome]],
    )
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.replay import replay_session

    report = replay_session(args.file)
    if args.json:
        import json as _json

        print(
            _json.dumps(
                {
                    "file": args.file,
                    "run_id": report.run_id,
                    "kind": report.kind,
                    "matched": report.matched,
                    "partial": report.partial,
                    "steps_compared": report.steps_compared,
                    "divergence": (
                        None
                        if report.divergence is None
                        else {
                            "location": report.divergence.location,
                            "field": report.divergence.field,
                            "recorded": report.divergence.recorded,
                            "replayed": report.divergence.replayed,
                        }
                    ),
                },
                sort_keys=False,
                default=str,
            )
        )
    elif args.verify or not report.matched:
        print(report.describe())
    else:
        partial = " (partial recording)" if report.partial else ""
        print(
            f"{args.file}: replay MATCH, {report.steps_compared} step(s){partial}"
        )
    return 0 if report.matched else 4


def _cmd_rewind(args: argparse.Namespace) -> int:
    import json as _json

    from repro.replay import SessionCursor

    cursor = SessionCursor(args.file)
    cursor.rewind(args.to)
    rows = []
    for _ in range(max(1, args.walk)):
        if cursor.exhausted:
            break
        step = cursor.step()
        broadcasts = step.get("broadcasts")
        rows.append(
            [
                step.get("step"),
                step.get("t", "-"),
                " ".join(m if m else "⊥" for m in broadcasts)
                if broadcasts is not None
                else step.get("name", "-"),
                len(step.get("faults", ())),
                len(step.get("deliveries", ())),
                step.get("all_finished", "-"),
            ]
        )
    session = cursor.session
    _emit(
        args,
        f"session {session.run_id} (kind={session.kind}, "
        f"{session.step_count} steps) from step {args.to}",
        ["step", "round", "broadcasts", "faults", "deliveries", "finished"],
        rows,
    )
    if args.branch is not None:
        overrides = _json.loads(args.branch)
        cursor.rewind(args.to)
        branched = cursor.branch(overrides, sink=args.out)
        suffix = f" -> {args.out}" if args.out else ""
        print(
            f"branch OK: prefix agrees through step {args.to}, "
            f"branched session has {branched.step_count} step(s){suffix}"
        )
    return 0


def _report_session(args: argparse.Namespace) -> int:
    """``repro report --session FILE``: summarize one recorded session."""
    from repro.costs import cost_summary_from_broadcasts
    from repro.replay import read_session

    session = read_session(args.session)
    state = "complete" if session.complete else (
        "interrupted" if session.interrupted else "truncated"
    )
    fault_counts: dict = {}
    delivery_edges: dict = {}
    for step in session.steps:
        for fault in step.get("faults", ()):
            kind = fault.get("kind", "?")
            fault_counts[kind] = fault_counts.get(kind, 0) + 1
        for event in step.get("deliveries", ()):
            edge = (event.get("sender"), event.get("receiver"))
            per_kind = delivery_edges.setdefault(edge, {})
            kind = event.get("kind", "?")
            per_kind[kind] = per_kind.get(kind, 0) + 1
    faults_summary = (
        " ".join(f"{k}={v}" for k, v in sorted(fault_counts.items())) or "none"
    )
    _emit(
        args,
        f"session report: {args.session}",
        ["run id", "kind", "steps", "state", "result", "faults"],
        [
            [
                session.run_id,
                session.kind,
                session.step_count,
                state,
                "recorded" if session.result is not None else "absent",
                faults_summary,
            ]
        ],
    )
    if delivery_edges:
        rows = [
            [
                f"{edge[0]}->{edge[1]}",
                *(per_kind.get(k, 0) for k in ("delayed", "duplicated", "reordered", "dropped")),
            ]
            for edge, per_kind in sorted(delivery_edges.items())
        ]
        _emit(
            args,
            f"per-edge delivery anomalies ({len(delivery_edges)} edges)",
            ["edge", "delayed", "duplicated", "reordered", "dropped"],
            rows,
        )
    if session.kind == "run" and session.result is not None:
        recorded = session.result.get("cost_summary")
        rebuilt = cost_summary_from_broadcasts(
            [step.get("broadcasts", []) for step in session.steps]
        )
        if recorded is not None:
            if recorded == rebuilt:
                print("cost parity: OK (recorded summary matches the step log)")
            else:
                print(
                    "cost parity: MISMATCH -- recorded cost summary disagrees "
                    "with the broadcasts in the step log",
                    file=sys.stderr,
                )
                return 1
    return 0


def _cmd_list(_args: argparse.Namespace) -> int:
    print("available experiments:")
    for name, help_text in _COMMANDS_HELP:
        print(f"  {name:14s} {help_text}")
    return 0


_COMMANDS_HELP = [
    ("crossing", "E1: Figure 1 crossing + Lemma 3.4 on a live run"),
    ("star", "E2: Theorem 3.5 star adversary"),
    ("forced-error", "E5: Theorem 3.1 exact forced error (exhaustive; small n)"),
    ("ratio", "E4: Lemma 3.9 |V2|/|V1| growth"),
    ("ranks", "E6: Theorem 2.3 / Lemma 4.1 exact ranks"),
    ("reduction", "E7+E8: Figure 2 reduction + Section 4.3 simulation"),
    ("information", "E9: Theorem 4.5 information accounting"),
    ("upper-bounds", "E10: the upper-bound comparators"),
    ("exhaustive", "universal 1-round KT-0 bound (budget/checkpoint/resume)"),
    ("sampling", "sampled Theorem 4.5 information estimate (resumable)"),
    ("fault-sweep", "correctness-vs-fault-rate degradation curves"),
    ("all", "one-pass summary of all three results"),
    ("bench", "run the machine-readable benchmark harness (BENCH_*.json)"),
    ("report", "validate + summarize existing BENCH_*.json files"),
    ("spans", "profile a harness kernel: span tree + self-time hotspots"),
    ("compare", "detect perf regressions against BENCH_HISTORY.jsonl"),
    ("cost-check", "check measured bits/rounds against the symbolic cost specs"),
    ("trace-validate", "validate a JSONL run trace (any schema version)"),
    ("cache", "inspect, verify, or garbage-collect the result cache"),
    ("dash", "build the self-contained HTML observability dashboard"),
    ("record", "execute an engine while recording a replayable session log"),
    ("replay", "re-execute a recorded session; exit 4 on any divergence"),
    ("rewind", "inspect a recorded session step-by-step; branch counterfactuals"),
]


def _help(name: str) -> str:
    """Help text for a subcommand, looked up by name (index-stable)."""
    for candidate, text in _COMMANDS_HELP:
        if candidate == name:
            return text
    raise KeyError(name)


def _add_json_flag(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--json",
        action="store_true",
        help="emit the result table as one JSON object instead of ASCII",
    )


def _add_trace_flag(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="append a structured JSONL run trace to FILE",
    )


def _add_workers_flag(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help=(
            "fan the work out over N processes (deterministic: the result "
            "is identical for every N; 0 = one per CPU, default: 1)"
        ),
    )


def _resolved_workers(args: argparse.Namespace) -> int:
    """The effective --workers value (0 -> one per CPU)."""
    from repro.parallel import resolve_workers

    return resolve_workers(getattr(args, "workers", 1))


def _add_kernel_flag(p: argparse.ArgumentParser) -> None:
    from repro.kernels import KERNEL_MODES

    p.add_argument(
        "--kernel",
        choices=KERNEL_MODES,
        default="auto",
        help=(
            "compute-kernel mode: 'packed' uses the bitset/batched engines "
            "of repro.kernels, 'four-russians' forces the M4RI GF(2) rank, "
            "'sparse' forces the dict-row mod-p rank, 'reference' the "
            "pure-python originals, 'auto' (default) picks per input; "
            "results are identical"
        ),
    )


def _add_cache_flag(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--cache",
        nargs="?",
        const=".repro-cache",
        default=None,
        metavar="DIR",
        help=(
            "memoize the result in a content-addressed cache at DIR "
            "(default: .repro-cache); a repeat of the same request becomes "
            "a hash lookup with byte-identical output. Setting "
            "REPRO_CACHE_DIR enables the same thing without the flag"
        ),
    )


def _add_resilience_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--budget-seconds",
        type=float,
        default=None,
        metavar="S",
        help="wall-clock budget; exhaustion prints the partial result, exit 3",
    )
    p.add_argument(
        "--checkpoint",
        metavar="FILE",
        default=None,
        help="write atomic resumable checkpoints to FILE (flushed on Ctrl-C/SIGTERM)",
    )
    p.add_argument(
        "--resume",
        metavar="FILE",
        default=None,
        help="resume from a checkpoint previously written with --checkpoint",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Run the experiments reproducing Pai & Pemmaraju, PODC 2019.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments").set_defaults(func=_cmd_list)

    p = sub.add_parser("crossing", help=_help("crossing"))
    p.add_argument("--n", type=int, default=12)
    p.add_argument("--rounds", type=int, default=4)
    _add_json_flag(p)
    _add_trace_flag(p)
    p.set_defaults(func=_cmd_crossing)

    p = sub.add_parser("star", help=_help("star"))
    p.add_argument("--n", type=int, default=30)
    p.add_argument("--rounds", type=int, default=3)
    _add_json_flag(p)
    _add_trace_flag(p)
    p.set_defaults(func=_cmd_star)

    p = sub.add_parser("forced-error", help=_help("forced-error"))
    p.add_argument("--n", type=int, default=6)
    p.add_argument("--rounds", type=int, default=2)
    _add_json_flag(p)
    _add_trace_flag(p)
    p.set_defaults(func=_cmd_forced_error)

    p = sub.add_parser("ratio", help=_help("ratio"))
    p.add_argument("--max-exp", type=int, default=6)
    _add_json_flag(p)
    p.set_defaults(func=_cmd_ratio)

    p = sub.add_parser("ranks", help=_help("ranks"))
    p.add_argument("--max-n", type=int, default=5)
    p.add_argument(
        "--streamed",
        choices=("auto", "on", "off"),
        default="auto",
        help=(
            "matrix pipeline: 'on' streams block rows (never materializes "
            "the dense matrix), 'off' always builds densely, 'auto' "
            "(default) streams at >= 1000 rows with a fast kernel"
        ),
    )
    p.add_argument(
        "--block-rows",
        type=int,
        default=None,
        metavar="R",
        help="rows per streamed construction block (default 256)",
    )
    _add_workers_flag(p)
    _add_kernel_flag(p)
    _add_cache_flag(p)
    _add_json_flag(p)
    p.set_defaults(func=_cmd_ranks)

    p = sub.add_parser("reduction", help=_help("reduction"))
    p.add_argument("--n", type=int, default=8)
    p.add_argument("--seed", type=int, default=1)
    _add_json_flag(p)
    _add_trace_flag(p)
    p.set_defaults(func=_cmd_reduction)

    p = sub.add_parser("information", help=_help("information"))
    p.add_argument("--n", type=int, default=5)
    p.add_argument("--eps", type=float, default=0.3)
    _add_json_flag(p)
    p.set_defaults(func=_cmd_information)

    p = sub.add_parser("upper-bounds", help=_help("upper-bounds"))
    p.add_argument("--n", type=int, default=32)
    _add_json_flag(p)
    p.set_defaults(func=_cmd_upper_bounds)

    p = sub.add_parser("exhaustive", help=_help("exhaustive"))
    p.add_argument("--n", type=int, default=6)
    p.add_argument(
        "--max-assignments",
        type=int,
        default=None,
        metavar="K",
        help="stop (budget exhausted, exit 3) after K assignments",
    )
    p.add_argument(
        "--vectorize",
        action=argparse.BooleanOptionalAction,
        default=None,
        help=(
            "use the numpy block-scoring kernel (default: auto -- on when "
            "--workers > 1 and numpy is available; degrades cleanly without numpy)"
        ),
    )
    _add_workers_flag(p)
    _add_resilience_flags(p)
    _add_cache_flag(p)
    _add_json_flag(p)
    p.set_defaults(func=_cmd_exhaustive)

    p = sub.add_parser("sampling", help=_help("sampling"))
    p.add_argument("--n", type=int, default=6)
    p.add_argument("--samples", type=int, default=500)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--eps",
        type=float,
        default=0.0,
        help="use the lossy protocol with this target error (default: exact)",
    )
    p.add_argument(
        "--max-samples",
        type=int,
        default=None,
        metavar="K",
        help="stop (budget exhausted, exit 3) after K samples",
    )
    _add_workers_flag(p)
    _add_resilience_flags(p)
    _add_cache_flag(p)
    _add_json_flag(p)
    p.set_defaults(func=_cmd_sampling)

    p = sub.add_parser("fault-sweep", help=_help("fault-sweep"))
    p.add_argument("--n", type=int, default=8)
    p.add_argument("--trials", type=int, default=6)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--rates",
        nargs="+",
        default=["0.0", "0.01", "0.05", "0.1", "0.2"],
        metavar="R",
        help="fault rates to sweep",
    )
    p.add_argument(
        "--kinds",
        nargs="+",
        default=None,
        metavar="KIND",
        help="fault kinds (bit_flip erasure crash; default: all)",
    )
    p.add_argument(
        "--algorithms",
        nargs="+",
        default=["neighbor_exchange", "flooding", "boruvka", "sketch"],
        metavar="ALGO",
        help="upper-bound algorithms to sweep",
    )
    p.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke preset: n=6, 4 trials, rates 0.0/0.1, 2 fast algorithms",
    )
    p.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="also write the schema-versioned fault_sweep JSON payload to FILE",
    )
    p.add_argument(
        "--live",
        action="store_true",
        help=(
            "stream one progress line per sweep cell to stderr as it "
            "completes (via the repro.obs.stream event bus)"
        ),
    )
    _add_workers_flag(p)
    _add_cache_flag(p)
    _add_json_flag(p)
    _add_trace_flag(p)
    p.set_defaults(func=_cmd_fault_sweep)

    p = sub.add_parser("all", help=_help("all"))
    _add_json_flag(p)
    p.set_defaults(func=_cmd_all)

    from repro.obs.regress import DEFAULT_HISTORY_PATH

    p = sub.add_parser("bench", help=_help("bench"))
    p.add_argument(
        "--quick",
        action="store_true",
        help="use each benchmark's quick (CI smoke) parameter set",
    )
    p.add_argument(
        "--only",
        nargs="+",
        metavar="NAME",
        default=None,
        help="run only these harness benchmarks (see `repro.cli bench --help`)",
    )
    p.add_argument(
        "--out-dir",
        default=".",
        help="directory for BENCH_<name>.json files (default: current dir)",
    )
    p.add_argument(
        "--history",
        nargs="?",
        const=DEFAULT_HISTORY_PATH,
        default=None,
        metavar="FILE",
        help=(
            "append one history line (git SHA, timestamp, per-kernel wall "
            f"times) to FILE (default: {DEFAULT_HISTORY_PATH})"
        ),
    )
    _add_workers_flag(p)
    _add_kernel_flag(p)
    _add_cache_flag(p)
    _add_json_flag(p)
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser("report", help=_help("report"))
    p.add_argument(
        "--dir",
        default=".",
        help="directory holding BENCH_*.json files (default: current dir)",
    )
    p.add_argument(
        "--per-vertex",
        action="store_true",
        dest="per_vertex",
        help=(
            "also print each payload's per-vertex ledger: bits sent and "
            "silent rounds per vertex (from the optional costs section)"
        ),
    )
    p.add_argument(
        "--per-phase",
        action="store_true",
        dest="per_phase",
        help=(
            "also print each payload's per-phase ledger (two-party runs "
            "split into simulate/decision phases)"
        ),
    )
    p.add_argument(
        "--session",
        metavar="FILE",
        default=None,
        help=(
            "summarize a recorded session log instead: rounds, faults, "
            "per-edge delivery anomalies, and recorded-vs-log cost parity"
        ),
    )
    _add_json_flag(p)
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("spans", help=_help("spans"))
    p.add_argument(
        "--bench",
        default="exhaustive",
        metavar="NAME",
        help="harness benchmark to profile (default: exhaustive)",
    )
    p.add_argument(
        "--quick",
        action="store_true",
        help="use the benchmark's quick (CI smoke) parameter set",
    )
    p.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="K",
        help="how many hotspots (by self time) to print (default: 10)",
    )
    p.add_argument(
        "--max-depth",
        type=int,
        default=None,
        metavar="D",
        help="truncate the printed tree below depth D (0 = roots only)",
    )
    p.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="also write the span-tree JSON payload to FILE",
    )
    _add_json_flag(p)
    _add_trace_flag(p)
    p.set_defaults(func=_cmd_spans)

    p = sub.add_parser("compare", help=_help("compare"))
    p.add_argument(
        "--history",
        default=DEFAULT_HISTORY_PATH,
        metavar="FILE",
        help=f"history file written by bench --history (default: {DEFAULT_HISTORY_PATH})",
    )
    p.add_argument(
        "--baseline",
        metavar="REF.json",
        default=None,
        help=(
            "compare the newest history record against this reference payload "
            "instead of the history's own baseline window"
        ),
    )
    p.add_argument(
        "--threshold",
        type=float,
        default=1.25,
        metavar="X",
        help="regression ratio gate: latest > X * baseline median (default: 1.25)",
    )
    p.add_argument(
        "--min-samples",
        type=int,
        default=3,
        metavar="K",
        help="baseline points needed before a verdict (default: 3)",
    )
    p.add_argument(
        "--fail-on-regress",
        action="store_true",
        help="exit 1 when any kernel regresses (default: warn only)",
    )
    p.add_argument(
        "--dashboard",
        metavar="FILE",
        default=None,
        help="write the markdown perf dashboard (sparklines) to FILE",
    )
    _add_json_flag(p)
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser("cost-check", help=_help("cost-check"))
    p.add_argument(
        "--quick",
        action="store_true",
        help="use each spec's quick (CI smoke) parameter set",
    )
    p.add_argument(
        "--only",
        nargs="+",
        metavar="SPEC",
        default=None,
        help="check only these specs (default: every bundled spec)",
    )
    _add_json_flag(p)
    p.set_defaults(func=_cmd_cost_check)

    p = sub.add_parser("trace-validate", help=_help("trace-validate"))
    p.add_argument("file", help="JSONL run trace written with --trace")
    p.add_argument(
        "--stats",
        action="store_true",
        help="also print per-run event-type counts",
    )
    p.add_argument(
        "--schema-version",
        type=int,
        default=None,
        metavar="V",
        help="only keep runs whose trace_start declares schema version V",
    )
    _add_json_flag(p)
    p.set_defaults(func=_cmd_trace_validate)

    p = sub.add_parser("cache", help=_help("cache"))
    cache_sub = p.add_subparsers(dest="cache_command", required=True)
    for action, action_help in (
        ("stats", "entry counts and bytes, total and per kind"),
        ("verify", "re-digest every entry; corrupt entries exit 1"),
        ("gc", "evict least-recently-used entries down to a size bound"),
    ):
        cp = cache_sub.add_parser(action, help=action_help)
        cp.add_argument(
            "--dir",
            default=None,
            metavar="DIR",
            help=(
                "cache directory (default: REPRO_CACHE_DIR if set, "
                "else .repro-cache)"
            ),
        )
        if action == "verify":
            cp.add_argument(
                "--delete",
                action="store_true",
                help="delete corrupt entries instead of failing on them",
            )
        if action == "gc":
            from repro.cache.store import DEFAULT_GC_MAX_BYTES

            cp.add_argument(
                "--max-bytes",
                type=int,
                default=DEFAULT_GC_MAX_BYTES,
                metavar="B",
                help=(
                    "evict oldest-used entries until the store fits in B "
                    f"bytes (default: {DEFAULT_GC_MAX_BYTES})"
                ),
            )
        _add_json_flag(cp)
        cp.set_defaults(func=_cmd_cache)

    p = sub.add_parser("dash", help=_help("dash"))
    p.add_argument(
        "--out",
        metavar="FILE",
        default="dash.html",
        help="dashboard HTML file to write (default: dash.html)",
    )
    p.add_argument(
        "--dir",
        default=".",
        help="directory holding BENCH_*.json payloads (default: current dir)",
    )
    p.add_argument(
        "--history",
        metavar="FILE",
        default=None,
        help="BENCH_HISTORY.jsonl for the sparkline section",
    )
    p.add_argument(
        "--sweep",
        metavar="FILE",
        default=None,
        help="fault-sweep JSON payload (from `repro fault-sweep --out`)",
    )
    p.add_argument(
        "--spans",
        metavar="FILE",
        default=None,
        help="span tree JSON payload (from `repro spans --out`)",
    )
    p.add_argument(
        "--session",
        metavar="FILE",
        action="append",
        default=None,
        dest="sessions",
        help="recorded session log (repeatable; from `repro record`)",
    )
    p.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help=(
            "result-cache directory for the cache panel (entry counts, "
            "bytes, per-kind breakdown; from --cache'd runs)"
        ),
    )
    p.add_argument(
        "--timestamp",
        metavar="STR",
        default=None,
        help=(
            "pinned generated-at string; with equal inputs and an equal "
            "timestamp the output is byte-identical (omit to leave unpinned "
            "-- output is still deterministic)"
        ),
    )
    p.add_argument(
        "--title",
        default="repro dashboard",
        help="page title (default: repro dashboard)",
    )
    p.set_defaults(func=_cmd_dash)

    p = sub.add_parser("record", help=_help("record"))
    from repro.replay.engines import RECORD_KINDS

    p.add_argument("kind", choices=RECORD_KINDS, help="which engine to record")
    p.add_argument(
        "--session",
        metavar="FILE",
        required=True,
        help="session log to write (trace-v5 JSONL; replayable byte-identically)",
    )
    p.add_argument("--n", type=int, default=8)
    p.add_argument(
        "--algorithm",
        default="flooding",
        help="run kind: harness algorithm (neighbor_exchange flooding boruvka sketch)",
    )
    p.add_argument(
        "--instance",
        choices=("one_cycle", "two_cycle"),
        default="one_cycle",
        help="run kind: input family (two_cycle needs --split)",
    )
    p.add_argument("--split", type=int, default=None, help="run kind: two_cycle split")
    p.add_argument(
        "--rounds", type=int, default=None, help="run kind: round budget (default: the algorithm's)"
    )
    p.add_argument(
        "--coin-seed", default=None, help="run kind: public-coin seed string"
    )
    p.add_argument("--bit-flip-rate", type=float, default=0.0)
    p.add_argument("--erasure-rate", type=float, default=0.0)
    p.add_argument("--crash-rate", type=float, default=0.0)
    p.add_argument("--fault-seed", type=int, default=0)
    p.add_argument("--max-crashes", type=int, default=None)
    p.add_argument(
        "--crash-at",
        action="append",
        metavar="V:T",
        default=None,
        help="schedule vertex V to crash in round T (repeatable)",
    )
    p.add_argument(
        "--max-delay",
        type=int,
        default=0,
        help="network: delay each delivery by 0..D rounds (seeded)",
    )
    p.add_argument(
        "--duplicate-rate",
        type=float,
        default=0.0,
        help="network: per-delivery duplication probability (seeded)",
    )
    p.add_argument(
        "--reorder",
        action="store_true",
        help="network: deterministically reorder queued deliveries",
    )
    p.add_argument("--net-seed", type=int, default=0, help="network RNG seed")
    p.add_argument("--eps", type=float, default=0.0, help="sampling kind: protocol eps")
    p.add_argument("--samples", type=int, default=200, help="sampling kind")
    p.add_argument("--seed", type=int, default=0, help="sampling / fault-sweep seed")
    p.add_argument(
        "--ns", nargs="+", default=["3", "4", "5"], metavar="N", help="ranks kind: sizes"
    )
    p.add_argument(
        "--rates",
        nargs="+",
        default=["0.0", "0.1"],
        metavar="R",
        help="fault-sweep kind: rates",
    )
    p.add_argument(
        "--kinds", nargs="+", default=None, metavar="KIND", help="fault-sweep kind"
    )
    p.add_argument(
        "--algorithms",
        nargs="+",
        default=["neighbor_exchange", "flooding"],
        metavar="ALGO",
        help="fault-sweep kind",
    )
    p.add_argument("--trials", type=int, default=4, help="fault-sweep kind")
    _add_kernel_flag(p)
    _add_workers_flag(p)
    _add_json_flag(p)
    p.set_defaults(func=_cmd_record)

    p = sub.add_parser("replay", help=_help("replay"))
    p.add_argument("file", help="recorded session log")
    p.add_argument(
        "--verify",
        action="store_true",
        help="print the full comparison report (divergences always exit 4)",
    )
    _add_json_flag(p)
    p.set_defaults(func=_cmd_replay)

    p = sub.add_parser("rewind", help=_help("rewind"))
    p.add_argument("file", help="recorded session log")
    p.add_argument(
        "--to", type=int, default=0, metavar="T", help="step to rewind to (0-based)"
    )
    p.add_argument(
        "--walk",
        type=int,
        default=1,
        metavar="K",
        help="show K steps starting at the rewind point (default: 1)",
    )
    p.add_argument(
        "--branch",
        metavar="JSON",
        default=None,
        help=(
            "re-execute with these param overrides (JSON object) after "
            "verifying digest prefix agreement up to the rewind point; "
            "a changed past exits 4"
        ),
    )
    p.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="save the branched session log (only written if the prefix check passes)",
    )
    _add_json_flag(p)
    p.set_defaults(func=_cmd_rewind)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Parse and dispatch; never lets a traceback reach the terminal.

    User errors (bad arguments, invalid instances, unreadable
    checkpoints -- anything in the :class:`~repro.errors.ReproError`
    taxonomy or a ``ValueError``/``OSError`` from user-supplied paths
    and parameters) print one ``error: ...`` line on stderr and exit 2.
    ``KeyboardInterrupt`` (Ctrl-C, or SIGTERM inside the resilient
    subcommands) exits 130. Genuine bugs still raise: anything outside
    those families is not swallowed.
    """
    from repro.errors import ReplayDivergenceError, ReproError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    except ReplayDivergenceError as exc:
        print(f"divergence: {exc}", file=sys.stderr)
        return 4
    except (ReproError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
