"""Exact rank computation for 0/1 matrices.

The lower bounds of Section 4 need the rank over the rationals of the
Partition matrices M_n and E_n (Theorem 2.3, Lemma 4.1). Two engines are
provided and cross-checked in the tests:

* :func:`rank_bareiss` -- fraction-free integer Gaussian elimination
  (Bareiss), exact over the rationals, O(d^3) big-integer work; fine up to
  a few hundred rows.
* :func:`rank_mod_p` -- Gaussian elimination over GF(p). For any prime p,
  rank_p(A) <= rank_Q(A); therefore a *full* mod-p rank certifies full
  rational rank, which is exactly the direction Theorem 2.3 / Lemma 4.1
  need. (Mod-2 full rank would certify too, and the word-packed GF(2)
  kernel is the fastest engine here -- but M_n and E_n are *far* from
  full rank mod 2: rank_2(M_4) = 8 of 15, rank_2(E_6) = 4 of 15 -- so
  the default prime list stays large.)

:func:`rank_exact` combines them: full mod-p rank short-circuits with a
certificate; otherwise Bareiss settles the exact value (or mod-p ranks at
several primes are taken, whose maximum lower-bounds the rational rank).

Every entry point takes ``kernel`` (``auto`` | ``packed`` |
``four-russians`` | ``sparse`` | ``reference``, see
:mod:`repro.kernels`). The fast family dispatches ``rank_mod_p`` per
prime: at ``p = 2`` the word-packed GF(2) bitset engine or -- above
:data:`M4RI_ROW_THRESHOLD` rows with numpy present, or always under
``kernel="four-russians"`` -- the Four-Russians table elimination; at
odd primes the batched numpy int64 engine, the sparse dict-row engine
(below :data:`~repro.kernels.SPARSE_DENSITY_CUTOFF` density in
``auto``, always under ``kernel="sparse"``), or the pure-python
reference as the silent fallback. All engines are bit-identical: the
rank over a fixed field is mathematically determined, and each engine
ticks the :class:`~repro.resilience.Budget` once per pivot column under
the same pivot structure, so checkpoint / resume boundaries and span
trees are unchanged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.kernels import (
    SPARSE_DENSITY_CUTOFF,
    SPARSE_MIN_CELLS,
    batched_modp_supported,
    matrix_density,
    rank_gf2,
    rank_gf2_four_russians,
    rank_mod_p_batched,
    rank_mod_p_sparse,
    resolve_kernel,
)
from repro.kernels import gf2 as _gf2
from repro.obs.spans import span

if TYPE_CHECKING:  # import-free at runtime: linalg stays dependency-light
    from repro.resilience.budget import Budget

Matrix = Sequence[Sequence[int]]

#: Primes used for multi-prime rank estimation.
DEFAULT_PRIMES = (1_000_003, 999_983, 2_147_483_647)

#: ``auto`` routes GF(2) ranks to the Four-Russians engine at or above
#: this many rows (with numpy present). The measured crossover on the
#: bench container is ~400 rows (0.9x there, 1.2x at 512, 2.2x at
#: 2048); below it the per-block setup costs more than the table
#: lookups save and the packed engine wins.
M4RI_ROW_THRESHOLD = 512


def _shape(matrix: Matrix) -> tuple:
    """(rows, cols) of a possibly-empty sequence-of-sequences matrix."""
    rows = len(matrix)
    cols = len(matrix[0]) if rows else 0
    return rows, cols


def rank_bareiss(matrix: Matrix, budget: Optional["Budget"] = None) -> int:
    """Exact rational rank via fraction-free (Bareiss) elimination.

    ``budget`` (a :class:`repro.resilience.Budget`) is ticked once per
    pivot column -- the natural unit of Bareiss work -- so runaway
    big-integer eliminations can be bounded; exhaustion raises
    :class:`~repro.errors.BudgetExceededError` (no partial: a half-done
    elimination certifies nothing).
    """
    rows_, cols_ = _shape(matrix)
    with span("partitions.rank_bareiss", rows=rows_, cols=cols_, engine="bareiss"):
        return _rank_bareiss_impl(matrix, budget)


def _rank_bareiss_impl(matrix: Matrix, budget: Optional["Budget"] = None) -> int:
    a = [list(map(int, row)) for row in matrix]
    if not a or not a[0]:
        return 0
    rows, cols = len(a), len(a[0])
    rank = 0
    prev_pivot = 1
    pivot_row = 0
    for col in range(cols):
        if budget is not None:
            budget.tick()
        # find a pivot at or below pivot_row
        pivot = None
        for r in range(pivot_row, rows):
            if a[r][col] != 0:
                pivot = r
                break
        if pivot is None:
            continue
        a[pivot_row], a[pivot] = a[pivot], a[pivot_row]
        p = a[pivot_row][col]
        for r in range(pivot_row + 1, rows):
            for c in range(col + 1, cols):
                a[r][c] = (a[r][c] * p - a[r][col] * a[pivot_row][c]) // prev_pivot
            a[r][col] = 0
        prev_pivot = p
        pivot_row += 1
        rank += 1
        if pivot_row == rows:
            break
    return rank


def _rank_mod_p_python(
    matrix: Matrix, p: int, budget: Optional["Budget"] = None
) -> int:
    a = [[int(x) % p for x in row] for row in matrix]
    if not a or not a[0]:
        return 0
    rows, cols = len(a), len(a[0])
    rank = 0
    pivot_row = 0
    for col in range(cols):
        if budget is not None:
            budget.tick()
        pivot = None
        for r in range(pivot_row, rows):
            if a[r][col] % p != 0:
                pivot = r
                break
        if pivot is None:
            continue
        a[pivot_row], a[pivot] = a[pivot], a[pivot_row]
        inv = pow(a[pivot_row][col], p - 2, p)
        row_p = [(x * inv) % p for x in a[pivot_row]]
        a[pivot_row] = row_p
        for r in range(pivot_row + 1, rows):
            factor = a[r][col]
            if factor:
                a[r] = [(x - factor * y) % p for x, y in zip(a[r], row_p)]
        pivot_row += 1
        rank += 1
        if pivot_row == rows:
            break
    return rank


def _modp_engine(p: int, kernel: str, matrix: Optional[Matrix] = None) -> str:
    """The engine name a (p, kernel) combination dispatches to.

    ``matrix`` feeds the input-adaptive choices of ``auto`` (row count
    for the Four-Russians threshold, density for the sparse cutoff);
    without it -- the legacy two-argument call -- ``auto`` picks the
    size-independent engines, exactly as before the adaptive modes
    existed.
    """
    if resolve_kernel(kernel) == "reference":
        return "python"
    if kernel == "sparse":
        return "sparse"
    if p == 2:
        if kernel == "four-russians":
            return "gf2-m4ri"
        if (
            kernel == "auto"
            and _gf2._np is not None
            and matrix is not None
            and len(matrix) >= M4RI_ROW_THRESHOLD
        ):
            return "gf2-m4ri"
        return "gf2-packed"
    if kernel == "auto" and matrix is not None:
        rows_, cols_ = _shape(matrix)
        if (
            rows_ * cols_ >= SPARSE_MIN_CELLS
            and matrix_density(matrix) <= SPARSE_DENSITY_CUTOFF
        ):
            return "sparse"
    if batched_modp_supported(p):
        return "numpy-batched"
    return "python"


def rank_mod_p(
    matrix: Matrix,
    p: int,
    budget: Optional["Budget"] = None,
    kernel: str = "auto",
) -> int:
    """Rank over GF(p). Always a lower bound on the rational rank.

    ``kernel`` selects the engine (see :mod:`repro.kernels`): the fast
    family runs the word-packed bitset elimination at ``p = 2``
    (Four-Russians above :data:`M4RI_ROW_THRESHOLD` rows in ``auto``,
    always under ``kernel="four-russians"``) and, at odd primes, the
    batched numpy int64 elimination for primes whose ``(p-1)^2`` fits
    int64 (every default prime qualifies, including the Mersenne prime
    ``2^31 - 1`` -- pinned by the overflow regression tests) or the
    sparse dict-row elimination (below the density cutoff in ``auto``,
    always under ``kernel="sparse"``); anything else, or
    ``kernel="reference"``, runs the pure-python reference. All engines
    return the same rank and tick ``budget`` once per pivot column (see
    :func:`rank_bareiss`).
    """
    engine = _modp_engine(p, kernel, matrix)
    rows_, cols_ = _shape(matrix)
    with span("partitions.rank_mod_p", rows=rows_, cols=cols_, p=p, engine=engine):
        if engine == "gf2-packed":
            return rank_gf2(matrix, budget)
        if engine == "gf2-m4ri":
            return rank_gf2_four_russians(matrix, budget=budget)
        if engine == "numpy-batched":
            return rank_mod_p_batched(matrix, p, budget)
        if engine == "sparse":
            return rank_mod_p_sparse(matrix, p, budget)
        return _rank_mod_p_python(matrix, p, budget)


def _rank_prime_worker(payload: tuple) -> dict:
    """One prime's elimination for :func:`rank_multi_prime` (picklable).

    ``payload`` is ``(matrix, p, shard_budget, kernel)``; returns
    ``{"rank", "units", "exhausted"}`` where ``units`` is the number of
    pivot columns the shard's budget actually ticked (the parent
    re-ticks them on its own budget, keeping aggregate accounting equal
    to the serial per-column loop). ``kernel`` rides along so each
    shard picks up the fast engines (the rank is engine-independent,
    so the merge stays order- and worker-count-invariant).
    """
    from repro.errors import BudgetExceededError

    matrix, p, shard_budget, kernel = payload
    budget = None
    if shard_budget is not None:
        exhausted_before_start = shard_budget.max_units == 0 or (
            shard_budget.wall_seconds is not None
            and shard_budget.wall_seconds <= 0
        )
        if exhausted_before_start:
            return {"rank": 0, "units": 0, "exhausted": True}
        budget = shard_budget.to_budget()
    try:
        rank = rank_mod_p(matrix, p, budget, kernel=kernel)
    except BudgetExceededError:
        return {
            "rank": 0,
            "units": budget.units_done if budget is not None else 0,
            "exhausted": True,
        }
    return {
        "rank": rank,
        "units": budget.units_done if budget is not None else 0,
        "exhausted": False,
    }


def rank_multi_prime(
    matrix: Matrix,
    primes: Sequence[int] = DEFAULT_PRIMES,
    budget: Optional["Budget"] = None,
    workers: int = 1,
    kernel: str = "auto",
) -> int:
    """Max of the mod-p ranks over ``primes`` -- a certified lower bound.

    ``workers > 1`` eliminates the primes concurrently (one process per
    prime, capped by the pool size); the max-merge
    (:data:`repro.parallel.MAX_INT`) is order-invariant, so the value is
    independent of worker count and completion order and equal to the
    serial loop's. The parent ``budget`` is split across primes
    (:func:`repro.parallel.split_budget`) and re-ticked with the columns
    the workers consumed; any shard exhaustion -- or the re-tick itself
    tripping -- raises :class:`~repro.errors.BudgetExceededError`, just
    as the serial sequential eliminations would (no partial: an
    unfinished elimination certifies nothing).

    All parallel imports are lazy so the serial path keeps this module's
    runtime-import-free footprint.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    rows_, cols_ = _shape(matrix)
    if not primes or rows_ == 0 or cols_ == 0:
        return 0
    if workers <= 1 or len(primes) <= 1:
        return max(rank_mod_p(matrix, p, budget, kernel=kernel) for p in primes)

    from repro.errors import BudgetExceededError
    from repro.parallel.executor import ParallelExecutor
    from repro.parallel.shard import ShardBudget

    wire = tuple(tuple(int(x) for x in row) for row in matrix)
    # Budget translation. The elimination ticks *before* each pivot
    # column, so the serial sequential loop completes iff the parent
    # budget strictly exceeds the total tick count. An even unit split
    # cannot reproduce that boundary (a barely-sufficient budget divided
    # across primes starves some shard), so each shard instead gets its
    # own work size plus the tick-before headroom unit, clamped by the
    # parent's remaining units, and the parent re-tick below is the
    # arbiter: raise/complete agrees with the serial loop at every
    # budget value.
    if budget is None:
        shard_budgets: list = [None] * len(primes)
    else:
        remaining = budget.remaining_units()
        wall = budget.remaining_seconds()
        per_shard = (
            None if remaining is None else min(cols_ + 1, remaining)
        )
        shard_budgets = [
            ShardBudget(max_units=per_shard, wall_seconds=wall)
            for _ in primes
        ]
    payloads = [(wire, p, sb, kernel) for p, sb in zip(primes, shard_budgets)]
    with span(
        "partitions.rank_multi_prime",
        rows=rows_,
        cols=cols_,
        primes=len(primes),
        workers=workers,
    ):
        results = ParallelExecutor(workers=workers).map(
            _rank_prime_worker, payloads
        )
    units = sum(int(r["units"]) for r in results)
    exhausted = any(r["exhausted"] for r in results)
    if budget is not None and units:
        budget.tick(units=units)
    if exhausted:
        raise BudgetExceededError(
            f"budget exhausted during multi-prime rank "
            f"({len(primes)} primes, {units} pivot columns)"
        )
    return max(int(r["rank"]) for r in results)


def rank_exact(
    matrix: Matrix,
    primes: Sequence[int] = DEFAULT_PRIMES,
    budget: Optional["Budget"] = None,
    workers: int = 1,
    kernel: str = "auto",
) -> int:
    """Exact rational rank of an integer matrix.

    Full rank mod any prime certifies full rational rank (the determinant
    is nonzero mod p, hence nonzero). Otherwise Bareiss settles it exactly
    for matrices up to a few hundred rows; above that the maximum mod-p
    rank over several primes is returned, which fails to be exact only if
    every listed prime divides the relevant determinantal minors.
    ``workers`` parallelizes only that multi-prime fallback (via
    :func:`rank_multi_prime`); the certificate and Bareiss branches are
    inherently serial and unchanged. ``kernel`` selects the mod-p
    engines (see :func:`rank_mod_p`); the chain, the budget tick
    boundaries, and the returned value are identical under every
    kernel.
    """
    rows = len(matrix)
    if rows == 0:
        return 0
    dim = min(rows, len(matrix[0]))
    with span("partitions.rank_exact", rows=rows, cols=len(matrix[0])):
        first = rank_mod_p(matrix, primes[0], budget, kernel=kernel)
        if first == dim:
            return first
        if rows <= 220:
            return rank_bareiss(matrix, budget)
        return max(
            first,
            rank_multi_prime(
                matrix, primes[1:], budget, workers=workers, kernel=kernel
            ),
        )


def is_full_rank(
    matrix: Matrix, p: int = DEFAULT_PRIMES[0], kernel: str = "auto"
) -> bool:
    """Certificate of full rational rank via a single mod-p elimination."""
    rows = len(matrix)
    if rows == 0:
        return True
    dim = min(rows, len(matrix[0]))
    return rank_mod_p(matrix, p, kernel=kernel) == dim
