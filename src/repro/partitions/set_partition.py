"""Set partitions of [n] and the partition lattice operations.

The KT-1 lower bounds (Section 4) revolve around the lattice of set
partitions of the ground set [n] = {1, .., n} ordered by refinement:

* P refines P' iff every block of P is contained in a block of P';
* the *join* P ∨ P' is the finest partition that both refine -- its blocks
  are the connected components of the "union" relation (Theorem 4.3 uses
  exactly this reachability characterization);
* the *meet* P ∧ P' has as blocks the nonempty pairwise intersections.

:class:`SetPartition` is immutable and canonicalized (blocks sorted by
minimum element, elements sorted within blocks), so structural equality and
hashing behave like mathematical equality.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

from repro.errors import PartitionError
from repro.graphs.components import UnionFind

Block = Tuple[int, ...]


class SetPartition:
    """An immutable set partition of the ground set {1, .., n}."""

    __slots__ = ("_n", "_blocks", "_block_of")

    def __init__(self, n: int, blocks: Iterable[Iterable[int]]):
        self._n = n
        cleaned: List[Block] = []
        seen: set = set()
        for block in blocks:
            b = tuple(sorted(set(block)))
            if not b:
                continue
            for x in b:
                if not 1 <= x <= n:
                    raise PartitionError(f"element {x} outside ground set [{n}]")
                if x in seen:
                    raise PartitionError(f"element {x} appears in two blocks")
                seen.add(x)
            cleaned.append(b)
        if len(seen) != n:
            missing = sorted(set(range(1, n + 1)) - seen)
            raise PartitionError(f"blocks do not cover the ground set; missing {missing}")
        cleaned.sort(key=lambda b: b[0])
        self._blocks: Tuple[Block, ...] = tuple(cleaned)
        self._block_of: Dict[int, int] = {}
        for i, b in enumerate(self._blocks):
            for x in b:
                self._block_of[x] = i

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def finest(n: int) -> "SetPartition":
        """The discrete partition (1)(2)...(n) -- bottom of the lattice."""
        return SetPartition(n, [[i] for i in range(1, n + 1)])

    @staticmethod
    def coarsest(n: int) -> "SetPartition":
        """The trivial one-block partition 1 = ([n]) -- top of the lattice."""
        return SetPartition(n, [list(range(1, n + 1))])

    @staticmethod
    def from_rgs(rgs: Sequence[int]) -> "SetPartition":
        """From a restricted growth string: rgs[i] is the block index of
        element i+1 (0-based block labels in order of first appearance)."""
        n = len(rgs)
        blocks: Dict[int, List[int]] = {}
        for i, label in enumerate(rgs):
            blocks.setdefault(label, []).append(i + 1)
        return SetPartition(n, blocks.values())

    @staticmethod
    def from_string(n: int, text: str) -> "SetPartition":
        """Parse the paper's notation, e.g. ``"(1,2)(3,4)(5)"``."""
        text = text.replace(" ", "")
        if not (text.startswith("(") and text.endswith(")")):
            raise PartitionError(f"malformed partition string {text!r}")
        blocks = []
        for chunk in text[1:-1].split(")("):
            try:
                blocks.append([int(x) for x in chunk.split(",") if x])
            except ValueError as exc:
                raise PartitionError(f"malformed block {chunk!r}") from exc
        return SetPartition(n, blocks)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self._n

    @property
    def blocks(self) -> Tuple[Block, ...]:
        return self._blocks

    @property
    def num_blocks(self) -> int:
        return len(self._blocks)

    def block_containing(self, x: int) -> Block:
        return self._blocks[self._block_of[x]]

    def same_block(self, x: int, y: int) -> bool:
        return self._block_of[x] == self._block_of[y]

    def is_finest(self) -> bool:
        return len(self._blocks) == self._n

    def is_coarsest(self) -> bool:
        return len(self._blocks) == 1

    def block_sizes(self) -> Tuple[int, ...]:
        return tuple(sorted(len(b) for b in self._blocks))

    def is_perfect_matching(self) -> bool:
        """True iff every block has exactly two elements (TwoPartition input)."""
        return all(len(b) == 2 for b in self._blocks)

    def rgs(self) -> Tuple[int, ...]:
        """The restricted growth string of this partition."""
        label: Dict[int, int] = {}
        out = []
        for x in range(1, self._n + 1):
            block_index = self._block_of[x]
            if block_index not in label:
                label[block_index] = len(label)
            out.append(label[block_index])
        return tuple(out)

    # ------------------------------------------------------------------
    # lattice operations
    # ------------------------------------------------------------------
    def refines(self, other: "SetPartition") -> bool:
        """True iff every block of self lies inside a block of other."""
        self._check_ground(other)
        for block in self._blocks:
            target = other.block_containing(block[0])
            if not set(block) <= set(target):
                return False
        return True

    def join(self, other: "SetPartition") -> "SetPartition":
        """P ∨ P': the finest common coarsening.

        Implemented as connected components of the relation "same block in
        either partition" -- the reachability characterization proved in
        Theorem 4.3.
        """
        self._check_ground(other)
        uf = UnionFind(range(1, self._n + 1))
        for partition in (self, other):
            for block in partition.blocks:
                for x in block[1:]:
                    uf.union(block[0], x)
        return SetPartition(self._n, uf.components())

    def meet(self, other: "SetPartition") -> "SetPartition":
        """P ∧ P': the coarsest common refinement (blockwise intersections)."""
        self._check_ground(other)
        blocks: Dict[Tuple[int, int], List[int]] = {}
        for x in range(1, self._n + 1):
            key = (self._block_of[x], other._block_of[x])
            blocks.setdefault(key, []).append(x)
        return SetPartition(self._n, blocks.values())

    def _check_ground(self, other: "SetPartition") -> None:
        if self._n != other._n:
            raise PartitionError(
                f"partitions over different ground sets [{self._n}] vs [{other._n}]"
            )

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SetPartition):
            return NotImplemented
        return self._n == other._n and self._blocks == other._blocks

    def __hash__(self) -> int:
        return hash((self._n, self._blocks))

    def __or__(self, other: "SetPartition") -> "SetPartition":
        return self.join(other)

    def __and__(self, other: "SetPartition") -> "SetPartition":
        return self.meet(other)

    def __le__(self, other: "SetPartition") -> bool:
        """Refinement order: P <= P' iff P refines P'."""
        return self.refines(other)

    def __repr__(self) -> str:
        return "".join("(" + ",".join(str(x) for x in b) + ")" for b in self._blocks)


def joins_to_top(pa: SetPartition, pb: SetPartition) -> bool:
    """The Partition problem predicate: is P_A ∨ P_B the trivial partition?

    Equivalent to ``pa.join(pb).is_coarsest()`` but only counts
    components instead of constructing the join: union-find over the
    *blocks* of both partitions (element x merges its pa-block with its
    pb-block), so the join is trivial iff one component remains. This
    predicate is the per-cell work of the streamed M_n / E_n matrix
    builders, where it runs Bell(n)^2 times.
    """
    pa._check_ground(pb)
    n = pa.n
    block_a = pa._block_of
    block_b = pb._block_of
    na = pa.num_blocks
    parent = list(range(na + pb.num_blocks))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    components = len(parent)
    for x in range(1, n + 1):
        ra = find(block_a[x])
        rb = find(na + block_b[x])
        if ra != rb:
            parent[ra] = rb
            components -= 1
    return components == 1
