"""Enumeration of set partitions and perfect-matching partitions.

Partitions of [n] are generated in restricted-growth-string (RGS) order,
which is canonical, duplicate-free, and counts exactly B_n strings.
Perfect-matching partitions (the TwoPartition input family) are generated
by the classic pair-the-smallest recursion, giving (n-1)!! partitions.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional

from repro.partitions.set_partition import SetPartition


def enumerate_rgs(n: int) -> Iterator[List[int]]:
    """All restricted growth strings of length n.

    A string a_1 .. a_n is an RGS iff a_1 = 0 and
    a_{i+1} <= 1 + max(a_1 .. a_i).
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if n == 0:
        yield []
        return

    rgs = [0] * n

    def rec(i: int, max_so_far: int) -> Iterator[List[int]]:
        if i == n:
            yield list(rgs)
            return
        for label in range(max_so_far + 2):
            rgs[i] = label
            yield from rec(i + 1, max(max_so_far, label))

    yield from rec(1, 0)


def enumerate_partitions(n: int) -> Iterator[SetPartition]:
    """All B_n set partitions of [n], in RGS order."""
    for rgs in enumerate_rgs(n):
        yield SetPartition.from_rgs(rgs)


def enumerate_perfect_matchings(n: int) -> Iterator[SetPartition]:
    """All (n-1)!! partitions of an even [n] into blocks of size 2.

    Recursion: pair the smallest unused element with each other unused
    element in turn.
    """
    if n % 2 != 0:
        raise ValueError(f"perfect matchings need an even ground set, got n={n}")

    def rec(remaining: List[int]) -> Iterator[List[List[int]]]:
        if not remaining:
            yield []
            return
        first = remaining[0]
        for idx in range(1, len(remaining)):
            partner = remaining[idx]
            rest = remaining[1:idx] + remaining[idx + 1 :]
            for tail in rec(rest):
                yield [[first, partner]] + tail

    for blocks in rec(list(range(1, n + 1))):
        yield SetPartition(n, blocks)


def random_partition(n: int, rng: random.Random) -> SetPartition:
    """A uniformly random set partition of [n].

    Uses the RGS chain with exact suffix counts D[i][m] = number of ways to
    extend an RGS prefix of length i whose running maximum is m; sampling
    label j with probability D[i+1][max(m, j)] / D[i][m] is exactly uniform
    over all B_n partitions.
    """
    if n <= 0:
        raise ValueError(f"n must be >= 1, got {n}")
    # D[i][m]: completions of positions i..n-1 given current max label m
    D: List[List[int]] = [[0] * (n + 2) for _ in range(n + 1)]
    D[n] = [1] * (n + 2)
    for i in range(n - 1, 0, -1):
        for m in range(n + 1):
            # labels 0..m reuse the max; label m+1 raises it
            D[i][m] = (m + 1) * D[i + 1][m] + D[i + 1][m + 1]
    rgs = [0] * n
    m = 0
    for i in range(1, n):
        total = D[i][m]
        pick = rng.randrange(total)
        acc = 0
        for label in range(m + 2):
            weight = D[i + 1][max(m, label)]
            acc += weight
            if pick < acc:
                rgs[i] = label
                m = max(m, label)
                break
    return SetPartition.from_rgs(rgs)


def random_perfect_matching(n: int, rng: random.Random) -> SetPartition:
    """A uniformly random perfect-matching partition of an even [n]."""
    if n % 2 != 0:
        raise ValueError(f"perfect matchings need an even ground set, got n={n}")
    remaining = list(range(1, n + 1))
    blocks = []
    while remaining:
        first = remaining.pop(0)
        partner = remaining.pop(rng.randrange(len(remaining)))
        blocks.append([first, partner])
    return SetPartition(n, blocks)
