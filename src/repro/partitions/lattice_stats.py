"""Möbius function and Whitney numbers of the partition lattice.

Theorem 2.3's source is Dowling and Wilson's *Whitney Number Inequalities
for Geometric Lattices* [DW75]: the non-singularity of M_n is a statement
about the partition lattice Pi_n. This module computes the lattice-
theoretic objects directly from the enumerated lattice, so the classical
identities can be verified numerically rather than cited:

* the Möbius function mu(x, y) by recursive summation over intervals;
* mu(0, 1) = (-1)^{n-1} (n-1)! on Pi_n;
* for an interval [x, 1] with x having b blocks, mu(x, 1) =
  (-1)^{b-1} (b-1)!  (the interval is isomorphic to Pi_b);
* Whitney numbers of the second kind W_k = S(n, n - k) (Stirling), whose
  sum is B_n.

Everything is exact and exhaustive, so it is usable up to n ~ 7
(B_7 = 877 lattice elements).
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Dict, List, Tuple

from repro.partitions.bell import bell_number, stirling2
from repro.partitions.enumeration import enumerate_partitions
from repro.partitions.set_partition import SetPartition


def interval(x: SetPartition, y: SetPartition) -> List[SetPartition]:
    """All z with x <= z <= y in the refinement order (x must refine y)."""
    if not x.refines(y):
        raise ValueError("empty interval: x does not refine y")
    return [
        z
        for z in enumerate_partitions(x.n)
        if x.refines(z) and z.refines(y)
    ]


def mobius(x: SetPartition, y: SetPartition) -> int:
    """The Möbius function mu(x, y) of the partition lattice.

    Computed by the defining recursion mu(x, x) = 1 and
    sum_{x <= z <= y} mu(x, z) = 0 for x < y.
    """
    if not x.refines(y):
        return 0
    elements = interval(x, y)
    # topologically safe: process by number of blocks descending (finer first)
    elements.sort(key=lambda z: -z.num_blocks)
    values: Dict[SetPartition, int] = {}
    for z in elements:
        if z == x:
            values[z] = 1
            continue
        total = 0
        for w in elements:
            if w != z and x.refines(w) and w.refines(z):
                total += values[w]
        values[z] = -total
    return values[y]


def mobius_bottom_top(n: int) -> int:
    """mu(0, 1) on Pi_n; classically (-1)^{n-1} (n-1)!."""
    return mobius(SetPartition.finest(n), SetPartition.coarsest(n))


def predicted_mobius_bottom_top(n: int) -> int:
    """The closed form (-1)^{n-1} (n-1)!."""
    return (-1) ** (n - 1) * math.factorial(n - 1)


def predicted_mobius_to_top(x: SetPartition) -> int:
    """mu(x, 1) = (-1)^{b-1} (b-1)! where b = #blocks of x (the interval
    [x, 1] is isomorphic to the partition lattice on the blocks)."""
    b = x.num_blocks
    return (-1) ** (b - 1) * math.factorial(b - 1)


def whitney_numbers_second_kind(n: int) -> List[int]:
    """W_k = #elements of rank k in Pi_n = S(n, n - k), k = 0 .. n-1."""
    return [stirling2(n, n - k) for k in range(n)]


def whitney_sum_is_bell(n: int) -> bool:
    """sum_k W_k = B_n (the lattice has B_n elements)."""
    return sum(whitney_numbers_second_kind(n)) == bell_number(n)


def characteristic_polynomial(n: int, t: int) -> int:
    """chi(Pi_n; t) = sum_x mu(0, x) t^{n - rank(x)} evaluated at integer t.

    Classically chi(Pi_n; t) = (t - 1)(t - 2) .. (t - n + 1); the tests
    verify the identity numerically from the enumerated lattice.
    """
    bottom = SetPartition.finest(n)
    total = 0
    for x in enumerate_partitions(n):
        rank = n - x.num_blocks
        total += mobius(bottom, x) * t ** (n - 1 - rank)
    return total


def predicted_characteristic_polynomial(n: int, t: int) -> int:
    """(t - 1)(t - 2) .. (t - n + 1)."""
    out = 1
    for k in range(1, n):
        out *= t - k
    return out
