"""Bell numbers, Stirling numbers, and perfect-matching counts.

The communication lower bounds of Section 4 rest on exact counting:

* the number of set partitions of [n] is the Bell number B_n = 2^{Theta(n log n)}
  (the rank of M_n in Theorem 2.3);
* the number of perfect-matching partitions of [n] (every block of size 2)
  is r = n! / (2^{n/2} (n/2)!) = (n-1)!!, the rank of E_n in Lemma 4.1.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import List


@lru_cache(maxsize=None)
def bell_number(n: int) -> int:
    """B_n via the Bell triangle (exact, arbitrary precision)."""
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if n == 0:
        return 1
    row = [1]
    for _ in range(n - 1):
        new_row = [row[-1]]
        for value in row:
            new_row.append(new_row[-1] + value)
        row = new_row
    return row[-1]


def bell_numbers_upto(n: int) -> List[int]:
    """[B_0, B_1, .., B_n]."""
    return [bell_number(k) for k in range(n + 1)]


@lru_cache(maxsize=None)
def stirling2(n: int, k: int) -> int:
    """Stirling number of the second kind: partitions of [n] into k blocks."""
    if n < 0 or k < 0:
        raise ValueError("n and k must be >= 0")
    if n == k == 0:
        return 1
    if n == 0 or k == 0:
        return 0
    return k * stirling2(n - 1, k) + stirling2(n - 1, k - 1)


def perfect_matching_count(n: int) -> int:
    """r = n!/(2^{n/2} (n/2)!) perfect-matching partitions of an even [n]."""
    if n < 0 or n % 2 != 0:
        raise ValueError(f"perfect matchings need an even ground set, got n={n}")
    if n == 0:
        return 1
    return math.factorial(n) // (2 ** (n // 2) * math.factorial(n // 2))


def double_factorial_odd(m: int) -> int:
    """(m)!! for odd m; perfect_matching_count(n) == (n-1)!!."""
    out = 1
    while m > 1:
        out *= m
        m -= 2
    return out


def log2_bell(n: int) -> float:
    """log2(B_n) -- the input entropy H(P_A) of the PartitionComp hard
    distribution (Theorem 4.5), and Theta(n log n)."""
    return math.log2(bell_number(n))


def log2_perfect_matchings(n: int) -> float:
    """log2(r) = Theta(n log n) -- the TwoPartition rank bound exponent."""
    return math.log2(perfect_matching_count(n))
