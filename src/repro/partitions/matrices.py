"""The Partition matrices M_n and E_n and their ranks.

M_n is the B_n x B_n 0/1 matrix indexed by all set partitions of [n] with
M_n(i, j) = 1 iff P_i ∨ P_j = 1 (the trivial one-block partition).
Theorem 2.3 (Dowling-Wilson): rank(M_n) = B_n, i.e. M_n is non-singular.

E_n is the submatrix of M_n indexed by the perfect-matching partitions
(every block of size exactly 2); Lemma 4.1 shows rank(E_n) = r with
r = n!/(2^{n/2} (n/2)!), via the general fact that a principal submatrix of
a full-rank matrix on matching row/column sets has full rank.

By [KN97, Lemma 1.28] (Mehlhorn-Schmidt), the deterministic two-party
communication complexity of a Boolean function is at least log2 of the rank
of its communication matrix -- giving Corollaries 2.4 and 4.2:
D(Partition) = Omega(n log n) and D(TwoPartition) = Omega(n log n).

Two construction pipelines coexist:

* The *dense* pipeline (:func:`build_m_matrix` / :func:`build_e_matrix`)
  materializes the full B_n x B_n list-of-lists. Simple, and what the
  reference kernel needs -- but a Python list-of-lists row costs ~8 bytes
  per cell plus object overhead, so M_8 (4140^2 cells) already wants
  gigabytes and dominates wall time before the rank even starts.
* The *streamed* pipeline (:func:`streamed_matrix_rank` and friends)
  never materializes the dense matrix: row blocks of fixed size are
  generated straight from the partition pairs (sharded over the PR 4
  :class:`~repro.parallel.ShardPlan`, so construction parallelizes and
  each shard's seed/extent is deterministic), and each row is packed to
  a GF(2) bitset (``p = 2``) or a sparse dict (odd ``p``) the moment it
  is built. Peak memory is one block of column indices plus the compact
  row representations -- bits, not Python ints, per cell. Ranks agree
  exactly with the dense pipeline's (pinned by tests): the streamed
  GF(2) engines satisfy the PR 5 bit-identical contract, and the
  streamed exact rank runs the same certificate chain as
  :func:`repro.partitions.linalg.rank_exact` does for large matrices.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.spans import span
from repro.partitions.bell import bell_number, perfect_matching_count
from repro.partitions.enumeration import enumerate_partitions, enumerate_perfect_matchings
from repro.partitions.linalg import (
    DEFAULT_PRIMES,
    M4RI_ROW_THRESHOLD,
    is_full_rank,
    rank_exact,
)
from repro.partitions.set_partition import SetPartition, joins_to_top

if TYPE_CHECKING:
    from repro.resilience.budget import Budget

#: Rows per construction block of the streamed pipeline: bounds peak
#: memory (one block of column-index lists at a time) and is the shard
#: extent for parallel construction.
DEFAULT_BLOCK_ROWS = 256

#: ``streamed=None`` (auto) switches m/e_matrix_rank to the streamed
#: pipeline at or above this many rows -- the regime where the dense
#: list-of-lists build starts to dominate both memory and wall time.
STREAM_ROW_THRESHOLD = 1000

#: The two matrix families the streamed pipeline knows how to build.
MATRIX_FAMILIES = ("m", "e")


# ----------------------------------------------------------------------
# memoized enumeration (shared by every builder at the same n)
# ----------------------------------------------------------------------

@lru_cache(maxsize=None)
def _all_partitions_cached(n: int) -> Tuple[SetPartition, ...]:
    """All set partitions of [n] in RGS order, enumerated once per process."""
    return tuple(enumerate_partitions(n))


@lru_cache(maxsize=None)
def _all_matchings_cached(n: int) -> Tuple[SetPartition, ...]:
    """All perfect matchings of an even [n], enumerated once per process."""
    return tuple(enumerate_perfect_matchings(n))


def partitions_for(
    n: int, metrics: Optional[MetricsRegistry] = None
) -> Tuple[SetPartition, ...]:
    """Memoized ``enumerate_partitions(n)``; counts repeat hits.

    ``m_matrix_rank`` and every streamed M-block at the same ``n`` share
    one enumeration; each repeated call increments the
    ``partitions.enumeration_cache_hits`` counter (mirroring
    ``exhaustive.pair_cache_hits``) and costs one dict lookup.
    """
    if metrics is None:
        metrics = get_registry()
    hits_before = _all_partitions_cached.cache_info().hits
    table = _all_partitions_cached(n)
    if metrics is not None and _all_partitions_cached.cache_info().hits > hits_before:
        metrics.counter("partitions.enumeration_cache_hits").inc()
    return table


def matchings_for(
    n: int, metrics: Optional[MetricsRegistry] = None
) -> Tuple[SetPartition, ...]:
    """Memoized ``enumerate_perfect_matchings(n)``; counts repeat hits."""
    if metrics is None:
        metrics = get_registry()
    hits_before = _all_matchings_cached.cache_info().hits
    table = _all_matchings_cached(n)
    if metrics is not None and _all_matchings_cached.cache_info().hits > hits_before:
        metrics.counter("partitions.enumeration_cache_hits").inc()
    return table


def clear_enumeration_cache() -> None:
    """Drop the memoized partition/matching tables (tests; memory pressure)."""
    _all_partitions_cached.cache_clear()
    _all_matchings_cached.cache_clear()


def _family_table(family: str, n: int) -> Tuple[SetPartition, ...]:
    if family == "m":
        return partitions_for(n)
    if family == "e":
        return matchings_for(n)
    raise ValueError(
        f"unknown matrix family {family!r}; expected one of {', '.join(MATRIX_FAMILIES)}"
    )


# ----------------------------------------------------------------------
# dense pipeline
# ----------------------------------------------------------------------

def partition_matrix(partitions: Sequence[SetPartition]) -> List[List[int]]:
    """The 0/1 join-to-top matrix over an arbitrary partition family."""
    return [
        [1 if joins_to_top(pa, pb) else 0 for pb in partitions]
        for pa in partitions
    ]


def build_m_matrix(n: int) -> Tuple[List[SetPartition], List[List[int]]]:
    """All partitions of [n] and the full M_n matrix (B_n x B_n)."""
    partitions = list(partitions_for(n))
    return partitions, partition_matrix(partitions)


def build_e_matrix(n: int) -> Tuple[List[SetPartition], List[List[int]]]:
    """Perfect-matching partitions of an even [n] and the E_n matrix (r x r)."""
    matchings = list(matchings_for(n))
    return matchings, partition_matrix(matchings)


# ----------------------------------------------------------------------
# streamed pipeline
# ----------------------------------------------------------------------

def _stream_block_worker(payload: tuple) -> List[Tuple[int, ...]]:
    """Build rows [start, stop) of a family matrix as column-index tuples.

    Module-level and picklable (PR 4 executor contract). Each worker
    process re-derives the memoized partition table for ``n`` once; the
    wire format is just the nonzero column indices per row -- the
    compact truth of a 0/1 matrix, independent of the prime the caller
    will reduce at.
    """
    n, family, start, stop = payload
    table = _family_table(family, n)
    rows: List[Tuple[int, ...]] = []
    for i in range(start, stop):
        pa = table[i]
        rows.append(
            tuple(j for j, pb in enumerate(table) if joins_to_top(pa, pb))
        )
    return rows


def stream_matrix_rows(
    n: int,
    family: str = "m",
    block_rows: int = DEFAULT_BLOCK_ROWS,
    workers: int = 1,
) -> Iterator[Tuple[int, List[Tuple[int, ...]]]]:
    """Yield ``(start_row, rows)`` blocks of a family matrix in row order.

    Rows are tuples of nonzero column indices, built straight from the
    partition pairs -- the dense matrix never exists. Blocks are the
    shards of a :class:`~repro.parallel.ShardPlan` over the row count
    (contiguous, balanced, deterministic), so the construction is
    embarrassingly parallel: with ``workers > 1`` the blocks are built
    by a :class:`~repro.parallel.ParallelExecutor` process pool and
    yielded in shard order, byte-identical to the serial build.
    """
    if block_rows < 1:
        raise ValueError(f"block_rows must be >= 1, got {block_rows}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    table = _family_table(family, n)
    total = len(table)
    if total == 0:
        return
    from repro.parallel.shard import ShardPlan

    plan = ShardPlan(
        total=total,
        num_shards=max(1, math.ceil(total / block_rows)),
        base_seed=0,
    )
    payloads = [(n, family, shard.start, shard.stop) for shard in plan.shards()]
    if workers <= 1:
        for payload in payloads:
            yield payload[2], _stream_block_worker(payload)
        return
    from repro.parallel.executor import ParallelExecutor

    results = ParallelExecutor(workers=workers).map(_stream_block_worker, payloads)
    for payload, rows in zip(payloads, results):
        yield payload[2], rows


def _pack_col_tuple(cols_idx: Tuple[int, ...], ncols: int) -> int:
    """Column indices -> the packed GF(2) big-int row (bit c = column c)."""
    buf = bytearray((ncols + 7) >> 3)
    for c in cols_idx:
        buf[c >> 3] |= 1 << (c & 7)
    return int.from_bytes(bytes(buf), "little")


def streamed_matrix_rank_mod_p(
    n: int,
    p: int,
    family: str = "m",
    budget: Optional["Budget"] = None,
    block_rows: int = DEFAULT_BLOCK_ROWS,
    workers: int = 1,
    kernel: str = "auto",
) -> int:
    """Rank of M_n (``family="m"``) or E_n (``"e"``) mod ``p``, streamed.

    Each block of rows is converted to its compact representation the
    moment it is built: packed big-int bitsets at ``p = 2`` (eliminated
    by the Four-Russians engine above :data:`M4RI_ROW_THRESHOLD` rows in
    ``auto``, always under ``kernel="four-russians"``, else the packed
    engine) and sparse ``{col: 1}`` dicts at odd primes (the sparse
    engine -- the matrices this pipeline exists for are exactly the
    low-fill-in family where it wins; a dense engine would need the
    materialized matrix the pipeline avoids). ``kernel="reference"``
    raises ``ValueError``: the reference engine is defined on the dense
    matrix (use the dense pipeline to cross-check, as the tests do).
    Ranks, budget ticks, and exhaustion boundaries equal the dense
    pipeline's on every input.
    """
    from repro.kernels import (
        rank_gf2_m4ri,
        rank_gf2_packed,
        rank_mod_p_sparse_rows,
        resolve_kernel,
    )
    from repro.kernels import gf2 as _gf2

    if resolve_kernel(kernel) == "reference":
        raise ValueError(
            "streamed matrix pipeline requires a fast kernel family; "
            "use kernel='auto'/'packed'/'four-russians'/'sparse' "
            "(the dense pipeline serves kernel='reference')"
        )
    table = _family_table(family, n)
    total = len(table)
    with span(
        "partitions.streamed_rank_mod_p",
        rows=total,
        cols=total,
        p=p,
        family=family,
        workers=workers,
    ):
        if p == 2 and kernel != "sparse":
            packed: List[int] = []
            for _, rows in stream_matrix_rows(n, family, block_rows, workers):
                packed.extend(_pack_col_tuple(r, total) for r in rows)
            use_m4ri = kernel == "four-russians" or (
                kernel == "auto"
                and _gf2._np is not None
                and total >= M4RI_ROW_THRESHOLD
            )
            if use_m4ri:
                return rank_gf2_m4ri(packed, total, budget=budget)
            return rank_gf2_packed(packed, total, budget)
        sparse: List[Dict[int, int]] = []
        one = 1 % p
        for _, rows in stream_matrix_rows(n, family, block_rows, workers):
            sparse.extend({c: one for c in r} for r in rows)
        return rank_mod_p_sparse_rows(sparse, total, p, budget)


def streamed_matrix_rank(
    n: int,
    family: str = "m",
    primes: Sequence[int] = DEFAULT_PRIMES,
    budget: Optional["Budget"] = None,
    block_rows: int = DEFAULT_BLOCK_ROWS,
    workers: int = 1,
    kernel: str = "auto",
) -> int:
    """Exact-certificate rank of a family matrix, fully streamed.

    The same certificate chain :func:`~repro.partitions.linalg.rank_exact`
    runs for large matrices: a *full* rank mod the first prime certifies
    the rational rank (short-circuit -- the common case, since
    Theorem 2.3 / Lemma 4.1 say M_n and E_n are non-singular);
    otherwise the maximum mod-p rank over the remaining primes is a
    certified lower bound, exact unless every listed prime divides the
    relevant minors. Construction cost is paid once per prime actually
    eliminated, never for the dense matrix.
    """
    table = _family_table(family, n)
    total = len(table)
    if total == 0:
        return 0
    with span("partitions.streamed_rank", rows=total, cols=total, family=family):
        first = streamed_matrix_rank_mod_p(
            n, primes[0], family, budget, block_rows, workers, kernel
        )
        if first == total:
            return first
        best = first
        for p in primes[1:]:
            best = max(
                best,
                streamed_matrix_rank_mod_p(
                    n, p, family, budget, block_rows, workers, kernel
                ),
            )
        return best


def _use_streamed(streamed: Optional[bool], total: int, kernel: str) -> bool:
    from repro.kernels import resolve_kernel

    if streamed is not None:
        return streamed
    return total >= STREAM_ROW_THRESHOLD and resolve_kernel(kernel) == "packed"


# ----------------------------------------------------------------------
# the paper's rank facts
# ----------------------------------------------------------------------

def m_matrix_rank(
    n: int,
    workers: int = 1,
    kernel: str = "auto",
    streamed: Optional[bool] = None,
    block_rows: int = DEFAULT_BLOCK_ROWS,
) -> int:
    """rank(M_n), computed exactly; Theorem 2.3 predicts B_n.

    ``workers`` fans the multi-prime confirmation (dense) or the block
    construction (streamed) out; ``kernel`` picks the rank engine
    (``repro.kernels``) -- every mode returns the same value.
    ``streamed=None`` picks the streamed pipeline automatically at
    B_n >= :data:`STREAM_ROW_THRESHOLD` (never for
    ``kernel="reference"``, which is defined on the dense matrix).
    """
    total = bell_number(n)
    if _use_streamed(streamed, total, kernel):
        return streamed_matrix_rank(
            n, "m", workers=workers, kernel=kernel, block_rows=block_rows
        )
    _, matrix = build_m_matrix(n)
    return rank_exact(matrix, workers=workers, kernel=kernel)


def e_matrix_rank(
    n: int,
    workers: int = 1,
    kernel: str = "auto",
    streamed: Optional[bool] = None,
    block_rows: int = DEFAULT_BLOCK_ROWS,
) -> int:
    """rank(E_n), computed exactly; Lemma 4.1 predicts n!/(2^{n/2}(n/2)!).

    Same knobs as :func:`m_matrix_rank`.
    """
    total = perfect_matching_count(n)
    if _use_streamed(streamed, total, kernel):
        return streamed_matrix_rank(
            n, "e", workers=workers, kernel=kernel, block_rows=block_rows
        )
    _, matrix = build_e_matrix(n)
    return rank_exact(matrix, workers=workers, kernel=kernel)


def m_matrix_is_full_rank(n: int, kernel: str = "auto") -> bool:
    """One-prime certificate that M_n is non-singular."""
    _, matrix = build_m_matrix(n)
    return is_full_rank(matrix, kernel=kernel)


def e_matrix_is_full_rank(n: int, kernel: str = "auto") -> bool:
    """One-prime certificate that E_n is non-singular."""
    _, matrix = build_e_matrix(n)
    return is_full_rank(matrix, kernel=kernel)


def partition_cc_lower_bound(n: int) -> float:
    """log2 rank(M_n) = log2 B_n bits (Corollary 2.4): a lower bound on the
    deterministic 2-party communication complexity of Partition."""
    return math.log2(bell_number(n))


def two_partition_cc_lower_bound(n: int) -> float:
    """log2 rank(E_n) = log2 r bits (Corollary 4.2) for even n."""
    return math.log2(perfect_matching_count(n))
