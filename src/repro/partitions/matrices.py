"""The Partition matrices M_n and E_n and their ranks.

M_n is the B_n x B_n 0/1 matrix indexed by all set partitions of [n] with
M_n(i, j) = 1 iff P_i ∨ P_j = 1 (the trivial one-block partition).
Theorem 2.3 (Dowling-Wilson): rank(M_n) = B_n, i.e. M_n is non-singular.

E_n is the submatrix of M_n indexed by the perfect-matching partitions
(every block of size exactly 2); Lemma 4.1 shows rank(E_n) = r with
r = n!/(2^{n/2} (n/2)!), via the general fact that a principal submatrix of
a full-rank matrix on matching row/column sets has full rank.

By [KN97, Lemma 1.28] (Mehlhorn-Schmidt), the deterministic two-party
communication complexity of a Boolean function is at least log2 of the rank
of its communication matrix -- giving Corollaries 2.4 and 4.2:
D(Partition) = Omega(n log n) and D(TwoPartition) = Omega(n log n).
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.partitions.bell import bell_number, perfect_matching_count
from repro.partitions.enumeration import enumerate_partitions, enumerate_perfect_matchings
from repro.partitions.linalg import is_full_rank, rank_exact
from repro.partitions.set_partition import SetPartition, joins_to_top


def partition_matrix(partitions: Sequence[SetPartition]) -> List[List[int]]:
    """The 0/1 join-to-top matrix over an arbitrary partition family."""
    return [
        [1 if joins_to_top(pa, pb) else 0 for pb in partitions]
        for pa in partitions
    ]


def build_m_matrix(n: int) -> Tuple[List[SetPartition], List[List[int]]]:
    """All partitions of [n] and the full M_n matrix (B_n x B_n)."""
    partitions = list(enumerate_partitions(n))
    return partitions, partition_matrix(partitions)


def build_e_matrix(n: int) -> Tuple[List[SetPartition], List[List[int]]]:
    """Perfect-matching partitions of an even [n] and the E_n matrix (r x r)."""
    matchings = list(enumerate_perfect_matchings(n))
    return matchings, partition_matrix(matchings)


def m_matrix_rank(n: int, workers: int = 1, kernel: str = "auto") -> int:
    """rank(M_n), computed exactly; Theorem 2.3 predicts B_n.

    ``workers`` fans the multi-prime confirmation out (PR 4);
    ``kernel`` picks the rank engine (``repro.kernels``) -- every mode
    returns the same value.
    """
    _, matrix = build_m_matrix(n)
    return rank_exact(matrix, workers=workers, kernel=kernel)


def e_matrix_rank(n: int, workers: int = 1, kernel: str = "auto") -> int:
    """rank(E_n), computed exactly; Lemma 4.1 predicts n!/(2^{n/2}(n/2)!)."""
    _, matrix = build_e_matrix(n)
    return rank_exact(matrix, workers=workers, kernel=kernel)


def m_matrix_is_full_rank(n: int, kernel: str = "auto") -> bool:
    """One-prime certificate that M_n is non-singular."""
    _, matrix = build_m_matrix(n)
    return is_full_rank(matrix, kernel=kernel)


def e_matrix_is_full_rank(n: int, kernel: str = "auto") -> bool:
    """One-prime certificate that E_n is non-singular."""
    _, matrix = build_e_matrix(n)
    return is_full_rank(matrix, kernel=kernel)


def partition_cc_lower_bound(n: int) -> float:
    """log2 rank(M_n) = log2 B_n bits (Corollary 2.4): a lower bound on the
    deterministic 2-party communication complexity of Partition."""
    return math.log2(bell_number(n))


def two_partition_cc_lower_bound(n: int) -> float:
    """log2 rank(E_n) = log2 r bits (Corollary 4.2) for even n."""
    return math.log2(perfect_matching_count(n))
