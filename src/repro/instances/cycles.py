"""Builders for the paper's cycle instance families.

All of the paper's lower bounds live on 2-regular inputs: one cycle, two
cycles (TwoCycle, Section 3), or many cycles (MultiCycle, Section 4). This
module turns vertex orderings into fully wired KT-0 / KT-1
:class:`BCCInstance` objects.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.core.instance import BCCInstance
from repro.graphs.generators import (
    cycle_graph,
    one_cycle,
    random_cycle,
    random_union_of_cycles,
    two_cycles,
    union_of_cycles,
)


def one_cycle_instance(
    n: int,
    kt: int = 0,
    order: Optional[Sequence[int]] = None,
    ids: Optional[Sequence[int]] = None,
    rng: Optional[random.Random] = None,
) -> BCCInstance:
    """A single-cycle (YES) instance on ``n`` vertices.

    ``order`` gives the cyclic vertex order (default ``0, 1, .., n-1``).
    For KT-0, ``rng`` optionally shuffles the per-vertex port numbering.
    """
    graph = one_cycle(n) if order is None else cycle_graph(order)
    if kt == 1:
        return BCCInstance.kt1_from_graph(graph, ids=ids)
    return BCCInstance.kt0_from_graph(graph, ids=ids, rng=rng)


def two_cycle_instance(
    n: int,
    split: int,
    kt: int = 0,
    ids: Optional[Sequence[int]] = None,
    rng: Optional[random.Random] = None,
) -> BCCInstance:
    """A two-cycle (NO) instance: cycles on 0..split-1 and split..n-1."""
    graph = two_cycles(n, split)
    if kt == 1:
        return BCCInstance.kt1_from_graph(graph, ids=ids)
    return BCCInstance.kt0_from_graph(graph, ids=ids, rng=rng)


def multi_cycle_instance(
    cycles: Sequence[Sequence[int]],
    kt: int = 0,
    ids: Optional[Sequence[int]] = None,
    rng: Optional[random.Random] = None,
) -> BCCInstance:
    """An instance whose input graph is the disjoint union of the given
    cycles; the cycles must cover the vertex indices ``0..n-1`` exactly."""
    graph = union_of_cycles(cycles)
    if kt == 1:
        return BCCInstance.kt1_from_graph(graph, ids=ids)
    return BCCInstance.kt0_from_graph(graph, ids=ids, rng=rng)


def random_one_cycle_instance(
    n: int, kt: int, rng: random.Random, shuffle_ports: bool = False
) -> BCCInstance:
    """A uniformly random Hamiltonian-cycle instance."""
    graph = random_cycle(n, rng)
    if kt == 1:
        return BCCInstance.kt1_from_graph(graph)
    return BCCInstance.kt0_from_graph(graph, rng=rng if shuffle_ports else None)


def random_multi_cycle_instance(
    n: int, num_cycles: int, kt: int, rng: random.Random, shuffle_ports: bool = False
) -> BCCInstance:
    """A random instance with exactly ``num_cycles`` disjoint cycles."""
    graph = random_union_of_cycles(n, num_cycles, rng)
    if kt == 1:
        return BCCInstance.kt1_from_graph(graph)
    return BCCInstance.kt0_from_graph(graph, rng=rng if shuffle_ports else None)
