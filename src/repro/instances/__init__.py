"""Cycle instance families and exhaustive enumeration of V1 / V2."""

from repro.instances.cycles import (
    multi_cycle_instance,
    one_cycle_instance,
    random_multi_cycle_instance,
    random_one_cycle_instance,
    two_cycle_instance,
)
from repro.instances.enumeration import (
    CycleCover,
    count_cycles_on_set,
    count_one_cycle_covers,
    count_two_cycle_covers,
    count_two_cycle_covers_with_split,
    enumerate_multi_cycle_covers,
    enumerate_one_cycle_covers,
    enumerate_two_cycle_covers,
    v2_to_v1_ratio,
)

__all__ = [
    "CycleCover",
    "count_cycles_on_set",
    "count_one_cycle_covers",
    "count_two_cycle_covers",
    "count_two_cycle_covers_with_split",
    "enumerate_multi_cycle_covers",
    "enumerate_one_cycle_covers",
    "enumerate_two_cycle_covers",
    "multi_cycle_instance",
    "one_cycle_instance",
    "random_multi_cycle_instance",
    "random_one_cycle_instance",
    "two_cycle_instance",
    "v2_to_v1_ratio",
]
