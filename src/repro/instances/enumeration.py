"""Exhaustive enumeration of the V1 / V2 instance spaces.

Section 3.1 of the paper works with

* ``V1`` -- the set of all one-cycle instances (input graph = a Hamiltonian
  cycle on the n labelled vertices), and
* ``V2`` -- the set of all two-cycle instances (two disjoint cycles, each of
  length >= 3, covering the n vertices).

The crossing relation, degree profiles (Lemma 3.7), Hall conditions
(Lemma 3.8), and the |V2| = |V1| * Theta(log n) count (Lemma 3.9) are all
statements about the *input-graph* structure: which cycle covers can be
produced from which by one port-preserving crossing. This module therefore
enumerates cycle covers combinatorially (as canonical edge sets), which is
exact and vastly cheaper than enumerating wired instances; the operational
(simulator-level) counterpart lives in :mod:`repro.crossing`.

A cycle cover is represented as a :class:`CycleCover`, a frozenset of
canonical (u < v) edges plus cached structure.
"""

from __future__ import annotations

import math
from itertools import combinations, permutations
from typing import FrozenSet, Iterator, List, Tuple

from repro.graphs.graph import Graph

#: Canonical undirected edge on vertex indices.
UEdge = Tuple[int, int]


def _edge(u: int, v: int) -> UEdge:
    return (u, v) if u < v else (v, u)


class CycleCover:
    """A disjoint union of cycles covering ``0..n-1``, keyed by edge set."""

    __slots__ = ("n", "edges", "_cycles")

    def __init__(self, n: int, edges: FrozenSet[UEdge], cycles: Tuple[Tuple[int, ...], ...]):
        self.n = n
        self.edges = edges
        self._cycles = cycles

    @staticmethod
    def from_cycles(n: int, cycles: Tuple[Tuple[int, ...], ...]) -> "CycleCover":
        edges = []
        for cyc in cycles:
            for i, u in enumerate(cyc):
                edges.append(_edge(u, cyc[(i + 1) % len(cyc)]))
        return CycleCover(n, frozenset(edges), cycles)

    @property
    def cycles(self) -> Tuple[Tuple[int, ...], ...]:
        """The cycles as vertex tuples (traversal order)."""
        return self._cycles

    @property
    def num_cycles(self) -> int:
        return len(self._cycles)

    def cycle_lengths(self) -> Tuple[int, ...]:
        return tuple(sorted(len(c) for c in self._cycles))

    def is_one_cycle(self) -> bool:
        return len(self._cycles) == 1

    def to_graph(self) -> Graph:
        return Graph(range(self.n), self.edges)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CycleCover):
            return NotImplemented
        return self.n == other.n and self.edges == other.edges

    def __hash__(self) -> int:
        return hash((self.n, self.edges))

    def __repr__(self) -> str:
        return f"CycleCover(n={self.n}, lengths={self.cycle_lengths()})"


# ----------------------------------------------------------------------
# enumeration
# ----------------------------------------------------------------------
def enumerate_one_cycle_covers(n: int) -> Iterator[CycleCover]:
    """All Hamiltonian cycles on ``0..n-1``; there are (n-1)!/2 of them.

    Canonicalization: cycles are rooted at vertex 0 and the traversal
    direction is fixed by requiring the first step to be smaller than the
    last (which kills the reflection).
    """
    if n < 3:
        raise ValueError(f"cycles need n >= 3, got {n}")
    for perm in permutations(range(1, n)):
        if perm[0] < perm[-1]:
            yield CycleCover.from_cycles(n, ((0,) + perm,))


def _enumerate_cycles_on(vertices: Tuple[int, ...]) -> Iterator[Tuple[int, ...]]:
    """All distinct cycles on a fixed vertex set (rooted, reflection-free)."""
    first, rest = vertices[0], vertices[1:]
    if len(vertices) == 3:
        yield vertices
        return
    for perm in permutations(rest):
        if perm[0] < perm[-1]:
            yield (first,) + perm


def enumerate_two_cycle_covers(n: int, min_length: int = 3) -> Iterator[CycleCover]:
    """All covers by exactly two disjoint cycles of length >= ``min_length``.

    The double count between a subset and its complement is avoided by
    requiring vertex 0 to lie in the first cycle.
    """
    if n < 2 * min_length:
        return
    others = tuple(range(1, n))
    for i in range(min_length, n - min_length + 1):
        for chosen in combinations(others, i - 1):
            first_set = (0,) + chosen
            second_set = tuple(v for v in others if v not in set(chosen))
            if len(second_set) < min_length:
                continue
            for c1 in _enumerate_cycles_on(first_set):
                for c2 in _enumerate_cycles_on(second_set):
                    yield CycleCover.from_cycles(n, (c1, c2))


def enumerate_multi_cycle_covers(n: int, min_length: int = 3) -> Iterator[CycleCover]:
    """All covers by one *or more* disjoint cycles of length >= min_length.

    Used by the MultiCycle machinery at small n. Enumerates set partitions
    of 0..n-1 into blocks of size >= min_length, then all cycles per block.
    """

    def blocks(remaining: Tuple[int, ...]) -> Iterator[Tuple[Tuple[int, ...], ...]]:
        if not remaining:
            yield ()
            return
        first, rest = remaining[0], remaining[1:]
        for size in range(min_length, len(remaining) + 1):
            for chosen in combinations(rest, size - 1):
                block = (first,) + chosen
                leftover = tuple(v for v in rest if v not in set(chosen))
                for tail in blocks(leftover):
                    yield (block,) + tail

    def expand(block_list: Tuple[Tuple[int, ...], ...], acc: Tuple[Tuple[int, ...], ...]) -> Iterator[Tuple[Tuple[int, ...], ...]]:
        if not block_list:
            yield acc
            return
        for cyc in _enumerate_cycles_on(block_list[0]):
            yield from expand(block_list[1:], acc + (cyc,))

    for block_list in blocks(tuple(range(n))):
        for cover in expand(block_list, ()):
            yield CycleCover.from_cycles(n, cover)


# ----------------------------------------------------------------------
# closed-form counts (used to cross-check the enumerations and to extend
# Lemma 3.9's |V2| / |V1| ratio far beyond enumerable n)
# ----------------------------------------------------------------------
def count_one_cycle_covers(n: int) -> int:
    """|V1| = (n-1)!/2 Hamiltonian cycles on n labelled vertices."""
    if n < 3:
        raise ValueError(f"cycles need n >= 3, got {n}")
    return math.factorial(n - 1) // 2


def count_cycles_on_set(k: int) -> int:
    """Number of distinct cycles on a fixed k-set: (k-1)!/2 (1 when k = 3)."""
    if k < 3:
        raise ValueError(f"cycles need k >= 3, got {k}")
    return max(1, math.factorial(k - 1) // 2)


def count_two_cycle_covers(n: int, min_length: int = 3) -> int:
    """|V2|: covers by two disjoint cycles of length >= min_length.

    Sum over the smaller cycle length i of
    C(n, i) * (i-1)!/2 * (n-i-1)!/2, halving the i = n/2 term (where the
    subset and its complement describe the same cover).
    """
    total = 0
    for i in range(min_length, n // 2 + 1):
        if n - i < min_length:
            continue
        term = (
            math.comb(n, i)
            * count_cycles_on_set(i)
            * count_cycles_on_set(n - i)
        )
        if 2 * i == n:
            term //= 2
        total += term
    return total


def count_two_cycle_covers_with_split(n: int, i: int, min_length: int = 3) -> int:
    """|T_i|: two-cycle covers whose smaller cycle has length exactly i."""
    if i < min_length or n - i < i or n - i < min_length:
        raise ValueError(f"invalid split i={i} for n={n}")
    term = math.comb(n, i) * count_cycles_on_set(i) * count_cycles_on_set(n - i)
    if 2 * i == n:
        term //= 2
    return term


def v2_to_v1_ratio(n: int, min_length: int = 3) -> float:
    """|V2| / |V1| -- the quantity Lemma 3.9 pins to Theta(log n)."""
    return count_two_cycle_covers(n, min_length) / count_one_cycle_covers(n)
