"""A bounded, subscribable in-process event bus for live progress.

Long sweeps and scans already *produce* telemetry -- trace events, span
trees, metrics -- but all of it is post-hoc: you read the artifacts
after the run. The bus is the live tap: instrumented call sites
(:class:`repro.core.simulator.Simulator` rounds, fault-sweep cells,
:class:`repro.parallel.ParallelExecutor` shard completions, benchmark
kernels) publish small structured events as they happen, and anything in
the process -- a progress printer, a future job-service streamer -- can
subscribe. This is the progress-streaming seam the ROADMAP item 1
experiment service will sit on.

The contract is exactly the one :mod:`repro.obs.metrics`,
:mod:`repro.obs.spans`, and :mod:`repro.costs` established:

* the bus is **opt-in**, installed process-wide with :func:`use_bus`
  (or :func:`set_bus`), and resolved **once** per run into a local;
* with no bus installed, every instrumented site costs a single
  ``is not None`` check -- no payload dicts are built, nothing is
  allocated (the <1% ``Simulator.run`` overhead budget is measured A/B
  in ``benchmarks/bench_stream.py`` and EXPERIMENTS.md);
* subscriber callbacks run on the publishing thread, outside the bus
  lock; a callback that raises is counted (``error_count``) and never
  breaks the publisher.

Events are retained in a bounded ring buffer (``capacity`` most recent)
so a late subscriber -- or a test -- can inspect recent history without
having been attached from the start.
"""

from __future__ import annotations

import sys
import threading
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Iterator, List, Mapping, Optional, Tuple

__all__ = [
    "DEFAULT_BUS_CAPACITY",
    "Event",
    "EventBus",
    "get_bus",
    "line_printer",
    "set_bus",
    "use_bus",
]

DEFAULT_BUS_CAPACITY = 1024


@dataclass(frozen=True)
class Event:
    """One published event: a monotone sequence number, a dotted kind
    (``"simulator.round"``, ``"sweep.cell"``, ...), and a payload."""

    seq: int
    kind: str
    payload: Mapping[str, Any]


class EventBus:
    """Thread-safe pub/sub with a bounded replay buffer."""

    __slots__ = ("_lock", "_buffer", "_subscribers", "_next_token", "_seq", "_errors")

    def __init__(self, capacity: int = DEFAULT_BUS_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._lock = threading.Lock()
        self._buffer: Deque[Event] = deque(maxlen=capacity)
        #: token -> (callback, kinds-or-None)
        self._subscribers: Dict[int, Tuple[Callable[[Event], None], Optional[frozenset]]] = {}
        self._next_token = 1
        self._seq = 0
        self._errors = 0

    # -- subscription ---------------------------------------------------
    def subscribe(
        self,
        callback: Callable[[Event], None],
        kinds: Optional[List[str]] = None,
    ) -> int:
        """Attach ``callback``; returns a token for :meth:`unsubscribe`.

        ``kinds`` restricts delivery to those event kinds (None = all).
        """
        wanted = None if kinds is None else frozenset(kinds)
        with self._lock:
            token = self._next_token
            self._next_token += 1
            self._subscribers[token] = (callback, wanted)
        return token

    def unsubscribe(self, token: int) -> None:
        with self._lock:
            self._subscribers.pop(token, None)

    @contextmanager
    def subscription(
        self,
        callback: Callable[[Event], None],
        kinds: Optional[List[str]] = None,
    ) -> Iterator[int]:
        """Scoped :meth:`subscribe`: detach when the block exits."""
        token = self.subscribe(callback, kinds)
        try:
            yield token
        finally:
            self.unsubscribe(token)

    # -- publication ----------------------------------------------------
    def publish(self, kind: str, payload: Mapping[str, Any]) -> Event:
        """Record an event and deliver it to matching subscribers.

        Callbacks run on this thread, outside the lock; one raising
        subscriber never affects the others or the publisher.
        """
        with self._lock:
            self._seq += 1
            event = Event(self._seq, kind, payload)
            self._buffer.append(event)
            targets = list(self._subscribers.values())
        for callback, wanted in targets:
            if wanted is not None and kind not in wanted:
                continue
            try:
                callback(event)
            except Exception:
                with self._lock:
                    self._errors += 1
        return event

    # -- inspection -----------------------------------------------------
    def events(self, kinds: Optional[List[str]] = None) -> List[Event]:
        """A snapshot of the retained ring buffer (oldest first)."""
        with self._lock:
            snapshot = list(self._buffer)
        if kinds is None:
            return snapshot
        wanted = frozenset(kinds)
        return [event for event in snapshot if event.kind in wanted]

    @property
    def subscriber_count(self) -> int:
        with self._lock:
            return len(self._subscribers)

    @property
    def published_count(self) -> int:
        with self._lock:
            return self._seq

    @property
    def error_count(self) -> int:
        """Subscriber callbacks that raised (and were contained)."""
        with self._lock:
            return self._errors


def line_printer(stream: Any = None) -> Callable[[Event], None]:
    """A ready-made subscriber printing one ``kind key=value ...`` line
    per event (to stderr by default) -- the ``fault-sweep --live``
    progress feed."""

    def emit(event: Event) -> None:
        out = stream if stream is not None else sys.stderr
        fields = " ".join(f"{key}={event.payload[key]}" for key in sorted(event.payload))
        print(f"[{event.seq}] {event.kind} {fields}".rstrip(), file=out)

    return emit


# ----------------------------------------------------------------------
# the process-wide opt-in bus (same contract as metrics.get_registry)
# ----------------------------------------------------------------------
_active_bus: Optional[EventBus] = None
_active_lock = threading.Lock()


def get_bus() -> Optional[EventBus]:
    """The installed bus, or None when streaming is off.

    Instrumented call sites hold the result in a local and guard every
    publish with ``if bus is not None`` -- the entire disabled-path
    cost (no payload is even constructed).
    """
    return _active_bus


def set_bus(bus: Optional[EventBus]) -> Optional[EventBus]:
    """Install (or, with None, remove) the process-wide bus; returns
    the previous one so callers can restore it."""
    global _active_bus
    with _active_lock:
        previous = _active_bus
        _active_bus = bus
    return previous


@contextmanager
def use_bus(bus: Optional[EventBus]) -> Iterator[Optional[EventBus]]:
    """Scoped :func:`set_bus`: install for the block, then restore."""
    previous = set_bus(bus)
    try:
        yield bus
    finally:
        set_bus(previous)
