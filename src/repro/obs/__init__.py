"""Observability: metrics, spans, structured run traces, benchmarks.

Five small, dependency-free layers:

* :mod:`repro.obs.metrics` -- a thread-safe Counter/Gauge/Histogram/Timer
  registry (histograms carry p50/p90/p99 tail percentiles) with
  snapshot/merge/JSON export, installed process-wide (and opt-in) via
  :func:`use_registry`;
* :mod:`repro.obs.spans` -- a hierarchical span profiler
  (:class:`SpanRecorder`, the :func:`span` context manager/decorator)
  answering *where* time goes: run -> round -> broadcast/deliver trees
  with self-vs-cumulative attribution, exported as span-tree JSON and
  as trace-v3 ``span_start``/``span_end`` events;
* :mod:`repro.obs.trace` -- a JSONL run-trace writer (one event per
  line, run-id + seq + timestamp), the machine-readable counterpart to
  the human tables in :mod:`repro.core.tracing`;
* :mod:`repro.obs.bench` -- the :class:`BenchmarkHarness` that runs every
  ``benchmarks/bench_*.py`` kernel under a fresh registry and writes
  schema-versioned ``BENCH_<name>.json`` perf records
  (:mod:`repro.obs.schema` documents and validates the format);
* :mod:`repro.obs.regress` -- the ``BENCH_HISTORY.jsonl`` history store
  and the median+MAD perf-regression detector behind ``repro bench
  --history``, ``repro compare``, and the generated ``docs/PERF.md``;
* :mod:`repro.obs.sketches` -- deterministic, *mergeable* population
  summaries (quantile / top-k / moments sketches) whose states are pure
  functions of the observed multiset, registered as monoids with
  :mod:`repro.parallel.merge` so sharded sweeps fold to bit-identical
  populations for any worker count;
* :mod:`repro.obs.stream` -- a bounded, subscribable in-process
  :class:`EventBus` (opt-in via :func:`use_bus`) that instrumented call
  sites publish live progress events to;
* :mod:`repro.obs.dash` -- the self-contained HTML dashboard behind
  ``repro dash``, unifying bench history, span hot paths, cost and
  population summaries in one dependency-free file.
"""

from repro.obs.bench import (
    BenchmarkHarness,
    BenchmarkResult,
    BenchmarkSpec,
    bench_names,
    load_bench_payloads,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    get_registry,
    merge_snapshots,
    set_registry,
    use_registry,
)
from repro.obs.regress import (
    DEFAULT_HISTORY_PATH,
    HISTORY_SCHEMA_VERSION,
    RegressionFinding,
    append_history,
    current_git_sha,
    detect_regressions,
    history_record,
    read_history,
    render_perf_dashboard,
    sparkline,
    validate_history_record,
)
from repro.obs.schema import BENCH_SCHEMA_VERSION, validate_bench_payload
from repro.obs.spans import (
    SPAN_TREE_SCHEMA_VERSION,
    Span,
    SpanRecorder,
    aggregate_spans,
    get_recorder,
    render_hotspots,
    render_span_tree,
    set_recorder,
    span,
    use_recorder,
    validate_span_tree_payload,
)
from repro.obs.stream import (
    Event,
    EventBus,
    get_bus,
    line_printer,
    set_bus,
    use_bus,
)
from repro.obs.trace import (
    TRACE_SCHEMA_VERSION,
    RunTrace,
    read_trace,
    trace_stats,
    validate_trace_events,
)

# The sketches and dash layers are re-exported lazily (PEP 562):
# sketches imports repro.parallel.merge, whose package __init__ reaches
# repro.resilience.harness and, through it, repro.core -- and repro.core
# imports repro.obs.metrics (and hence this package) at class-definition
# time. Deferring the import until first attribute access keeps
# ``from repro.obs import QuantileSketch`` working without making this
# package's import order depend on who imported repro.core first.
_LAZY_EXPORTS = {
    "MomentsSketch": "repro.obs.sketches",
    "QuantileSketch": "repro.obs.sketches",
    "TopKSketch": "repro.obs.sketches",
    "merge_population": "repro.obs.sketches",
    "population_summary": "repro.obs.sketches",
    "sketch_from_dict": "repro.obs.sketches",
    "build_dashboard": "repro.obs.dash",
    "validate_dashboard_html": "repro.obs.dash",
}


def __getattr__(name):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache: __getattr__ only fires on misses
    return value


__all__ = [
    "BENCH_SCHEMA_VERSION",
    "DEFAULT_HISTORY_PATH",
    "HISTORY_SCHEMA_VERSION",
    "SPAN_TREE_SCHEMA_VERSION",
    "BenchmarkHarness",
    "BenchmarkResult",
    "BenchmarkSpec",
    "Counter",
    "Event",
    "EventBus",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MomentsSketch",
    "QuantileSketch",
    "RegressionFinding",
    "RunTrace",
    "Span",
    "SpanRecorder",
    "TRACE_SCHEMA_VERSION",
    "Timer",
    "TopKSketch",
    "aggregate_spans",
    "append_history",
    "bench_names",
    "build_dashboard",
    "current_git_sha",
    "detect_regressions",
    "get_bus",
    "get_recorder",
    "get_registry",
    "history_record",
    "line_printer",
    "load_bench_payloads",
    "merge_population",
    "merge_snapshots",
    "population_summary",
    "read_history",
    "read_trace",
    "render_hotspots",
    "render_perf_dashboard",
    "render_span_tree",
    "set_bus",
    "set_recorder",
    "set_registry",
    "sketch_from_dict",
    "span",
    "sparkline",
    "trace_stats",
    "use_bus",
    "use_recorder",
    "use_registry",
    "validate_bench_payload",
    "validate_dashboard_html",
    "validate_history_record",
    "validate_span_tree_payload",
    "validate_trace_events",
]
