"""Observability: metrics, spans, structured run traces, benchmarks.

Five small, dependency-free layers:

* :mod:`repro.obs.metrics` -- a thread-safe Counter/Gauge/Histogram/Timer
  registry (histograms carry p50/p90/p99 tail percentiles) with
  snapshot/merge/JSON export, installed process-wide (and opt-in) via
  :func:`use_registry`;
* :mod:`repro.obs.spans` -- a hierarchical span profiler
  (:class:`SpanRecorder`, the :func:`span` context manager/decorator)
  answering *where* time goes: run -> round -> broadcast/deliver trees
  with self-vs-cumulative attribution, exported as span-tree JSON and
  as trace-v3 ``span_start``/``span_end`` events;
* :mod:`repro.obs.trace` -- a JSONL run-trace writer (one event per
  line, run-id + seq + timestamp), the machine-readable counterpart to
  the human tables in :mod:`repro.core.tracing`;
* :mod:`repro.obs.bench` -- the :class:`BenchmarkHarness` that runs every
  ``benchmarks/bench_*.py`` kernel under a fresh registry and writes
  schema-versioned ``BENCH_<name>.json`` perf records
  (:mod:`repro.obs.schema` documents and validates the format);
* :mod:`repro.obs.regress` -- the ``BENCH_HISTORY.jsonl`` history store
  and the median+MAD perf-regression detector behind ``repro bench
  --history``, ``repro compare``, and the generated ``docs/PERF.md``.
"""

from repro.obs.bench import (
    BenchmarkHarness,
    BenchmarkResult,
    BenchmarkSpec,
    bench_names,
    load_bench_payloads,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    get_registry,
    merge_snapshots,
    set_registry,
    use_registry,
)
from repro.obs.regress import (
    DEFAULT_HISTORY_PATH,
    HISTORY_SCHEMA_VERSION,
    RegressionFinding,
    append_history,
    current_git_sha,
    detect_regressions,
    history_record,
    read_history,
    render_perf_dashboard,
    sparkline,
    validate_history_record,
)
from repro.obs.schema import BENCH_SCHEMA_VERSION, validate_bench_payload
from repro.obs.spans import (
    SPAN_TREE_SCHEMA_VERSION,
    Span,
    SpanRecorder,
    aggregate_spans,
    get_recorder,
    render_hotspots,
    render_span_tree,
    set_recorder,
    span,
    use_recorder,
    validate_span_tree_payload,
)
from repro.obs.trace import (
    TRACE_SCHEMA_VERSION,
    RunTrace,
    read_trace,
    trace_stats,
    validate_trace_events,
)

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "DEFAULT_HISTORY_PATH",
    "HISTORY_SCHEMA_VERSION",
    "SPAN_TREE_SCHEMA_VERSION",
    "BenchmarkHarness",
    "BenchmarkResult",
    "BenchmarkSpec",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RegressionFinding",
    "RunTrace",
    "Span",
    "SpanRecorder",
    "TRACE_SCHEMA_VERSION",
    "Timer",
    "aggregate_spans",
    "append_history",
    "bench_names",
    "current_git_sha",
    "detect_regressions",
    "get_recorder",
    "get_registry",
    "history_record",
    "load_bench_payloads",
    "merge_snapshots",
    "read_history",
    "read_trace",
    "render_hotspots",
    "render_perf_dashboard",
    "render_span_tree",
    "set_recorder",
    "set_registry",
    "span",
    "sparkline",
    "trace_stats",
    "use_recorder",
    "use_registry",
    "validate_bench_payload",
    "validate_history_record",
    "validate_span_tree_payload",
    "validate_trace_events",
]
