"""Observability: metrics, structured run traces, benchmark harness.

Three small, dependency-free layers:

* :mod:`repro.obs.metrics` -- a thread-safe Counter/Gauge/Histogram/Timer
  registry with snapshot/merge/JSON export, installed process-wide (and
  opt-in) via :func:`use_registry`;
* :mod:`repro.obs.trace` -- a JSONL run-trace writer (one event per
  line, run-id + seq + timestamp), the machine-readable counterpart to
  the human tables in :mod:`repro.core.tracing`;
* :mod:`repro.obs.bench` -- the :class:`BenchmarkHarness` that runs every
  ``benchmarks/bench_*.py`` kernel under a fresh registry and writes
  schema-versioned ``BENCH_<name>.json`` perf records
  (:mod:`repro.obs.schema` documents and validates the format).
"""

from repro.obs.bench import (
    BenchmarkHarness,
    BenchmarkResult,
    BenchmarkSpec,
    bench_names,
    load_bench_payloads,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    get_registry,
    merge_snapshots,
    set_registry,
    use_registry,
)
from repro.obs.schema import BENCH_SCHEMA_VERSION, validate_bench_payload
from repro.obs.trace import (
    TRACE_SCHEMA_VERSION,
    RunTrace,
    read_trace,
    validate_trace_events,
)

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchmarkHarness",
    "BenchmarkResult",
    "BenchmarkSpec",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunTrace",
    "TRACE_SCHEMA_VERSION",
    "Timer",
    "bench_names",
    "get_registry",
    "load_bench_payloads",
    "merge_snapshots",
    "read_trace",
    "set_registry",
    "use_registry",
    "validate_bench_payload",
    "validate_trace_events",
]
