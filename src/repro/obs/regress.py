"""Perf-regression tracking: a bench history store plus a detector.

``BENCH_<name>.json`` files are point-in-time records; this module gives
them a trajectory. Each :class:`~repro.obs.bench.BenchmarkHarness` run
can append **one line** to ``BENCH_HISTORY.jsonl`` -- git SHA, wall-clock
timestamp, schema version, quick/full flag, and the per-kernel wall
times -- and :func:`detect_regressions` compares the newest record
against a baseline window of earlier records using a median + MAD rule:

    a kernel regresses when its newest wall time exceeds
    ``threshold * median(baseline)`` (default 1.25x) **and**
    ``median + MAD_K * MAD`` (so a noisy kernel whose history already
    swings past the ratio gate does not false-positive),

with a min-sample guard (fewer than ``min_samples`` baseline points =>
``insufficient``, never ``regressed``). The same data renders a
markdown dashboard (``docs/PERF.md``) with a per-kernel sparkline of
ms/op across history.

Exposed through the CLI as ``repro bench --history``, ``repro compare
[--baseline REF.json] [--fail-on-regress]``, and wired into CI as a
soft (warn-only) gate so noisy shared runners cannot block merges.

History line format (schema version 1)::

    {"schema_version": 1, "ts": 1754464000.1, "git_sha": "61ddd73...",
     "quick": true, "workers": 1, "kernel": "auto",
     "entries": {"simulator": {"wall_time_seconds": 0.004, "ok": true,
                               "bits": 64, "rounds": 4},
                 ...}}

``workers`` (optional; absent = 1 on records written before the
parallel layer) is the harness fan-out the run used; baselines are
partitioned on it exactly like ``quick``. ``kernel`` (optional; absent
= "auto" on records written before the kernels layer) is the
compute-kernel mode (:data:`repro.kernels.KERNEL_MODES`) and partitions
baselines the same way -- a packed-engine wall time is speedup relative
to a reference-engine median, not a baseline for it.

``cache`` (optional; absent = "off" on records written before the
result cache) says whether the harness ran with a warm result cache
available (``repro bench --cache DIR``). Baselines are partitioned on
it exactly like ``quick`` -- a warm-cache wall time is a hash lookup,
not a baseline for a cold computation.

``bits`` / ``rounds`` (optional; absent on records written before the
cost ledger) are the :class:`~repro.costs.CostLedger` totals of the
harness run. Unlike wall time they are **deterministic** given the
(quick, workers, kernel) tuple, so the cost comparison is not a
median-and-MAD detector but a change detector: any difference from the
most recent same-tuple baseline is flagged (warn-only in CI -- an
intentional protocol change legitimately moves the number, and the
history line is the paper trail).
"""

from __future__ import annotations

import json
import statistics
import subprocess
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "HISTORY_SCHEMA_VERSION",
    "DEFAULT_HISTORY_PATH",
    "RegressionFinding",
    "append_history",
    "current_git_sha",
    "detect_regressions",
    "history_record",
    "normalize_baseline",
    "read_history",
    "render_perf_dashboard",
    "sparkline",
    "validate_history_record",
]

#: Bump when the history line format changes incompatibly.
HISTORY_SCHEMA_VERSION = 1

#: Where ``repro bench --history`` appends by default.
DEFAULT_HISTORY_PATH = "BENCH_HISTORY.jsonl"

#: How many MADs above the baseline median the absolute gate sits.
MAD_K = 3.0

_NUMERIC = (int, float)


def current_git_sha(cwd: Optional[str] = None) -> Optional[str]:
    """The repo HEAD SHA, or None outside a git checkout (never raises)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            cwd=cwd,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def history_record(
    results: Iterable[Any],
    quick: bool,
    git_sha: Optional[str] = None,
    ts: Optional[float] = None,
    workers: int = 1,
    kernel: str = "auto",
    cache: str = "off",
) -> Dict[str, Any]:
    """One appendable history line from a list of BenchmarkResults.

    ``results`` is anything with ``name`` / ``wall_time_seconds`` /
    ``ok`` attributes (duck-typed so tests can feed stubs).
    ``workers`` records the harness fan-out the run used; the detector
    partitions baselines on it (a 4-worker wall time is not comparable
    to a serial one). ``kernel`` records the compute-kernel mode and
    partitions baselines identically, as does ``cache`` ("on" when the
    harness had a result-cache directory). Results carrying a ``costs``
    mapping (a :meth:`~repro.costs.CostLedger.summary`) contribute
    ``bits`` / ``rounds`` columns; stubs without one write wall-time
    entries exactly as before.
    """
    entries: Dict[str, Any] = {}
    for r in results:
        entry: Dict[str, Any] = {
            "wall_time_seconds": float(r.wall_time_seconds),
            "ok": bool(r.ok),
        }
        costs = getattr(r, "costs", None)
        if isinstance(costs, Mapping):
            bits = costs.get("total_bits")
            rounds = costs.get("rounds")
            if isinstance(bits, int) and not isinstance(bits, bool):
                entry["bits"] = bits
            if isinstance(rounds, int) and not isinstance(rounds, bool):
                entry["rounds"] = rounds
        entries[r.name] = entry
    return {
        "schema_version": HISTORY_SCHEMA_VERSION,
        "ts": time.time() if ts is None else ts,
        "git_sha": git_sha,
        "quick": bool(quick),
        "workers": int(workers),
        "kernel": str(kernel),
        "cache": str(cache),
        "entries": entries,
    }


def append_history(record: Mapping[str, Any], path: str) -> None:
    """Append one record as a single JSONL line (validated first)."""
    problems = validate_history_record(record)
    if problems:  # a harness bug, not a user error -- fail loudly
        raise ValueError(f"refusing to append invalid history record: {problems}")
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=False) + "\n")


def read_history(path: str, skip_torn_tail: bool = True) -> List[Dict[str, Any]]:
    """Parse a BENCH_HISTORY.jsonl file back into a list of records.

    Mirrors :func:`repro.obs.trace.read_trace`: appends are
    line-buffered, so a killed process can tear at most the final line,
    which is dropped by default; corruption earlier in the file raises.
    """
    with open(path, "r", encoding="utf-8") as handle:
        lines = [line.strip() for line in handle.read().splitlines()]
    lines = [line for line in lines if line]
    records: List[Dict[str, Any]] = []
    for index, line in enumerate(lines):
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            if skip_torn_tail and index == len(lines) - 1:
                break
            raise ValueError(
                f"history line {index + 1} is not valid JSON ({exc}); only "
                f"a torn final line is tolerated"
            ) from exc
    return records


def validate_history_record(record: Mapping[str, Any]) -> List[str]:
    """Return a list of schema violations for one record (empty = valid)."""
    problems: List[str] = []
    if not isinstance(record, Mapping):
        return [f"record is {type(record).__name__}, expected object"]
    version = record.get("schema_version")
    if isinstance(version, bool) or not isinstance(version, int):
        problems.append("missing integer schema_version")
    elif version > HISTORY_SCHEMA_VERSION:
        problems.append(
            f"schema_version {version} is newer than supported "
            f"{HISTORY_SCHEMA_VERSION}"
        )
    elif version < 1:
        problems.append("schema_version must be >= 1")
    if not isinstance(record.get("ts"), _NUMERIC):
        problems.append("missing numeric ts")
    sha = record.get("git_sha")
    if sha is not None and not isinstance(sha, str):
        problems.append("git_sha is neither null nor a string")
    if not isinstance(record.get("quick"), bool):
        problems.append("missing boolean quick")
    workers = record.get("workers", 1)  # absent in schema-v1 lines: serial
    if isinstance(workers, bool) or not isinstance(workers, int):
        problems.append("workers is not an integer")
    elif workers < 1:
        problems.append("workers must be >= 1")
    kernel = record.get("kernel", "auto")  # absent pre-kernels: auto
    if not isinstance(kernel, str) or not kernel:
        problems.append("kernel is not a non-empty string")
    cache = record.get("cache", "off")  # absent pre-cache: off
    if cache not in ("on", "off"):
        problems.append('cache is neither "on" nor "off"')
    entries = record.get("entries")
    if not isinstance(entries, Mapping):
        return problems + ["entries is not an object"]
    for name, entry in entries.items():
        if not isinstance(entry, Mapping):
            problems.append(f"entry {name!r} is not an object")
            continue
        wall = entry.get("wall_time_seconds")
        if isinstance(wall, bool) or not isinstance(wall, _NUMERIC):
            problems.append(f"entry {name!r} wall_time_seconds is not numeric")
        if not isinstance(entry.get("ok"), bool):
            problems.append(f"entry {name!r} missing boolean ok")
        for cost_field in ("bits", "rounds"):  # optional, pre-ledger lines omit
            if cost_field not in entry:
                continue
            value = entry[cost_field]
            if isinstance(value, bool) or not isinstance(value, int):
                problems.append(f"entry {name!r} {cost_field} is not an integer")
            elif value < 0:
                problems.append(f"entry {name!r} {cost_field} is negative")
    return problems


# ----------------------------------------------------------------------
# detection
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RegressionFinding:
    """Verdict for one kernel: newest run vs its baseline window."""

    name: str
    latest_seconds: float
    baseline_samples: int
    baseline_median: Optional[float]  # None when no baseline exists
    baseline_mad: Optional[float]
    ratio: Optional[float]  # latest / median
    status: str  # "ok" | "regressed" | "improved" | "insufficient" | "new"
    #: Communication-cost columns (trailing defaults keep the positional
    #: seven-field construction older callers/tests use working). Bits
    #: are deterministic per (quick, workers, kernel), so the verdict is
    #: equality against the most recent same-tuple baseline value, not a
    #: statistical gate.
    latest_bits: Optional[int] = None
    baseline_bits: Optional[int] = None
    cost_status: str = "n/a"  # "n/a" | "new" | "same" | "changed"

    @property
    def regressed(self) -> bool:
        return self.status == "regressed"

    @property
    def cost_changed(self) -> bool:
        return self.cost_status == "changed"

    def cost_row(self) -> List[Any]:
        """A table row for the warn-only cost comparison."""
        return [
            self.name,
            "-" if self.latest_bits is None else self.latest_bits,
            "-" if self.baseline_bits is None else self.baseline_bits,
            self.cost_status.upper() if self.cost_changed else self.cost_status,
        ]

    def row(self) -> List[Any]:
        """A table row for the CLI (ms, not seconds)."""
        return [
            self.name,
            self.baseline_samples,
            "-" if self.baseline_median is None else self.baseline_median * 1e3,
            "-" if self.baseline_mad is None else self.baseline_mad * 1e3,
            self.latest_seconds * 1e3,
            "-" if self.ratio is None else round(self.ratio, 3),
            self.status.upper() if self.regressed else self.status,
        ]


def _series(
    baseline: Sequence[Mapping[str, Any]], name: str
) -> List[float]:
    out = []
    for record in baseline:
        entry = record.get("entries", {}).get(name)
        if isinstance(entry, Mapping) and isinstance(
            entry.get("wall_time_seconds"), _NUMERIC
        ):
            out.append(float(entry["wall_time_seconds"]))
    return out


def detect_regressions(
    history: Sequence[Mapping[str, Any]],
    threshold: float = 1.25,
    min_samples: int = 3,
    window: int = 20,
) -> List[RegressionFinding]:
    """Compare the newest history record against the earlier baseline.

    Baseline = the last ``window`` records before the newest whose
    ``quick`` flag, ``workers`` count, ``kernel`` mode **and** ``cache``
    flag match the newest's (quick and full runs are never compared
    against each other, nor are runs at different fan-outs, under
    different compute engines, or with/without a warm result cache -- a
    packed-kernel wall time beating a reference-engine median is
    speedup, not baseline, and a warm-cache time is a hash lookup;
    records predating the ``workers``/``kernel``/``cache`` fields count
    as serial/auto/off). Per
    benchmark, with ``m`` = baseline median and ``d`` = baseline MAD
    (median absolute deviation)::

        regressed   iff  latest > threshold * m  and  latest > m + MAD_K * d
        improved    iff  latest < m / threshold
        insufficient when the kernel has < min_samples baseline points

    The conjunction makes the gate robust in both directions: the ratio
    term scales with the kernel, the MAD term absorbs kernels whose
    baseline noise is already a large fraction of their median.
    """
    if threshold <= 1.0:
        raise ValueError(f"threshold must be > 1.0, got {threshold}")
    if not history:
        return []
    newest = history[-1]
    quick = newest.get("quick")
    workers = newest.get("workers", 1)
    kernel = newest.get("kernel", "auto")
    cache = newest.get("cache", "off")
    baseline = [
        r
        for r in history[:-1]
        if r.get("quick") == quick
        and r.get("workers", 1) == workers
        and r.get("kernel", "auto") == kernel
        and r.get("cache", "off") == cache
    ][-window:]
    findings: List[RegressionFinding] = []
    for name, entry in sorted(newest.get("entries", {}).items()):
        if not isinstance(entry, Mapping):
            continue
        latest = entry.get("wall_time_seconds")
        if isinstance(latest, bool) or not isinstance(latest, _NUMERIC):
            continue
        latest = float(latest)
        latest_bits, baseline_bits, cost_status = _cost_verdict(
            entry, baseline, name
        )
        series = _series(baseline, name)
        if not series:
            findings.append(
                RegressionFinding(
                    name,
                    latest,
                    0,
                    None,
                    None,
                    None,
                    "new",
                    latest_bits=latest_bits,
                    baseline_bits=baseline_bits,
                    cost_status=cost_status,
                )
            )
            continue
        median = statistics.median(series)
        mad = statistics.median(abs(x - median) for x in series)
        ratio = latest / median if median > 0 else float("inf")
        if len(series) < min_samples:
            status = "insufficient"
        elif latest > threshold * median and latest > median + MAD_K * mad:
            status = "regressed"
        elif latest < median / threshold:
            status = "improved"
        else:
            status = "ok"
        findings.append(
            RegressionFinding(
                name,
                latest,
                len(series),
                median,
                mad,
                ratio,
                status,
                latest_bits=latest_bits,
                baseline_bits=baseline_bits,
                cost_status=cost_status,
            )
        )
    return findings


def _cost_verdict(
    entry: Mapping[str, Any],
    baseline: Sequence[Mapping[str, Any]],
    name: str,
) -> Tuple[Optional[int], Optional[int], str]:
    """(latest_bits, baseline_bits, cost_status) for one benchmark.

    Bits are deterministic per (quick, workers, kernel) tuple, so the
    comparison is equality against the **most recent** baseline record
    that carries a bits value -- no median, no threshold. ``n/a`` when
    the newest entry has no bits (pre-ledger stub or cost-free kernel),
    ``new`` when no baseline record carries one.
    """
    latest_bits = entry.get("bits")
    if isinstance(latest_bits, bool) or not isinstance(latest_bits, int):
        return None, None, "n/a"
    for record in reversed(baseline):
        candidate = record.get("entries", {}).get(name)
        if not isinstance(candidate, Mapping):
            continue
        bits = candidate.get("bits")
        if isinstance(bits, bool) or not isinstance(bits, int):
            continue
        return latest_bits, bits, ("same" if bits == latest_bits else "changed")
    return latest_bits, None, "new"


# ----------------------------------------------------------------------
# dashboard
# ----------------------------------------------------------------------
_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """A unicode block sparkline, scaled to the series' own min..max."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi <= lo:
        return _SPARK_BLOCKS[0] * len(values)
    out = []
    for v in values:
        idx = int((v - lo) / (hi - lo) * (len(_SPARK_BLOCKS) - 1))
        out.append(_SPARK_BLOCKS[idx])
    return "".join(out)


def render_perf_dashboard(
    history: Sequence[Mapping[str, Any]],
    threshold: float = 1.25,
    min_samples: int = 3,
) -> str:
    """The markdown perf dashboard written to ``docs/PERF.md``.

    One row per kernel: run count, a sparkline of wall ms across the
    whole history (oldest -> newest), latest/median ms, latest/median
    ratio, and the detector's verdict for the newest record.
    """
    lines = [
        "# Performance dashboard",
        "",
        "Generated by `python -m repro.cli compare --dashboard docs/PERF.md`",
        "from `BENCH_HISTORY.jsonl` (see `repro.obs.regress`). Each sparkline",
        "is wall ms/op across recorded harness runs, oldest to newest, scaled",
        "to that kernel's own min..max.",
        "",
    ]
    if not history:
        lines.append("_No history recorded yet._")
        return "\n".join(lines) + "\n"
    newest = history[-1]
    sha = newest.get("git_sha") or "unknown"
    lines.append(
        f"Latest record: `{str(sha)[:12]}` "
        f"({'quick' if newest.get('quick') else 'full'} parameters, "
        f"{len(history)} records total)."
    )
    lines.append("")
    lines.append("| kernel | runs | trend | latest ms | median ms | ratio | status |")
    lines.append("|---|---:|---|---:|---:|---:|---|")
    findings = {
        f.name: f
        for f in detect_regressions(
            history, threshold=threshold, min_samples=min_samples
        )
    }
    names = sorted(newest.get("entries", {}).keys())
    for name in names:
        series = _series(list(history), name)
        finding = findings.get(name)
        if finding is None or not series:
            continue
        median = finding.baseline_median
        lines.append(
            "| {name} | {runs} | `{spark}` | {latest:.2f} | {median} | {ratio} | {status} |".format(
                name=name,
                runs=len(series),
                spark=sparkline(series),
                latest=finding.latest_seconds * 1e3,
                median="-" if median is None else f"{median * 1e3:.2f}",
                ratio="-" if finding.ratio is None else f"{finding.ratio:.2f}x",
                status=finding.status,
            )
        )
    lines.append("")
    lines.append(
        f"Detector: regressed iff latest > {threshold}x median **and** "
        f"latest > median + {MAD_K:g} MAD, over a baseline window of "
        f"same-mode records (min {min_samples} samples)."
    )
    cost_rows = []
    for name in names:
        finding = findings.get(name)
        if finding is None or finding.latest_bits is None:
            continue
        entry = newest.get("entries", {}).get(name)
        rounds = entry.get("rounds") if isinstance(entry, Mapping) else None
        cost_rows.append(
            "| {name} | {bits} | {rounds} | {baseline} | {status} |".format(
                name=name,
                bits=finding.latest_bits,
                rounds="-" if rounds is None else rounds,
                baseline="-" if finding.baseline_bits is None else finding.baseline_bits,
                status=finding.cost_status,
            )
        )
    if cost_rows:
        lines.append("")
        lines.append("## Communication cost")
        lines.append("")
        lines.append(
            "Measured `CostLedger` totals per harness run. Bits are"
        )
        lines.append(
            "deterministic given the (quick, workers, kernel) tuple, so any"
        )
        lines.append(
            "`changed` verdict is a real protocol-cost change, not noise"
        )
        lines.append(
            "(warn-only: an intentional change legitimately moves the number)."
        )
        lines.append("")
        lines.append("| kernel | bits | rounds | baseline bits | status |")
        lines.append("|---|---:|---:|---:|---|")
        lines.extend(cost_rows)
    return "\n".join(lines) + "\n"


def normalize_baseline(payload: Any) -> Dict[str, Any]:
    """Coerce a ``--baseline REF.json`` payload into a history record.

    Accepts (a) a full history record, (b) ``{"entries": {...}}``, or
    (c) a flat ``{kernel: seconds}`` mapping. Raises ``ValueError``
    otherwise.
    """
    if not isinstance(payload, Mapping):
        raise ValueError(
            f"baseline payload is {type(payload).__name__}, expected object"
        )
    if "entries" in payload:
        record = dict(payload)
        record.setdefault("schema_version", HISTORY_SCHEMA_VERSION)
        record.setdefault("ts", 0.0)
        record.setdefault("git_sha", None)
        record.setdefault("quick", True)
        problems = validate_history_record(record)
        if problems:
            raise ValueError(f"invalid baseline record: {problems}")
        return record
    entries: Dict[str, Any] = {}
    for name, value in payload.items():
        if isinstance(value, bool) or not isinstance(value, _NUMERIC):
            raise ValueError(
                f"baseline entry {name!r} is not a number of seconds"
            )
        entries[str(name)] = {"wall_time_seconds": float(value), "ok": True}
    if not entries:
        raise ValueError("baseline payload has no entries")
    return {
        "schema_version": HISTORY_SCHEMA_VERSION,
        "ts": 0.0,
        "git_sha": None,
        "quick": True,
        "entries": entries,
    }
