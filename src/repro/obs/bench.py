"""A machine-readable benchmark harness: every ``benchmarks/bench_*.py``
experiment behind one runner.

The pytest-benchmark scripts under ``benchmarks/`` are great for humans
but leave no machine-readable record, so the repo had no perf trajectory
to optimize against. :class:`BenchmarkHarness` closes that gap: it runs
the same kernels the scripts time, under a fresh
:class:`~repro.obs.metrics.MetricsRegistry` installed process-wide (so
every instrumented layer -- simulator rounds, exhaustive-search
throughput, two-party simulation bits -- lands in the snapshot), and
writes one schema-versioned ``BENCH_<name>.json`` per benchmark with the
exact parameters, wall time, paper-predicted vs measured values, and the
full metric snapshot. Future PRs diff these files to prove a hot path
got faster.

Each spec has a ``quick`` parameter set (CI smoke: seconds total) and a
``full`` set (the scripts' seed parameters). All imports of experiment
code happen inside the runner bodies so this module stays importable
from anywhere (including ``repro.core``'s instrumentation) without
cycles.
"""

from __future__ import annotations

import json
import os
import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.costs.ledger import CostLedger, use_ledger
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.schema import BENCH_SCHEMA_VERSION, validate_bench_payload
from repro.obs.stream import get_bus

__all__ = [
    "BenchmarkHarness",
    "BenchmarkResult",
    "BenchmarkSpec",
    "bench_names",
    "load_bench_payloads",
]

#: (measured, predicted, ok)
RunnerOutput = Tuple[Dict[str, Any], Dict[str, Any], bool]


@dataclass(frozen=True)
class BenchmarkSpec:
    """One harness benchmark: a kernel plus its quick/full parameters."""

    name: str
    description: str
    runner: Callable[[Dict[str, Any]], RunnerOutput]
    quick_params: Dict[str, Any]
    full_params: Dict[str, Any]
    #: Whether the runner honors a ``workers`` parameter (injected by the
    #: harness from ``BenchmarkHarness(workers=...)``). Specs without it
    #: always run serially regardless of the harness setting.
    supports_workers: bool = False
    #: Whether the runner honors a ``kernel`` parameter (injected by the
    #: harness from ``BenchmarkHarness(kernel=...)``; one of
    #: ``repro.kernels.KERNEL_MODES``). Specs without it always use each
    #: layer's default engine.
    supports_kernel: bool = False
    #: Whether the runner honors a ``cache_dir`` parameter (injected by
    #: the harness from ``BenchmarkHarness(cache_dir=...)``). Specs
    #: without it never touch the result cache; the harness default is
    #: cache-disabled, so benches measure real compute unless asked.
    supports_cache: bool = False

    def params(self, quick: bool) -> Dict[str, Any]:
        return dict(self.quick_params if quick else self.full_params)


@dataclass
class BenchmarkResult:
    """One benchmark execution, ready to serialize."""

    name: str
    description: str
    quick: bool
    params: Dict[str, Any]
    wall_time_seconds: float
    measured: Dict[str, Any]
    predicted: Dict[str, Any]
    ok: bool
    metrics: Dict[str, Any]
    #: ``CostLedger.summary()`` for the harness run -- total bits, rounds,
    #: and the per-vertex / per-phase breakdowns. Deterministic given
    #: (quick, workers, kernel), which is what makes the bits column in
    #: BENCH_HISTORY.jsonl a change-detector rather than a noise source.
    costs: Dict[str, Any] = field(default_factory=dict)
    created_unix: float = field(default_factory=time.time)
    path: Optional[str] = None

    def to_payload(self) -> Dict[str, Any]:
        payload = {
            "schema_version": BENCH_SCHEMA_VERSION,
            "name": self.name,
            "description": self.description,
            "created_unix": self.created_unix,
            "quick": self.quick,
            "params": self.params,
            "wall_time_seconds": self.wall_time_seconds,
            "measured": self.measured,
            "predicted": self.predicted,
            "ok": self.ok,
            "metrics": self.metrics,
        }
        if self.costs:
            payload["costs"] = self.costs
        return payload


# ----------------------------------------------------------------------
# runners (imports deferred: keeps repro.obs import-light and cycle-free)
# ----------------------------------------------------------------------
def _run_simulator(params: Dict[str, Any]) -> RunnerOutput:
    from repro.core import BCC1_KT0, ConstantAlgorithm, Simulator
    from repro.instances import one_cycle_instance

    n, rounds = params["n"], params["rounds"]
    result = Simulator(BCC1_KT0).run(one_cycle_instance(n, kt=0), ConstantAlgorithm, rounds)
    measured = {
        "rounds_executed": result.rounds_executed,
        "total_bits_broadcast": result.total_bits_broadcast(),
    }
    predicted = {"rounds_executed": rounds, "total_bits_broadcast": n * rounds}
    ok = (
        measured["rounds_executed"] == rounds
        and measured["total_bits_broadcast"] == n * rounds
    )
    return measured, predicted, ok


def _run_crossing(params: Dict[str, Any]) -> RunnerOutput:
    from repro.core import BCC1_KT0, ConstantAlgorithm, Simulator
    from repro.crossing import check_lemma_3_4, cross
    from repro.instances import one_cycle_instance

    n, rounds = params["n"], params["rounds"]
    inst = one_cycle_instance(n, kt=0)
    e1, e2 = (0, 1), (n // 2, n // 2 + 1)
    crossed = cross(inst, e1, e2)
    premise, conclusion = check_lemma_3_4(
        Simulator(BCC1_KT0), inst, crossed, ConstantAlgorithm, e1, e2, rounds
    )
    comps = sorted(len(c) for c in crossed.input_graph().connected_components())
    measured = {
        "premise": premise,
        "indistinguishable": conclusion,
        "split_sizes": comps,
    }
    predicted = {
        "indistinguishable_given_premise": True,
        "split_sizes": sorted([n // 2, n - n // 2]),
    }
    ok = bool((not premise or conclusion) and comps == predicted["split_sizes"])
    return measured, predicted, ok


def _run_kt0_star(params: Dict[str, Any]) -> RunnerOutput:
    from repro.core import BCC1_KT0, SilentAlgorithm, Simulator
    from repro.lowerbounds import fool_algorithm, theorem_3_5_error_bound

    n, rounds = params["n"], params["rounds"]
    report = fool_algorithm(Simulator(BCC1_KT0), SilentAlgorithm, n, rounds)
    floor = theorem_3_5_error_bound(n, rounds)
    measured = {
        "achieved_error": report.achieved_error,
        "fooled_pairs": report.fooled_pairs,
        "verified_pairs": report.indistinguishable_pairs,
        "all_pairs_indistinguishable": report.all_pairs_indistinguishable,
    }
    predicted = {"error_floor": floor}
    ok = bool(report.all_pairs_indistinguishable and report.achieved_error >= floor)
    return measured, predicted, ok


def _run_kt0_constant_error(params: Dict[str, Any]) -> RunnerOutput:
    from repro.core import BCC1_KT0, SilentAlgorithm, Simulator
    from repro.lowerbounds import forced_error_of_algorithm

    n, rounds = params["n"], params["rounds"]
    report = forced_error_of_algorithm(Simulator(BCC1_KT0), SilentAlgorithm, n, rounds)
    measured = {
        "forced_error": report.forced_error,
        "one_cycle_count": report.one_cycle_count,
        "fooled_two_cycle_instances": report.fooled_two_cycle_instances,
    }
    predicted = {"forced_error": 0.5}
    ok = abs(report.forced_error - 0.5) < 1e-9
    return measured, predicted, ok


def _run_exhaustive(params: Dict[str, Any]) -> RunnerOutput:
    from repro.lowerbounds import universal_bound_id_oblivious

    n = params["n"]
    alphabet = tuple(params["alphabet"])
    workers = int(params.get("workers", 1))
    report = universal_bound_id_oblivious(n, alphabet=alphabet, workers=workers)
    measured = {
        "class_size": report.class_size,
        "minimum_forced_error": report.minimum_forced_error,
    }
    predicted = {
        "class_size": len(alphabet) ** n,
        "minimum_forced_error_positive": True,
    }
    ok = report.class_size == len(alphabet) ** n and report.minimum_forced_error > 0
    return measured, predicted, ok


def _run_v2_v1_ratio(params: Dict[str, Any]) -> RunnerOutput:
    from repro.analysis import fit_logarithmic
    from repro.indist import predicted_v2_v1_ratio

    ns = [10**k for k in range(1, params["max_exp"] + 1)]
    ratios = [predicted_v2_v1_ratio(n) for n in ns]
    fit = fit_logarithmic(ns, ratios)
    measured = {"slope": fit.slope, "r_squared": fit.r_squared}
    predicted = {"slope": 0.5}
    ok = 0.4 < fit.slope < 0.55 and fit.r_squared > 0.99
    return measured, predicted, ok


def _run_partition_rank(params: Dict[str, Any]) -> RunnerOutput:
    from repro.partitions import bell_number, build_m_matrix, rank_exact

    n = params["n"]
    kernel = str(params.get("kernel", "auto"))
    _parts, matrix = build_m_matrix(n)
    rank = rank_exact(matrix, kernel=kernel)
    measured = {"rank": rank}
    predicted = {"bell_number": bell_number(n)}
    return measured, predicted, rank == bell_number(n)


def _run_reduction(params: Dict[str, Any]) -> RunnerOutput:
    import random

    from repro.partitions import random_perfect_matching
    from repro.twoparty import build_two_partition_reduction

    n, pairs, seed = params["n"], params["pairs"], params["seed"]
    rng = random.Random(seed)
    checked = agreements = 0
    for _ in range(pairs):
        pa = random_perfect_matching(n, rng)
        pb = random_perfect_matching(n, rng)
        red = build_two_partition_reduction(pa, pb)
        checked += 1
        if red.induced_partition_on_l() == pa.join(pb):
            agreements += 1
    measured = {"pairs_checked": checked, "join_agreements": agreements}
    predicted = {"join_agreements": checked}
    return measured, predicted, agreements == checked


def _run_kt1_simulation(params: Dict[str, Any]) -> RunnerOutput:
    import random

    from repro.algorithms import (
        components_factory,
        connectivity_factory,
        id_bit_width,
        neighbor_exchange_rounds,
    )
    from repro.partitions import random_partition, random_perfect_matching
    from repro.twoparty import BCCSimulationProtocol, simulation_bits_per_round

    n, seed = params["n"], params["seed"]
    rng = random.Random(seed)
    pa = random_perfect_matching(n, rng)
    pb = random_perfect_matching(n, rng)
    rounds = neighbor_exchange_rounds(1, 2, id_bit_width(3 * n))
    proto = BCCSimulationProtocol(
        "two_partition", components_factory(2), rounds, mode="components"
    )
    result = proto.run(pa, pb)
    predicted_bits = rounds * simulation_bits_per_round("two_partition", n)
    # A decision-mode run rides along so the shared cost ledger records
    # both Section 4.3 phases: the round-by-round ``simulate`` traffic
    # and the final two ``decision`` bits.
    da = random_partition(n, rng)
    db = random_partition(n, rng)
    w = id_bit_width(4 * n)
    dec_rounds = neighbor_exchange_rounds(1, n + 1, w)
    dec_proto = BCCSimulationProtocol(
        "partition", connectivity_factory(n + 1, id_bits=w), dec_rounds, mode="decision"
    )
    dec_result = dec_proto.run(da, db)
    dec_predicted = dec_rounds * simulation_bits_per_round("partition", n) + 2
    dec_expected = 1 if da.join(db).is_coarsest() else 0
    measured = {
        "bcc_rounds": rounds,
        "total_bits": result.total_bits,
        "join_correct": result.bob_output == pa.join(pb),
        "decision_total_bits": dec_result.total_bits,
        "decision_correct": dec_result.alice_output
        == dec_expected
        == dec_result.bob_output,
    }
    predicted = {"total_bits": predicted_bits, "decision_total_bits": dec_predicted}
    ok = (
        result.total_bits == predicted_bits
        and result.bob_output == pa.join(pb)
        and dec_result.total_bits == dec_predicted
        and measured["decision_correct"]
    )
    return measured, predicted, ok


def _run_upper_bounds(params: Dict[str, Any]) -> RunnerOutput:
    from repro.algorithms import connectivity_factory, id_bit_width, neighbor_exchange_rounds
    from repro.core import BCC1_KT0, BCC1_KT1, Simulator
    from repro.instances import one_cycle_instance

    n = params["n"]
    r0 = Simulator(BCC1_KT0).run_until_done(
        one_cycle_instance(n, kt=0), connectivity_factory(2), 10_000
    )
    r1 = Simulator(BCC1_KT1).run_until_done(
        one_cycle_instance(n, kt=1), connectivity_factory(2), 10_000
    )
    bound0 = neighbor_exchange_rounds(0, 2, id_bit_width(4 * n - 1))
    bound1 = neighbor_exchange_rounds(1, 2, id_bit_width(n - 1))
    measured = {"kt0_rounds": r0.rounds_executed, "kt1_rounds": r1.rounds_executed}
    predicted = {"kt0_round_budget": bound0, "kt1_round_budget": bound1}
    ok = r0.rounds_executed <= bound0 and r1.rounds_executed <= bound1
    return measured, predicted, ok


def _run_mst(params: Dict[str, Any]) -> RunnerOutput:
    import random

    from repro.algorithms import boruvka_mst_factory, mst_bandwidth, mst_max_rounds
    from repro.core import BCCInstance, BCCModel, Simulator
    from repro.graphs import forest_weight, gnp_random_graph, kruskal, random_weights

    n, seed = params["n"], params["seed"]
    rng = random.Random(seed)
    g = gnp_random_graph(n, 0.4, rng)
    weights = {e: int(w) for e, w in random_weights(g, rng).items()}
    inst = BCCInstance.kt1_from_graph(g)
    sim = Simulator(BCCModel(bandwidth=mst_bandwidth(n), kt=1))
    res = sim.run_until_done(inst, boruvka_mst_factory(weights), mst_max_rounds(n) + 2)
    float_weights = {e: float(w) for e, w in weights.items()}
    truth = kruskal(g, float_weights)
    distributed = set(res.outputs[0])
    measured = {
        "rounds": res.rounds_executed,
        "weight": forest_weight(distributed, float_weights),
        "identical_to_kruskal": distributed == truth,
    }
    predicted = {
        "round_budget": mst_max_rounds(n) + 2,
        "weight": forest_weight(truth, float_weights),
    }
    ok = distributed == truth and res.rounds_executed <= mst_max_rounds(n) + 2
    return measured, predicted, ok


def _run_mutual_information(params: Dict[str, Any]) -> RunnerOutput:
    from repro.information import evaluate_protocol, information_lower_bound
    from repro.partitions import log2_bell
    from repro.twoparty import TrivialPartitionCompProtocol

    n = params["n"]
    report = evaluate_protocol(TrivialPartitionCompProtocol(n), n)
    floor = information_lower_bound(n, report.error_rate)
    measured = {
        "error_rate": report.error_rate,
        "information": report.information,
        "input_entropy": report.input_entropy,
    }
    predicted = {"input_entropy": log2_bell(n), "information_floor": floor}
    ok = (
        abs(report.input_entropy - log2_bell(n)) < 1e-6
        and report.information >= floor - 1e-9
    )
    return measured, predicted, ok


def _run_sampling(params: Dict[str, Any]) -> RunnerOutput:
    import random

    from repro.information import estimate_protocol_information, evaluate_protocol
    from repro.twoparty import TrivialPartitionCompProtocol

    n, samples, seed = params["n"], params["samples"], params["seed"]
    workers = int(params.get("workers", 1))
    report = estimate_protocol_information(
        TrivialPartitionCompProtocol(n), n, samples, random.Random(seed),
        workers=workers,
    )
    exact = evaluate_protocol(TrivialPartitionCompProtocol(n), n)
    measured = {
        "information_estimate": report.information_estimate,
        "corrected_information": report.corrected_information,
        "saturated": report.saturated,
    }
    predicted = {"information_exact": exact.information}
    ok = abs(report.information_estimate - exact.information) < 0.3
    return measured, predicted, ok


def _run_indist_degrees(params: Dict[str, Any]) -> RunnerOutput:
    from repro.indist import measured_one_cycle_degree, one_cycle_degree
    from repro.instances import enumerate_one_cycle_covers

    n = params["n"]
    cover = next(iter(enumerate_one_cycle_covers(n)))
    measured_degree = measured_one_cycle_degree(cover)
    measured = {"one_cycle_degree": measured_degree}
    predicted = {"one_cycle_degree": one_cycle_degree(n)}
    return measured, predicted, measured_degree == one_cycle_degree(n)


def _run_ablations(params: Dict[str, Any]) -> RunnerOutput:
    from repro.core import BCC1_KT0, ConstantAlgorithm, Simulator
    from repro.crossing import cross, indistinguishable_runs
    from repro.instances import one_cycle_instance

    n, rounds = params["n"], params["rounds"]
    inst = one_cycle_instance(n, kt=0)
    e1, e2 = (0, 1), (n // 2 - 1, n // 2)
    sim = Simulator(BCC1_KT0)

    proper = cross(inst, e1, e2)
    (v1, u1), (v2, u2) = e1, e2
    edges = set(inst.input_edges)
    edges.discard((min(v1, u1), max(v1, u1)))
    edges.discard((min(v2, u2), max(v2, u2)))
    edges.add((min(v1, u2), max(v1, u2)))
    edges.add((min(v2, u1), max(v2, u1)))
    naive = inst.replace(input_edges=edges)

    run = sim.run(inst, ConstantAlgorithm, rounds)
    run_proper = sim.run(proper, ConstantAlgorithm, rounds)
    run_naive = sim.run(naive, ConstantAlgorithm, rounds)
    proper_indist = indistinguishable_runs(sim, run, run_proper)
    naive_indist = indistinguishable_runs(sim, run, run_naive)
    measured = {
        "proper_crossing_indistinguishable": proper_indist,
        "naive_swap_indistinguishable": naive_indist,
    }
    predicted = {
        "proper_crossing_indistinguishable": True,
        "naive_swap_indistinguishable": False,
    }
    return measured, predicted, bool(proper_indist and not naive_indist)


def _run_spans(params: Dict[str, Any]) -> RunnerOutput:
    from repro.core import BCC1_KT0, ConstantAlgorithm, Simulator
    from repro.instances import one_cycle_instance
    from repro.obs.spans import SpanRecorder, use_recorder

    n, rounds = params["n"], params["rounds"]
    inst = one_cycle_instance(n, kt=0)
    sim = Simulator(BCC1_KT0)
    bare = sim.run(inst, ConstantAlgorithm, rounds)
    recorder = SpanRecorder()
    with use_recorder(recorder):
        recorded = sim.run(inst, ConstantAlgorithm, rounds)
    roots = recorder.roots
    run = roots[0] if roots else None
    round_spans = (
        [c for c in run.children if c.name == "simulator.round"] if run else []
    )
    phase_shape_ok = bool(round_spans) and all(
        [c.name for c in rnd.children]
        == ["simulator.broadcast", "simulator.deliver"]
        for rnd in round_spans
    )
    measured = {
        "root_name": run.name if run else None,
        "round_spans": len(round_spans),
        "span_count": recorder.span_count(),
        "phase_shape_ok": phase_shape_ok,
        "results_identical": (
            bare.broadcast_history == recorded.broadcast_history
            and bare.outputs == recorded.outputs
        ),
    }
    predicted = {
        "root_name": "simulator.run",
        "round_spans": rounds,
        "span_count": 1 + 3 * rounds,
        "phase_shape_ok": True,
        "results_identical": True,
    }
    return measured, predicted, measured == predicted


def _run_stream(params: Dict[str, Any]) -> RunnerOutput:
    from repro.core import BCC1_KT0, ConstantAlgorithm, Simulator
    from repro.instances import one_cycle_instance
    from repro.obs.stream import EventBus, use_bus

    n, rounds = params["n"], params["rounds"]
    inst = one_cycle_instance(n, kt=0)
    sim = Simulator(BCC1_KT0)
    bare = sim.run(inst, ConstantAlgorithm, rounds)
    bus = EventBus()
    seen = []
    bus.subscribe(seen.append)
    with use_bus(bus):
        streamed = sim.run(inst, ConstantAlgorithm, rounds)
    kinds = [event.kind for event in seen]
    round_events = [e for e in seen if e.kind == "simulator.round"]
    measured = {
        "published": bus.published_count,
        "first_kind": kinds[0] if kinds else None,
        "last_kind": kinds[-1] if kinds else None,
        "round_events": len(round_events),
        "rounds_in_order": [e.payload["t"] for e in round_events]
        == list(range(1, rounds + 1)),
        "subscriber_errors": bus.error_count,
        "results_identical": (
            bare.broadcast_history == streamed.broadcast_history
            and bare.outputs == streamed.outputs
        ),
    }
    predicted = {
        "published": rounds + 2,
        "first_kind": "simulator.run_start",
        "last_kind": "simulator.run_end",
        "round_events": rounds,
        "rounds_in_order": True,
        "subscriber_errors": 0,
        "results_identical": True,
    }
    return measured, predicted, measured == predicted


def _run_resilience(params: Dict[str, Any]) -> RunnerOutput:
    from repro.resilience import FaultPlan, fault_sweep, validate_fault_sweep_payload

    n, trials, rate = params["n"], params["trials"], params["rate"]
    workers = int(params.get("workers", 1))
    report = fault_sweep(
        algorithms=("neighbor_exchange", "flooding"),
        kinds=("bit_flip", "erasure", "crash"),
        rates=(0.0, rate),
        n=n,
        trials=trials,
        seed=params["seed"],
        workers=workers,
    )
    payload = report.as_payload()
    problems = validate_fault_sweep_payload(payload)
    baseline_ok = all(
        curve.points[0].correctness_rate == 1.0 for curve in report.curves
    )
    faults_at_rate = sum(curve.points[1].faults_injected for curve in report.curves)

    # clean path vs zero-rate plan: the fault machinery must be invisible
    from repro.algorithms import connectivity_factory
    from repro.core import BCC1_KT1, Simulator
    from repro.instances import one_cycle_instance

    inst = one_cycle_instance(n, kt=1)
    sim = Simulator(BCC1_KT1)
    clean = sim.run(inst, connectivity_factory(max_degree=2), 2 * n)
    zeroed = sim.run(
        inst, connectivity_factory(max_degree=2), 2 * n, faults=FaultPlan(seed=0)
    )
    invisible = (
        clean.outputs == zeroed.outputs
        and clean.broadcast_history == zeroed.broadcast_history
        and zeroed.fault_events == ()
    )
    measured = {
        "curves": len(report.curves),
        "baseline_correctness_one": baseline_ok,
        "faults_injected_at_rate": faults_at_rate,
        "payload_schema_problems": len(problems),
        "zero_rate_plan_invisible": invisible,
    }
    predicted = {
        "curves": 6,
        "baseline_correctness_one": True,
        "payload_schema_problems": 0,
        "zero_rate_plan_invisible": True,
    }
    ok = (
        len(report.curves) == 6
        and baseline_ok
        and not problems
        and invisible
        and faults_at_rate > 0
    )
    return measured, predicted, ok


def _run_parallel(params: Dict[str, Any]) -> RunnerOutput:
    """P2: the ``repro.parallel`` layer -- correctness first, speed second.

    Times the serial python scan, the fanned-out scan (``workers``
    processes), and -- when numpy is present -- the vectorized kernel,
    all on the same exhaustive-search instance, and checks the three
    reports are identical. ``ok`` is the identity check plus schema
    validity only: speedups are *recorded* but never gate (single-core
    CI runners make fan-out speedups meaningless; the honest number is
    still worth tracking).
    """
    from repro.lowerbounds import clear_pair_cache, universal_bound_id_oblivious
    from repro.lowerbounds.vectorized import HAVE_NUMPY

    n = params["n"]
    alphabet = tuple(params["alphabet"])
    workers = int(params.get("workers", 4))

    def _timed(w: int, vectorize: bool):
        start = time.perf_counter()
        report = universal_bound_id_oblivious(
            n, alphabet=alphabet, workers=w, vectorize=vectorize
        )
        return report, time.perf_counter() - start

    clear_pair_cache()
    serial, serial_s = _timed(1, False)
    fanned, fanout_s = _timed(workers, False)
    identical = (
        fanned.minimum_forced_error == serial.minimum_forced_error
        and fanned.worst_assignment == serial.worst_assignment
        and fanned.class_size == serial.class_size
    )
    measured: Dict[str, Any] = {
        "serial_seconds": serial_s,
        "fanout_seconds": fanout_s,
        "fanout_workers": workers,
        "fanout_speedup": serial_s / fanout_s if fanout_s > 0 else None,
        "have_numpy": HAVE_NUMPY,
    }
    if HAVE_NUMPY:
        vec, vec_s = _timed(1, True)
        identical = identical and (
            vec.minimum_forced_error == serial.minimum_forced_error
            and vec.worst_assignment == serial.worst_assignment
        )
        measured["vectorized_seconds"] = vec_s
        measured["vectorized_speedup"] = serial_s / vec_s if vec_s > 0 else None
    cache_dir = params.get("cache_dir")
    if cache_dir:
        # Warm-path leg (``repro bench --cache DIR`` only): the same
        # exhaustive request through the engine twice against one
        # content-addressed cache. The second call must be a hit AND
        # byte-identical to the first -- the speedup is recorded but the
        # gate is pure identity (a first leg that hits a pre-warmed
        # directory honestly reports speedup ~1).
        from repro.cache import ResultCache
        from repro.engine import EngineRequest, execute

        cache = ResultCache(cache_dir)
        request = EngineRequest(
            "exhaustive", {"n": n, "alphabet": list(alphabet)}, workers=1
        )
        start = time.perf_counter()
        cold = execute(request, cache=cache)
        cold_s = time.perf_counter() - start
        start = time.perf_counter()
        warm = execute(request, cache=cache)
        warm_s = time.perf_counter() - start
        cache_hit = bool(warm.cached and warm.payload == cold.payload)
        identical = identical and cache_hit
        measured["cache_cold_seconds"] = cold_s
        measured["cache_warm_seconds"] = warm_s
        measured["cache_warm_speedup"] = cold_s / warm_s if warm_s > 0 else None
        measured["cache_warm_hit"] = cache_hit
        measured["cache"] = "on"
    else:
        measured["cache"] = "off"
    measured["reports_identical"] = identical
    predicted = {"reports_identical": True}
    return measured, predicted, identical


def _run_kernels(params: Dict[str, Any]) -> RunnerOutput:
    """P3/P5: fast kernels vs their references, identity-gated.

    Times the kernel families of :mod:`repro.kernels` -- GF(2) rank,
    batched mod-p rank, batched graph construction + bitset matching --
    against the pure-python reference engines, plus the two PR 9 rank
    engines against their in-family baselines: Four-Russians vs the
    packed GF(2) bitset at ``m4ri_size``^2 (the ISSUE's >= 2x claim is
    read off this leg at 2048^2) and the sparse dict-row mod-p engine
    vs the batched dense engine on a seeded low-fill-in matrix at
    ``sparse_size``^2. ``ok`` gates purely on result identity: equal
    ranks, element-for-element equal indistinguishability graphs, equal
    maximum-matching size. Speedups are *recorded* but never gate
    (machine-dependent; docs/EXPERIMENTS.md quotes the measured
    trajectory on the container this repo benches on).
    """
    from repro.indist.graph_builder import build_combinatorial_graph
    from repro.indist.matching import hopcroft_karp
    from repro.kernels import pack_rows, rank_gf2_m4ri, rank_gf2_packed, rank_mod_p_sparse
    from repro.partitions import build_m_matrix
    from repro.partitions.linalg import DEFAULT_PRIMES, rank_mod_p

    rank_n = params["rank_n"]
    graph_n = params["graph_n"]
    dense_size = params["dense_size"]
    kernel = str(params.get("kernel", "auto"))
    _parts, matrix = build_m_matrix(rank_n)
    p = DEFAULT_PRIMES[0]
    # the M_n matrices are sparse (few partitions intersect); the packed
    # engines' headline wins appear on dense rows, so the spec also times
    # a seeded dense random matrix at the declared size
    rng = random.Random(dense_size)
    dense2 = [
        [rng.randrange(2) for _ in range(dense_size)] for _ in range(dense_size)
    ]
    densep = [
        [rng.randrange(p) for _ in range(dense_size)] for _ in range(dense_size)
    ]

    def timed(fn):
        start = time.perf_counter()
        out = fn()
        return out, time.perf_counter() - start

    gf2_ref, gf2_ref_s = timed(lambda: rank_mod_p(dense2, 2, kernel="reference"))
    gf2_fast, gf2_fast_s = timed(lambda: rank_mod_p(dense2, 2, kernel=kernel))
    modp_ref, modp_ref_s = timed(lambda: rank_mod_p(densep, p, kernel="reference"))
    modp_fast, modp_fast_s = timed(lambda: rank_mod_p(densep, p, kernel=kernel))
    m_ref, m_ref_s = timed(lambda: rank_mod_p(matrix, p, kernel="reference"))
    m_fast, m_fast_s = timed(lambda: rank_mod_p(matrix, p, kernel=kernel))
    graph_ref, graph_ref_s = timed(
        lambda: build_combinatorial_graph(graph_n, kernel="reference")
    )
    graph_fast, graph_fast_s = timed(
        lambda: build_combinatorial_graph(graph_n, kernel=kernel)
    )
    graphs_equal = (
        graph_fast.left == graph_ref.left
        and graph_fast.right == graph_ref.right
        and all(
            graph_fast.neighbors(v) == graph_ref.neighbors(v)
            for v in graph_ref.iter_left()
        )
    )
    match_ref, match_ref_s = timed(lambda: hopcroft_karp(graph_ref, kernel="reference"))
    match_fast, match_fast_s = timed(lambda: hopcroft_karp(graph_fast, kernel=kernel))

    # PR 9 leg 1: Four-Russians vs packed bitset, dense GF(2)
    m4ri_size = params.get("m4ri_size", 256)
    rng = random.Random(m4ri_size)
    dense_m4ri = [
        [rng.randrange(2) for _ in range(m4ri_size)] for _ in range(m4ri_size)
    ]
    packed_rows = pack_rows(dense_m4ri)
    m4ri_packed, m4ri_packed_s = timed(
        lambda: rank_gf2_packed(list(packed_rows), m4ri_size)
    )
    m4ri_fast, m4ri_fast_s = timed(
        lambda: rank_gf2_m4ri(list(packed_rows), m4ri_size)
    )
    # PR 9 leg 2: sparse dict-row vs batched dense mod-p, low fill-in input
    # (rows are sums of a few of 32 sparse generators, so density stays low
    # under elimination -- the M_n-shaped regime the sparse engine targets)
    sparse_size = params.get("sparse_size", 200)
    rng = random.Random(sparse_size)
    generators = [
        [rng.randrange(p) if rng.random() < 0.02 else 0 for _ in range(sparse_size)]
        for _ in range(32)
    ]
    sparse_matrix = []
    for _ in range(sparse_size):
        picks = rng.sample(range(32), 3)
        sparse_matrix.append(
            [sum(generators[g][c] for g in picks) % p for c in range(sparse_size)]
        )
    sparse_dense, sparse_dense_s = timed(
        lambda: rank_mod_p(sparse_matrix, p, kernel="packed")
    )
    sparse_fast, sparse_fast_s = timed(lambda: rank_mod_p_sparse(sparse_matrix, p))

    def speedup(ref_s: float, fast_s: float):
        return ref_s / fast_s if fast_s > 0 else None

    identical = bool(
        gf2_ref == gf2_fast
        and modp_ref == modp_fast
        and m_ref == m_fast
        and graphs_equal
        and len(match_ref) == len(match_fast)
        and m4ri_packed == m4ri_fast
        and sparse_dense == sparse_fast
    )
    measured = {
        "gf2_rank": gf2_fast,
        "gf2_reference_seconds": gf2_ref_s,
        "gf2_kernel_seconds": gf2_fast_s,
        "gf2_speedup": speedup(gf2_ref_s, gf2_fast_s),
        "modp_rank": modp_fast,
        "modp_reference_seconds": modp_ref_s,
        "modp_kernel_seconds": modp_fast_s,
        "modp_speedup": speedup(modp_ref_s, modp_fast_s),
        "m_matrix_rank": m_fast,
        "m_matrix_reference_seconds": m_ref_s,
        "m_matrix_kernel_seconds": m_fast_s,
        "m_matrix_speedup": speedup(m_ref_s, m_fast_s),
        "graph_reference_seconds": graph_ref_s,
        "graph_kernel_seconds": graph_fast_s,
        "graph_speedup": speedup(graph_ref_s, graph_fast_s),
        "graphs_equal": graphs_equal,
        "matching_size": len(match_fast),
        "matching_reference_seconds": match_ref_s,
        "matching_kernel_seconds": match_fast_s,
        "matching_speedup": speedup(match_ref_s, match_fast_s),
        "m4ri_rank": m4ri_fast,
        "m4ri_packed_seconds": m4ri_packed_s,
        "m4ri_kernel_seconds": m4ri_fast_s,
        "m4ri_speedup": speedup(m4ri_packed_s, m4ri_fast_s),
        "sparse_rank": sparse_fast,
        "sparse_dense_seconds": sparse_dense_s,
        "sparse_kernel_seconds": sparse_fast_s,
        "sparse_speedup": speedup(sparse_dense_s, sparse_fast_s),
        "results_identical": identical,
    }
    predicted = {"results_identical": True}
    return measured, predicted, identical


def _run_costs(params: Dict[str, Any]) -> RunnerOutput:
    import statistics

    from repro.core import BCC1_KT0, ConstantAlgorithm, Simulator
    from repro.costs import check_all
    from repro.costs.ledger import set_ledger
    from repro.instances import one_cycle_instance

    results = check_all(quick=params["quick_specs"])
    mismatches = [r.name for r in results if not r.ok]

    # Non-gating overhead probe: the disabled path is a single None check
    # per round, and the enabled path one dict update per vertex-round.
    # Medians land on the dashboard but never flip ``ok`` -- wall time on
    # shared CI is too noisy to gate on.
    n, rounds, repeats = params["n"], params["rounds"], params["repeats"]
    inst = one_cycle_instance(n, kt=0)
    sim = Simulator(BCC1_KT0)
    previous = set_ledger(None)  # the harness ledger must not taint the probe
    try:
        disabled: List[float] = []
        for _ in range(repeats):
            start = time.perf_counter()
            sim.run(inst, ConstantAlgorithm, rounds)
            disabled.append(time.perf_counter() - start)
        enabled: List[float] = []
        for _ in range(repeats):
            ledger = CostLedger()
            with use_ledger(ledger):
                start = time.perf_counter()
                sim.run(inst, ConstantAlgorithm, rounds)
                enabled.append(time.perf_counter() - start)
    finally:
        set_ledger(previous)
    measured = {
        "specs_checked": len(results),
        "mismatches": mismatches,
        "sympy_checked": all(r.sympy_checked for r in results),
        "per_spec": {
            r.name: {"rounds": r.measured_rounds, "bits": r.measured_bits}
            for r in results
        },
        "disabled_median_seconds": statistics.median(disabled),
        "enabled_median_seconds": statistics.median(enabled),
    }
    predicted = {"mismatches": []}
    return measured, predicted, not mismatches


_SPECS: List[BenchmarkSpec] = [
    BenchmarkSpec(
        "simulator",
        "core round engine: rounds executed and bits broadcast vs closed form",
        _run_simulator,
        {"n": 16, "rounds": 4},
        {"n": 64, "rounds": 8},
    ),
    BenchmarkSpec(
        "crossing",
        "E1: Figure 1 crossing + Lemma 3.4 on live executions",
        _run_crossing,
        {"n": 12, "rounds": 2},
        {"n": 32, "rounds": 8},
    ),
    BenchmarkSpec(
        "kt0_star",
        "E2: Theorem 3.5 star adversary vs the silent algorithm",
        _run_kt0_star,
        {"n": 15, "rounds": 1},
        {"n": 30, "rounds": 3},
    ),
    BenchmarkSpec(
        "kt0_constant_error",
        "E5: Theorem 3.1 exact forced error of a symmetric algorithm",
        _run_kt0_constant_error,
        {"n": 6, "rounds": 2},
        {"n": 6, "rounds": 3},
    ),
    BenchmarkSpec(
        "exhaustive",
        "E5+: min forced error over the full ID-oblivious 1-round class",
        _run_exhaustive,
        {"n": 6, "alphabet": ["0", "1"]},
        {"n": 6, "alphabet": ["", "0", "1"]},
        supports_workers=True,
    ),
    BenchmarkSpec(
        "v2_v1_ratio",
        "E4: Lemma 3.9 |V2|/|V1| ~ (1/2) ln n fit",
        _run_v2_v1_ratio,
        {"max_exp": 4},
        {"max_exp": 6},
    ),
    BenchmarkSpec(
        "partition_rank",
        "E6: rank(M_n) = B_n (Theorem 2.3), exact",
        _run_partition_rank,
        {"n": 4},
        {"n": 5},
        supports_kernel=True,
    ),
    BenchmarkSpec(
        "reduction",
        "E7: Theorem 4.3 join agreement on random TwoPartition reductions",
        _run_reduction,
        {"n": 6, "pairs": 10, "seed": 17},
        {"n": 10, "pairs": 30, "seed": 17},
    ),
    BenchmarkSpec(
        "kt1_simulation",
        "E8: Section 4.3 Alice/Bob simulation bit accounting",
        _run_kt1_simulation,
        {"n": 6, "seed": 5},
        {"n": 8, "seed": 5},
    ),
    BenchmarkSpec(
        "upper_bounds",
        "E10: measured NeighborExchange rounds vs closed-form budgets",
        _run_upper_bounds,
        {"n": 16},
        {"n": 64},
    ),
    BenchmarkSpec(
        "mst",
        "E10+: broadcast Boruvka MST vs Kruskal ground truth",
        _run_mst,
        {"n": 10, "seed": 10},
        {"n": 16, "seed": 16},
    ),
    BenchmarkSpec(
        "mutual_information",
        "E9: Theorem 4.5 exact information accounting",
        _run_mutual_information,
        {"n": 4},
        {"n": 5},
    ),
    BenchmarkSpec(
        "sampling",
        "E9+: sampled information estimate vs exact",
        _run_sampling,
        {"n": 4, "samples": 500, "seed": 0},
        {"n": 5, "samples": 3000, "seed": 0},
        supports_workers=True,
    ),
    BenchmarkSpec(
        "indist_degrees",
        "E3: Lemma 3.7 one-cycle degree, measured vs n(n-5)/2",
        _run_indist_degrees,
        {"n": 8},
        {"n": 11},
    ),
    BenchmarkSpec(
        "ablations",
        "A1: port-preserving crossing vs naive edge swap",
        _run_ablations,
        {"n": 8, "rounds": 2},
        {"n": 12, "rounds": 3},
    ),
    BenchmarkSpec(
        "resilience",
        "R1: fault-sweep degradation curves + zero-rate invisibility",
        _run_resilience,
        {"n": 6, "trials": 3, "rate": 0.1, "seed": 0},
        {"n": 8, "trials": 8, "rate": 0.1, "seed": 0},
        supports_workers=True,
    ),
    BenchmarkSpec(
        "spans",
        "P1: span profiler tree shape + result transparency under a recorder",
        _run_spans,
        {"n": 16, "rounds": 4},
        {"n": 64, "rounds": 8},
    ),
    BenchmarkSpec(
        "stream",
        "O2: event-bus stream shape + result transparency under a subscriber",
        _run_stream,
        {"n": 16, "rounds": 4},
        {"n": 64, "rounds": 8},
    ),
    BenchmarkSpec(
        "parallel",
        "P2: serial vs fan-out vs vectorized exhaustive scan, identity-gated",
        _run_parallel,
        {"n": 4, "alphabet": ["0", "1", "2"], "workers": 4},
        {"n": 6, "alphabet": ["0", "1", "2"], "workers": 4},
        supports_cache=True,
    ),
    BenchmarkSpec(
        "kernels",
        "P3: packed/batched kernels vs reference engines, identity-gated",
        _run_kernels,
        {"rank_n": 4, "graph_n": 6, "dense_size": 60, "m4ri_size": 256, "sparse_size": 200},
        {"rank_n": 5, "graph_n": 7, "dense_size": 250, "m4ri_size": 2048, "sparse_size": 1200},
        supports_kernel=True,
    ),
    BenchmarkSpec(
        "costs",
        "P4: symbolic cost conformance + ledger on/off overhead probe",
        _run_costs,
        {"quick_specs": True, "n": 16, "rounds": 4, "repeats": 3},
        {"quick_specs": False, "n": 64, "rounds": 8, "repeats": 5},
    ),
]

_SPEC_BY_NAME: Dict[str, BenchmarkSpec] = {spec.name: spec for spec in _SPECS}


def bench_names() -> List[str]:
    """All harness benchmark names, in registry order."""
    return [spec.name for spec in _SPECS]


class BenchmarkHarness:
    """Runs harness benchmarks and writes ``BENCH_<name>.json`` files.

    Parameters
    ----------
    out_dir:
        Where the JSON files land (created if missing). ``None`` disables
        writing (results are only returned).
    quick:
        Use each spec's quick parameter set (CI smoke) instead of the
        full seed parameters.
    workers:
        Worker processes for specs whose kernels support fan-out
        (``supports_workers=True``): injected into their params as
        ``workers`` so the recorded ``BENCH_<name>.json`` shows exactly
        what ran. Serial specs ignore it. History records carry the
        value too (:func:`repro.obs.regress.history_record`), so the
        regression detector never compares across worker counts.
    kernel:
        Compute-kernel mode (one of :data:`repro.kernels.KERNEL_MODES`)
        for specs with ``supports_kernel=True``: injected into their
        params as ``kernel``. History records carry it exactly like
        ``workers`` -- a packed-engine wall time is not comparable to a
        reference-engine one.
    cache_dir:
        Result-cache directory for specs with ``supports_cache=True``:
        injected into their params as ``cache_dir`` so the warm-path
        leg runs against it. ``None`` (the default) keeps the harness
        cache-disabled -- benches measure real compute, and wall times
        stay comparable across runs. History records carry
        ``cache="on"/"off"`` so the regression detector never compares
        warm-cache lookups against cold computation.
    """

    def __init__(
        self,
        out_dir: Optional[str] = ".",
        quick: bool = False,
        workers: int = 1,
        kernel: str = "auto",
        cache_dir: Optional[str] = None,
    ):
        from repro.kernels import resolve_kernel

        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        resolve_kernel(kernel)  # raises ValueError on unknown modes
        self.out_dir = out_dir
        self.quick = quick
        self.workers = int(workers)
        self.kernel = str(kernel)
        self.cache_dir = cache_dir

    def run_one(self, name: str) -> BenchmarkResult:
        spec = _SPEC_BY_NAME.get(name)
        if spec is None:
            raise KeyError(
                f"unknown benchmark {name!r}; known: {', '.join(bench_names())}"
            )
        params = spec.params(self.quick)
        if spec.supports_workers:
            params["workers"] = self.workers
        if spec.supports_kernel:
            params["kernel"] = self.kernel
        if spec.supports_cache and self.cache_dir is not None:
            params["cache_dir"] = self.cache_dir
        bus = get_bus()
        if bus is not None:
            bus.publish("bench.start", {"name": spec.name, "quick": self.quick})
        registry = MetricsRegistry()
        ledger = CostLedger()
        with use_registry(registry), use_ledger(ledger):
            start = time.perf_counter()
            measured, predicted, ok = spec.runner(params)
            wall = time.perf_counter() - start
        if bus is not None:
            bus.publish(
                "bench.end",
                {"name": spec.name, "ok": bool(ok), "wall_seconds": wall},
            )
        result = BenchmarkResult(
            name=spec.name,
            description=spec.description,
            quick=self.quick,
            params=params,
            wall_time_seconds=wall,
            measured=measured,
            predicted=predicted,
            ok=bool(ok),
            metrics=registry.snapshot(),
            costs=ledger.summary(),
        )
        if self.out_dir is not None:
            result.path = self._write(result)
        return result

    def run(self, names: Optional[Sequence[str]] = None) -> List[BenchmarkResult]:
        return [self.run_one(name) for name in (names or bench_names())]

    def _write(self, result: BenchmarkResult) -> str:
        payload = result.to_payload()
        problems = validate_bench_payload(payload)
        if problems:  # a harness bug, not a user error -- fail loudly
            raise ValueError(
                f"BENCH_{result.name}.json failed its own schema: {problems}"
            )
        os.makedirs(self.out_dir, exist_ok=True)
        path = os.path.join(self.out_dir, f"BENCH_{result.name}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=False)
            handle.write("\n")
        return path


def load_bench_payloads(directory: str) -> List[Tuple[str, Dict[str, Any]]]:
    """Read every ``BENCH_*.json`` in a directory, sorted by name."""
    out: List[Tuple[str, Dict[str, Any]]] = []
    for entry in sorted(os.listdir(directory)):
        if entry.startswith("BENCH_") and entry.endswith(".json"):
            path = os.path.join(directory, entry)
            with open(path, "r", encoding="utf-8") as handle:
                out.append((path, json.load(handle)))
    return out
