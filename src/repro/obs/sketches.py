"""Mergeable population sketches: quantiles, top-k, exact moments.

The paper's statements are about *distributions* -- error probability
over an input distribution, bit complexity over a protocol family -- yet
per-run telemetry (metrics, spans, cost ledgers) summarizes one run at a
time. This module supplies the population layer: three dependency-free
summary structures that are **deterministically mergeable**, so a sweep
sharded over any number of workers folds to the *same bytes* as the
serial loop (the same discipline the distributed-sketching protocols
themselves rely on: aggregate by order-invariant merge).

The design rule that buys order- and worker-invariance is that every
sketch's state is a **pure function of the observed multiset** -- never
of arrival order, shard boundaries, or merge history:

* :class:`QuantileSketch` keeps the exact multiset (a value -> count
  map) until the observation count exceeds ``cap``, then collapses onto
  **fixed, data-independent logarithmic bins** (16 sub-bins per octave
  via ``math.frexp``, sign-mirrored, zero its own bin). Collapsing is a
  deterministic function of the multiset, so ``merge(a, b)`` equals
  ``merge(b, a)`` equals the sketch of the union multiset, exactly.
  Nearest-rank quantiles are exact below the cap and bin-midpoint
  estimates (clamped to the exact min/max) above it -- relative bin
  width 1/32, so tail estimates are within ~1.6% of the true value.
* :class:`TopKSketch` retains exact counts for the ``cap``
  lexicographically-smallest distinct keys and aggregates everything
  else into ``other_count``. A key among the cap-smallest distinct keys
  of the whole stream is among the cap-smallest at every prefix, so it
  is admitted on first arrival and never evicted: retained counts are
  exact, and the retained *set* is again a pure function of the
  multiset. (This is an exact-until-cap frequency map with a mergeable
  eviction rule, not a heavy-hitters sketch: our key spaces -- outcome
  labels, fault kinds, phase names, edge labels -- are small, so in
  practice ``other_count`` stays 0 and every count is exact.)
* :class:`MomentsSketch` accumulates count/sum/sum-of-squares with
  :class:`fractions.Fraction` arithmetic. Floats embed exactly into the
  rationals and rational addition is associative and commutative *in
  exact arithmetic*, so merged moments are bit-identical for any merge
  tree -- no float summation-order drift.

Each sketch serializes to a JSON-ready dict (``to_dict``/``from_dict``)
and is registered with the :mod:`repro.parallel.merge` monoid registry
under ``sketch.quantile`` / ``sketch.topk`` / ``sketch.moments``
(operating on serialized states, so shard workers ship plain JSON), plus
``sketch.population`` for the name -> state maps the sweep/scan paths
fold. Merge-law property tests live in ``tests/obs/test_sketches.py``.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.parallel.merge import Monoid, register_monoid

__all__ = [
    "MomentsSketch",
    "QuantileSketch",
    "SKETCH_KINDS",
    "TopKSketch",
    "merge_population",
    "population_summary",
    "sketch_from_dict",
]

#: Default exact-mode capacity, aligned with Histogram's sample cap.
DEFAULT_QUANTILE_CAP = 4096

#: Default retained-key capacity for TopKSketch.
DEFAULT_TOPK_CAP = 64

#: Sub-bins per octave in the collapsed quantile representation.
_SUBBINS = 16

#: Bias keeping bin keys sign-symmetric around 0 (|frexp exponent| for
#: finite doubles is < 1100, so |e * 16 + sub| < 17616 << 2**16).
_BIN_BIAS = 1 << 16


def _check_finite(value: float) -> float:
    out = float(value)
    if math.isnan(out) or math.isinf(out):
        raise ValueError(f"sketches accept finite values only, got {value!r}")
    # normalize -0.0 so the stored key never depends on arrival order
    return 0.0 if out == 0.0 else out


def _check_count(count: int) -> int:
    if not isinstance(count, int) or isinstance(count, bool) or count < 1:
        raise ValueError(f"count must be a positive int, got {count!r}")
    return count


def _bin_key(value: float) -> int:
    """The fixed log-bin index of a finite value (0 maps to key 0).

    Keys are integer, data-independent, and monotone in the value, so
    sorting keys sorts bins numerically and merging is a plain key-wise
    count sum.
    """
    if value == 0.0:
        return 0
    mantissa, exponent = math.frexp(abs(value))
    sub = int((mantissa - 0.5) * 2 * _SUBBINS)  # 0 .. _SUBBINS-1
    unsigned = exponent * _SUBBINS + sub + _BIN_BIAS
    return unsigned if value > 0.0 else -unsigned


def _bin_midpoint(key: int) -> float:
    """Deterministic representative (geometric-cell midpoint) of a bin."""
    if key == 0:
        return 0.0
    exponent, sub = divmod(abs(key) - _BIN_BIAS, _SUBBINS)
    magnitude = math.ldexp(0.5 + (sub + 0.5) / (2 * _SUBBINS), exponent)
    return magnitude if key > 0 else -magnitude


def _nearest_rank(items: List[Tuple[Any, int]], total: int, pct: float) -> Any:
    """Nearest-rank selection over (value, count) items sorted ascending."""
    rank = max(1, math.ceil(pct / 100.0 * total))
    seen = 0
    for value, count in items:
        seen += count
        if seen >= rank:
            return value
    return items[-1][0]


class QuantileSketch:
    """Exact-until-cap, fixed-log-bin-after quantile sketch."""

    __slots__ = ("cap", "_count", "_min", "_max", "_exact", "_bins")

    kind = "quantile"

    def __init__(self, cap: int = DEFAULT_QUANTILE_CAP) -> None:
        if cap < 1:
            raise ValueError(f"cap must be >= 1, got {cap}")
        self.cap = cap
        self._count = 0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        #: exact mode: value -> count (None once collapsed)
        self._exact: Optional[Dict[float, int]] = {}
        #: binned mode: bin key -> count
        self._bins: Dict[int, int] = {}

    # -- ingestion ------------------------------------------------------
    def update(self, value: float, count: int = 1) -> "QuantileSketch":
        value = _check_finite(value)
        count = _check_count(count)
        self._count += count
        self._min = value if self._min is None else min(self._min, value)
        self._max = value if self._max is None else max(self._max, value)
        if self._exact is not None:
            self._exact[value] = self._exact.get(value, 0) + count
            if self._count > self.cap:
                self._collapse()
        else:
            key = _bin_key(value)
            self._bins[key] = self._bins.get(key, 0) + count
        return self

    def _collapse(self) -> None:
        """Project the exact multiset onto the fixed bins.

        Called exactly when the observation count first exceeds the cap;
        because the bins are data-independent, the result depends only on
        the multiset -- not on when the collapse happened.
        """
        assert self._exact is not None
        for value, count in self._exact.items():
            key = _bin_key(value)
            self._bins[key] = self._bins.get(key, 0) + count
        self._exact = None

    # -- merging --------------------------------------------------------
    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` into self (mutating, returns self).

        Capacities must agree -- a merge across caps would make the
        exact/binned decision depend on merge topology.
        """
        if other.cap != self.cap:
            raise ValueError(f"cap mismatch: {self.cap} vs {other.cap}")
        if other._count == 0:
            return self
        self._count += other._count
        self._min = other._min if self._min is None else min(self._min, other._min)  # type: ignore[type-var]
        self._max = other._max if self._max is None else max(self._max, other._max)  # type: ignore[type-var]
        if self._exact is not None and other._exact is not None:
            for value, count in other._exact.items():
                self._exact[value] = self._exact.get(value, 0) + count
            if self._count > self.cap:
                self._collapse()
        else:
            if self._exact is not None:
                self._collapse()
            if other._exact is not None:
                for value, count in other._exact.items():
                    key = _bin_key(value)
                    self._bins[key] = self._bins.get(key, 0) + count
            else:
                for key, count in other._bins.items():
                    self._bins[key] = self._bins.get(key, 0) + count
        return self

    def copy(self) -> "QuantileSketch":
        out = QuantileSketch(self.cap)
        out._count = self._count
        out._min, out._max = self._min, self._max
        out._exact = None if self._exact is None else dict(self._exact)
        out._bins = dict(self._bins)
        return out

    # -- queries --------------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    @property
    def exact_mode(self) -> bool:
        return self._exact is not None

    def quantile(self, pct: float) -> Optional[float]:
        """Nearest-rank percentile: exact below the cap, a bin-midpoint
        estimate clamped to the exact [min, max] above it."""
        if self._count == 0:
            return None
        if self._exact is not None:
            return _nearest_rank(sorted(self._exact.items()), self._count, pct)
        key = _nearest_rank(sorted(self._bins.items()), self._count, pct)
        assert self._min is not None and self._max is not None
        return min(max(_bin_midpoint(key), self._min), self._max)

    def mean(self) -> Optional[float]:
        """Exact mean below the cap, bin-midpoint estimate above it.

        Computed from the (sorted) state, never from a running float
        accumulator, so the result is independent of arrival order.
        """
        if self._count == 0:
            return None
        if self._exact is not None:
            total = math.fsum(v * c for v, c in sorted(self._exact.items()))
        else:
            total = math.fsum(
                _bin_midpoint(k) * c for k, c in sorted(self._bins.items())
            )
        return total / self._count

    def summary(self) -> Dict[str, Any]:
        return {
            "count": self._count,
            "min": self._min,
            "max": self._max,
            "mean": self.mean(),
            "p50": self.quantile(50),
            "p90": self.quantile(90),
            "p99": self.quantile(99),
            "mode": "exact" if self._exact is not None else "binned",
        }

    # -- wire format ----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        state: Dict[str, Any] = {
            "kind": self.kind,
            "cap": self.cap,
            "count": self._count,
            "min": self._min,
            "max": self._max,
        }
        if self._exact is not None:
            state["values"] = [[v, c] for v, c in sorted(self._exact.items())]
        else:
            state["bins"] = [[k, c] for k, c in sorted(self._bins.items())]
        return state

    @classmethod
    def from_dict(cls, state: Dict[str, Any]) -> "QuantileSketch":
        if state.get("kind") != cls.kind:
            raise ValueError(f"not a quantile sketch state: {state.get('kind')!r}")
        out = cls(int(state["cap"]))
        out._count = int(state["count"])
        out._min = None if state["min"] is None else float(state["min"])
        out._max = None if state["max"] is None else float(state["max"])
        if "values" in state:
            out._exact = {float(v): int(c) for v, c in state["values"]}
        else:
            out._exact = None
            out._bins = {int(k): int(c) for k, c in state["bins"]}
        return out


class TopKSketch:
    """Exact counts for the ``cap`` lexicographically-smallest keys."""

    __slots__ = ("cap", "_counts", "_other", "_count")

    kind = "topk"

    def __init__(self, cap: int = DEFAULT_TOPK_CAP) -> None:
        if cap < 1:
            raise ValueError(f"cap must be >= 1, got {cap}")
        self.cap = cap
        self._counts: Dict[str, int] = {}
        self._other = 0
        self._count = 0

    # -- ingestion ------------------------------------------------------
    def update(self, key: str, count: int = 1) -> "TopKSketch":
        if not isinstance(key, str):
            raise ValueError(f"TopKSketch keys must be str, got {type(key).__name__}")
        count = _check_count(count)
        self._count += count
        if key in self._counts:
            self._counts[key] += count
        elif len(self._counts) < self.cap:
            self._counts[key] = count
        elif key < max(self._counts):
            # key enters the guard set; the largest retained key leaves
            self._counts[key] = count
            self._evict()
        else:
            self._other += count
        return self

    def _evict(self) -> None:
        while len(self._counts) > self.cap:
            largest = max(self._counts)
            self._other += self._counts.pop(largest)

    # -- merging --------------------------------------------------------
    def merge(self, other: "TopKSketch") -> "TopKSketch":
        if other.cap != self.cap:
            raise ValueError(f"cap mismatch: {self.cap} vs {other.cap}")
        self._count += other._count
        self._other += other._other
        for key, count in other._counts.items():
            self._counts[key] = self._counts.get(key, 0) + count
        self._evict()
        return self

    def copy(self) -> "TopKSketch":
        out = TopKSketch(self.cap)
        out._counts = dict(self._counts)
        out._other = self._other
        out._count = self._count
        return out

    # -- queries --------------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    @property
    def other_count(self) -> int:
        return self._other

    def top(self, k: Optional[int] = None) -> List[Tuple[str, int]]:
        """Retained keys by descending count (key breaks ties)."""
        ranked = sorted(self._counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked if k is None else ranked[:k]

    def summary(self) -> Dict[str, Any]:
        return {
            "count": self._count,
            "distinct_retained": len(self._counts),
            "other_count": self._other,
            "top": [[key, count] for key, count in self.top(10)],
        }

    # -- wire format ----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "cap": self.cap,
            "count": self._count,
            "other": self._other,
            "counts": [[k, c] for k, c in sorted(self._counts.items())],
        }

    @classmethod
    def from_dict(cls, state: Dict[str, Any]) -> "TopKSketch":
        if state.get("kind") != cls.kind:
            raise ValueError(f"not a topk sketch state: {state.get('kind')!r}")
        out = cls(int(state["cap"]))
        out._count = int(state["count"])
        out._other = int(state["other"])
        out._counts = {str(k): int(c) for k, c in state["counts"]}
        return out


class MomentsSketch:
    """Count / mean / variance with exact rational accumulation."""

    __slots__ = ("_count", "_sum", "_sum2", "_min", "_max")

    kind = "moments"

    def __init__(self) -> None:
        self._count = 0
        self._sum = Fraction(0)
        self._sum2 = Fraction(0)
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    # -- ingestion ------------------------------------------------------
    def update(self, value: float, count: int = 1) -> "MomentsSketch":
        value = _check_finite(value)
        count = _check_count(count)
        exact = Fraction(value)
        self._count += count
        self._sum += exact * count
        self._sum2 += exact * exact * count
        self._min = value if self._min is None else min(self._min, value)
        self._max = value if self._max is None else max(self._max, value)
        return self

    # -- merging --------------------------------------------------------
    def merge(self, other: "MomentsSketch") -> "MomentsSketch":
        if other._count == 0:
            return self
        self._count += other._count
        self._sum += other._sum
        self._sum2 += other._sum2
        self._min = other._min if self._min is None else min(self._min, other._min)  # type: ignore[type-var]
        self._max = other._max if self._max is None else max(self._max, other._max)  # type: ignore[type-var]
        return self

    def copy(self) -> "MomentsSketch":
        out = MomentsSketch()
        out._count = self._count
        out._sum, out._sum2 = self._sum, self._sum2
        out._min, out._max = self._min, self._max
        return out

    # -- queries --------------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    def mean(self) -> Optional[float]:
        if self._count == 0:
            return None
        return float(self._sum / self._count)

    def variance(self) -> Optional[float]:
        """Population variance, computed in exact rationals then
        rounded once -- never negative, never order-dependent."""
        if self._count == 0:
            return None
        mu = self._sum / self._count
        return float(self._sum2 / self._count - mu * mu)

    def summary(self) -> Dict[str, Any]:
        return {
            "count": self._count,
            "min": self._min,
            "max": self._max,
            "mean": self.mean(),
            "variance": self.variance(),
        }

    # -- wire format ----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "count": self._count,
            "sum": [self._sum.numerator, self._sum.denominator],
            "sum2": [self._sum2.numerator, self._sum2.denominator],
            "min": self._min,
            "max": self._max,
        }

    @classmethod
    def from_dict(cls, state: Dict[str, Any]) -> "MomentsSketch":
        if state.get("kind") != cls.kind:
            raise ValueError(f"not a moments sketch state: {state.get('kind')!r}")
        out = cls()
        out._count = int(state["count"])
        out._sum = Fraction(int(state["sum"][0]), int(state["sum"][1]))
        out._sum2 = Fraction(int(state["sum2"][0]), int(state["sum2"][1]))
        out._min = None if state["min"] is None else float(state["min"])
        out._max = None if state["max"] is None else float(state["max"])
        return out


Sketch = Union[QuantileSketch, TopKSketch, MomentsSketch]

#: kind tag -> class, the dispatch table for serialized states.
SKETCH_KINDS = {
    QuantileSketch.kind: QuantileSketch,
    TopKSketch.kind: TopKSketch,
    MomentsSketch.kind: MomentsSketch,
}


def sketch_from_dict(state: Dict[str, Any]) -> Sketch:
    """Rehydrate any serialized sketch by its ``kind`` tag."""
    kind = state.get("kind")
    cls = SKETCH_KINDS.get(kind)
    if cls is None:
        raise ValueError(f"unknown sketch kind {kind!r}")
    return cls.from_dict(state)


def _merge_states(
    a: Optional[Dict[str, Any]], b: Optional[Dict[str, Any]]
) -> Optional[Dict[str, Any]]:
    """Monoid combine over *serialized* states (None = absent shard)."""
    if a is None:
        return b
    if b is None:
        return a
    if a.get("kind") != b.get("kind"):
        raise ValueError(f"sketch kind mismatch: {a.get('kind')!r} vs {b.get('kind')!r}")
    return sketch_from_dict(a).merge(sketch_from_dict(b)).to_dict()  # type: ignore[arg-type]


def _kinded_combine(kind: str):
    def combine(a: Optional[Dict[str, Any]], b: Optional[Dict[str, Any]]):
        for state in (a, b):
            if state is not None and state.get("kind") != kind:
                raise ValueError(
                    f"expected a {kind!r} sketch state, got {state.get('kind')!r}"
                )
        return _merge_states(a, b)

    return combine


def merge_population(
    a: Optional[Dict[str, Dict[str, Any]]], b: Optional[Dict[str, Dict[str, Any]]]
) -> Optional[Dict[str, Dict[str, Any]]]:
    """Key-wise sketch merge of two name -> serialized-state maps.

    This is what the sweep/scan parents fold over shard results: each
    worker ships ``{"rounds": <quantile state>, "outcomes": <topk
    state>, ...}`` and the parent folds them in shard order (though
    order cannot matter -- see the module docstring).
    """
    if a is None:
        return b
    if b is None:
        return a
    out = dict(a)
    for name, state in b.items():
        out[name] = _merge_states(out.get(name), state)
    return out


def population_summary(
    population: Optional[Dict[str, Dict[str, Any]]],
) -> Dict[str, Dict[str, Any]]:
    """Human-ready summaries of a name -> serialized-state map, in
    sorted name order."""
    if not population:
        return {}
    return {
        name: sketch_from_dict(population[name]).summary()
        for name in sorted(population)
    }


# ----------------------------------------------------------------------
# monoid registrations (shard parents look these up by name)
# ----------------------------------------------------------------------
register_monoid(
    "sketch.quantile", Monoid(identity=lambda: None, combine=_kinded_combine("quantile"))
)
register_monoid(
    "sketch.topk", Monoid(identity=lambda: None, combine=_kinded_combine("topk"))
)
register_monoid(
    "sketch.moments", Monoid(identity=lambda: None, combine=_kinded_combine("moments"))
)
register_monoid(
    "sketch.population", Monoid(identity=lambda: None, combine=merge_population)
)
