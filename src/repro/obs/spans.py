"""Hierarchical span profiling: where does the time actually go?

The flat metrics in :mod:`repro.obs.metrics` answer *how much* (rounds,
bits, assignments/sec); this module answers *where*. A
:class:`SpanRecorder` collects a tree of timed :class:`Span` objects --
run -> round -> broadcast/deliver, search -> precompute -> enumerate,
rank -> elimination -- with per-span attributes (n, round, work units)
and monotonic-clock timing, so a profile of any kernel can be rendered
as an indented tree with self-vs-cumulative time or exported as a
self-contained JSON payload (schema below) and as ``span_start`` /
``span_end`` events on a :class:`~repro.obs.trace.RunTrace` (trace
schema v3).

Design constraints, in order:

1. **Near-zero overhead when off.** Instrumented call sites resolve the
   process-wide recorder once (:func:`get_recorder`, a single
   module-level attribute read) and guard every span operation with a
   local ``is not None`` check -- the same discipline as the metrics
   registry and PR 2's fault hook. With no recorder installed the hot
   paths run their original code.
2. **Correct nesting under threads.** The open-span stack is
   thread-local, so spans started on different threads attach to their
   own thread's parent, never to another thread's.
3. **Deterministic shape.** Span names, nesting, and attributes are
   functions of the computation only (never of wall time), so two runs
   with the same seed produce identical tree *shapes*
   (:meth:`Span.shape`); only the timings differ.

Usage::

    from repro.obs import SpanRecorder, span, use_recorder

    rec = SpanRecorder()
    with use_recorder(rec):
        with span("experiment", n=8):
            run_kernel()          # instrumented layers nest underneath
    print(render_span_tree(rec.tree_payload()))

Span-tree JSON (schema version 1)::

    {"schema_version": 1, "created_unix": 1754464000.1,
     "roots": [{"name": "simulator.run", "attrs": {"n": 16, ...},
                "duration_seconds": 0.01, "self_seconds": 0.002,
                "children": [...]}]}
"""

from __future__ import annotations

import threading
import time
from contextlib import ContextDecorator, contextmanager
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

__all__ = [
    "SPAN_TREE_SCHEMA_VERSION",
    "Span",
    "SpanRecorder",
    "aggregate_spans",
    "get_recorder",
    "render_hotspots",
    "render_span_tree",
    "set_recorder",
    "span",
    "use_recorder",
    "validate_span_tree_payload",
]

#: Bump when the span-tree JSON payload changes incompatibly.
SPAN_TREE_SCHEMA_VERSION = 1


class Span:
    """One timed node in the profile tree.

    Timing uses the monotonic ``time.perf_counter`` clock. ``attrs``
    carry the span's deterministic context (n, round, vertex, work
    units); they must never contain wall-clock-derived values, so the
    tree *shape* (:meth:`shape`) is reproducible under a fixed seed.
    """

    __slots__ = ("name", "attrs", "span_id", "start", "end", "children")

    def __init__(self, name: str, span_id: int, attrs: Optional[Dict[str, Any]] = None):
        self.name = name
        self.span_id = span_id
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.start = time.perf_counter()
        self.end: Optional[float] = None
        self.children: List["Span"] = []

    # -- timing --------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration_seconds(self) -> float:
        """Cumulative wall seconds (0.0 while the span is still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def self_seconds(self) -> float:
        """Cumulative time minus the time attributed to child spans."""
        return max(
            0.0,
            self.duration_seconds - sum(c.duration_seconds for c in self.children),
        )

    # -- attributes ----------------------------------------------------
    def set_attr(self, key: str, value: Any) -> None:
        """Attach/overwrite one attribute (e.g. a count known only at end)."""
        self.attrs[key] = value

    # -- export --------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        """JSON-serializable node: name/attrs/timings/children."""
        return {
            "name": self.name,
            "attrs": {k: _jsonable(v) for k, v in self.attrs.items()},
            "duration_seconds": self.duration_seconds,
            "self_seconds": self.self_seconds,
            "children": [c.as_dict() for c in self.children],
        }

    def shape(self) -> Tuple[Any, ...]:
        """Hashable timing-free structure: (name, sorted attrs, children).

        Two runs of the same seeded computation must produce equal
        shapes; the determinism tests assert exactly this.
        """
        return (
            self.name,
            tuple(sorted((k, repr(v)) for k, v in self.attrs.items())),
            tuple(c.shape() for c in self.children),
        )

    def walk(self) -> Iterator["Span"]:
        """Depth-first pre-order iteration over this subtree."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        state = f"{self.duration_seconds * 1e3:.3f}ms" if self.finished else "open"
        return f"Span({self.name!r}, {state}, children={len(self.children)})"


def _jsonable(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


class SpanRecorder:
    """Collects span trees; optionally mirrors them onto a RunTrace.

    Parameters
    ----------
    trace:
        Optional :class:`repro.obs.trace.RunTrace`; when given, every
        span start/finish is mirrored as a ``span_start`` /
        ``span_end`` event (trace schema v3), so profiles interleave
        with the existing round/fault events on one timeline.

    The open-span stack is **thread-local**: a span started on thread A
    becomes the parent only of spans subsequently started on thread A.
    Roots (and span ids) are shared across threads under a lock.
    """

    def __init__(self, trace: Any = None) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self._roots: List[Span] = []
        self._next_id = 0
        self._trace = trace

    # -- the open-span stack (per thread) ------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, or None."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- recording -----------------------------------------------------
    def start(self, name: str, **attrs: Any) -> Span:
        """Open a span as a child of this thread's innermost open span."""
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        node = Span(name, span_id, attrs)
        stack = self._stack()
        if stack:
            parent: Optional[Span] = stack[-1]
            parent.children.append(node)
        else:
            parent = None
            with self._lock:
                self._roots.append(node)
        stack.append(node)
        if self._trace is not None:
            self._trace.emit(
                "span_start",
                span_id=node.span_id,
                parent_id=parent.span_id if parent is not None else None,
                name=name,
                attrs={k: _jsonable(v) for k, v in node.attrs.items()},
            )
        return node

    def finish(self, node: Span) -> None:
        """Close a span (and, leniently, any still-open descendants).

        Instrumented code normally closes spans innermost-first via the
        :func:`span` context manager; if an exception skipped an inner
        ``finish``, everything above ``node`` on this thread's stack is
        closed with it so the tree stays well-formed.
        """
        stack = self._stack()
        if node not in stack:
            raise ValueError(
                f"span {node.name!r} is not open on this thread"
            )
        now = time.perf_counter()
        while stack:
            top = stack.pop()
            top.end = now
            if self._trace is not None:
                self._trace.emit(
                    "span_end",
                    span_id=top.span_id,
                    name=top.name,
                    duration_seconds=top.duration_seconds,
                    self_seconds=top.self_seconds,
                )
            if top is node:
                break

    # -- export --------------------------------------------------------
    @property
    def roots(self) -> List[Span]:
        with self._lock:
            return list(self._roots)

    def span_count(self) -> int:
        return sum(1 for root in self.roots for _ in root.walk())

    def tree_payload(self) -> Dict[str, Any]:
        """The self-contained span-tree JSON payload (schema version 1)."""
        return {
            "schema_version": SPAN_TREE_SCHEMA_VERSION,
            "created_unix": time.time(),
            "roots": [root.as_dict() for root in self.roots],
        }

    def reset(self) -> None:
        with self._lock:
            self._roots.clear()
        self._local = threading.local()


# ----------------------------------------------------------------------
# the process-wide opt-in recorder (mirrors metrics.get_registry)
# ----------------------------------------------------------------------
_active_recorder: Optional[SpanRecorder] = None
_active_lock = threading.Lock()


def get_recorder() -> Optional[SpanRecorder]:
    """The installed recorder, or None when span profiling is off.

    Hot paths call this once per run/search and keep the result in a
    local; the disabled path then costs one local ``None`` check per
    guarded operation.
    """
    return _active_recorder


def set_recorder(recorder: Optional[SpanRecorder]) -> Optional[SpanRecorder]:
    """Install (or, with None, remove) the process-wide recorder.

    Returns the previously installed recorder so callers can restore it.
    """
    global _active_recorder
    with _active_lock:
        previous = _active_recorder
        _active_recorder = recorder
    return previous


@contextmanager
def use_recorder(recorder: Optional[SpanRecorder]) -> Iterator[Optional[SpanRecorder]]:
    """Scoped :func:`set_recorder`: install for the block, then restore."""
    previous = set_recorder(recorder)
    try:
        yield recorder
    finally:
        set_recorder(previous)


class span(ContextDecorator):
    """Context manager *and* decorator opening a span on the active recorder.

    ::

        with span("indist.build_graph", n=n):
            ...

        @span("partitions.rank_exact")
        def rank_exact(...): ...

    With no recorder installed, ``__enter__`` is a single module-level
    check and nothing is allocated. Each decorated call gets a fresh
    instance (``_recreate_cm``), so recursion and concurrency are safe.
    """

    __slots__ = ("_name", "_attrs", "_recorder", "_span")

    def __init__(self, name: str, **attrs: Any):
        self._name = name
        self._attrs = attrs
        self._recorder: Optional[SpanRecorder] = None
        self._span: Optional[Span] = None

    def _recreate_cm(self) -> "span":
        return span(self._name, **self._attrs)

    def __enter__(self) -> Optional[Span]:
        recorder = _active_recorder  # the one module-level check
        if recorder is None:
            return None
        self._recorder = recorder
        self._span = recorder.start(self._name, **self._attrs)
        return self._span

    def __exit__(self, *exc_info: Any) -> bool:
        if self._span is not None:
            self._recorder.finish(self._span)  # type: ignore[union-attr]
            self._span = None
            self._recorder = None
        return False


# ----------------------------------------------------------------------
# rendering + validation
# ----------------------------------------------------------------------
def _payload_roots(payload_or_recorder: Any) -> List[Dict[str, Any]]:
    if isinstance(payload_or_recorder, SpanRecorder):
        return payload_or_recorder.tree_payload()["roots"]
    return list(payload_or_recorder.get("roots", []))


def aggregate_spans(payload_or_recorder: Any) -> List[Dict[str, Any]]:
    """Collapse a span tree into per-path rows (flame-style table).

    Sibling spans with the same name merge into one row per *path*
    (root-to-node name sequence), accumulating count, cumulative and
    self seconds -- the bounded, diff-friendly view of profiles whose
    trees repeat a round- or cover-shaped subtree many times. Rows come
    back in first-seen depth-first order with a ``depth`` field for
    indentation.
    """
    rows: List[Dict[str, Any]] = []
    index: Dict[Tuple[str, ...], Dict[str, Any]] = {}

    def visit(node: Mapping[str, Any], path: Tuple[str, ...]) -> None:
        key = path + (node["name"],)
        row = index.get(key)
        if row is None:
            row = {
                "path": key,
                "name": node["name"],
                "depth": len(path),
                "count": 0,
                "cumulative_seconds": 0.0,
                "self_seconds": 0.0,
            }
            index[key] = row
            rows.append(row)
        row["count"] += 1
        row["cumulative_seconds"] += float(node.get("duration_seconds", 0.0))
        row["self_seconds"] += float(node.get("self_seconds", 0.0))
        for child in node.get("children", []):
            visit(child, key)

    for root in _payload_roots(payload_or_recorder):
        visit(root, ())
    return rows


def render_span_tree(payload_or_recorder: Any, max_depth: Optional[int] = None) -> str:
    """Indented profile tree: one line per path with cum/self time.

    ``max_depth`` truncates the tree (0 = roots only); deeper rows are
    folded into their parents' cumulative time, which is already
    accounted for.
    """
    rows = aggregate_spans(payload_or_recorder)
    if not rows:
        return "(no spans recorded)"
    lines = [
        f"{'span':<44}  {'count':>6}  {'cum ms':>10}  {'self ms':>10}  {'self %':>6}"
    ]
    lines.append("-" * len(lines[0]))
    total_self = sum(r["self_seconds"] for r in rows) or 1.0
    for row in rows:
        if max_depth is not None and row["depth"] > max_depth:
            continue
        label = "  " * row["depth"] + row["name"]
        lines.append(
            f"{label:<44}  {row['count']:>6}  "
            f"{row['cumulative_seconds'] * 1e3:>10.3f}  "
            f"{row['self_seconds'] * 1e3:>10.3f}  "
            f"{100.0 * row['self_seconds'] / total_self:>5.1f}%"
        )
    return "\n".join(lines)


def render_hotspots(payload_or_recorder: Any, top: int = 10) -> str:
    """Top spans by *self* time, aggregated by name across all paths."""
    by_name: Dict[str, Dict[str, Any]] = {}
    for row in aggregate_spans(payload_or_recorder):
        agg = by_name.setdefault(
            row["name"],
            {"name": row["name"], "count": 0, "cumulative_seconds": 0.0, "self_seconds": 0.0},
        )
        agg["count"] += row["count"]
        agg["cumulative_seconds"] += row["cumulative_seconds"]
        agg["self_seconds"] += row["self_seconds"]
    ranked = sorted(by_name.values(), key=lambda r: -r["self_seconds"])[:top]
    if not ranked:
        return "(no spans recorded)"
    lines = [f"{'hotspot (by self time)':<32}  {'count':>6}  {'self ms':>10}  {'cum ms':>10}"]
    lines.append("-" * len(lines[0]))
    for row in ranked:
        lines.append(
            f"{row['name']:<32}  {row['count']:>6}  "
            f"{row['self_seconds'] * 1e3:>10.3f}  "
            f"{row['cumulative_seconds'] * 1e3:>10.3f}"
        )
    return "\n".join(lines)


_NUMERIC = (int, float)


def validate_span_tree_payload(payload: Mapping[str, Any]) -> List[str]:
    """Return a list of schema violations (empty = valid)."""
    problems: List[str] = []
    if not isinstance(payload, Mapping):
        return [f"payload is {type(payload).__name__}, expected object"]
    version = payload.get("schema_version")
    if isinstance(version, bool) or not isinstance(version, int):
        problems.append("missing integer schema_version")
    elif version > SPAN_TREE_SCHEMA_VERSION:
        problems.append(
            f"schema_version {version} is newer than supported "
            f"{SPAN_TREE_SCHEMA_VERSION}"
        )
    elif version < 1:
        problems.append("schema_version must be >= 1")
    if not isinstance(payload.get("created_unix"), _NUMERIC):
        problems.append("missing numeric created_unix")
    roots = payload.get("roots")
    if not isinstance(roots, list):
        return problems + ["roots is not a list"]

    def check(node: Any, where: str) -> None:
        if not isinstance(node, Mapping):
            problems.append(f"{where} is not an object")
            return
        if not isinstance(node.get("name"), str):
            problems.append(f"{where} missing string name")
        if not isinstance(node.get("attrs"), Mapping):
            problems.append(f"{where} missing attrs object")
        for field in ("duration_seconds", "self_seconds"):
            value = node.get(field)
            if isinstance(value, bool) or not isinstance(value, _NUMERIC):
                problems.append(f"{where} field {field!r} is not numeric")
        children = node.get("children")
        if not isinstance(children, list):
            problems.append(f"{where} children is not a list")
            return
        for i, child in enumerate(children):
            check(child, f"{where}.children[{i}]")

    for i, root in enumerate(roots):
        check(root, f"roots[{i}]")
    return problems
