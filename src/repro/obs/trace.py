"""Structured JSONL run traces.

:mod:`repro.core.tracing` renders executions for humans; this module is
the machine-readable counterpart. A :class:`RunTrace` writes one JSON
object per line -- a ``trace_start`` header carrying the schema version
and run id, then arbitrary events (per-round simulator events, protocol
turns, benchmark milestones), each stamped with a monotonically
increasing sequence number and a wall-clock timestamp.

Line format (schema version 2)::

    {"run_id": "a1b2...", "seq": 0, "ts": 1754464000.123,
     "event": "trace_start", "schema_version": 2}
    {"run_id": "a1b2...", "seq": 1, "ts": ..., "event": "run_start",
     "n": 12, "kt": 0, "bandwidth": 1, "rounds_budget": 4}
    {"run_id": "a1b2...", "seq": 2, "ts": ..., "event": "fault",
     "t": 1, "kind": "bit_flip", "vertex": 3, "receiver": 7,
     "original": "0", "delivered": "1", "scheduled": false}
    {"run_id": "a1b2...", "seq": 3, "ts": ..., "event": "round",
     "t": 1, "bits": 12, "wall_seconds": 3.1e-05}
    ...

Schema history:

* **v1** -- ``trace_start`` / ``run_start`` / ``round`` / ``run_end``
  plus the protocol events (``protocol_start`` / ``turn`` /
  ``protocol_end``) and free-form events.
* **v2** -- adds the fault-injection surface: ``fault`` events (one per
  injected fault, fields ``t``/``kind``/``vertex``/``receiver``/
  ``original``/``delivered``/``scheduled``), an optional ``faults``
  count on ``round`` events, fault metadata (``fault_seed``,
  ``fault_rates``) on ``run_start``, and ``faults_injected`` /
  ``crashed_vertices`` / ``failed_vertices`` on ``run_end``. v2 is a
  strict superset: every v1 trace is a valid v2 trace, and
  :func:`read_trace` parses both.
* **v3** -- adds the hierarchical span-profiling surface (see
  :mod:`repro.obs.spans`): ``span_start`` events (``span_id``,
  ``parent_id`` -- null for roots -- ``name``, ``attrs``) and
  ``span_end`` events (``span_id``, ``name``, ``duration_seconds``,
  ``self_seconds``), emitted by a
  :class:`~repro.obs.spans.SpanRecorder` constructed with a trace, so
  profiles interleave with round/fault events on one timeline. v3 is
  again a strict superset: every v1 or v2 trace is a valid v3 trace,
  and :func:`validate_trace_events` accepts all three.
* **v4** -- adds the communication-cost surface (see
  :mod:`repro.costs`): one ``cost_summary`` event per run with an
  active :class:`~repro.costs.CostLedger` (fields ``total_bits``,
  ``rounds``, and ``per_vertex`` -- a list of
  ``{"vertex", "bits", "silent_rounds"}`` records), emitted just
  before ``run_end`` so the per-run ledger rides the same timeline
  as the rounds it accounts for. v4 is a strict superset: every
  v1--v3 trace is a valid v4 trace, and cost_summary events inside
  traces declaring a version below 4 are flagged.
* **v5** -- adds the channel/session surface. ``delivery`` events
  (one per delivery anomaly injected by a non-pristine
  :class:`repro.net.NetworkPlan`: fields ``t`` / ``kind`` in
  ``{"delayed", "duplicated", "reordered", "dropped"}`` / ``sender``
  / ``receiver`` / ``sent_round`` / ``arrival_round`` / ``message``),
  optional ``network`` metadata on ``run_start`` and
  ``delivery_anomalies`` on ``run_end``, and the session-log events
  written by :class:`repro.replay.SessionStore` on the same wire
  format: ``session_start`` (``kind``, ``session_version``,
  ``params``), one ``step`` per recorded step (integer ``step``),
  ``result`` (object ``payload``), and ``session_end`` (integer
  ``steps``, boolean ``complete``). v5 is a strict superset: every
  v1--v4 trace is a valid v5 trace, and delivery/session events
  inside traces declaring a version below 5 are flagged.

Crash safety: every event is written as one line and flushed
immediately (file sinks are opened line-buffered, and ``fsync=True``
additionally forces each line to disk), so traces are valid JSONL at
every *line* boundary. A hard kill can still tear the final line
mid-write; :func:`read_trace` therefore skips a torn trailing line by
default, while refusing corruption anywhere earlier in the file.
"""

from __future__ import annotations

import io
import json
import os
import threading
import time
import uuid
from typing import Any, Dict, List, Optional, TextIO, Union

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "RunTrace",
    "read_trace",
    "trace_stats",
    "validate_trace_events",
]

#: Bump when the line format changes incompatibly.
TRACE_SCHEMA_VERSION = 5

#: Oldest schema version read_trace / validate_trace_events still accept.
OLDEST_SUPPORTED_TRACE_SCHEMA = 1


class RunTrace:
    """A thread-safe JSONL event writer bound to one run id.

    Parameters
    ----------
    sink:
        A path (opened for line-buffered append) or an already-open text
        stream (ownership stays with the caller for streams: ``close()``
        only closes sinks this writer opened).
    run_id:
        Optional explicit id; defaults to a fresh UUID4 hex string.
    fsync:
        When True and the sink is a real file, ``os.fsync`` after every
        event: each line survives not just a process kill but a machine
        crash. Off by default (flush-per-event already survives any
        process-level failure).
    """

    def __init__(
        self,
        sink: Union[str, TextIO],
        run_id: Optional[str] = None,
        fsync: bool = False,
    ):
        self.run_id = run_id if run_id is not None else uuid.uuid4().hex
        self._lock = threading.Lock()
        self._seq = 0
        if isinstance(sink, (str, bytes)):
            # Line-buffered append: the OS sees every event as soon as the
            # line is complete, independent of the flush below.
            self._stream: TextIO = open(sink, "a", encoding="utf-8", buffering=1)
            self._owns_stream = True
        else:
            self._stream = sink
            self._owns_stream = False
        self._fsync = fsync
        self._closed = False
        self.emit("trace_start", schema_version=TRACE_SCHEMA_VERSION)

    # ------------------------------------------------------------------
    def emit(self, event: str, **fields: Any) -> Dict[str, Any]:
        """Append one event line; returns the record that was written."""
        with self._lock:
            if self._closed:
                raise ValueError("trace is closed")
            record: Dict[str, Any] = {
                "run_id": self.run_id,
                "seq": self._seq,
                "ts": time.time(),
                "event": event,
            }
            for key, value in fields.items():
                record[key] = _jsonable(value)
            self._seq += 1
            self._stream.write(json.dumps(record, sort_keys=False) + "\n")
            self._stream.flush()
            if self._fsync:
                try:
                    os.fsync(self._stream.fileno())
                except (OSError, AttributeError, io.UnsupportedOperation):
                    pass  # in-memory sinks have no file descriptor
            return record

    @property
    def events_written(self) -> int:
        return self._seq

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Idempotent close; only closes streams this writer opened."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._stream.flush()
            except ValueError:  # caller already closed their stream
                pass
            if self._owns_stream:
                self._stream.close()

    def __enter__(self) -> "RunTrace":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def _jsonable(value: Any) -> Any:
    """Coerce a value to something json.dumps accepts (repr fallback)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


def read_trace(
    source: Union[str, TextIO],
    skip_torn_tail: bool = True,
    schema_version: Optional[int] = None,
) -> List[Dict[str, Any]]:
    """Parse a JSONL trace back into a list of event dicts.

    Traces are flushed line-by-line, so a process killed mid-``emit`` can
    leave exactly one torn line -- the last one. With ``skip_torn_tail``
    (the default) that trailing fragment is silently dropped; malformed
    JSON anywhere *before* the final line still raises ``ValueError``,
    because mid-file corruption means something worse than a kill
    happened and silently continuing would hide it.

    ``schema_version`` filters a mixed file (several writers appending
    to one path over time) down to the runs whose ``trace_start``
    header declares exactly that version; events belonging to a run
    with no header in the file are dropped when the filter is active,
    since their version cannot be established.
    """
    if isinstance(source, (str, bytes)):
        with open(source, "r", encoding="utf-8") as handle:
            text = handle.read()
    elif isinstance(source, io.StringIO):
        text = source.getvalue()
    else:
        text = source.read()
    lines = [line.strip() for line in text.splitlines()]
    lines = [line for line in lines if line]
    events = []
    for index, line in enumerate(lines):
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError as exc:
            if skip_torn_tail and index == len(lines) - 1:
                break  # torn tail from a hard kill: drop it
            raise ValueError(
                f"trace line {index + 1} is not valid JSON ({exc}); only a "
                f"torn final line is tolerated"
            ) from exc
    if schema_version is not None:
        versions: Dict[str, Any] = {}
        for event in events:
            if event.get("event") == "trace_start" and isinstance(
                event.get("run_id"), str
            ):
                versions.setdefault(event["run_id"], event.get("schema_version"))
        keep = {rid for rid, v in versions.items() if v == schema_version}
        events = [e for e in events if e.get("run_id") in keep]
    return events


#: Fault kinds trace v2 fault events may carry (mirrors
#: repro.resilience.faults.FAULT_KINDS; duplicated as literals so obs
#: stays import-independent of the resilience package).
_TRACE_FAULT_KINDS = ("bit_flip", "erasure", "crash")

_FAULT_EVENT_FIELDS = {
    "t": int,
    "kind": str,
    "vertex": int,
    "original": str,
    "delivered": str,
}

_SPAN_START_FIELDS = {
    "span_id": int,
    "name": str,
}

_SPAN_END_FIELDS = {
    "span_id": int,
    "name": str,
}

_COST_SUMMARY_FIELDS = {
    "total_bits": int,
    "rounds": int,
}

#: Delivery anomaly kinds trace v5 delivery events may carry (mirrors
#: repro.net.DELIVERY_KINDS; duplicated as literals so obs stays
#: import-independent of the net package).
_TRACE_DELIVERY_KINDS = ("delayed", "duplicated", "reordered", "dropped")

_DELIVERY_EVENT_FIELDS = {
    "t": int,
    "kind": str,
    "sender": int,
    "receiver": int,
    "sent_round": int,
    "arrival_round": int,
    "message": str,
}

_SESSION_START_FIELDS = {
    "kind": str,
    "session_version": int,
}


def validate_trace_events(events: List[Dict[str, Any]]) -> List[str]:
    """Return a list of schema violations for a parsed trace (empty = valid).

    Accepts schema versions 1 through :data:`TRACE_SCHEMA_VERSION`:
    the envelope (run_id / seq / ts / event) is checked on every line,
    v2 ``fault`` events are checked field-by-field, ``fault`` events
    inside a trace whose header declares schema version 1 are flagged
    (v1 predates fault injection), v3 ``span_start`` / ``span_end``
    events are likewise checked and flagged inside traces declaring a
    version below 3 (which predate span profiling), v4
    ``cost_summary`` events are checked (integer ``total_bits`` /
    ``rounds``, a well-formed ``per_vertex`` list) and flagged inside
    traces declaring a version below 4 (which predate cost accounting),
    and v5 ``delivery`` and session events (``session_start`` /
    ``step`` / ``result`` / ``session_end``) are checked and flagged
    inside traces declaring a version below 5 (which predate the
    channel layer and session store).
    """
    problems: List[str] = []
    if not events:
        return ["trace has no events"]
    if events[0].get("event") != "trace_start":
        problems.append("first event is not trace_start")
    # Every appended run declares its own schema version in its own
    # trace_start header, so a mixed v1/v2/v3 file is judged run by run
    # rather than by whichever writer happened to come first.
    versions_by_run: Dict[str, int] = {}
    for index, event in enumerate(events):
        if event.get("event") != "trace_start":
            continue
        declared = event.get("schema_version")
        if not isinstance(declared, int) or isinstance(declared, bool):
            problems.append(
                f"trace_start event {index} missing integer schema_version"
            )
            continue
        if declared > TRACE_SCHEMA_VERSION:
            problems.append(
                f"schema_version {declared} is newer than supported "
                f"{TRACE_SCHEMA_VERSION}"
            )
        elif declared < OLDEST_SUPPORTED_TRACE_SCHEMA:
            problems.append(
                f"schema_version must be >= {OLDEST_SUPPORTED_TRACE_SCHEMA}"
            )
        run_id = event.get("run_id")
        if isinstance(run_id, str):
            versions_by_run.setdefault(run_id, declared)
    for index, event in enumerate(events):
        version = versions_by_run.get(event.get("run_id"), TRACE_SCHEMA_VERSION)
        for field in ("run_id", "seq", "ts", "event"):
            if field not in event:
                problems.append(f"event {index} missing field {field!r}")
        if event.get("event") == "fault":
            if version < 2:
                problems.append(
                    f"event {index} is a fault event but the trace declares "
                    f"schema version {version} (faults need version >= 2)"
                )
            for field, expected in _FAULT_EVENT_FIELDS.items():
                value = event.get(field)
                if isinstance(value, bool) or not isinstance(value, expected):
                    problems.append(
                        f"fault event {index} field {field!r} is not "
                        f"{expected.__name__}"
                    )
            kind = event.get("kind")
            if isinstance(kind, str) and kind not in _TRACE_FAULT_KINDS:
                problems.append(
                    f"fault event {index} has unknown kind {kind!r}"
                )
        elif event.get("event") in ("span_start", "span_end"):
            which = event["event"]
            if version < 3:
                problems.append(
                    f"event {index} is a {which} event but the trace declares "
                    f"schema version {version} (spans need version >= 3)"
                )
            fields = _SPAN_START_FIELDS if which == "span_start" else _SPAN_END_FIELDS
            for field, expected in fields.items():
                value = event.get(field)
                if isinstance(value, bool) or not isinstance(value, expected):
                    problems.append(
                        f"{which} event {index} field {field!r} is not "
                        f"{expected.__name__}"
                    )
            if which == "span_start":
                parent = event.get("parent_id")
                if parent is not None and (
                    isinstance(parent, bool) or not isinstance(parent, int)
                ):
                    problems.append(
                        f"span_start event {index} parent_id is neither null "
                        f"nor int"
                    )
            else:
                for field in ("duration_seconds", "self_seconds"):
                    value = event.get(field)
                    if isinstance(value, bool) or not isinstance(
                        value, (int, float)
                    ):
                        problems.append(
                            f"span_end event {index} field {field!r} is not "
                            f"numeric"
                        )
        elif event.get("event") == "cost_summary":
            if version < 4:
                problems.append(
                    f"event {index} is a cost_summary event but the trace "
                    f"declares schema version {version} (cost summaries need "
                    f"version >= 4)"
                )
            for field, expected in _COST_SUMMARY_FIELDS.items():
                value = event.get(field)
                if isinstance(value, bool) or not isinstance(value, expected):
                    problems.append(
                        f"cost_summary event {index} field {field!r} is not "
                        f"{expected.__name__}"
                    )
            per_vertex = event.get("per_vertex")
            if not isinstance(per_vertex, list):
                problems.append(
                    f"cost_summary event {index} per_vertex is not a list"
                )
            else:
                for slot, entry in enumerate(per_vertex):
                    if not isinstance(entry, dict):
                        problems.append(
                            f"cost_summary event {index} per_vertex[{slot}] "
                            f"is not an object"
                        )
                        continue
                    if not isinstance(entry.get("vertex"), str):
                        problems.append(
                            f"cost_summary event {index} per_vertex[{slot}] "
                            f"vertex is not str"
                        )
                    for field in ("bits", "silent_rounds"):
                        value = entry.get(field)
                        if isinstance(value, bool) or not isinstance(value, int):
                            problems.append(
                                f"cost_summary event {index} per_vertex"
                                f"[{slot}] field {field!r} is not int"
                            )
        elif event.get("event") == "delivery":
            if version < 5:
                problems.append(
                    f"event {index} is a delivery event but the trace declares "
                    f"schema version {version} (deliveries need version >= 5)"
                )
            for field, expected in _DELIVERY_EVENT_FIELDS.items():
                value = event.get(field)
                if isinstance(value, bool) or not isinstance(value, expected):
                    problems.append(
                        f"delivery event {index} field {field!r} is not "
                        f"{expected.__name__}"
                    )
            kind = event.get("kind")
            if isinstance(kind, str) and kind not in _TRACE_DELIVERY_KINDS:
                problems.append(
                    f"delivery event {index} has unknown kind {kind!r}"
                )
        elif event.get("event") in ("session_start", "step", "result", "session_end"):
            which = event["event"]
            if version < 5:
                problems.append(
                    f"event {index} is a {which} event but the trace declares "
                    f"schema version {version} (sessions need version >= 5)"
                )
            if which == "session_start":
                for field, expected in _SESSION_START_FIELDS.items():
                    value = event.get(field)
                    if isinstance(value, bool) or not isinstance(value, expected):
                        problems.append(
                            f"session_start event {index} field {field!r} is "
                            f"not {expected.__name__}"
                        )
                if not isinstance(event.get("params"), dict):
                    problems.append(
                        f"session_start event {index} params is not an object"
                    )
            elif which == "step":
                value = event.get("step")
                if isinstance(value, bool) or not isinstance(value, int):
                    problems.append(f"step event {index} field 'step' is not int")
            elif which == "result":
                if not isinstance(event.get("payload"), dict):
                    problems.append(
                        f"result event {index} payload is not an object"
                    )
            else:  # session_end
                value = event.get("steps")
                if isinstance(value, bool) or not isinstance(value, int):
                    problems.append(
                        f"session_end event {index} field 'steps' is not int"
                    )
                if not isinstance(event.get("complete"), bool):
                    problems.append(
                        f"session_end event {index} field 'complete' is not bool"
                    )
    by_run: Dict[str, List[int]] = {}
    for event in events:
        if isinstance(event.get("seq"), int) and isinstance(event.get("run_id"), str):
            by_run.setdefault(event["run_id"], []).append(event["seq"])
    for run_id, seqs in by_run.items():
        if any(b <= a for a, b in zip(seqs, seqs[1:])):
            problems.append(f"seq numbers not strictly increasing for run {run_id}")
    return problems


def trace_stats(events: List[Dict[str, Any]]) -> Dict[str, Dict[str, Any]]:
    """Per-run summary of a parsed trace: event-type counts and version.

    Returns ``{run_id: {"schema_version": v_or_None, "events": total,
    "by_event": {event_name: count}}}`` in first-seen run order --
    the data behind ``repro trace-validate --stats``. Events without a
    string ``run_id`` are collected under the pseudo run id ``"?"``.

    Runs carrying v4 ``cost_summary`` events additionally get a
    ``"cost_bits"`` key (the summed ``total_bits`` across those events);
    runs carrying v5 session envelopes get a ``"sessions"`` key
    summarizing them (``{"kinds": {kind: count}, "steps": total,
    "complete": all_session_ends_complete}``); runs carrying ``cache``
    events (emitted by :func:`repro.engine.execute` when a result cache
    is attached) get a ``"cache"`` key counting hits and misses
    (``{"hits": h, "misses": m}``). All are *sibling* keys of
    ``by_event`` -- the by-event counts themselves are stable across
    schema versions.
    """
    stats: Dict[str, Dict[str, Any]] = {}
    for event in events:
        run_id = event.get("run_id")
        key = run_id if isinstance(run_id, str) else "?"
        entry = stats.setdefault(
            key, {"schema_version": None, "events": 0, "by_event": {}}
        )
        entry["events"] += 1
        name = event.get("event")
        name = name if isinstance(name, str) else "?"
        entry["by_event"][name] = entry["by_event"].get(name, 0) + 1
        if name == "trace_start" and entry["schema_version"] is None:
            entry["schema_version"] = event.get("schema_version")
        elif name == "cost_summary":
            total_bits = event.get("total_bits")
            if isinstance(total_bits, int):
                entry["cost_bits"] = entry.get("cost_bits", 0) + total_bits
        elif name == "session_start":
            sessions = entry.setdefault(
                "sessions", {"kinds": {}, "steps": 0, "complete": True}
            )
            kind = event.get("kind")
            kind = kind if isinstance(kind, str) else "?"
            sessions["kinds"][kind] = sessions["kinds"].get(kind, 0) + 1
        elif name == "session_end":
            sessions = entry.setdefault(
                "sessions", {"kinds": {}, "steps": 0, "complete": True}
            )
            steps = event.get("steps")
            if isinstance(steps, int):
                sessions["steps"] += steps
            if event.get("complete") is False:
                sessions["complete"] = False
        elif name == "cache":
            cache = entry.setdefault("cache", {"hits": 0, "misses": 0})
            status = event.get("status")
            if status == "hit":
                cache["hits"] += 1
            elif status == "miss":
                cache["misses"] += 1
    return stats
