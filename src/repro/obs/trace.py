"""Structured JSONL run traces.

:mod:`repro.core.tracing` renders executions for humans; this module is
the machine-readable counterpart. A :class:`RunTrace` writes one JSON
object per line -- a ``trace_start`` header carrying the schema version
and run id, then arbitrary events (per-round simulator events, protocol
turns, benchmark milestones), each stamped with a monotonically
increasing sequence number and a wall-clock timestamp.

Line format (schema version 1)::

    {"run_id": "a1b2...", "seq": 0, "ts": 1754464000.123,
     "event": "trace_start", "schema_version": 1}
    {"run_id": "a1b2...", "seq": 1, "ts": ..., "event": "run_start",
     "n": 12, "kt": 0, "bandwidth": 1, "rounds_budget": 4}
    {"run_id": "a1b2...", "seq": 2, "ts": ..., "event": "round",
     "t": 1, "bits": 12, "wall_seconds": 3.1e-05}
    ...

Traces are append-only and valid JSONL at every prefix, so a crashed run
still leaves a parseable record.
"""

from __future__ import annotations

import io
import json
import threading
import time
import uuid
from typing import Any, Dict, List, Optional, TextIO, Union

__all__ = ["TRACE_SCHEMA_VERSION", "RunTrace", "read_trace"]

#: Bump when the line format changes incompatibly.
TRACE_SCHEMA_VERSION = 1


class RunTrace:
    """A thread-safe JSONL event writer bound to one run id.

    Parameters
    ----------
    sink:
        A path (opened for append) or an already-open text stream
        (ownership stays with the caller for streams: ``close()`` only
        closes sinks this writer opened).
    run_id:
        Optional explicit id; defaults to a fresh UUID4 hex string.
    """

    def __init__(self, sink: Union[str, TextIO], run_id: Optional[str] = None):
        self.run_id = run_id if run_id is not None else uuid.uuid4().hex
        self._lock = threading.Lock()
        self._seq = 0
        if isinstance(sink, (str, bytes)):
            self._stream: TextIO = open(sink, "a", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = sink
            self._owns_stream = False
        self._closed = False
        self.emit("trace_start", schema_version=TRACE_SCHEMA_VERSION)

    # ------------------------------------------------------------------
    def emit(self, event: str, **fields: Any) -> Dict[str, Any]:
        """Append one event line; returns the record that was written."""
        with self._lock:
            if self._closed:
                raise ValueError("trace is closed")
            record: Dict[str, Any] = {
                "run_id": self.run_id,
                "seq": self._seq,
                "ts": time.time(),
                "event": event,
            }
            for key, value in fields.items():
                record[key] = _jsonable(value)
            self._seq += 1
            self._stream.write(json.dumps(record, sort_keys=False) + "\n")
            self._stream.flush()
            return record

    @property
    def events_written(self) -> int:
        return self._seq

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._owns_stream:
                self._stream.close()

    def __enter__(self) -> "RunTrace":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def _jsonable(value: Any) -> Any:
    """Coerce a value to something json.dumps accepts (repr fallback)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


def read_trace(source: Union[str, TextIO]) -> List[Dict[str, Any]]:
    """Parse a JSONL trace back into a list of event dicts."""
    if isinstance(source, (str, bytes)):
        with open(source, "r", encoding="utf-8") as handle:
            text = handle.read()
    elif isinstance(source, io.StringIO):
        text = source.getvalue()
    else:
        text = source.read()
    events = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            events.append(json.loads(line))
    return events
