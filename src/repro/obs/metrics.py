"""A tiny, dependency-free, thread-safe metrics registry.

One-round/one-bit accounting is the currency of the broadcast congested
clique literature, so the reproduction carries first-class counters for
it: rounds executed, bits broadcast, instances enumerated per second,
fooled-pair counts, simulation bits per turn. The registry is
deliberately minimal -- four metric kinds, a lock, and JSON-friendly
snapshots -- and is **opt-in**: instrumented code paths look up the
process-wide registry via :func:`get_registry` and skip all bookkeeping
when none is installed, so the disabled path costs a single ``None``
check (the acceptance budget is < 5% overhead on the exhaustive-search
hot loop).

Usage::

    from repro.obs import MetricsRegistry, use_registry

    reg = MetricsRegistry()
    with use_registry(reg):
        run_experiment()            # instrumented code records into reg
    print(reg.to_json())

Snapshots are plain dicts (``{"counters": .., "gauges": ..,
"histograms": ..}``) and merge associatively, so per-shard registries can
be combined after parallel runs.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Mapping, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Timer",
    "get_registry",
    "merge_snapshots",
    "set_registry",
    "use_registry",
]


class Counter:
    """A monotonically increasing count (events, bits, instances)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A last-write-wins instantaneous value (e.g. early-stop round)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value: float = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Streaming summary of a value distribution: count/sum/min/max/mean.

    No buckets and no reservoir -- the quantities the experiments need
    (totals and extremes of per-round timings and per-turn bit counts)
    are all computable in O(1) space, which keeps ``observe`` cheap
    enough for per-round call sites.
    """

    __slots__ = ("name", "_count", "_sum", "_min", "_max", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def summary(self) -> Dict[str, float]:
        with self._lock:
            return {
                "count": self._count,
                "sum": self._sum,
                "min": self._min if self._min is not None else 0.0,
                "max": self._max if self._max is not None else 0.0,
                "mean": self._sum / self._count if self._count else 0.0,
            }


class Timer:
    """Context manager recording elapsed wall seconds into a histogram."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: Histogram):
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._histogram.observe(time.perf_counter() - self._start)


class MetricsRegistry:
    """A named family of metrics with snapshot / merge / JSON export."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- accessors (get-or-create; same name always yields same object) --
    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter(name)
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge(name)
            return metric

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram(name)
            return metric

    def timer(self, name: str) -> Timer:
        """``with registry.timer("x_seconds"): ...`` -> histogram of runs."""
        return Timer(self.histogram(name))

    # -- export ---------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """A JSON-serializable point-in-time copy of every metric."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {name: c.value for name, c in sorted(counters.items())},
            "gauges": {name: g.value for name, g in sorted(gauges.items())},
            "histograms": {
                name: h.summary() for name, h in sorted(histograms.items())
            },
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def merge_snapshot(self, snapshot: Mapping[str, Any]) -> None:
        """Fold another registry's snapshot into this one (associative:
        counters/histogram-sums add, gauges last-write-wins, extremes
        widen)."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, summary in snapshot.get("histograms", {}).items():
            hist = self.histogram(name)
            count = int(summary.get("count", 0))
            if count == 0:
                continue
            with hist._lock:
                hist._count += count
                hist._sum += summary.get("sum", 0.0)
                for bound, better in (("min", min), ("max", max)):
                    incoming = summary.get(bound)
                    current = getattr(hist, f"_{bound}")
                    setattr(
                        hist,
                        f"_{bound}",
                        incoming if current is None else better(current, incoming),
                    )

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


def merge_snapshots(*snapshots: Mapping[str, Any]) -> Dict[str, Any]:
    """Merge snapshot dicts (e.g. from parallel shards) into one."""
    merged = MetricsRegistry()
    for snap in snapshots:
        merged.merge_snapshot(snap)
    return merged.snapshot()


# ----------------------------------------------------------------------
# the process-wide opt-in registry
# ----------------------------------------------------------------------
_active_registry: Optional[MetricsRegistry] = None
_active_lock = threading.Lock()


def get_registry() -> Optional[MetricsRegistry]:
    """The currently installed registry, or None when metrics are off.

    Instrumented call sites hold the result in a local and guard every
    recording with ``if metrics is not None`` -- the entire disabled-path
    cost.
    """
    return _active_registry


def set_registry(registry: Optional[MetricsRegistry]) -> Optional[MetricsRegistry]:
    """Install (or, with None, remove) the process-wide registry.

    Returns the previously installed registry so callers can restore it.
    """
    global _active_registry
    with _active_lock:
        previous = _active_registry
        _active_registry = registry
    return previous


@contextmanager
def use_registry(registry: Optional[MetricsRegistry]) -> Iterator[Optional[MetricsRegistry]]:
    """Scoped :func:`set_registry`: install for the block, then restore."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
