"""A tiny, dependency-free, thread-safe metrics registry.

One-round/one-bit accounting is the currency of the broadcast congested
clique literature, so the reproduction carries first-class counters for
it: rounds executed, bits broadcast, instances enumerated per second,
fooled-pair counts, simulation bits per turn. The registry is
deliberately minimal -- four metric kinds, a lock, and JSON-friendly
snapshots -- and is **opt-in**: instrumented code paths look up the
process-wide registry via :func:`get_registry` and skip all bookkeeping
when none is installed, so the disabled path costs a single ``None``
check (the acceptance budget is < 5% overhead on the exhaustive-search
hot loop).

Usage::

    from repro.obs import MetricsRegistry, use_registry

    reg = MetricsRegistry()
    with use_registry(reg):
        run_experiment()            # instrumented code records into reg
    print(reg.to_json())

Snapshots are plain dicts (``{"counters": .., "gauges": ..,
"histograms": ..}``) and merge associatively, so per-shard registries can
be combined after parallel runs.
"""

from __future__ import annotations

import json
import math
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Mapping, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Timer",
    "get_registry",
    "merge_snapshots",
    "set_registry",
    "use_registry",
]


class Counter:
    """A monotonically increasing count (events, bits, instances)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A last-write-wins instantaneous value (e.g. early-stop round)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value: float = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Streaming summary of a value distribution, with tail percentiles.

    Count/sum/min/max/mean are maintained in O(1) space. For p50/p90/p99
    the histogram **retains the first** ``sample_cap`` **observations**
    (default :data:`DEFAULT_SAMPLE_CAP` = 4096, bounding memory at
    ~32 KiB per histogram) and reports exact nearest-rank percentiles
    over them: p is the smallest value with at least ``ceil(p/100 * n)``
    values at or below it.

    Past the cap, percentiles are **no longer truncated to the retained
    prefix** (that was a silent bias: a stream whose tail drifts after
    sample 4096 reported stale p99s). Instead the histogram routes the
    full stream -- the retained prefix plus every later finite
    observation -- through a
    :class:`repro.obs.sketches.QuantileSketch`, so p50/p90/p99 describe
    **all** observations: exact nearest-rank up to the cap, fixed-log-bin
    estimates (within ~1.6% relative, clamped to the exact min/max)
    beyond it. In sketch mode ``percentile_samples`` reports the full
    observation count the percentiles describe, not the prefix length.
    Non-finite observations (inf/nan) still update count/sum but are
    excluded from percentile estimation. A ``sample_cap`` of 0 disables
    percentile tracking entirely (mean fallback), as before.

    Histograms reconstructed purely by snapshot *merging* carry no
    retained samples; their percentile fields fall back to the merged
    mean (and ``percentile_samples`` reports 0).
    """

    __slots__ = (
        "name",
        "_count",
        "_sum",
        "_min",
        "_max",
        "_samples",
        "_cap",
        "_sketch",
        "_lock",
    )

    #: Retained-sample cap bounding percentile memory (see class docs).
    DEFAULT_SAMPLE_CAP = 4096

    def __init__(self, name: str, sample_cap: Optional[int] = None):
        if sample_cap is not None and sample_cap < 0:
            raise ValueError(f"sample_cap must be >= 0, got {sample_cap}")
        self.name = name
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._samples: List[float] = []
        self._cap = self.DEFAULT_SAMPLE_CAP if sample_cap is None else sample_cap
        self._sketch: Optional[Any] = None  # QuantileSketch once the cap overflows
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
            if len(self._samples) < self._cap:
                self._samples.append(value)
            elif self._cap > 0 and math.isfinite(value):
                if self._sketch is None:
                    # first overflow: seed the sketch with the retained
                    # prefix so it describes the whole stream
                    from repro.obs.sketches import QuantileSketch

                    sketch = QuantileSketch(cap=self._cap)
                    for retained in self._samples:
                        if math.isfinite(retained):
                            sketch.update(retained)
                    self._sketch = sketch
                self._sketch.update(value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile over the whole stream.

        Exact over the retained samples until the cap overflows, a
        quantile-sketch estimate over all observations after. Falls back
        to the mean when nothing is tracked (empty histogram, cap 0, or
        one rebuilt purely from snapshot merging).
        """
        if not 0 < p <= 100:
            raise ValueError(f"percentile must be in (0, 100], got {p}")
        with self._lock:
            return self._percentile_locked(p)

    def _percentile_locked(self, p: float) -> float:
        if self._sketch is not None:
            estimate = self._sketch.quantile(p)
            if estimate is not None:
                return estimate
        if not self._samples:
            return self._sum / self._count if self._count else 0.0
        ordered = sorted(self._samples)
        rank = math.ceil(p / 100.0 * len(ordered))  # nearest-rank, 1-based
        return ordered[max(0, rank - 1)]

    def summary(self) -> Dict[str, float]:
        with self._lock:
            if self._sketch is not None:
                percentile_samples = self._sketch.count
            else:
                percentile_samples = len(self._samples)
            return {
                "count": self._count,
                "sum": self._sum,
                "min": self._min if self._min is not None else 0.0,
                "max": self._max if self._max is not None else 0.0,
                "mean": self._sum / self._count if self._count else 0.0,
                "p50": self._percentile_locked(50),
                "p90": self._percentile_locked(90),
                "p99": self._percentile_locked(99),
                "percentile_samples": percentile_samples,
            }


class Timer:
    """Context manager recording elapsed wall seconds into a histogram.

    The elapsed time is recorded **even when the body raises** -- failed
    runs must still show up in latency histograms, otherwise the tail a
    crash sits in simply vanishes from the profile. The exception is
    never suppressed. Exiting a timer that was never entered is a
    programming error and raises ``RuntimeError`` (previously it would
    have recorded a garbage ``perf_counter() - 0.0`` latency).
    """

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: Histogram):
        self._histogram = histogram
        self._start: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        if self._start is None:
            raise RuntimeError("Timer exited without being entered")
        elapsed = time.perf_counter() - self._start
        self._start = None
        self._histogram.observe(elapsed)
        return False  # record on the exception path, but never swallow it


class MetricsRegistry:
    """A named family of metrics with snapshot / merge / JSON export."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- accessors (get-or-create; same name always yields same object) --
    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter(name)
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge(name)
            return metric

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram(name)
            return metric

    def timer(self, name: str) -> Timer:
        """``with registry.timer("x_seconds"): ...`` -> histogram of runs."""
        return Timer(self.histogram(name))

    # -- export ---------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """A JSON-serializable point-in-time copy of every metric."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {name: c.value for name, c in sorted(counters.items())},
            "gauges": {name: g.value for name, g in sorted(gauges.items())},
            "histograms": {
                name: h.summary() for name, h in sorted(histograms.items())
            },
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def _check_kind(self, name: str, kind: str) -> None:
        """Reject a metric name already registered under another kind."""
        with self._lock:
            existing = None
            if kind != "counter" and name in self._counters:
                existing = "counter"
            elif kind != "gauge" and name in self._gauges:
                existing = "gauge"
            elif kind != "histogram" and name in self._histograms:
                existing = "histogram"
        if existing is not None:
            raise ValueError(
                f"metric kind mismatch for {name!r}: snapshot says {kind}, "
                f"registry already holds a {existing}"
            )

    def merge_snapshot(self, snapshot: Mapping[str, Any]) -> None:
        """Fold another registry's snapshot into this one (associative:
        counters/histogram-sums add, gauges last-write-wins, extremes
        widen).

        Raises ``ValueError`` when the snapshot disagrees with this
        registry about a metric's *kind* (the same name appearing as,
        say, a counter here and a histogram there), or when a snapshot
        value has the wrong shape for its section -- silently folding
        mismatched kinds would corrupt both series.

        Merged histograms carry no retained percentile samples, so
        their p50/p90/p99 fall back to the merged mean (see
        :class:`Histogram`).
        """
        for name, value in snapshot.get("counters", {}).items():
            if isinstance(value, bool) or not isinstance(value, int):
                raise ValueError(
                    f"metric kind mismatch for {name!r}: counter value is "
                    f"{type(value).__name__}, expected int"
                )
            self._check_kind(name, "counter")
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError(
                    f"metric kind mismatch for {name!r}: gauge value is "
                    f"{type(value).__name__}, expected number"
                )
            self._check_kind(name, "gauge")
            self.gauge(name).set(value)
        for name, summary in snapshot.get("histograms", {}).items():
            if not isinstance(summary, Mapping):
                raise ValueError(
                    f"metric kind mismatch for {name!r}: histogram summary is "
                    f"{type(summary).__name__}, expected object"
                )
            self._check_kind(name, "histogram")
            hist = self.histogram(name)
            count = int(summary.get("count", 0))
            if count == 0:
                continue
            with hist._lock:
                hist._count += count
                hist._sum += summary.get("sum", 0.0)
                for bound, better in (("min", min), ("max", max)):
                    incoming = summary.get(bound)
                    current = getattr(hist, f"_{bound}")
                    setattr(
                        hist,
                        f"_{bound}",
                        incoming if current is None else better(current, incoming),
                    )

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


def merge_snapshots(*snapshots: Mapping[str, Any]) -> Dict[str, Any]:
    """Merge snapshot dicts (e.g. from parallel shards) into one."""
    merged = MetricsRegistry()
    for snap in snapshots:
        merged.merge_snapshot(snap)
    return merged.snapshot()


# ----------------------------------------------------------------------
# the process-wide opt-in registry
# ----------------------------------------------------------------------
_active_registry: Optional[MetricsRegistry] = None
_active_lock = threading.Lock()


def get_registry() -> Optional[MetricsRegistry]:
    """The currently installed registry, or None when metrics are off.

    Instrumented call sites hold the result in a local and guard every
    recording with ``if metrics is not None`` -- the entire disabled-path
    cost.
    """
    return _active_registry


def set_registry(registry: Optional[MetricsRegistry]) -> Optional[MetricsRegistry]:
    """Install (or, with None, remove) the process-wide registry.

    Returns the previously installed registry so callers can restore it.
    """
    global _active_registry
    with _active_lock:
        previous = _active_registry
        _active_registry = registry
    return previous


@contextmanager
def use_registry(registry: Optional[MetricsRegistry]) -> Iterator[Optional[MetricsRegistry]]:
    """Scoped :func:`set_registry`: install for the block, then restore."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
