"""The ``BENCH_<name>.json`` payload schema, with a validator.

Schema version 1 (all keys required unless marked optional)::

    {
      "schema_version": 1,
      "name": "crossing",                  # harness benchmark name
      "description": "...",                # one line, human readable
      "created_unix": 1754464000.1,        # wall-clock write time
      "quick": false,                      # which parameter set ran
      "params": {"n": 32, "rounds": 8},    # exact parameters used
      "wall_time_seconds": 0.123,          # end-to-end harness timing
      "measured": {...},                   # measured quantities
      "predicted": {...},                  # paper-predicted counterparts
      "ok": true,                          # measured respects predicted
      "metrics": {                         # MetricsRegistry.snapshot()
        "counters": {"simulator.rounds_executed": 10, ...},
        "gauges": {...},
        "histograms": {"simulator.round_seconds": {"count": ..}, ...}
      },
      "costs": {                           # optional: CostLedger.summary()
        "total_bits": 120,                 # measured communication, in bits
        "rounds": 15,                      # highest ledgered round index
        "per_vertex": [{"vertex": "0", "bits": 15, "silent_rounds": 0}, ...],
        "per_phase": {"broadcast": 120}
      }
    }

The ``costs`` section is optional -- payloads written before the cost
ledger existed (or by harnesses that ran without one) still validate.

The validator is deliberately hand-rolled (no jsonschema dependency) and
is shared by the unit tests, the CI smoke job, and ``repro.cli report``.
"""

from __future__ import annotations

from typing import Any, List, Mapping

__all__ = ["BENCH_SCHEMA_VERSION", "validate_bench_payload"]

#: Bump when BENCH_*.json changes incompatibly.
BENCH_SCHEMA_VERSION = 1

_NUMERIC = (int, float)

_REQUIRED_FIELDS = {
    "schema_version": int,
    "name": str,
    "description": str,
    "created_unix": _NUMERIC,
    "quick": bool,
    "params": dict,
    "wall_time_seconds": _NUMERIC,
    "measured": dict,
    "predicted": dict,
    "ok": bool,
    "metrics": dict,
}

_HISTOGRAM_FIELDS = ("count", "sum", "min", "max", "mean")

#: Added by the percentile-capable Histogram; optional so payloads
#: written before percentiles existed still validate as schema v1.
_HISTOGRAM_OPTIONAL_FIELDS = ("p50", "p90", "p99", "percentile_samples")


def validate_bench_payload(payload: Mapping[str, Any]) -> List[str]:
    """Return a list of schema violations (empty = valid).

    Checks structure and types, not values: a failing benchmark with
    ``ok: false`` is still a *valid* payload.
    """
    problems: List[str] = []
    if not isinstance(payload, Mapping):
        return [f"payload is {type(payload).__name__}, expected object"]

    for field, expected in _REQUIRED_FIELDS.items():
        if field not in payload:
            problems.append(f"missing required field {field!r}")
            continue
        value = payload[field]
        # bool is an int subclass; schema_version must be a real int
        if expected is int and isinstance(value, bool):
            problems.append(f"field {field!r} must be an integer, got bool")
        elif not isinstance(value, expected):
            problems.append(
                f"field {field!r} has type {type(value).__name__}"
            )

    if isinstance(payload.get("schema_version"), int) and not isinstance(
        payload.get("schema_version"), bool
    ):
        if payload["schema_version"] > BENCH_SCHEMA_VERSION:
            problems.append(
                f"schema_version {payload['schema_version']} is newer than "
                f"supported version {BENCH_SCHEMA_VERSION}"
            )
        elif payload["schema_version"] < 1:
            problems.append("schema_version must be >= 1")

    metrics = payload.get("metrics")
    if isinstance(metrics, Mapping):
        for section in ("counters", "gauges", "histograms"):
            if section not in metrics:
                problems.append(f"metrics missing section {section!r}")
            elif not isinstance(metrics[section], Mapping):
                problems.append(f"metrics section {section!r} is not an object")
        counters = metrics.get("counters")
        if isinstance(counters, Mapping):
            for name, value in counters.items():
                if isinstance(value, bool) or not isinstance(value, int):
                    problems.append(f"counter {name!r} is not an integer")
        gauges = metrics.get("gauges")
        if isinstance(gauges, Mapping):
            for name, value in gauges.items():
                if isinstance(value, bool) or not isinstance(value, _NUMERIC):
                    problems.append(f"gauge {name!r} is not numeric")
        histograms = metrics.get("histograms")
        if isinstance(histograms, Mapping):
            for name, summary in histograms.items():
                if not isinstance(summary, Mapping):
                    problems.append(f"histogram {name!r} is not an object")
                    continue
                for field in _HISTOGRAM_FIELDS:
                    value = summary.get(field)
                    if isinstance(value, bool) or not isinstance(value, _NUMERIC):
                        problems.append(
                            f"histogram {name!r} field {field!r} is not numeric"
                        )
                for field in _HISTOGRAM_OPTIONAL_FIELDS:
                    if field not in summary:
                        continue  # pre-percentile payloads stay valid
                    value = summary.get(field)
                    if isinstance(value, bool) or not isinstance(value, _NUMERIC):
                        problems.append(
                            f"histogram {name!r} field {field!r} is not numeric"
                        )

    if "costs" in payload:
        costs = payload["costs"]
        if not isinstance(costs, Mapping):
            problems.append("costs section is not an object")
        else:
            for field in ("total_bits", "rounds"):
                value = costs.get(field)
                if isinstance(value, bool) or not isinstance(value, int):
                    problems.append(f"costs field {field!r} is not an integer")
            per_vertex = costs.get("per_vertex")
            if per_vertex is not None:
                if not isinstance(per_vertex, list):
                    problems.append("costs field 'per_vertex' is not a list")
                else:
                    for slot, entry in enumerate(per_vertex):
                        if not isinstance(entry, Mapping):
                            problems.append(
                                f"costs per_vertex[{slot}] is not an object"
                            )
                            continue
                        if not isinstance(entry.get("vertex"), str):
                            problems.append(
                                f"costs per_vertex[{slot}] vertex is not str"
                            )
                        for field in ("bits", "silent_rounds"):
                            value = entry.get(field)
                            if isinstance(value, bool) or not isinstance(
                                value, int
                            ):
                                problems.append(
                                    f"costs per_vertex[{slot}] field "
                                    f"{field!r} is not int"
                                )
            per_phase = costs.get("per_phase")
            if per_phase is not None:
                if not isinstance(per_phase, Mapping):
                    problems.append("costs field 'per_phase' is not an object")
                else:
                    for phase, value in per_phase.items():
                        if isinstance(value, bool) or not isinstance(value, int):
                            problems.append(
                                f"costs per_phase[{phase!r}] is not an integer"
                            )

    return problems
