"""A small, dependency-free undirected graph type.

The library deliberately carries its own graph substrate instead of relying
on an external package: the crossing and enumeration machinery needs precise
control over edge identity (ordered endpoint pairs versus unordered edges)
and the instance spaces enumerated by the lower-bound engines are built from
these graphs in tight loops.

Vertices are arbitrary hashable objects; in most of the library they are the
integers ``0 .. n-1`` (vertex *indices* of a BCC instance, as opposed to the
instance's vertex *IDs*).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Set, Tuple

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]


def normalize_edge(u: Vertex, v: Vertex) -> Edge:
    """Return the canonical (sorted) form of the undirected edge ``{u, v}``.

    Raises ``ValueError`` on self-loops, which never occur in the paper's
    input graphs and would break the crossing machinery.
    """
    if u == v:
        raise ValueError(f"self-loop at vertex {u!r} is not allowed")
    try:
        return (u, v) if u <= v else (v, u)  # type: ignore[operator]
    except TypeError:
        return (u, v) if repr(u) <= repr(v) else (v, u)


class Graph:
    """An undirected simple graph with set-based adjacency.

    The class supports exactly the operations the library needs: edge and
    vertex queries, degree, neighbor iteration, connected components (via
    :mod:`repro.graphs.components`), and structural predicates used by the
    cycle-instance machinery.
    """

    __slots__ = ("_adj",)

    def __init__(self, vertices: Iterable[Vertex] = (), edges: Iterable[Edge] = ()):
        self._adj: Dict[Vertex, Set[Vertex]] = {}
        for v in vertices:
            self.add_vertex(v)
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_vertex(self, v: Vertex) -> None:
        """Add an isolated vertex (no-op if already present)."""
        self._adj.setdefault(v, set())

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Add the undirected edge ``{u, v}``, creating endpoints as needed."""
        if u == v:
            raise ValueError(f"self-loop at vertex {u!r} is not allowed")
        self._adj.setdefault(u, set()).add(v)
        self._adj.setdefault(v, set()).add(u)

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove the undirected edge ``{u, v}``; KeyError if absent."""
        try:
            self._adj[u].remove(v)
            self._adj[v].remove(u)
        except KeyError as exc:
            raise KeyError(f"edge {{{u!r}, {v!r}}} not in graph") from exc

    def copy(self) -> "Graph":
        """Return a deep copy of this graph."""
        g = Graph()
        g._adj = {v: set(nbrs) for v, nbrs in self._adj.items()}
        return g

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def vertex_count(self) -> int:
        return len(self._adj)

    @property
    def edge_count(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def vertices(self) -> Iterator[Vertex]:
        return iter(self._adj)

    def edges(self) -> Iterator[Edge]:
        """Iterate over edges, each reported once in canonical order."""
        seen: Set[FrozenSet[Vertex]] = set()
        for u, nbrs in self._adj.items():
            for v in nbrs:
                key = frozenset((u, v))
                if key not in seen:
                    seen.add(key)
                    yield (u, v)

    def has_vertex(self, v: Vertex) -> bool:
        return v in self._adj

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        return u in self._adj and v in self._adj[u]

    def neighbors(self, v: Vertex) -> Set[Vertex]:
        """Return a *copy* of the neighbor set of ``v``."""
        return set(self._adj[v])

    def degree(self, v: Vertex) -> int:
        return len(self._adj[v])

    def max_degree(self) -> int:
        return max((len(nbrs) for nbrs in self._adj.values()), default=0)

    def is_regular(self, d: int) -> bool:
        """True iff every vertex has degree exactly ``d``."""
        return all(len(nbrs) == d for nbrs in self._adj.values())

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def connected_components(self) -> List[Set[Vertex]]:
        """Return the connected components as a list of vertex sets.

        Uses iterative DFS so that very long cycles (the common case in this
        library) do not hit the recursion limit.
        """
        seen: Set[Vertex] = set()
        components: List[Set[Vertex]] = []
        for start in self._adj:
            if start in seen:
                continue
            comp: Set[Vertex] = set()
            stack = [start]
            while stack:
                v = stack.pop()
                if v in comp:
                    continue
                comp.add(v)
                stack.extend(self._adj[v] - comp)
            seen |= comp
            components.append(comp)
        return components

    def is_connected(self) -> bool:
        """True iff the graph has at most one connected component."""
        if not self._adj:
            return True
        return len(self.connected_components()) == 1

    def is_disjoint_union_of_cycles(self) -> bool:
        """True iff every vertex has degree 2 (a 2-regular graph is exactly
        a disjoint union of simple cycles)."""
        return self.vertex_count >= 3 and self.is_regular(2)

    def cycle_decomposition(self) -> List[List[Vertex]]:
        """Decompose a 2-regular graph into its cycles.

        Each cycle is returned as a list of vertices in traversal order
        (starting at the minimum-``repr`` vertex of the cycle, direction
        chosen toward its smaller neighbor so the output is canonical for
        integer vertices). Raises ``ValueError`` if the graph is not
        2-regular.
        """
        if not self.is_regular(2):
            raise ValueError("cycle decomposition requires a 2-regular graph")
        remaining: Set[Vertex] = set(self._adj)
        cycles: List[List[Vertex]] = []
        while remaining:
            start = min(remaining, key=repr)
            cycle = [start]
            prev = start
            cur = min(self._adj[start], key=repr)
            while cur != start:
                cycle.append(cur)
                nxt = next(iter(self._adj[cur] - {prev}))
                prev, cur = cur, nxt
            remaining -= set(cycle)
            cycles.append(cycle)
        return cycles

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __contains__(self, v: Vertex) -> bool:
        return v in self._adj

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adj == other._adj

    def __hash__(self):  # pragma: no cover - graphs are mutable
        raise TypeError("Graph objects are mutable and unhashable")

    def __repr__(self) -> str:
        return f"Graph(n={self.vertex_count}, m={self.edge_count})"

    def edge_set(self) -> FrozenSet[FrozenSet[Vertex]]:
        """Return the edge set as a hashable frozenset of frozensets."""
        return frozenset(frozenset(e) for e in self.edges())
