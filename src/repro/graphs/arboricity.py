"""Arboricity bounds and greedy forest decompositions.

The paper's tightness remark ("our lower bounds are tight for uniformly
sparse graphs") is about graphs of constant arboricity. This module provides
(i) the Nash-Williams density lower bound on arboricity, (ii) a greedy
forest decomposition whose size upper-bounds arboricity, and (iii) a
degeneracy computation; ``degeneracy`` and ``2 * arboricity`` sandwich each
other, which the tests exploit.
"""

from __future__ import annotations

import math
from typing import Dict, List, Set, Tuple

from repro.graphs.components import UnionFind
from repro.graphs.graph import Graph, Vertex


def nash_williams_lower_bound(graph: Graph) -> int:
    """Nash-Williams density bound: arboricity >= ceil(m / (n - 1)).

    This is the whole-graph specialization of the Nash-Williams formula
    max over subgraphs H of ceil(m_H / (n_H - 1)); it is cheap and exact on
    the dense-core-free graphs used in this library's benchmarks.
    """
    n = graph.vertex_count
    m = graph.edge_count
    if n <= 1 or m == 0:
        return 0 if m == 0 else 1
    return math.ceil(m / (n - 1))


def greedy_forest_decomposition(graph: Graph) -> List[List[Tuple[Vertex, Vertex]]]:
    """Partition the edges into forests greedily.

    Each edge is inserted into the first forest in which it does not close a
    cycle (tracked by a union-find per forest). The number of forests
    produced upper-bounds the arboricity within a factor of 2 in the worst
    case and is typically exact on random sparse graphs.
    """
    forests: List[List[Tuple[Vertex, Vertex]]] = []
    finders: List[UnionFind] = []
    for u, v in sorted(graph.edges(), key=repr):
        placed = False
        for forest, uf in zip(forests, finders):
            uf.add(u)
            uf.add(v)
            if not uf.connected(u, v):
                uf.union(u, v)
                forest.append((u, v))
                placed = True
                break
        if not placed:
            uf = UnionFind([u, v])
            uf.union(u, v)
            finders.append(uf)
            forests.append([(u, v)])
    return forests


def arboricity_upper_bound(graph: Graph) -> int:
    """Number of forests used by the greedy decomposition."""
    return len(greedy_forest_decomposition(graph))


def degeneracy(graph: Graph) -> int:
    """The degeneracy (smallest d such that every subgraph has a vertex of
    degree <= d), computed by repeated minimum-degree peeling.

    For any graph, ``arboricity <= degeneracy <= 2 * arboricity - 1``,
    so degeneracy certifies "uniformly sparse" up to a factor of 2.
    """
    degrees: Dict[Vertex, int] = {v: graph.degree(v) for v in graph.vertices()}
    adj: Dict[Vertex, Set[Vertex]] = {v: graph.neighbors(v) for v in graph.vertices()}
    removed: Set[Vertex] = set()
    best = 0
    while len(removed) < graph.vertex_count:
        v = min((x for x in degrees if x not in removed), key=lambda x: degrees[x])
        best = max(best, degrees[v])
        removed.add(v)
        for u in adj[v]:
            if u not in removed:
                degrees[u] -= 1
    return best


def is_uniformly_sparse(graph: Graph, arboricity_bound: int) -> bool:
    """True if the greedy decomposition certifies arboricity <= bound."""
    return arboricity_upper_bound(graph) <= arboricity_bound
