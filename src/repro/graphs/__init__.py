"""Graph substrate: graph type, components, generators, arboricity tools."""

from repro.graphs.arboricity import (
    arboricity_upper_bound,
    degeneracy,
    greedy_forest_decomposition,
    is_uniformly_sparse,
    nash_williams_lower_bound,
)
from repro.graphs.components import (
    UnionFind,
    component_labels,
    components_from_edges,
    labels_agree_with_components,
)
from repro.graphs.generators import (
    bounded_arboricity_graph,
    complete_graph,
    cycle_graph,
    empty_graph,
    gnp_random_graph,
    one_cycle,
    path_graph,
    random_cycle,
    random_forest,
    random_union_of_cycles,
    two_cycles,
    union_of_cycles,
)
from repro.graphs.graph import Edge, Graph, Vertex, normalize_edge
from repro.graphs.mst import (
    WeightMap,
    forest_weight,
    is_spanning_forest,
    kruskal,
    random_weights,
    validate_weights,
)

__all__ = [
    "Edge",
    "Graph",
    "UnionFind",
    "Vertex",
    "WeightMap",
    "arboricity_upper_bound",
    "bounded_arboricity_graph",
    "complete_graph",
    "component_labels",
    "components_from_edges",
    "cycle_graph",
    "degeneracy",
    "empty_graph",
    "forest_weight",
    "gnp_random_graph",
    "is_spanning_forest",
    "kruskal",
    "greedy_forest_decomposition",
    "is_uniformly_sparse",
    "labels_agree_with_components",
    "nash_williams_lower_bound",
    "normalize_edge",
    "one_cycle",
    "path_graph",
    "random_cycle",
    "random_forest",
    "random_union_of_cycles",
    "random_weights",
    "validate_weights",
    "two_cycles",
    "union_of_cycles",
]
