"""Graph generators for the instance families used throughout the paper.

The lower bounds all live on 2-regular inputs (single cycles, pairs of
cycles, unions of cycles), while the upper-bound comparators are exercised
on richer families (Erdos-Renyi, random forests, bounded-arboricity
layerings). Every generator returns a :class:`repro.graphs.graph.Graph`
over the vertex indices ``0 .. n-1``.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence

from repro.graphs.graph import Graph


def cycle_graph(vertices: Sequence[int]) -> Graph:
    """The simple cycle visiting ``vertices`` in the given order.

    Requires at least 3 distinct vertices (the paper's cycles all have
    length >= 3; shorter "cycles" would be multi-edges).
    """
    if len(vertices) < 3:
        raise ValueError(f"a cycle needs >= 3 vertices, got {len(vertices)}")
    if len(set(vertices)) != len(vertices):
        raise ValueError("cycle vertices must be distinct")
    g = Graph(vertices)
    for i, u in enumerate(vertices):
        g.add_edge(u, vertices[(i + 1) % len(vertices)])
    return g


def union_of_cycles(cycles: Iterable[Sequence[int]]) -> Graph:
    """Disjoint union of cycles, each given as an ordered vertex sequence."""
    g = Graph()
    seen: set = set()
    for cyc in cycles:
        overlap = seen.intersection(cyc)
        if overlap:
            raise ValueError(f"cycles are not disjoint; shared vertices {sorted(overlap)}")
        seen.update(cyc)
        sub = cycle_graph(cyc)
        for v in sub.vertices():
            g.add_vertex(v)
        for u, v in sub.edges():
            g.add_edge(u, v)
    return g


def one_cycle(n: int) -> Graph:
    """The canonical single n-cycle 0-1-2-...-(n-1)-0."""
    return cycle_graph(list(range(n)))


def two_cycles(n: int, split: int) -> Graph:
    """Two disjoint cycles on ``0..split-1`` and ``split..n-1``.

    Both cycles must have length >= 3, matching the TwoCycle promise.
    """
    if not (3 <= split <= n - 3):
        raise ValueError(f"split={split} must leave cycles of length >= 3 (n={n})")
    return union_of_cycles([list(range(split)), list(range(split, n))])


def random_cycle(n: int, rng: random.Random) -> Graph:
    """A uniformly random Hamiltonian cycle on ``0..n-1``."""
    order = list(range(n))
    rng.shuffle(order)
    return cycle_graph(order)


def random_union_of_cycles(n: int, num_cycles: int, rng: random.Random) -> Graph:
    """A random disjoint union of ``num_cycles`` cycles covering ``0..n-1``.

    Cycle lengths are chosen uniformly among compositions of ``n`` into
    ``num_cycles`` parts, each part >= 3 (the MultiCycle promise uses
    length >= 4; pass the result through a verifier if that matters).
    """
    if num_cycles * 3 > n:
        raise ValueError(f"cannot fit {num_cycles} cycles of length >= 3 in {n} vertices")
    # random composition with all parts >= 3: distribute the surplus
    surplus = n - 3 * num_cycles
    cuts = sorted(rng.randint(0, surplus) for _ in range(num_cycles - 1))
    parts = []
    prev = 0
    for c in cuts:
        parts.append(3 + c - prev)
        prev = c
    parts.append(3 + surplus - prev)
    order = list(range(n))
    rng.shuffle(order)
    cycles: List[Sequence[int]] = []
    pos = 0
    for p in parts:
        cycles.append(order[pos : pos + p])
        pos += p
    return union_of_cycles(cycles)


def gnp_random_graph(n: int, p: float, rng: random.Random) -> Graph:
    """Erdos-Renyi G(n, p) on vertex indices ``0..n-1``."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"edge probability must be in [0, 1], got {p}")
    g = Graph(range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                g.add_edge(u, v)
    return g


def random_forest(n: int, tree_count: int, rng: random.Random) -> Graph:
    """A random forest on ``0..n-1`` with exactly ``tree_count`` trees.

    Built by a random-attachment process: vertices are shuffled, the first
    ``tree_count`` become roots, and every later vertex attaches to a
    uniformly random earlier vertex of a uniformly chosen tree.
    """
    if not 1 <= tree_count <= n:
        raise ValueError(f"tree_count must be in [1, {n}], got {tree_count}")
    order = list(range(n))
    rng.shuffle(order)
    g = Graph(range(n))
    trees: List[List[int]] = [[r] for r in order[:tree_count]]
    for v in order[tree_count:]:
        tree = rng.choice(trees)
        parent = rng.choice(tree)
        g.add_edge(v, parent)
        tree.append(v)
    return g


def bounded_arboricity_graph(n: int, arboricity: int, rng: random.Random) -> Graph:
    """Union of ``arboricity`` random spanning forests: arboricity <= given.

    This is the uniformly sparse family for which the paper notes its
    Omega(log n) lower bound is *tight* (via the deterministic sketching
    upper bound of Montealegre and Todinca).
    """
    if arboricity < 1:
        raise ValueError("arboricity must be >= 1")
    g = Graph(range(n))
    for _ in range(arboricity):
        f = random_forest(n, max(1, n // 10), rng)
        for u, v in f.edges():
            g.add_edge(u, v)
    return g


def path_graph(n: int) -> Graph:
    """The path 0-1-...-(n-1); a convenient connected non-cycle baseline."""
    g = Graph(range(n))
    for i in range(n - 1):
        g.add_edge(i, i + 1)
    return g


def empty_graph(n: int) -> Graph:
    """n isolated vertices (the maximally disconnected input)."""
    return Graph(range(n))


def complete_graph(n: int) -> Graph:
    """The complete graph K_n (used for K4-detection style discussions)."""
    g = Graph(range(n))
    for u in range(n):
        for v in range(u + 1, n):
            g.add_edge(u, v)
    return g
