"""Minimum spanning trees / forests on the graph substrate.

MST is the companion problem throughout the paper's context (the O(1) CC
upper bounds it contrasts with, and the MST-verification proof-labeling
schemes of Section 1.3). This module provides the sequential ground truth
-- Kruskal over the union-find substrate -- against which the distributed
Boruvka MST of :mod:`repro.algorithms.mst` is verified.

Weights are arbitrary comparable values; ties are broken by the canonical
edge, which makes the MST unique for any weight assignment and keeps the
distributed and sequential computations comparable edge-by-edge.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.graphs.components import UnionFind
from repro.graphs.graph import Graph, Vertex

#: Edge weights keyed by canonical (u, v) with u < v.
WeightMap = Dict[Tuple[Vertex, Vertex], float]


def _canonical(u: Vertex, v: Vertex) -> Tuple[Vertex, Vertex]:
    return (u, v) if u <= v else (v, u)  # type: ignore[operator]


def validate_weights(graph: Graph, weights: WeightMap) -> None:
    """Every edge must carry a weight; extra weights are rejected."""
    edges = {_canonical(u, v) for u, v in graph.edges()}
    keyed = set(weights)
    if keyed != edges:
        missing = edges - keyed
        extra = keyed - edges
        raise ValueError(
            f"weight map mismatch; missing={sorted(missing)[:3]}, extra={sorted(extra)[:3]}"
        )


def kruskal(graph: Graph, weights: WeightMap) -> Set[Tuple[Vertex, Vertex]]:
    """The minimum spanning forest, as a set of canonical edges.

    Deterministic tie-breaking by (weight, edge), so the result is the
    unique MSF under the induced total order on edges.
    """
    validate_weights(graph, weights)
    uf = UnionFind(graph.vertices())
    forest: Set[Tuple[Vertex, Vertex]] = set()
    for edge in sorted(weights, key=lambda e: (weights[e], e)):
        u, v = edge
        if uf.union(u, v):
            forest.add(edge)
    return forest


def forest_weight(forest: Iterable[Tuple[Vertex, Vertex]], weights: WeightMap) -> float:
    """Total weight of an edge set."""
    return sum(weights[_canonical(u, v)] for u, v in forest)


def is_spanning_forest(graph: Graph, edges: Set[Tuple[Vertex, Vertex]]) -> bool:
    """Acyclic, contained in the graph, and connecting each component."""
    uf = UnionFind(graph.vertices())
    for u, v in edges:
        if not graph.has_edge(u, v):
            return False
        if not uf.union(u, v):
            return False  # cycle
    return uf.component_count() == len(graph.connected_components())


def random_weights(graph: Graph, rng) -> WeightMap:
    """Distinct pseudorandom weights on every edge (a common MST input)."""
    edges = sorted(_canonical(u, v) for u, v in graph.edges())
    order = list(range(len(edges)))
    rng.shuffle(order)
    return {e: float(w) for e, w in zip(edges, order)}
