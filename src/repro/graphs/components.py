"""Union-find (disjoint set union) and component labelling.

The BCC upper-bound algorithms and the verifiers for the
ConnectedComponents problem both need fast incremental component tracking;
this module provides a classic union-by-size + path-halving implementation
together with helpers for turning component structure into canonical labels.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Set

from repro.graphs.graph import Graph, Vertex


class UnionFind:
    """Disjoint set union over arbitrary hashable elements.

    Elements are added lazily on first use. ``find`` uses path halving and
    ``union`` uses union by size, giving the usual near-constant amortized
    complexity.
    """

    __slots__ = ("_parent", "_size", "_components")

    def __init__(self, elements: Iterable[Hashable] = ()):
        self._parent: Dict[Hashable, Hashable] = {}
        self._size: Dict[Hashable, int] = {}
        self._components = 0
        for x in elements:
            self.add(x)

    def add(self, x: Hashable) -> None:
        """Register ``x`` as a singleton component (no-op if present)."""
        if x not in self._parent:
            self._parent[x] = x
            self._size[x] = 1
            self._components += 1

    def find(self, x: Hashable) -> Hashable:
        """Return the representative of the component containing ``x``."""
        parent = self._parent
        if x not in parent:
            raise KeyError(f"{x!r} has not been added to this UnionFind")
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(self, x: Hashable, y: Hashable) -> bool:
        """Merge the components of ``x`` and ``y``.

        Returns True if a merge happened, False if they were already in the
        same component. Unknown elements are added automatically.
        """
        self.add(x)
        self.add(y)
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return False
        if self._size[rx] < self._size[ry]:
            rx, ry = ry, rx
        self._parent[ry] = rx
        self._size[rx] += self._size[ry]
        self._components -= 1
        return True

    def connected(self, x: Hashable, y: Hashable) -> bool:
        """True iff ``x`` and ``y`` are in the same component."""
        return self.find(x) == self.find(y)

    def component_count(self) -> int:
        """Number of components among all added elements."""
        return self._components

    def component_size(self, x: Hashable) -> int:
        """Size of the component containing ``x``."""
        return self._size[self.find(x)]

    def components(self) -> List[Set[Hashable]]:
        """Materialize all components as a list of sets."""
        groups: Dict[Hashable, Set[Hashable]] = {}
        for x in self._parent:
            groups.setdefault(self.find(x), set()).add(x)
        return list(groups.values())

    def __contains__(self, x: Hashable) -> bool:
        return x in self._parent

    def __len__(self) -> int:
        return len(self._parent)


def component_labels(graph: Graph) -> Dict[Vertex, Vertex]:
    """Label every vertex with the minimum vertex of its component.

    This is the canonical labelling used to verify ConnectedComponents
    outputs: two vertices must receive equal labels iff they lie in the same
    component, and using the component minimum makes the expected labelling
    unique (for orderable vertices such as the integer vertex indices used
    throughout the library).
    """
    labels: Dict[Vertex, Vertex] = {}
    for comp in graph.connected_components():
        rep = min(comp)  # type: ignore[type-var]
        for v in comp:
            labels[v] = rep
    return labels


def labels_agree_with_components(graph: Graph, labels: Mapping[Vertex, Hashable]) -> bool:
    """Check that a labelling is a valid ConnectedComponents output.

    A labelling is valid iff it is constant on every component and distinct
    across components; the actual label values are immaterial (the paper's
    problem statement only requires each node to output "the label of the
    connected component it belongs to").
    """
    if set(labels) != set(graph.vertices()):
        return False
    component_of: Dict[Vertex, int] = {}
    for i, comp in enumerate(graph.connected_components()):
        for v in comp:
            component_of[v] = i
    seen: Dict[Hashable, int] = {}
    for v, lab in labels.items():
        comp = component_of[v]
        if lab in seen:
            if seen[lab] != comp:
                return False
        else:
            seen[lab] = comp
    # constant on components: every component maps to exactly one label
    label_of_component: Dict[int, Hashable] = {}
    for v, lab in labels.items():
        comp = component_of[v]
        if comp in label_of_component and label_of_component[comp] != lab:
            return False
        label_of_component[comp] = lab
    return True


def components_from_edges(n: int, edges: Iterable) -> UnionFind:
    """Build a UnionFind over vertex indices ``0..n-1`` from an edge list."""
    uf = UnionFind(range(n))
    for u, v in edges:
        uf.union(u, v)
    return uf
