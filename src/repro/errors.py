"""Exception hierarchy for the ``repro`` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while still
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class InvalidInstanceError(ReproError):
    """An instance violates a structural invariant of the BCC model.

    Examples: port labels at a vertex are not a permutation of the expected
    label set, the network wiring is not symmetric, or an input edge refers
    to a vertex outside the instance.
    """


class InvalidCrossingError(ReproError):
    """A requested port-preserving crossing is not well defined.

    Raised when the two edges handed to the crossing operator are not
    independent in the sense of Definition 3.2 of the paper, or are not
    input-graph edges of the instance.
    """


class PromiseViolationError(ReproError):
    """An input violates the promise of a promise problem.

    For example, the TwoCycle problem promises that the input graph is a
    single cycle or a disjoint union of exactly two cycles of length >= 3.
    """


class AlgorithmContractError(ReproError):
    """A node algorithm violated the BCC model contract.

    Raised when a node broadcasts a message longer than the bandwidth ``b``,
    broadcasts characters outside the message alphabet, or produces an
    output of the wrong type for the problem being solved.
    """


class SimulationError(ReproError):
    """The simulator was driven into an inconsistent state.

    This indicates a bug in driver code (e.g. asking for transcripts of a
    round that was never executed), not in a node algorithm.
    """


class PartitionError(ReproError):
    """A set-partition operation received malformed input.

    Examples: blocks that overlap, blocks that do not cover the ground set,
    or a partition over the wrong ground set for the requested operation.
    """


class ProtocolError(ReproError):
    """A two-party protocol violated its contract.

    Raised for out-of-turn messages, malformed message alphabets, or a
    missing output at the end of a protocol run.
    """


class RankComputationError(ReproError):
    """An exact rank computation could not be completed or cross-checked."""


class FaultInjectionError(ReproError):
    """A fault plan is malformed or cannot be applied to this execution.

    Examples: a fault rate outside [0, 1], a scheduled fault naming a
    vertex index outside the instance, a fault kind the channel layer does
    not implement, or a bit-flip directed at a silent (empty) broadcast
    via an explicit schedule.
    """


class BudgetExceededError(ReproError):
    """A cooperative run budget (wall clock or work units) was exhausted.

    Long-running searches check their :class:`repro.resilience.Budget`
    inside the inner loop and raise this instead of running forever. The
    exception carries ``partial`` -- the best-so-far result object (e.g. a
    partial :class:`~repro.lowerbounds.exhaustive.UniversalBoundReport`)
    -- and ``checkpoint_path`` when a resumable checkpoint was flushed on
    the way out, so callers can report progress and resume later.
    """

    def __init__(self, message: str, partial=None, checkpoint_path=None):
        super().__init__(message)
        self.partial = partial
        self.checkpoint_path = checkpoint_path


class EngineError(ReproError):
    """An engine request is malformed or names an unknown kind.

    Raised by :func:`repro.engine.execute` for requests outside the
    :data:`repro.engine.ENGINE_KINDS` registry or with parameters that
    fail normalization (wrong types, missing required fields). The CLI
    maps this -- like every other user error -- to exit code 2.
    """


class CheckpointError(ReproError):
    """A checkpoint file could not be written, read, or trusted.

    Examples: the checkpoint path is missing or unreadable, the payload is
    not valid JSON, the ``checkpoint_version`` is unsupported, or the
    checkpoint describes a different computation (wrong kind, n, or
    parameters) than the one being resumed.
    """


class DeliveryPolicyError(ReproError):
    """A network delivery plan is malformed or cannot drive this execution.

    The channel-layer analogue of :class:`FaultInjectionError`: a negative
    ``max_delay``, a duplication rate outside [0, 1], or a delivery policy
    applied to an instance it cannot address.
    """


class SessionError(ReproError):
    """A session log could not be recorded, read, or trusted.

    Examples: the session path is missing or unreadable, the log violates
    the session schema (missing header, non-contiguous steps), the
    ``session_version`` is unsupported, or the log describes a different
    computation than the one being replayed.
    """


class ReplayDivergenceError(SessionError):
    """A replayed execution diverged from its recorded session.

    Carries ``divergence`` -- the first
    :class:`repro.replay.Divergence` (step index, field, recorded vs.
    live value) -- so callers can report exactly where determinism broke
    instead of a bare mismatch boolean. The CLI maps this to exit code 4.
    """

    def __init__(self, message: str, divergence=None):
        super().__init__(message)
        self.divergence = divergence
