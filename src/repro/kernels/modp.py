"""Batched mod-p rank over numpy int64 row blocks.

The reference engine eliminates entry by entry in Python; this kernel
does one vectorized pivot search (``argmax`` over the nonzero mask of a
column slice), one row normalization, and one whole-submatrix
outer-product update + ``mod`` per pivot column. Compared to the
masked-fancy-indexing numpy path it replaces (PR 1's
``_rank_mod_p_numpy``), the outer-product update touches the trailing
submatrix exactly once per pivot and never materializes boolean-mask
copies.

Overflow safety, pinned by ``tests/kernels/test_modp.py``: entries stay
in ``[0, p)`` after every update, and the intermediate
``a - outer(col, pivot_row)`` is bounded by ``(p-1)^2`` in magnitude.
For the largest default prime ``p = 2_147_483_647`` (the Mersenne prime
``2^31 - 1``), ``(p-1)^2 = 2^62 - 2^33 + 4 < 2^63 - 1``, so the whole
reduction fits signed int64 with headroom; :func:`batched_modp_supported`
encodes exactly that bound and anything larger falls back to the
pure-python reference.

Bit-identical contract: mod-p rank and the per-column pivot structure
are mathematically determined, the column loop ticks the
:class:`~repro.resilience.Budget` once per column before the pivot
search, and the loop breaks after ``rows`` pivots -- all exactly like
the reference, so results *and* budget boundaries agree on every input.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

if TYPE_CHECKING:  # runtime-import-free, like partitions.linalg
    from repro.resilience.budget import Budget

try:  # optional accelerator; callers fall back without it
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is installed in CI
    _np = None

Matrix = Sequence[Sequence[int]]

__all__ = ["HAVE_NUMPY", "batched_modp_supported", "rank_mod_p_batched"]

#: True when numpy imported; linalg checks this before dispatching here.
HAVE_NUMPY = _np is not None

#: Largest magnitude an intermediate may reach: (p-1)^2 + (p-1).
_INT64_MAX = 2**63 - 1


def batched_modp_supported(p: int) -> bool:
    """True when the int64 reduction is overflow-safe at prime ``p``.

    The update computes ``a[r][c] - factor * pivot[c]`` with all values
    in ``[0, p)``, so the extreme intermediates are ``-(p-1)^2`` and
    ``p - 1``; both must fit signed 64-bit.
    """
    return HAVE_NUMPY and (p - 1) * (p - 1) + (p - 1) <= _INT64_MAX


def rank_mod_p_batched(
    matrix: Matrix, p: int, budget: Optional["Budget"] = None
) -> int:
    """Rank over GF(p) with batched numpy elimination.

    Requires numpy and :func:`batched_modp_supported`; callers
    (``repro.partitions.linalg``) check both and fall back to the
    pure-python reference silently -- this function raises
    ``RuntimeError`` if invoked without them (a programming error, not
    a user error).
    """
    if _np is None:
        raise RuntimeError("numpy is not available; use the reference engine")
    if not batched_modp_supported(p):
        raise RuntimeError(
            f"prime {p} overflows the int64 reduction; use the reference engine"
        )
    a = _np.asarray(
        [[int(x) % p for x in row] for row in matrix], dtype=_np.int64
    )
    if a.size == 0:
        return 0
    rows, cols = a.shape
    rank = 0
    pivot_row = 0
    for col in range(cols):
        if budget is not None:
            budget.tick()
        col_slice = a[pivot_row:, col]
        nonzero = col_slice != 0
        if not nonzero.any():
            continue
        pivot = pivot_row + int(nonzero.argmax())
        if pivot != pivot_row:
            a[[pivot_row, pivot]] = a[[pivot, pivot_row]]
        inv = pow(int(a[pivot_row, col]), p - 2, p)
        row_p = (a[pivot_row] * inv) % p
        a[pivot_row] = row_p
        below = a[pivot_row + 1 :]
        if below.size:
            factors = below[:, col]
            # one outer product + one mod for the whole trailing block
            below -= factors[:, None] * row_p[None, :]
            below %= p
        pivot_row += 1
        rank += 1
        if pivot_row == rows:
            break
    return rank
