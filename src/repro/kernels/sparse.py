"""Sparse mod-p rank kernel: dict-of-columns rows, reference pivot order.

The dense engines (:mod:`repro.kernels.modp`, the python reference in
:mod:`repro.partitions.linalg`) touch every cell of every row on every
pivot, so a rank costs O(rows^2 x cols) regardless of how many entries
are actually nonzero. The paper's partition matrices reward a sparse
representation twice over: M_n rows are sparse-ish to begin with, and --
the part density alone does not predict -- they stay sparse *under
elimination* (low fill-in), so the sparse engine wins ~8x on M_7 mod p
even at 0.48 ambient density while the same engine loses on E_10, whose
rows fill in (see EXPERIMENTS.md P5). The ``auto`` kernel mode therefore
gates on measured input density (:data:`SPARSE_DENSITY_CUTOFF`), a
conservative proxy for fill-in; callers who know their matrix family can
force ``kernel="sparse"``.

Rows are dicts ``{column: value}`` with every stored value in ``[1, p)``
-- zeros are never stored, which is both the space saving and the O(1)
pivot test (``col in row``). The column loop mirrors the reference
elimination exactly: tick the budget once per pivot column before the
pivot search, take the first row at or below the current pivot row with
a nonzero in that column, swap, normalize, eliminate below, and break
once ``rows`` pivots are found. Ranks, tick counts, and exhaustion
boundaries equal the reference's on every input (pinned by the
hypothesis identity suites).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

if TYPE_CHECKING:
    from repro.resilience.budget import Budget

Matrix = Sequence[Sequence[int]]

__all__ = [
    "SPARSE_DENSITY_CUTOFF",
    "SPARSE_MIN_CELLS",
    "matrix_density",
    "rank_mod_p_sparse",
    "rank_mod_p_sparse_rows",
    "sparsify_rows",
]

#: ``auto`` routes an odd-p rank to this engine only when the fraction of
#: nonzero cells is at or below this cutoff. Deliberately conservative:
#: density is a proxy for fill-in, and a dense-ish matrix that fills in
#: (E_n-like) is much slower here than in the batched engine.
SPARSE_DENSITY_CUTOFF = 0.05

#: ...and only when the matrix has at least this many cells; below that
#: the dense engines' constant factors win regardless of density.
SPARSE_MIN_CELLS = 10_000


def sparsify_rows(matrix: Matrix, p: int) -> List[Dict[int, int]]:
    """Reduce a matrix mod ``p`` into dict rows ``{col: value in [1, p)}``."""
    rows: List[Dict[int, int]] = []
    for row in matrix:
        entries: Dict[int, int] = {}
        for c, x in enumerate(row):
            v = int(x) % p
            if v:
                entries[c] = v
        rows.append(entries)
    return rows


def matrix_density(matrix: Matrix) -> float:
    """Fraction of nonzero cells; 0.0 for empty matrices."""
    cells = 0
    nonzero = 0
    for row in matrix:
        cells += len(row)
        for x in row:
            if x:
                nonzero += 1
    return nonzero / cells if cells else 0.0


def rank_mod_p_sparse_rows(
    rows: List[Dict[int, int]],
    cols: int,
    p: int,
    budget: Optional["Budget"] = None,
) -> int:
    """Rank mod ``p`` of already-sparsified rows (destructive on ``rows``).

    Requires the :func:`sparsify_rows` invariant: every stored value in
    ``[1, p)``, zeros absent. Works for every prime ``p`` including 2
    (``pow(x, p - 2, p)`` is the inverse there too).
    """
    nrows = len(rows)
    if nrows == 0 or cols == 0:
        return 0
    rank = 0
    pivot_row = 0
    for col in range(cols):
        if budget is not None:
            budget.tick()
        pivot = None
        for r in range(pivot_row, nrows):
            if col in rows[r]:
                pivot = r
                break
        if pivot is None:
            continue
        rows[pivot_row], rows[pivot] = rows[pivot], rows[pivot_row]
        prow = rows[pivot_row]
        inv = pow(prow[col], p - 2, p)
        if inv != 1:
            for c in prow:
                prow[c] = (prow[c] * inv) % p
        pivot_items = list(prow.items())
        for r in range(pivot_row + 1, nrows):
            row = rows[r]
            factor = row.get(col)
            if factor:
                for c, v in pivot_items:
                    nv = (row.get(c, 0) - factor * v) % p
                    if nv:
                        row[c] = nv
                    else:
                        row.pop(c, None)
        pivot_row += 1
        rank += 1
        if pivot_row == nrows:
            break
    return rank


def rank_mod_p_sparse(
    matrix: Matrix, p: int, budget: Optional["Budget"] = None
) -> int:
    """Rank of an integer matrix mod prime ``p`` via the sparse engine."""
    nrows = len(matrix)
    cols = len(matrix[0]) if nrows else 0
    return rank_mod_p_sparse_rows(sparsify_rows(matrix, p), cols, p, budget)
