"""Batched validity filtering of crossing pairs (Definitions 3.2 / 3.6).

Building the indistinguishability graph means testing every unordered
pair of active directed edges of every one-cycle cover for
*independence*: four distinct endpoints, both undirected edges present
in the cover, and neither would-be new edge already present. The
reference path (:func:`repro.indist.graph_builder.cross_cover`) runs
those checks pair by pair in Python -- O(active^2) set lookups per
cover. This kernel scores **all pairs of one cover in a single numpy
block**, reusing the PR 4 ``lowerbounds/vectorized.py`` idiom of
encoding structure into int64 arrays and letting one vectorized mask
replace the per-item Python calls:

* undirected edges are encoded as ``min * n + max`` int64 codes;
* all ``C(m, 2)`` candidate pairs come from one ``triu_indices`` call;
* the three independence conditions become three elementwise masks
  (distinctness comparisons plus ``isin`` membership against the
  cover's sorted code table).

Only the surviving pairs -- typically a small fraction -- proceed to
the Python-level cover construction, which is identical to the
reference's, so the produced neighbor sets are equal element for
element. The pure-python fallback (numpy absent) applies the same three
conditions pair by pair and is pinned equal by the tests.
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Sequence, Tuple

try:  # optional accelerator; the pure-python filter is the fallback
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is installed in CI
    _np = None

__all__ = ["BATCH_THRESHOLD", "HAVE_NUMPY", "valid_crossing_pairs"]

#: Below this many active directed edges the python filter wins: the
#: numpy batch pays fixed array-construction costs that only amortize
#: once the C(m, 2) candidate block is a few thousand pairs deep.
BATCH_THRESHOLD = 64

#: True when numpy imported; the graph builder need not check -- this
#: module falls back internally.
HAVE_NUMPY = _np is not None

DirectedEdge = Tuple[int, int]


def _code(n: int, a: int, b: int) -> int:
    """The int code of undirected edge {a, b}: min * n + max."""
    return a * n + b if a < b else b * n + a


def _valid_pairs_python(
    n: int, edges, active: Sequence[DirectedEdge]
) -> List[Tuple[DirectedEdge, DirectedEdge]]:
    """Reference filter: the same three conditions, pair by pair."""
    out: List[Tuple[DirectedEdge, DirectedEdge]] = []
    for (v1, u1), (v2, u2) in combinations(active, 2):
        if len({v1, u1, v2, u2}) != 4:
            continue
        e1 = (v1, u1) if v1 < u1 else (u1, v1)
        e2 = (v2, u2) if v2 < u2 else (u2, v2)
        if e1 not in edges or e2 not in edges:
            continue
        n1 = (v1, u2) if v1 < u2 else (u2, v1)
        n2 = (v2, u1) if v2 < u1 else (u1, v2)
        if n1 in edges or n2 in edges:
            continue
        out.append(((v1, u1), (v2, u2)))
    return out


def valid_crossing_pairs(
    n: int,
    edges,
    active: Sequence[DirectedEdge],
) -> List[Tuple[DirectedEdge, DirectedEdge]]:
    """Pairs of ``active`` directed edges that form a valid crossing.

    ``edges`` is the cover's undirected edge set (``(min, max)``
    tuples, e.g. ``CycleCover.edges``). Returns exactly the pairs for
    which :func:`repro.indist.graph_builder.cross_cover` would return a
    cover, in ``itertools.combinations`` order.

    Small actives (fewer than :data:`BATCH_THRESHOLD` directed edges,
    i.e. under ~2k candidate pairs) go through the pair-by-pair python
    filter even when numpy is present: at that size the array setup
    costs more than it saves, and the two filters are pinned identical,
    so the cutoff is invisible in the results.
    """
    m = len(active)
    if m < 2 or not edges:
        return []
    if _np is None or m < BATCH_THRESHOLD:
        return _valid_pairs_python(n, edges, active)
    arr = _np.asarray(active, dtype=_np.int64)  # (m, 2): head, tail
    i, j = _np.triu_indices(m, k=1)
    v1, u1 = arr[i, 0], arr[i, 1]
    v2, u2 = arr[j, 0], arr[j, 1]
    distinct = (v1 != v2) & (v1 != u2) & (u1 != v2) & (u1 != u2)
    codes = _np.sort(
        _np.asarray([_code(n, a, b) for a, b in edges], dtype=_np.int64)
    )

    def member(a, b):
        pair_codes = _np.where(a < b, a * n + b, b * n + a)
        idx = _np.searchsorted(codes, pair_codes)
        idx = _np.minimum(idx, len(codes) - 1)
        return codes[idx] == pair_codes

    in_cover = member(v1, u1) & member(v2, u2)
    new_absent = ~member(v1, u2) & ~member(v2, u1)
    mask = distinct & in_cover & new_absent
    picked = _np.nonzero(mask)[0]
    return [
        (
            (int(arr[i[k], 0]), int(arr[i[k], 1])),
            (int(arr[j[k], 0]), int(arr[j[k], 1])),
        )
        for k in picked
    ]
