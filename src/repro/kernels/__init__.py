"""Packed / batched compute kernels behind the bit-identical contract.

PR 4 established the pattern for scaling this repo's engines: a fast
kernel that produces *exactly* the same answers as the pure-python
reference implementation (exact ``==`` on full enumerable spaces), with
a silent fallback when the accelerator (numpy) is absent. This package
generalizes that pattern to the paper's three remaining hot paths:

* :mod:`repro.kernels.gf2` -- GF(2) rank via word-packed bitset
  elimination (Python big-int rows; one XOR eliminates a whole row).
* :mod:`repro.kernels.modp` -- batched mod-p rank over numpy int64
  blocks (one argmax / one outer-product / one ``mod`` per pivot
  instead of per-entry Python loops).
* :mod:`repro.kernels.bitset_matching` -- integer-indexed Hopcroft-Karp
  on big-int adjacency masks, with a dedicated k-clone path that shares
  one mask across all k clones of a left vertex (Theorem 2.1).
* :mod:`repro.kernels.crossing_batch` -- batched validity filtering of
  crossing pairs (Definition 3.2/3.6) for the indistinguishability
  graph builder, scoring all candidate pairs of a cover in one numpy
  block.

Every consumer that picks up a kernel takes a ``kernel`` argument with
three values (also exposed as ``--kernel`` on the relevant CLI
subcommands):

* ``"reference"`` -- the pure-python reference implementation, exactly
  as it was before this package existed;
* ``"packed"`` -- the fast engines (numpy-backed ones silently fall
  back to the reference when numpy is absent);
* ``"auto"`` (the default) -- resolves to ``"packed"``.

The contract, enforced by the ``tests/kernels`` suites: identical
results at any worker count and under either kernel -- ranks are equal
integers, matchings are valid and of identical size, graphs are
edge-for-edge equal -- and identical
:class:`~repro.resilience.Budget` tick boundaries (one tick per pivot
column), so checkpoints, resume, and span trees are unchanged.
"""

from __future__ import annotations

from typing import Tuple

from repro.kernels.bitset_matching import (
    compile_bipartite,
    hopcroft_karp_bitset,
    k_matching_bitset,
)
from repro.kernels.crossing_batch import (
    HAVE_NUMPY as CROSSING_HAVE_NUMPY,
    valid_crossing_pairs,
)
from repro.kernels.gf2 import pack_rows, rank_gf2
from repro.kernels.modp import HAVE_NUMPY, batched_modp_supported, rank_mod_p_batched

__all__ = [
    "HAVE_NUMPY",
    "KERNEL_MODES",
    "batched_modp_supported",
    "compile_bipartite",
    "hopcroft_karp_bitset",
    "k_matching_bitset",
    "pack_rows",
    "rank_gf2",
    "rank_mod_p_batched",
    "resolve_kernel",
    "valid_crossing_pairs",
]

#: The accepted values of every ``kernel`` argument / ``--kernel`` flag.
KERNEL_MODES: Tuple[str, ...] = ("auto", "packed", "reference")


def resolve_kernel(kernel: str) -> str:
    """Resolve a kernel mode to ``"packed"`` or ``"reference"``.

    ``"auto"`` resolves to ``"packed"``: the packed engines are either
    dependency-free (big-int bitsets) or degrade silently to the
    reference when numpy is absent, so there is never a reason not to
    prefer them. Unknown values raise ``ValueError`` (a user error: the
    CLI maps it to exit code 2).
    """
    if kernel not in KERNEL_MODES:
        raise ValueError(
            f"unknown kernel {kernel!r}; expected one of {', '.join(KERNEL_MODES)}"
        )
    return "packed" if kernel in ("auto", "packed") else "reference"
