"""Packed / batched compute kernels behind the bit-identical contract.

PR 4 established the pattern for scaling this repo's engines: a fast
kernel that produces *exactly* the same answers as the pure-python
reference implementation (exact ``==`` on full enumerable spaces), with
a silent fallback when the accelerator (numpy) is absent. This package
generalizes that pattern to the paper's hot paths:

* :mod:`repro.kernels.gf2` -- GF(2) rank via word-packed bitset
  elimination (Python big-int rows; one XOR eliminates a whole row),
  plus the Four-Russians (M4RI) elimination that amortizes the row
  fixups of ``k`` pivot columns into one 2^k-entry-table lookup.
* :mod:`repro.kernels.modp` -- batched mod-p rank over numpy int64
  blocks (one argmax / one outer-product / one ``mod`` per pivot
  instead of per-entry Python loops).
* :mod:`repro.kernels.sparse` -- sparse mod-p rank on dict-of-columns
  rows; wins when the matrix stays sparse under elimination (M_n does;
  see the density cutoff notes in that module).
* :mod:`repro.kernels.bitset_matching` -- integer-indexed Hopcroft-Karp
  on big-int adjacency masks, with a dedicated k-clone path that shares
  one mask across all k clones of a left vertex (Theorem 2.1).
* :mod:`repro.kernels.crossing_batch` -- batched validity filtering of
  crossing pairs (Definition 3.2/3.6) for the indistinguishability
  graph builder, scoring all candidate pairs of a cover in one numpy
  block.

Every consumer that picks up a kernel takes a ``kernel`` argument (also
exposed as ``--kernel`` on the relevant CLI subcommands) with these
values:

* ``"reference"`` -- the pure-python reference implementation, exactly
  as it was before this package existed;
* ``"packed"`` -- the PR 5 fast engines (numpy-backed ones silently
  fall back to the reference when numpy is absent);
* ``"four-russians"`` -- like ``"packed"``, but GF(2) ranks run the
  M4RI engine regardless of size (odd-p ranks dispatch as in
  ``"packed"``: rank-engine choice is per-prime);
* ``"sparse"`` -- like ``"packed"``, but mod-p ranks (every prime,
  including 2) run the sparse dict-row engine regardless of density;
* ``"auto"`` (the default) -- the fast family with per-input engine
  choice: GF(2) ranks pick M4RI above a size threshold, odd-p ranks
  pick the sparse engine below a density cutoff, everything else
  behaves as ``"packed"``.

The rank-engine selection the modes drive lives in
:func:`repro.partitions.linalg.rank_mod_p`; :func:`resolve_kernel` here
only resolves the *family* (fast vs reference) for consumers -- the
matching / graph-builder call sites -- that have a single fast engine.

The contract, enforced by the ``tests/kernels`` suites: identical
results at any worker count and under every kernel mode -- ranks are
equal integers, matchings are valid and of identical size, graphs are
edge-for-edge equal -- and identical
:class:`~repro.resilience.Budget` tick boundaries (one tick per pivot
column), so checkpoints, resume, and span trees are unchanged.
"""

from __future__ import annotations

from typing import Tuple

from repro.kernels.bitset_matching import (
    compile_bipartite,
    hopcroft_karp_bitset,
    k_matching_bitset,
)
from repro.kernels.crossing_batch import (
    HAVE_NUMPY as CROSSING_HAVE_NUMPY,
    valid_crossing_pairs,
)
from repro.kernels.gf2 import (
    M4RI_DEFAULT_K,
    pack_rows,
    rank_gf2,
    rank_gf2_four_russians,
    rank_gf2_m4ri,
    rank_gf2_packed,
)
from repro.kernels.modp import HAVE_NUMPY, batched_modp_supported, rank_mod_p_batched
from repro.kernels.sparse import (
    SPARSE_DENSITY_CUTOFF,
    SPARSE_MIN_CELLS,
    matrix_density,
    rank_mod_p_sparse,
    rank_mod_p_sparse_rows,
    sparsify_rows,
)

__all__ = [
    "HAVE_NUMPY",
    "KERNEL_MODES",
    "M4RI_DEFAULT_K",
    "SPARSE_DENSITY_CUTOFF",
    "SPARSE_MIN_CELLS",
    "batched_modp_supported",
    "compile_bipartite",
    "hopcroft_karp_bitset",
    "k_matching_bitset",
    "matrix_density",
    "pack_rows",
    "rank_gf2",
    "rank_gf2_four_russians",
    "rank_gf2_m4ri",
    "rank_gf2_packed",
    "rank_mod_p_batched",
    "rank_mod_p_sparse",
    "rank_mod_p_sparse_rows",
    "resolve_kernel",
    "sparsify_rows",
    "valid_crossing_pairs",
]

#: The accepted values of every ``kernel`` argument / ``--kernel`` flag.
KERNEL_MODES: Tuple[str, ...] = (
    "auto",
    "packed",
    "four-russians",
    "sparse",
    "reference",
)


def resolve_kernel(kernel: str) -> str:
    """Resolve a kernel mode to its *family*: ``"packed"`` or ``"reference"``.

    Consumers with a single fast engine (matching, graph building) only
    need the family; every mode except ``"reference"`` resolves to
    ``"packed"`` because the fast engines are either dependency-free
    (big-int bitsets) or degrade silently to the reference when numpy is
    absent, so there is never a reason not to prefer them. The
    rank-specific modes (``"four-russians"``, ``"sparse"``) change only
    which *rank* engine :func:`repro.partitions.linalg.rank_mod_p`
    picks; for every other consumer they behave exactly like
    ``"packed"``. Unknown values raise ``ValueError`` (a user error:
    the CLI maps it to exit code 2).
    """
    if kernel not in KERNEL_MODES:
        raise ValueError(
            f"unknown kernel {kernel!r}; expected one of {', '.join(KERNEL_MODES)}"
        )
    return "reference" if kernel == "reference" else "packed"
