"""Integer-indexed Hopcroft-Karp on big-int adjacency masks.

The reference matcher (:mod:`repro.indist.matching`) runs directly on
hashable vertex objects with dict-of-set adjacency, and its inner loops
historically called ``graph.neighbors(v)`` -- which returns a *fresh
set copy* -- once per BFS/DFS visit. This kernel compiles the graph
down once: left vertices become contiguous ints (sorted by ``repr``,
the reference's own canonical order), right vertices become bit
positions, and each left vertex's neighborhood becomes one Python big
integer. The BFS/DFS phases then walk bits (``m & -m`` /
``bit_length``) over int arrays -- no hashing, no copies, no dicts.

The k-clone construction of Theorem 2.1 (polygamous Hall) gets a
dedicated path: instead of materializing ``k`` copies of every left
vertex *and its edge set* (the reference ``cloned_graph``), the engine
runs on ``k * |L|`` virtual left nodes whose adjacency lookup is
``masks[node // k]`` -- one shared mask per original vertex, zero
cloning cost.

Contract (pinned by ``tests/kernels/test_bitset_matching.py``): the
returned matching is always a *valid maximum* matching -- identical in
size to the reference's on every graph -- but the specific edges may
differ (maximum matchings are not unique; neither engine promises a
particular one). For k-matchings the engine-invariant quantities are
the *saturation verdicts*: a k-matching saturating L exists iff the
cloned graph's maximum matching has size ``k * |L|``, which both
engines compute exactly, so ``saturates`` / ``max_saturating_k`` agree
everywhere. In *deficient* cases the number of complete k-stars is an
artifact of which maximum matching the search happens to find (e.g.
two left vertices sharing two rights at k=2: one full star or two
half-stars, both maximum), so star counts may legitimately differ
between engines there -- the tests pin validity, saturation equality,
and the count on graphs where it is forced, not raw count equality.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, List, Tuple

__all__ = ["compile_bipartite", "hopcroft_karp_bitset", "k_matching_bitset"]

_INF = float("inf")


def compile_bipartite(graph) -> Tuple[List[Hashable], List[Hashable], List[int]]:
    """Compile a BipartiteGraph to ``(lefts, rights, masks)``.

    ``lefts`` and ``rights`` are sorted by ``repr`` (the reference
    engine's canonical order); ``masks[i]`` has bit ``j`` set iff
    ``(lefts[i], rights[j])`` is an edge.
    """
    lefts = sorted(graph.iter_left(), key=repr)
    rights = sorted(graph.iter_right(), key=repr)
    right_id = {r: j for j, r in enumerate(rights)}
    masks: List[int] = []
    for v in lefts:
        word = 0
        for r in graph.iter_neighbors(v):
            word |= 1 << right_id[r]
        masks.append(word)
    return lefts, rights, masks


def _hk_core(masks: List[int], num_rights: int, multiplicity: int = 1) -> List[int]:
    """Hopcroft-Karp over ``len(masks) * multiplicity`` virtual left nodes.

    Node ``v``'s adjacency is ``masks[v // multiplicity]`` -- clones
    share one mask. Returns ``match_l`` (right index or -1 per node).
    """
    num_left = len(masks) * multiplicity
    match_l = [-1] * num_left
    match_r = [-1] * num_rights
    dist: List[float] = [0.0] * num_left

    def bfs() -> bool:
        queue: deque = deque()
        for v in range(num_left):
            if match_l[v] < 0:
                dist[v] = 0
                queue.append(v)
            else:
                dist[v] = _INF
        found = False
        while queue:
            v = queue.popleft()
            m = masks[v // multiplicity] if multiplicity > 1 else masks[v]
            d = dist[v] + 1
            while m:
                low = m & -m
                m ^= low
                w = match_r[low.bit_length() - 1]
                if w < 0:
                    found = True
                elif dist[w] == _INF:
                    dist[w] = d
                    queue.append(w)
        return found

    def dfs(v: int) -> bool:
        m = masks[v // multiplicity] if multiplicity > 1 else masks[v]
        d = dist[v] + 1
        while m:
            low = m & -m
            m ^= low
            r = low.bit_length() - 1
            w = match_r[r]
            if w < 0 or (dist[w] == d and dfs(w)):
                match_l[v] = r
                match_r[r] = v
                return True
        dist[v] = _INF
        return False

    while bfs():
        for v in range(num_left):
            if match_l[v] < 0:
                dfs(v)
    return match_l


def hopcroft_karp_bitset(graph) -> Dict[Hashable, Hashable]:
    """Maximum matching as a left-vertex -> right-vertex map.

    Same signature and same (maximum) size as the reference
    ``hopcroft_karp``; the compiled int engine does the work.
    """
    lefts, rights, masks = compile_bipartite(graph)
    if not lefts or not rights:
        return {}
    match_l = _hk_core(masks, len(rights))
    return {lefts[i]: rights[r] for i, r in enumerate(match_l) if r >= 0}


def k_matching_bitset(graph, k: int) -> Dict[Hashable, Tuple[Hashable, ...]]:
    """Maximum k-matching via shared-mask virtual clones (Theorem 2.1).

    Mirrors ``repro.indist.hall.k_matching``'s output contract: only
    left vertices that received all ``k`` partners appear, each mapped
    to its ``k`` distinct right vertices sorted by ``repr``.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    lefts, rights, masks = compile_bipartite(graph)
    if not lefts or not rights:
        return {}
    match_l = _hk_core(masks, len(rights), multiplicity=k)
    stars: Dict[Hashable, List[Hashable]] = {}
    for node, r in enumerate(match_l):
        if r >= 0:
            stars.setdefault(lefts[node // k], []).append(rights[r])
    return {
        v: tuple(sorted(rs, key=repr)) for v, rs in stars.items() if len(rs) == k
    }
