"""GF(2) rank kernels: word-packed bitset and Four-Russians elimination.

The reference engine (:func:`repro.partitions.linalg._rank_mod_p_python`
at ``p = 2``) eliminates entry by entry: each pivot costs
O(rows x cols) Python-level multiply-subtract-mod operations. Two fast
engines live here:

* :func:`rank_gf2_packed` packs every row into one Python big integer
  (bit ``c`` = column ``c``), so eliminating a row under a pivot is a
  *single* word-parallel XOR -- CPython XORs 30-bit limbs in C, giving
  an honest factor of tens on wide matrices while staying
  dependency-free.
* :func:`rank_gf2_m4ri` is the Four-Russians (M4RI) elimination: rows
  are processed in blocks of ``k`` pivot columns, a 2^k-entry XOR
  table of pivot-row combinations is built per block, and every
  non-pivot row is fixed up with *one* table-lookup XOR per block
  instead of one XOR per pivot column. With numpy present the matrix
  lives in uint64 words and the per-column bookkeeping (pivot search,
  block-bit updates) is vectorized; without numpy a pure-python
  big-int variant of the same schedule runs instead (correct, roughly
  parity with the packed engine). The asymptotic win is a factor ~k on
  the row-fixup work; measured >= 2x over ``rank_gf2_packed`` on dense
  2048^2 inputs and growing with size (see EXPERIMENTS.md P5).

Bit-identical contract: over GF(2) the rank and the per-column pivot
structure are mathematically determined, and the column loop of every
engine mirrors the reference exactly -- the
:class:`~repro.resilience.Budget` is ticked once per pivot column
*before* the pivot search, the pivot is the first row at or below the
current pivot row with the bit set, and the loop breaks as soon as
``rows`` pivots are found -- so ranks, tick counts, and exhaustion
boundaries are equal to the reference's on every input.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

if TYPE_CHECKING:  # runtime-import-free, like partitions.linalg
    from repro.resilience.budget import Budget

try:  # optional accelerator; every entry point falls back without it
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is installed in CI
    _np = None

Matrix = Sequence[Sequence[int]]

__all__ = [
    "M4RI_DEFAULT_K",
    "pack_rows",
    "rank_gf2",
    "rank_gf2_four_russians",
    "rank_gf2_m4ri",
    "rank_gf2_packed",
]

#: Default Four-Russians block width: 2^8-entry tables amortize well for
#: every matrix large enough that the M4RI engine is worth running at all.
M4RI_DEFAULT_K = 8

#: Largest accepted block width; the per-block XOR table has 2^k rows, so
#: anything beyond this is a configuration error, not a tuning choice.
_M4RI_MAX_K = 16


def _pack_row_bytes(row: Sequence[int]) -> int:
    """One row packed mod 2 via a bytearray + ``int.from_bytes``.

    Setting bit ``c`` directly on a growing big integer costs O(c) limb
    work per entry (quadratic per row); staging the bits in a bytearray
    first is O(1) per entry with a single linear conversion at the end.
    """
    buf = bytearray((len(row) + 7) >> 3)
    for c, x in enumerate(row):
        if int(x) & 1:
            buf[c >> 3] |= 1 << (c & 7)
    return int.from_bytes(bytes(buf), "little")


def _pack_rows_reference(matrix: Matrix) -> List[int]:
    """The original per-entry big-int packer, kept as the parity oracle."""
    packed: List[int] = []
    for row in matrix:
        word = 0
        for c, x in enumerate(row):
            if int(x) & 1:
                word |= 1 << c
        packed.append(word)
    return packed


def pack_rows(matrix: Matrix) -> List[int]:
    """Pack a matrix's rows mod 2 into big integers (bit c = column c).

    Fast path: ``numpy.packbits`` per row + ``int.from_bytes``
    (bit-for-bit equal to the reference packer, pinned by the parity
    tests). Rows numpy cannot losslessly coerce to an integer dtype --
    huge entries, floats, a missing numpy install -- silently take the
    bytearray fallback, which is itself linear per row where the
    original per-entry big-int packer was quadratic on dense rows.
    """
    packed: List[int] = []
    for row in matrix:
        if _np is not None:
            try:
                arr = _np.asarray(row)
            except (ValueError, OverflowError):  # pragma: no cover - exotic rows
                arr = None
            if (
                arr is not None
                and arr.ndim == 1
                and arr.dtype.kind in "iub"
            ):
                bits = (arr & 1).astype(_np.uint8)
                packed.append(
                    int.from_bytes(
                        _np.packbits(bits, bitorder="little").tobytes(), "little"
                    )
                )
                continue
        packed.append(_pack_row_bytes(row))
    return packed


def rank_gf2_packed(
    rows: List[int], cols: int, budget: Optional["Budget"] = None
) -> int:
    """Rank over GF(2) of already-packed rows (destructive on ``rows``).

    ``budget`` is ticked once per pivot column, exactly like the
    reference elimination (see :func:`repro.partitions.linalg.rank_mod_p`).
    """
    nrows = len(rows)
    if nrows == 0 or cols == 0:
        return 0
    rank = 0
    pivot_row = 0
    for col in range(cols):
        if budget is not None:
            budget.tick()
        bit = 1 << col
        pivot = None
        for r in range(pivot_row, nrows):
            if rows[r] & bit:
                pivot = r
                break
        if pivot is None:
            continue
        rows[pivot_row], rows[pivot] = rows[pivot], rows[pivot_row]
        word = rows[pivot_row]
        for r in range(pivot_row + 1, nrows):
            if rows[r] & bit:
                rows[r] ^= word
        pivot_row += 1
        rank += 1
        if pivot_row == nrows:
            break
    return rank


def _check_k(k: int) -> int:
    if not 1 <= k <= _M4RI_MAX_K:
        raise ValueError(f"four-russians block width k must be in [1, {_M4RI_MAX_K}], got {k}")
    return k


def _rank_gf2_m4ri_python(
    rows: List[int], cols: int, k: int, budget: Optional["Budget"]
) -> int:
    """Pure-python Four-Russians on big-int rows (the no-numpy fallback).

    Identical schedule to the numpy path: per block of ``k`` columns the
    pivot rows' final values accumulate lazily (``applied`` records
    which block pivots each row absorbed), and one XOR-table lookup per
    row finalizes the block. Pivot choice, tick order, and the
    full-rank break mirror :func:`rank_gf2_packed` exactly.
    """
    nrows = len(rows)
    rank = 0
    base = 0
    for c0 in range(0, cols, k):
        w = min(k, cols - c0)
        mask = (1 << w) - 1
        nbelow = nrows - base
        chunks = [(rows[base + j] >> c0) & mask for j in range(nbelow)]
        applied = [0] * nbelow
        piv_vals: List[int] = []
        full = False
        for i in range(w):
            if budget is not None:
                budget.tick()
            bit = 1 << i
            found = len(piv_vals)
            pivot = None
            for j in range(found, nbelow):
                if chunks[j] & bit:
                    pivot = j
                    break
            if pivot is None:
                continue
            if pivot != found:
                chunks[found], chunks[pivot] = chunks[pivot], chunks[found]
                applied[found], applied[pivot] = applied[pivot], applied[found]
                rows[base + found], rows[base + pivot] = (
                    rows[base + pivot],
                    rows[base + found],
                )
            # the pivot row's true value: its original value plus every
            # block pivot it absorbed before being chosen itself
            val = rows[base + found]
            sel = applied[found]
            t = 0
            while sel:
                if sel & 1:
                    val ^= piv_vals[t]
                sel >>= 1
                t += 1
            piv_vals.append(val)
            pchunk = chunks[found]
            pbit = 1 << found
            for j in range(found + 1, nbelow):
                if chunks[j] & bit:
                    chunks[j] ^= pchunk
                    applied[j] |= pbit
            rank += 1
            if base + len(piv_vals) == nrows:
                full = True
                break
        found = len(piv_vals)
        if found:
            for t in range(found):
                rows[base + t] = piv_vals[t]
            # all 2^found pivot combinations, built incrementally: entry m
            # differs from entry (m minus its lowest bit) by one pivot row
            table = [0] * (1 << found)
            for m in range(1, 1 << found):
                low = m & -m
                table[m] = table[m ^ low] ^ piv_vals[low.bit_length() - 1]
            for j in range(found, nbelow):
                sel = applied[j]
                if sel:
                    rows[base + j] ^= table[sel]
            base += found
        if full:
            break
    return rank


def _rows_to_words(rows: Sequence[int], cols: int):
    """Packed big-int rows -> a (nrows x nwords) little-endian uint64 array."""
    nwords = max(1, (cols + 63) >> 6)
    nbytes = nwords * 8
    buf = bytearray(len(rows) * nbytes)
    for r, word in enumerate(rows):
        buf[r * nbytes : r * nbytes + nbytes] = word.to_bytes(nbytes, "little")
    return _np.frombuffer(bytes(buf), dtype="<u8").reshape(len(rows), nwords).copy()


def _rank_gf2_m4ri_numpy(
    rows: Sequence[int], cols: int, k: int, budget: Optional["Budget"]
) -> int:
    """Vectorized Four-Russians: uint64 words, per-block XOR tables.

    Per block of ``k`` columns: the block bits of every candidate row are
    extracted once (``bb``), pivot search and the block-bit/``applied``
    updates are whole-column vector operations, and one
    ``table[applied]`` gather-XOR finalizes all non-pivot rows. The
    pivot sequence is the reference's: first candidate row with the bit
    set, in current row order.
    """
    nrows = len(rows)
    a = _rows_to_words(rows, cols)
    nwords = a.shape[1]
    rank = 0
    base = 0
    for c0 in range(0, cols, k):
        w = min(k, cols - c0)
        nbelow = nrows - base
        wi = c0 >> 6
        sh = c0 & 63
        bb = a[base:, wi] >> _np.uint64(sh)
        if sh + w > 64 and wi + 1 < nwords:
            bb = bb | (a[base:, wi + 1] << _np.uint64(64 - sh))
        bb = (bb & _np.uint64((1 << w) - 1)).astype(_np.int64)
        applied = _np.zeros(nbelow, dtype=_np.int64)
        piv_vals = _np.zeros((w, nwords), dtype=_np.uint64)
        found = 0
        full = False
        for i in range(w):
            if budget is not None:
                budget.tick()
            bit = 1 << i
            hit = bb[found:] & bit
            pivot = found + int(hit.argmax())
            if not bb[pivot] & bit:
                continue
            if pivot != found:
                a[[base + found, base + pivot]] = a[[base + pivot, base + found]]
                bb[found], bb[pivot] = bb[pivot], bb[found]
                applied[found], applied[pivot] = applied[pivot], applied[found]
            val = a[base + found].copy()
            sel = int(applied[found])
            t = 0
            while sel:
                if sel & 1:
                    val ^= piv_vals[t]
                sel >>= 1
                t += 1
            piv_vals[found] = val
            tail = slice(found + 1, nbelow)
            m = (bb[tail] & bit) != 0
            bb_tail = bb[tail]
            bb_tail[m] ^= bb[found]
            applied_tail = applied[tail]
            applied_tail[m] |= 1 << found
            found += 1
            rank += 1
            if base + found == nrows:
                full = True
                break
        if found:
            a[base : base + found] = piv_vals[:found]
            # doubling build: table[2^t .. 2^(t+1)) = table[0 .. 2^t) ^ pivot t
            table = _np.zeros((1 << found, nwords), dtype=_np.uint64)
            size = 1
            for t in range(found):
                _np.bitwise_xor(table[:size], piv_vals[t], out=table[size : 2 * size])
                size *= 2
            if found < nbelow:
                body = a[base + found : base + nbelow]
                _np.bitwise_xor(body, table.take(applied[found:], axis=0), out=body)
            base += found
        if full:
            break
    return rank


def rank_gf2_m4ri(
    rows: List[int],
    cols: int,
    k: int = M4RI_DEFAULT_K,
    budget: Optional["Budget"] = None,
) -> int:
    """Four-Russians rank over GF(2) of already-packed rows.

    ``rows`` is the same packed big-int representation
    :func:`rank_gf2_packed` takes (and, like it, may be mutated).
    ``k`` is the block width (2^k-entry tables). With numpy the
    vectorized engine runs; without it the pure-python schedule does --
    both return the reference rank with reference budget-tick
    boundaries on every input.
    """
    _check_k(k)
    nrows = len(rows)
    if nrows == 0 or cols == 0:
        return 0
    if _np is not None:
        return _rank_gf2_m4ri_numpy(rows, cols, k, budget)
    return _rank_gf2_m4ri_python(rows, cols, k, budget)


def rank_gf2(matrix: Matrix, budget: Optional["Budget"] = None) -> int:
    """Rank of an integer matrix over GF(2) (entries taken mod 2).

    Equal to ``rank_mod_p(matrix, 2)`` on every input -- the tests pin
    exact equality over exhaustive small-matrix spaces and on the
    paper's M_n / E_n matrices -- while running word-parallel.
    """
    rows = len(matrix)
    cols = len(matrix[0]) if rows else 0
    return rank_gf2_packed(pack_rows(matrix), cols, budget)


def rank_gf2_four_russians(
    matrix: Matrix,
    k: int = M4RI_DEFAULT_K,
    budget: Optional["Budget"] = None,
) -> int:
    """Rank of an integer matrix over GF(2) via the Four-Russians engine."""
    rows = len(matrix)
    cols = len(matrix[0]) if rows else 0
    return rank_gf2_m4ri(pack_rows(matrix), cols, k, budget)
