"""GF(2) rank via word-packed bitset elimination.

The reference engine (:func:`repro.partitions.linalg._rank_mod_p_python`
at ``p = 2``) eliminates entry by entry: each pivot costs
O(rows x cols) Python-level multiply-subtract-mod operations. This
kernel packs every row into one Python big integer (bit ``c`` = column
``c``), so eliminating a row under a pivot is a *single* word-parallel
XOR -- CPython XORs 30-bit limbs in C, giving an honest factor of tens
on wide matrices while staying dependency-free.

Bit-identical contract: over GF(2) the rank and the per-column pivot
structure are mathematically determined, and the column loop here
mirrors the reference exactly -- the :class:`~repro.resilience.Budget`
is ticked once per pivot column *before* the pivot search, and the loop
breaks as soon as ``rows`` pivots are found -- so tick counts,
exhaustion boundaries, and (of course) the returned rank are equal to
the reference's on every input.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

if TYPE_CHECKING:  # runtime-import-free, like partitions.linalg
    from repro.resilience.budget import Budget

Matrix = Sequence[Sequence[int]]

__all__ = ["pack_rows", "rank_gf2", "rank_gf2_packed"]


def pack_rows(matrix: Matrix) -> List[int]:
    """Pack a matrix's rows mod 2 into big integers (bit c = column c)."""
    packed: List[int] = []
    for row in matrix:
        word = 0
        for c, x in enumerate(row):
            if int(x) & 1:
                word |= 1 << c
        packed.append(word)
    return packed


def rank_gf2_packed(
    rows: List[int], cols: int, budget: Optional["Budget"] = None
) -> int:
    """Rank over GF(2) of already-packed rows (destructive on ``rows``).

    ``budget`` is ticked once per pivot column, exactly like the
    reference elimination (see :func:`repro.partitions.linalg.rank_mod_p`).
    """
    nrows = len(rows)
    if nrows == 0 or cols == 0:
        return 0
    rank = 0
    pivot_row = 0
    for col in range(cols):
        if budget is not None:
            budget.tick()
        bit = 1 << col
        pivot = None
        for r in range(pivot_row, nrows):
            if rows[r] & bit:
                pivot = r
                break
        if pivot is None:
            continue
        rows[pivot_row], rows[pivot] = rows[pivot], rows[pivot_row]
        word = rows[pivot_row]
        for r in range(pivot_row + 1, nrows):
            if rows[r] & bit:
                rows[r] ^= word
        pivot_row += 1
        rank += 1
        if pivot_row == nrows:
            break
    return rank


def rank_gf2(matrix: Matrix, budget: Optional["Budget"] = None) -> int:
    """Rank of an integer matrix over GF(2) (entries taken mod 2).

    Equal to ``rank_mod_p(matrix, 2)`` on every input -- the tests pin
    exact equality over exhaustive small-matrix spaces and on the
    paper's M_n / E_n matrices -- while running word-parallel.
    """
    rows = len(matrix)
    cols = len(matrix[0]) if rows else 0
    return rank_gf2_packed(pack_rows(matrix), cols, budget)
