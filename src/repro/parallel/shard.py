"""Deterministic shard plans for fan-out over index ranges and seed streams.

A :class:`ShardPlan` splits the contiguous index range ``[0, total)`` into
``num_shards`` contiguous, non-overlapping shards whose sizes differ by at
most one, and derives one RNG seed per shard from a base seed with SHA-256
arithmetic (never ``hash()``, which is randomized across processes). Plans
are pure data: the same ``(total, num_shards, base_seed)`` triple produces
the same shards in every process, on every platform, forever -- which is
what makes sharded checkpoints resumable and sharded runs reproducible.

The plan also knows how to split a cooperative
:class:`repro.resilience.Budget` across its shards
(:func:`split_budget`): work units are divided evenly (remainder to the
earliest shards, preserving enumeration-order semantics) and the
wall-clock allowance is shared (every shard inherits the same remaining
deadline, since shards run concurrently, not sequentially).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.resilience.budget import Budget

__all__ = ["Shard", "ShardBudget", "ShardPlan", "derive_seed", "split_budget"]

#: Seeds live below 2**63 so they fit signed 64-bit RNG seed APIs.
_SEED_SPACE = 2**63


def derive_seed(base_seed: int, index: int) -> int:
    """A per-shard seed: SHA-256 of ``"{base_seed}:{index}"``, mod 2**63.

    Pure arithmetic on the inputs -- no process-randomized ``hash()`` --
    so worker processes and resumed runs derive identical streams.
    """
    digest = hashlib.sha256(f"{base_seed}:{index}".encode("ascii")).digest()
    return int.from_bytes(digest[:8], "big") % _SEED_SPACE


@dataclass(frozen=True)
class Shard:
    """One contiguous slice ``[start, stop)`` of the sharded index space."""

    index: int
    start: int
    stop: int
    seed: int

    @property
    def size(self) -> int:
        return self.stop - self.start

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop < self.start:
            raise ValueError(
                f"shard {self.index} has invalid range [{self.start}, {self.stop})"
            )


@dataclass(frozen=True)
class ShardBudget:
    """The picklable budget slice handed to one shard's worker.

    ``max_units`` caps the shard's work units (None = uncapped);
    ``wall_seconds`` is the remaining wall-clock allowance at dispatch
    time (None = no deadline). Workers rebuild a real
    :class:`repro.resilience.Budget` from this via :meth:`to_budget`.
    """

    max_units: Optional[int]
    wall_seconds: Optional[float]

    def to_budget(self) -> Optional[Budget]:
        if self.max_units is None and self.wall_seconds is None:
            return None
        return Budget(wall_seconds=self.wall_seconds, max_units=self.max_units)


class ShardPlan:
    """Contiguous, balanced, seed-annotated shards over ``[0, total)``.

    Parameters
    ----------
    total:
        Size of the index space (assignments, samples, primes, cells).
    num_shards:
        How many contiguous shards to cut. Clamped to ``total`` when
        ``total > 0`` (no empty shards); a ``total`` of 0 yields an
        empty plan.
    base_seed:
        Base for the per-shard derived seeds (see :func:`derive_seed`).
    """

    __slots__ = ("total", "base_seed", "_starts")

    def __init__(self, total: int, num_shards: int, base_seed: int = 0):
        if total < 0:
            raise ValueError(f"total must be >= 0, got {total}")
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.total = total
        self.base_seed = base_seed
        num_shards = min(num_shards, total) if total else 0
        starts: List[int] = []
        if num_shards:
            size, extra = divmod(total, num_shards)
            cursor = 0
            for i in range(num_shards):
                starts.append(cursor)
                cursor += size + (1 if i < extra else 0)
        self._starts = tuple(starts)

    # ------------------------------------------------------------------
    @classmethod
    def for_workers(
        cls,
        total: int,
        workers: int,
        shards_per_worker: int = 4,
        base_seed: int = 0,
    ) -> "ShardPlan":
        """A plan sized for a worker pool: ``workers * shards_per_worker``
        shards (clamped to ``total``), so stragglers rebalance."""
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if shards_per_worker < 1:
            raise ValueError(
                f"shards_per_worker must be >= 1, got {shards_per_worker}"
            )
        return cls(total, max(1, workers * shards_per_worker), base_seed=base_seed)

    @classmethod
    def from_starts(
        cls, total: int, starts: Sequence[int], base_seed: int = 0
    ) -> "ShardPlan":
        """Rebuild the exact plan stored in a checkpoint.

        ``starts`` must be strictly increasing, begin at 0, and stay
        below ``total`` -- the invariants :class:`ShardPlan` itself
        guarantees, revalidated here because checkpoints are data.
        """
        starts = tuple(int(s) for s in starts)
        if total < 0:
            raise ValueError(f"total must be >= 0, got {total}")
        if total == 0:
            if starts:
                raise ValueError("empty index space cannot have shard starts")
        else:
            if not starts or starts[0] != 0:
                raise ValueError(f"shard starts must begin at 0, got {starts[:1]}")
            for a, b in zip(starts, starts[1:]):
                if b <= a:
                    raise ValueError(f"shard starts must increase, got {a} -> {b}")
            if starts[-1] >= total:
                raise ValueError(
                    f"last shard start {starts[-1]} is outside [0, {total})"
                )
        plan = cls.__new__(cls)
        plan.total = total
        plan.base_seed = base_seed
        plan._starts = starts
        return plan

    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self._starts)

    @property
    def starts(self) -> Sequence[int]:
        return self._starts

    def shard(self, index: int) -> Shard:
        stop = (
            self._starts[index + 1]
            if index + 1 < len(self._starts)
            else self.total
        )
        return Shard(
            index=index,
            start=self._starts[index],
            stop=stop,
            seed=derive_seed(self.base_seed, index),
        )

    def shards(self) -> List[Shard]:
        return [self.shard(i) for i in range(self.num_shards)]

    def __len__(self) -> int:
        return self.num_shards

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardPlan(total={self.total}, num_shards={self.num_shards}, "
            f"base_seed={self.base_seed})"
        )


def split_budget(
    budget: Optional[Budget], sizes: Sequence[int]
) -> List[Optional[ShardBudget]]:
    """Split a parent budget across shards of the given sizes.

    * **Work units**: the parent's *remaining* units are divided evenly
      across the shards (remainder to the earliest shards), but no shard
      is handed more units than it has work -- the surplus cascades to
      later shards so a nearly-done resume still uses its full allowance.
    * **Wall clock**: every shard inherits the parent's full remaining
      wall allowance (shards run concurrently; a shared deadline is the
      faithful translation of "stop after S seconds").

    Returns one :class:`ShardBudget` (or None, when the parent is None)
    per shard. A parent with no remaining units yields zero-unit shard
    budgets, which workers treat as "exhausted before starting".
    """
    if budget is None:
        return [None] * len(sizes)
    remaining_units = budget.remaining_units()
    wall = budget.remaining_seconds()
    if remaining_units is None:
        return [ShardBudget(max_units=None, wall_seconds=wall) for _ in sizes]
    k = len(sizes)
    allocations: List[int] = []
    left = remaining_units
    for i, size in enumerate(sizes):
        shards_left = k - i
        share = -(-left // shards_left) if shards_left else 0  # ceil split
        allocation = min(size, share, left)
        left -= allocation
        allocations.append(allocation)
    # Cascade any stranded surplus (an early shard capped by its fair
    # share while a later, smaller shard was capped by its size) back to
    # shards still short of their work, earliest first -- conserving
    # units: sum(allocations) == min(remaining, sum(sizes)).
    if left:
        for i, size in enumerate(sizes):
            if left <= 0:
                break
            add = min(size - allocations[i], left)
            allocations[i] += add
            left -= add
    return [
        ShardBudget(max_units=allocation, wall_seconds=wall)
        for allocation in allocations
    ]
