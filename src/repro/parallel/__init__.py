"""repro.parallel -- deterministic sharded execution for the hot loops.

The package has three layers, each usable on its own:

* :mod:`repro.parallel.shard` -- pure-data :class:`ShardPlan` objects
  that cut an index range into contiguous, balanced, seed-annotated
  shards, plus :func:`split_budget` for cooperative budget propagation.
* :mod:`repro.parallel.merge` -- the order-invariant :class:`Monoid`
  merges every fan-out reduces with (min-keyed, count-sum, max, concat).
* :mod:`repro.parallel.executor` -- :class:`ParallelExecutor`, the
  process-pool map/reduce engine with a bit-identical in-process serial
  path at ``workers=1``, span stitching, and metrics.

Determinism contract: for every entry point threaded through this
package, the final report is a pure function of the problem inputs --
independent of worker count, completion order, and scheduling.
"""

from repro.parallel.executor import ParallelExecutor, default_workers, resolve_workers
from repro.parallel.merge import (
    MAX_INT,
    MIN_KEYED,
    Monoid,
    SUM_COUNTS,
    merge_concat,
    merge_counts,
    merge_min_keyed,
)
from repro.parallel.shard import (
    Shard,
    ShardBudget,
    ShardPlan,
    derive_seed,
    split_budget,
)

__all__ = [
    "MAX_INT",
    "MIN_KEYED",
    "Monoid",
    "ParallelExecutor",
    "SUM_COUNTS",
    "Shard",
    "ShardBudget",
    "ShardPlan",
    "default_workers",
    "derive_seed",
    "merge_concat",
    "merge_counts",
    "merge_min_keyed",
    "resolve_workers",
    "split_budget",
]
