"""Order-invariant monoid merges for sharded results.

Every fan-out in :mod:`repro.parallel` reduces shard results with an
associative, commutative-where-it-matters merge, so the answer is
independent of worker scheduling:

* :data:`MIN_KEYED` -- the exhaustive search's ``(error, index)``
  min-merge: ties break toward the **lowest enumeration index**, which is
  exactly what the serial loop's strict ``<`` update produces.
* :func:`merge_counts` -- the sampled-information joint-histogram sum.
* :data:`MAX_INT` -- the multi-prime rank certificate's max-merge.
* :func:`merge_concat` -- ordered concatenation for sweep curves (shard
  results are concatenated in *shard index* order by the callers, making
  the result independent of completion order).

:class:`Monoid` is the tiny algebraic wrapper the executor-side reducers
share; the associativity/commutativity property tests live in
``tests/parallel/test_merge.py``.

Monoids are also addressable **by name** through a process-wide registry
(:func:`register_monoid` / :func:`get_monoid`), so layers that fold
serialized shard payloads -- the population sketches of
:mod:`repro.obs.sketches`, the fault-sweep harness -- can look their
merge up without import cycles. The built-ins register under
``min_keyed`` / ``sum_counts`` / ``max_int``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, TypeVar

__all__ = [
    "MAX_INT",
    "MIN_KEYED",
    "Monoid",
    "SUM_COUNTS",
    "get_monoid",
    "merge_concat",
    "merge_counts",
    "merge_min_keyed",
    "monoid_names",
    "register_monoid",
]

T = TypeVar("T")


@dataclass(frozen=True)
class Monoid:
    """An associative merge with an identity element.

    ``identity`` is a zero-argument factory (mutable identities like
    ``{}`` must be fresh per fold); ``combine`` folds two values into
    one. :meth:`fold` reduces any iterable, tolerating ``None`` entries
    (skipped shards) transparently.
    """

    identity: Callable[[], Any]
    combine: Callable[[Any, Any], Any]

    def fold(self, values: Iterable[Any]) -> Any:
        acc = self.identity()
        for value in values:
            if value is None:
                continue
            acc = self.combine(acc, value)
        return acc


# ----------------------------------------------------------------------
# min-merge keyed by (score, enumeration index)
# ----------------------------------------------------------------------
def merge_min_keyed(
    a: Optional[Tuple[Any, ...]], b: Optional[Tuple[Any, ...]]
) -> Optional[Tuple[Any, ...]]:
    """Min of two ``(score, index, ...)`` tuples; ``None`` = no candidate.

    Comparing the tuples directly makes the earliest index win ties,
    matching the serial loop's first-strict-improvement rule regardless
    of the order shards complete in.
    """
    if a is None:
        return b
    if b is None:
        return a
    return a if a[:2] <= b[:2] else b


MIN_KEYED = Monoid(identity=lambda: None, combine=merge_min_keyed)


# ----------------------------------------------------------------------
# joint-histogram sum
# ----------------------------------------------------------------------
def merge_counts(a: Dict[Any, int], b: Dict[Any, int]) -> Dict[Any, int]:
    """Key-wise integer sum of two count dictionaries (``a`` is mutated)."""
    for key, count in b.items():
        a[key] = a.get(key, 0) + count
    return a


SUM_COUNTS = Monoid(identity=dict, combine=merge_counts)


# ----------------------------------------------------------------------
# max-merge
# ----------------------------------------------------------------------
MAX_INT = Monoid(identity=lambda: 0, combine=max)


# ----------------------------------------------------------------------
# ordered concatenation
# ----------------------------------------------------------------------
def merge_concat(parts: Sequence[Optional[Sequence[T]]]) -> List[T]:
    """Concatenate shard slices **in shard order**, skipping ``None``.

    The caller indexes ``parts`` by shard, so completion order cannot
    leak into the result.
    """
    out: List[T] = []
    for part in parts:
        if part is not None:
            out.extend(part)
    return out


# ----------------------------------------------------------------------
# the process-wide monoid registry
# ----------------------------------------------------------------------
_MONOIDS: Dict[str, Monoid] = {}


def register_monoid(name: str, monoid: Monoid) -> Monoid:
    """Register ``monoid`` under ``name`` (idempotent for the same
    object; a *different* monoid under a taken name is an error)."""
    existing = _MONOIDS.get(name)
    if existing is not None and existing is not monoid:
        raise ValueError(f"monoid {name!r} is already registered")
    _MONOIDS[name] = monoid
    return monoid


def get_monoid(name: str) -> Monoid:
    """Look a registered monoid up by name."""
    try:
        return _MONOIDS[name]
    except KeyError:
        known = ", ".join(sorted(_MONOIDS)) or "<none>"
        raise KeyError(f"no monoid registered as {name!r} (known: {known})") from None


def monoid_names() -> List[str]:
    """The registered names, sorted."""
    return sorted(_MONOIDS)


register_monoid("min_keyed", MIN_KEYED)
register_monoid("sum_counts", SUM_COUNTS)
register_monoid("max_int", MAX_INT)
