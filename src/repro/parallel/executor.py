"""The deterministic fan-out engine behind every ``--workers N`` flag.

:class:`ParallelExecutor` maps a **module-level, picklable** task
function over a list of payloads:

* ``workers <= 1`` runs everything in-process, in payload order, with no
  pool, no pickling, and no semantic difference from a plain ``for``
  loop -- the serial entry points stay bit-identical.
* ``workers > 1`` dispatches through a
  :class:`concurrent.futures.ProcessPoolExecutor` and streams results
  back as they complete. Results are *returned* in payload order; the
  optional ``on_result`` callback fires in completion order (callers use
  it for shard-aware checkpointing and budget accounting, both of which
  are order-invariant by construction).

Observability mirrors the rest of the repo and is fully opt-in:

* **Spans** -- the whole map runs under a ``parallel.map`` span with one
  ``parallel.shard`` child per task. In the serial path the task's own
  spans nest naturally; in the pooled path each worker records its own
  span tree, which is shipped back and **stitched** under the matching
  ``parallel.shard`` node, so ``repro spans`` shows one tree spanning
  the whole fan-out.
* **Metrics** -- ``parallel.shards_dispatched`` / ``_completed``
  counters, a ``parallel.shard_seconds`` histogram of worker-side task
  times, a ``parallel.merge_seconds`` histogram (via :meth:`reduce`),
  and a ``parallel.worker_utilization`` gauge (busy seconds / (workers x
  wall seconds)).

Interrupt/budget contract: a ``KeyboardInterrupt`` or any exception from
a task cancels all not-yet-started tasks (``cancel_futures=True``) and
propagates; completed results already handed to ``on_result`` stay
valid, which is what lets callers flush one consistent checkpoint on the
way out.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.spans import Span, SpanRecorder, get_recorder, span, use_recorder
from repro.obs.stream import get_bus

__all__ = ["ParallelExecutor", "default_workers", "resolve_workers"]


def default_workers() -> int:
    """A sensible pool size for this machine: ``os.cpu_count()`` (min 1)."""
    return max(1, os.cpu_count() or 1)


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a ``--workers`` value: None/0 -> auto, negatives invalid."""
    if workers is None or workers == 0:
        return default_workers()
    if workers < 0:
        raise ValueError(f"workers must be >= 1 (or 0 for auto), got {workers}")
    return workers


def _timed_task(fn: Callable[[Any], Any], capture_spans: bool, payload: Any):
    """Worker-side wrapper: time the task and optionally record its spans.

    Returns ``(value, elapsed_seconds, span_roots_or_None)``. Runs in the
    worker process, so ``fn`` and ``payload`` must be picklable; the
    returned span roots are plain JSON-ready dicts.
    """
    start = time.perf_counter()
    if capture_spans:
        recorder = SpanRecorder()
        with use_recorder(recorder):
            value = fn(payload)
        roots = [root.as_dict() for root in recorder.roots]
    else:
        value = fn(payload)
        roots = None
    return value, time.perf_counter() - start, roots


def _revive_span(node: Dict[str, Any]) -> Span:
    """Rebuild a display-only :class:`Span` from a worker's payload dict.

    Timing is reconstructed as ``[0, duration)`` on a local axis: the
    stitched subtree keeps its internal proportions (duration/self/children)
    without pretending to share the parent process's clock.
    """
    revived = Span(str(node.get("name", "?")), span_id=-1, attrs=node.get("attrs"))
    revived.start = 0.0
    duration = node.get("duration_seconds", 0.0)
    revived.end = float(duration) if isinstance(duration, (int, float)) else 0.0
    revived.children = [
        _revive_span(child)
        for child in node.get("children", [])
        if isinstance(child, dict)
    ]
    return revived


class ParallelExecutor:
    """Deterministic process-pool fan-out with an in-process serial path.

    Parameters
    ----------
    workers:
        Pool size. ``<= 1`` means the in-process serial path (the
        default, and the path every golden test pins).
    metrics:
        Explicit registry; falls back to the process-wide one
        (:func:`repro.obs.get_registry`), and records nothing when
        neither is installed.
    """

    def __init__(self, workers: int = 1, metrics: Optional[MetricsRegistry] = None):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._metrics = metrics

    # ------------------------------------------------------------------
    def _registry(self) -> Optional[MetricsRegistry]:
        return self._metrics if self._metrics is not None else get_registry()

    def map(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        on_result: Optional[Callable[[int, Any], None]] = None,
        span_name: str = "parallel.map",
    ) -> List[Any]:
        """Apply ``fn`` to every payload; return results in payload order.

        ``on_result(index, value)`` fires as results arrive (payload
        order in the serial path, completion order in the pooled path).
        ``fn`` must be a module-level function when ``workers > 1``.

        When an :class:`repro.obs.stream.EventBus` is installed the map
        publishes one ``parallel.shard`` event per completed shard (in
        the same order ``on_result`` fires) and a final ``parallel.map``
        event; with no bus the only cost is one ``None`` check.
        """
        metrics = self._registry()
        bus = get_bus()
        wall_start = time.perf_counter()
        with span(span_name, workers=self.workers, shards=len(payloads)):
            if metrics is not None:
                metrics.counter("parallel.shards_dispatched").inc(len(payloads))
            if self.workers <= 1 or len(payloads) <= 1:
                results = self._map_serial(fn, payloads, on_result, metrics, bus)
            else:
                results = self._map_pooled(fn, payloads, on_result, metrics, bus)
        if bus is not None:
            bus.publish(
                "parallel.map",
                {
                    "span": span_name,
                    "shards": len(payloads),
                    "workers": self.workers,
                    "wall_seconds": time.perf_counter() - wall_start,
                },
            )
        if metrics is not None:
            wall = time.perf_counter() - wall_start
            busy = sum(r[1] for r in results)
            effective = min(self.workers, max(1, len(payloads)))
            metrics.gauge("parallel.worker_utilization").set(
                busy / (effective * wall) if wall > 0 else 0.0
            )
        return [value for value, _elapsed, _roots in results]

    # ------------------------------------------------------------------
    def _map_serial(self, fn, payloads, on_result, metrics, bus=None):
        results = []
        for index, payload in enumerate(payloads):
            with span("parallel.shard", shard=index):
                start = time.perf_counter()
                value = fn(payload)
                elapsed = time.perf_counter() - start
            results.append((value, elapsed, None))
            if metrics is not None:
                metrics.counter("parallel.shards_completed").inc()
                metrics.histogram("parallel.shard_seconds").observe(elapsed)
            if bus is not None:
                bus.publish(
                    "parallel.shard", {"shard": index, "wall_seconds": elapsed}
                )
            if on_result is not None:
                on_result(index, value)
        return results

    def _map_pooled(self, fn, payloads, on_result, metrics, bus=None):
        capture = get_recorder() is not None
        recorder = get_recorder()
        results: List[Optional[tuple]] = [None] * len(payloads)
        with ProcessPoolExecutor(
            max_workers=min(self.workers, len(payloads))
        ) as pool:
            try:
                futures = {
                    pool.submit(_timed_task, fn, capture, payload): index
                    for index, payload in enumerate(payloads)
                }
                pending = set(futures)
                while pending:
                    done, pending = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        index = futures[future]
                        value, elapsed, roots = future.result()
                        results[index] = (value, elapsed, roots)
                        if metrics is not None:
                            metrics.counter("parallel.shards_completed").inc()
                            metrics.histogram("parallel.shard_seconds").observe(
                                elapsed
                            )
                        if recorder is not None:
                            shard_span = recorder.start(
                                "parallel.shard", shard=index, worker_seconds=elapsed
                            )
                            if roots:
                                shard_span.children.extend(
                                    _revive_span(root) for root in roots
                                )
                            recorder.finish(shard_span)
                        if bus is not None:
                            bus.publish(
                                "parallel.shard",
                                {"shard": index, "wall_seconds": elapsed},
                            )
                        if on_result is not None:
                            on_result(index, value)
            except BaseException:
                # Cancel what has not started; let running tasks finish
                # (they are pure functions whose results we now discard),
                # then propagate so callers can flush checkpoints.
                pool.shutdown(wait=False, cancel_futures=True)
                raise
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def reduce(
        self,
        merge: Callable[[Any, Any], Any],
        values: Sequence[Any],
        initial: Any,
        span_name: str = "parallel.merge",
    ) -> Any:
        """Fold shard results in **shard order**, timing the merge."""
        metrics = self._registry()
        start = time.perf_counter()
        with span(span_name, shards=len(values)):
            acc = initial
            for value in values:
                if value is None:
                    continue
                acc = merge(acc, value)
        if metrics is not None:
            metrics.histogram("parallel.merge_seconds").observe(
                time.perf_counter() - start
            )
        return acc
