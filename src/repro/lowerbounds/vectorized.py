"""Vectorized (numpy) scoring kernel for the exhaustive universal-bound search.

The pure-python inner loop of
:func:`repro.lowerbounds.exhaustive.universal_bound_id_oblivious` scores
one broadcast assignment at a time: for every one-cycle cover, count the
disconnecting directed pairs the assignment *fools* (head IDs and tail
IDs agree under the assignment), then charge the optimal output rule the
cheaper of its YES-side mass and its fooled NO-side mass. This module
scores **blocks** of assignments at once:

* assignments are addressed by their global enumeration index in
  ``itertools.product(alphabet, repeat=n)`` order (most-significant
  digit first) and materialized as a ``(block, n)`` digit matrix with
  one ``divmod``-free broadcasted integer divide;
* the per-cover pair tables ``(v1, u1, v2, u2)`` are precomputed once,
  and each cover's fooled count is a vectorized
  ``(a[:, v1] == a[:, v2]) & (a[:, u1] == a[:, u2])`` row-sum;
* the forced error accumulates **per cover, in cover order**, with the
  exact elementwise float operations of the serial scorer
  (``error += min(0.5/|V1|, 0.5 * count / total)``), so the kernel is
  **bit-identical** to the pure-python path -- not merely close. The
  cross-check tests assert exact float equality over the full
  enumerable space at small n.

numpy is optional: :data:`HAVE_NUMPY` is False when the import fails and
callers (the sharded search, the CLI auto-enable logic) fall back to the
pure-python scanner. Nothing in this module hard-requires numpy at
import time.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.errors import BudgetExceededError

try:  # optional accelerator; everything falls back without it
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is installed in CI
    _np = None

__all__ = ["HAVE_NUMPY", "ScoreTables", "block_scores", "scan_assignments"]

#: True when numpy imported; the sharded search checks this to auto-enable.
HAVE_NUMPY = _np is not None

#: (best_error, best_global_index) -- None until a block has been scored.
Best = Optional[Tuple[float, int]]


def _require_numpy() -> None:
    if _np is None:
        raise RuntimeError(
            "numpy is not available; use the pure-python assignment scanner"
        )


def _digit_block(base: int, n: int, start: int, stop: int):
    """Digit matrix ``(stop-start, n)`` for global indices ``[start, stop)``.

    Row ``i`` holds the base-``base`` digits of ``start + i``,
    most-significant first -- exactly the ``itertools.product`` order the
    serial enumeration walks.
    """
    idx = _np.arange(start, stop, dtype=_np.int64)
    pows = base ** _np.arange(n - 1, -1, -1, dtype=_np.int64)
    return (idx[:, None] // pows[None, :]) % base


class ScoreTables:
    """Precomputed pair tables for one ``(n, alphabet, covers)`` problem.

    ``canon`` maps each digit to the first digit carrying the same
    symbol, so duplicate alphabet entries (legal, if pointless) compare
    equal exactly as the string comparison in the serial scorer does.
    Covers with no disconnecting pairs are dropped from the tables: their
    serial contribution is an exact ``+0.0`` per assignment.
    """

    __slots__ = ("n", "base", "num_covers", "canon", "cover_pairs")

    def __init__(
        self,
        n: int,
        alphabet: Sequence[str],
        covers_and_pairs: Sequence[Tuple[Any, Sequence[Tuple]]],
    ):
        _require_numpy()
        self.n = n
        self.base = len(alphabet)
        self.num_covers = len(covers_and_pairs)
        symbols = list(alphabet)
        self.canon = _np.array(
            [symbols.index(s) for s in symbols], dtype=_np.int64
        )
        self.cover_pairs: List[Tuple] = []
        for _cover, pairs in covers_and_pairs:
            if not pairs:
                continue
            v1 = _np.array([p[0][0] for p in pairs], dtype=_np.int64)
            u1 = _np.array([p[0][1] for p in pairs], dtype=_np.int64)
            v2 = _np.array([p[1][0] for p in pairs], dtype=_np.int64)
            u2 = _np.array([p[1][1] for p in pairs], dtype=_np.int64)
            self.cover_pairs.append((v1, u1, v2, u2))

    # ------------------------------------------------------------------
    def score_block(self, digits) -> Tuple[Any, Any]:
        """(forced errors, fooled totals) for a ``(B, n)`` digit block.

        Float semantics replicate the serial scorer operation-for-
        operation: ``yes_cost = (0.5 * count) / total`` and the error
        accumulates cover-by-cover in enumeration order, so results are
        bit-identical to :func:`~repro.lowerbounds.exhaustive
        ._forced_error_and_fooled`.
        """
        a = self.canon[digits]
        block = a.shape[0]
        per_yes = 0.5 / self.num_covers
        num_tables = len(self.cover_pairs)
        counts = _np.empty((block, num_tables), dtype=_np.int64)
        for j, (v1, u1, v2, u2) in enumerate(self.cover_pairs):
            counts[:, j] = (
                (a[:, v1] == a[:, v2]) & (a[:, u1] == a[:, u2])
            ).sum(axis=1)
        total = counts.sum(axis=1)
        nonzero = total > 0
        safe = _np.where(nonzero, total, 1).astype(_np.float64)
        err = _np.zeros(block, dtype=_np.float64)
        for j in range(num_tables):
            yes_cost = (0.5 * counts[:, j].astype(_np.float64)) / safe
            yes_cost = _np.where(nonzero, yes_cost, 0.0)
            err += _np.minimum(per_yes, yes_cost)
        return err, total


def block_scores(
    n: int,
    alphabet: Sequence[str],
    covers_and_pairs: Sequence[Tuple[Any, Sequence[Tuple]]],
    start: int,
    stop: int,
):
    """(errors, fooled) arrays for global indices ``[start, stop)``.

    One-shot convenience for cross-check tests; the sharded search uses
    :func:`scan_assignments`, which reuses one :class:`ScoreTables` and
    tracks the running best across blocks.
    """
    _require_numpy()
    tables = ScoreTables(n, alphabet, covers_and_pairs)
    return tables.score_block(_digit_block(len(alphabet), n, start, stop))


def scan_assignments(
    n: int,
    alphabet: Sequence[str],
    covers_and_pairs: Sequence[Tuple[Any, Sequence[Tuple]]],
    start: int,
    stop: int,
    budget=None,
    block_size: int = 1024,
    sketches=None,
) -> Tuple[Best, int, int, int, bool]:
    """Scan ``[start, stop)`` in blocks; return the strict-first minimum.

    Returns ``(best, next_index, enumerated, fooled_total, exhausted)``
    where ``best`` is ``(error, global_index)`` with ties broken toward
    the lowest index (the serial loop's first-strict-improvement rule),
    ``next_index`` is where a resume should continue, and ``exhausted``
    reports whether ``budget`` (a :class:`repro.resilience.Budget`)
    tripped before ``stop``. The budget is ticked once per assignment
    (in block-sized batches), so ``--max-assignments`` accounting is
    identical to the serial path's.

    ``sketches`` (an ``(error quantile sketch, fooled moments sketch)``
    pair from :mod:`repro.obs.sketches`) is updated in place with one
    observation per enumerated assignment. Block errors are bit-identical
    to the serial scorer's, and the per-block values are fed through
    ``numpy.unique`` as count-weighted updates, so the resulting sketch
    states equal the pure-python scanner's exactly (sketch states are
    pure functions of the observed multiset).
    """
    _require_numpy()
    tables = ScoreTables(n, alphabet, covers_and_pairs)
    best: Best = None
    pos = start
    enumerated = 0
    fooled_total = 0
    while pos < stop:
        limit = min(block_size, stop - pos)
        if budget is not None:
            remaining = budget.remaining_units()
            if remaining is not None:
                if remaining <= 0:
                    return best, pos, enumerated, fooled_total, True
                limit = min(limit, remaining)
        err, fooled = tables.score_block(
            _digit_block(len(alphabet), n, pos, pos + limit)
        )
        if sketches is not None:
            err_sketch, fooled_sketch = sketches
            values, counts = _np.unique(err, return_counts=True)
            for value, count in zip(values.tolist(), counts.tolist()):
                err_sketch.update(value, int(count))
            values, counts = _np.unique(fooled, return_counts=True)
            for value, count in zip(values.tolist(), counts.tolist()):
                fooled_sketch.update(float(value), int(count))
        i = int(_np.argmin(err))  # first occurrence of the block minimum
        value = float(err[i])
        if best is None or value < best[0]:
            best = (value, pos + i)
        pos += limit
        enumerated += limit
        fooled_total += int(fooled.sum())
        if budget is not None:
            try:
                budget.tick(units=limit)
            except BudgetExceededError:
                return best, pos, enumerated, fooled_total, pos < stop
    return best, pos, enumerated, fooled_total, False
