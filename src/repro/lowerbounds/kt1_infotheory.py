"""The Theorem 4.5 engine: Monte-Carlo KT-1 bound for ConnectedComponents.

Combines the information-theoretic PartitionComp machinery
(:mod:`repro.information.partition_comp`) with the Section 4.3 simulation:
any eps-error ConnectedComponents algorithm in KT-1 BCC(1), run on the
reduction graphs, yields an eps-error PartitionComp protocol whose
information content is at least (1 - eps) log2 B_n, so its communication
-- t rounds * 8n bits -- is Omega(n log n), forcing t = Omega(log n).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.randomness import PublicCoin
from repro.information.partition_comp import (
    PartitionCompReport,
    evaluate_protocol,
    information_lower_bound,
)
from repro.partitions.bell import bell_number
from repro.twoparty.simulation import BCCSimulationProtocol, PARTITION, simulation_bits_per_round


@dataclass(frozen=True)
class KT1InformationBound:
    """One row of the Theorem 4.5 accounting."""

    ground_set: int
    error_rate: float
    information_bound_bits: float  # (1 - eps) log2 B_n
    bits_per_round: int
    round_lower_bound: float

    @property
    def normalized(self) -> float:
        return self.round_lower_bound / math.log2(4 * self.ground_set)


def components_round_bound(n: int, error_rate: float = 1 / 3) -> KT1InformationBound:
    """The Theorem 4.5 bound, numerically, for ground set [n]."""
    info = information_lower_bound(n, error_rate)
    bits = simulation_bits_per_round(PARTITION, n)
    return KT1InformationBound(
        ground_set=n,
        error_rate=error_rate,
        information_bound_bits=info,
        bits_per_round=bits,
        round_lower_bound=info / bits,
    )


def information_bound_table(
    ns: List[int], error_rate: float = 1 / 3
) -> List[KT1InformationBound]:
    return [components_round_bound(n, error_rate) for n in ns]


def measure_bcc_algorithm_information(
    factory,
    n: int,
    rounds: int,
    coin: Optional[PublicCoin] = None,
) -> PartitionCompReport:
    """Evaluate the Theorem 4.5 quantities on a *real* KT-1 BCC algorithm.

    The algorithm is wrapped in the Section 4.3 simulation in "components"
    mode and run against the full hard distribution (P_A uniform, P_B the
    finest partition). The report's mutual information then lower-bounds
    the protocol's -- hence the algorithm's -- communication.
    """
    protocol = BCCSimulationProtocol(
        PARTITION, factory, rounds, mode="components", coin=coin
    )
    return evaluate_protocol(protocol, n)
