"""Exhaustive universal lower bounds over a restricted algorithm class.

Theorems 3.1/3.5 quantify over *all* t-round algorithms; the engines in
:mod:`repro.lowerbounds.kt0_constant_error` measure the forced error of
any *given* algorithm. This module closes the remaining gap at miniature
scale: it enumerates an entire (restricted but natural) class of
algorithms and minimizes the forced error over the class, producing a
statement with a real universal quantifier:

    every ID-oblivious 1-round KT-0 algorithm has forced error >= c
    on the uniform V1/V2 distribution at n = 6 (or 7),

where *ID-oblivious* means the single broadcast character of a vertex is a
function of its ID alone (the natural first-round behavior: at time 0 a
KT-0 vertex knows little else -- its input-port set is the only other
signal, and on 2-regular instances with canonical wirings it varies just
as predictably). The output rule is left fully adversarial: for each
broadcast assignment the engine grants the *best possible* output rule
subject only to the indistinguishability constraints of Lemma 3.4, so the
resulting minimum is a true lower bound for the class.

The computation: for each one-cycle cover, the disconnecting independent
directed pairs are precomputed once (they do not depend on the
algorithm); a broadcast assignment f activates the pairs whose head IDs
and tail IDs agree under f, and the optimal output rule pays, per
one-cycle instance, the cheaper of (its own YES-side mass) and (the mass
of its fooled crossed NO-instances).
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import BudgetExceededError, CheckpointError
from repro.indist.graph_builder import cross_cover
from repro.instances.enumeration import CycleCover, enumerate_one_cycle_covers
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.spans import span
from repro.resilience.budget import Budget
from repro.resilience.checkpoint import Checkpointer, read_checkpoint

#: Checkpoint ``kind`` tag for this search (see repro.resilience.checkpoint).
EXHAUSTIVE_CHECKPOINT_KIND = "exhaustive"

#: A directed pair of edges eligible for a disconnecting crossing.
DirectedPair = Tuple[Tuple[int, int], Tuple[int, int]]


def disconnecting_pairs(cover: CycleCover) -> List[DirectedPair]:
    """All independent directed pairs whose crossing splits the cycle."""
    directed = []
    for u, v in sorted(cover.edges):
        directed.append((u, v))
        directed.append((v, u))
    out: List[DirectedPair] = []
    for e1, e2 in itertools.combinations(directed, 2):
        crossed = cross_cover(cover, e1, e2)
        if crossed is not None and crossed.num_cycles == 2:
            out.append((e1, e2))
    return out


@dataclass(frozen=True)
class UniversalBoundReport:
    """Result of the exhaustive minimization."""

    n: int
    class_size: int
    minimum_forced_error: float
    worst_assignment: Tuple[str, ...]  # the broadcast character per vertex ID

    @property
    def is_constant(self) -> bool:
        return self.minimum_forced_error >= 0.1


def forced_error_of_assignment(
    n: int,
    assignment: Sequence[str],
    covers_and_pairs: List[Tuple[CycleCover, List[DirectedPair]]],
) -> float:
    """Forced error of the best output rule for one broadcast assignment."""
    return _forced_error_and_fooled(n, assignment, covers_and_pairs)[0]


def _forced_error_and_fooled(
    n: int,
    assignment: Sequence[str],
    covers_and_pairs: List[Tuple[CycleCover, List[DirectedPair]]],
) -> Tuple[float, int]:
    """(forced error, total fooled pairs) for one broadcast assignment.

    The fooled-pair total falls out of the error computation for free;
    keeping it visible lets the instrumented search count fooled
    instances without a second pass over the pair lists.
    """
    v1_count = len(covers_and_pairs)
    fooled_counts = []
    for _cover, pairs in covers_and_pairs:
        count = 0
        for (v1, u1), (v2, u2) in pairs:
            if assignment[v1] == assignment[v2] and assignment[u1] == assignment[u2]:
                count += 1
        fooled_counts.append(count)
    total_fooled = sum(fooled_counts)
    per_yes_instance = 0.5 / v1_count
    error = 0.0
    for count in fooled_counts:
        if total_fooled:
            yes_cost = 0.5 * count / total_fooled  # answer YES: err on fooled
        else:
            yes_cost = 0.0
        error += min(per_yes_instance, yes_cost)
    return error, total_fooled


def universal_bound_id_oblivious(
    n: int,
    alphabet: Sequence[str] = ("", "0", "1"),
    metrics: Optional[MetricsRegistry] = None,
    budget: Optional[Budget] = None,
    checkpoint_path: Optional[str] = None,
    checkpoint_every: int = 256,
    checkpoint_seconds: float = 2.0,
    resume: Optional[str] = None,
) -> UniversalBoundReport:
    """Minimize forced error over every ID-oblivious 1-round algorithm.

    The class has |alphabet|^n members; n = 6 gives 729, n = 7 gives 2187
    -- all enumerated. The returned minimum is the universal lower bound
    for the class.

    When ``metrics`` is given (or a registry is installed process-wide
    via :func:`repro.obs.use_registry`), the search records enumeration
    throughput (``exhaustive.assignments_enumerated`` and the
    ``exhaustive.instances_per_sec`` gauge) and fooled-instance counts;
    the fully-disabled path keeps its original lean loop and pays nothing.

    Resilience (all opt-in):

    * ``budget`` -- a :class:`repro.resilience.Budget` ticked once per
      assignment; exhaustion raises
      :class:`~repro.errors.BudgetExceededError` carrying the best-so-far
      partial :class:`UniversalBoundReport` (after flushing a final
      checkpoint when one is configured).
    * ``checkpoint_path`` -- write atomic, resumable JSON checkpoints
      (kind ``"exhaustive"``) every ``checkpoint_every`` assignments /
      ``checkpoint_seconds`` seconds. ``KeyboardInterrupt`` (SIGINT, or
      SIGTERM under :func:`repro.resilience.graceful_interrupts`)
      flushes a final checkpoint before propagating.
    * ``resume`` -- path to a previous checkpoint; the search validates
      the (n, alphabet) params and continues from the stored enumeration
      index. Assignment order is deterministic, so an interrupted +
      resumed search returns exactly the report of an uninterrupted one.

    When a :class:`repro.obs.SpanRecorder` is installed (via
    :func:`repro.obs.use_recorder`), the search additionally emits an
    ``exhaustive.search`` span with ``exhaustive.precompute_pairs`` and
    ``exhaustive.enumerate`` children; with no recorder the only cost is
    one module-level check per phase (never per assignment).
    """
    with span("exhaustive.search", n=n, class_size=len(alphabet) ** n):
        return _universal_bound_impl(
            n,
            alphabet,
            metrics,
            budget,
            checkpoint_path,
            checkpoint_every,
            checkpoint_seconds,
            resume,
        )


def _universal_bound_impl(
    n: int,
    alphabet: Sequence[str],
    metrics: Optional[MetricsRegistry],
    budget: Optional[Budget],
    checkpoint_path: Optional[str],
    checkpoint_every: int,
    checkpoint_seconds: float,
    resume: Optional[str],
) -> UniversalBoundReport:
    if metrics is None:
        metrics = get_registry()
    with span("exhaustive.precompute_pairs"):
        covers_and_pairs = [
            (cover, disconnecting_pairs(cover))
            for cover in enumerate_one_cycle_covers(n)
        ]
    params = {"n": n, "alphabet": list(alphabet)}

    start_index = 0
    best: Optional[float] = None
    best_assignment: Tuple[str, ...] = ()
    enumerated = 0
    fooled_total = 0
    if resume is not None:
        payload = read_checkpoint(resume, kind=EXHAUSTIVE_CHECKPOINT_KIND, params=params)
        state = payload["state"]
        try:
            start_index = int(state["next_index"])
            best = None if state["best"] is None else float(state["best"])
            best_assignment = tuple(state["best_assignment"])
            enumerated = int(state["enumerated"])
            fooled_total = int(state["fooled_total"])
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"checkpoint {resume!r} has malformed exhaustive state: {exc}"
            ) from exc

    resilient = budget is not None or checkpoint_path is not None
    start = time.perf_counter() if (metrics is not None or resilient) else 0.0

    if metrics is None and not resilient:
        # The original lean loop: nothing per-iteration but the math.
        with span("exhaustive.enumerate", resilient=False):
            for assignment in itertools.product(alphabet, repeat=n):
                err = forced_error_of_assignment(n, assignment, covers_and_pairs)
                if best is None or err < best:
                    best = err
                    best_assignment = assignment
        return UniversalBoundReport(
            n=n,
            class_size=len(alphabet) ** n,
            minimum_forced_error=best if best is not None else 0.0,
            worst_assignment=best_assignment,
        )

    index = start_index
    checkpointer: Optional[Checkpointer] = None
    if checkpoint_path is not None:
        def _state() -> Dict[str, object]:
            return {
                "next_index": index,
                "best": best,
                "best_assignment": list(best_assignment),
                "enumerated": enumerated,
                "fooled_total": fooled_total,
            }

        checkpointer = Checkpointer(
            checkpoint_path,
            EXHAUSTIVE_CHECKPOINT_KIND,
            params,
            _state,
            every_units=checkpoint_every,
            every_seconds=checkpoint_seconds,
        )

    def _partial() -> UniversalBoundReport:
        return UniversalBoundReport(
            n=n,
            class_size=len(alphabet) ** n,
            minimum_forced_error=best if best is not None else 0.0,
            worst_assignment=best_assignment,
        )

    iterator = itertools.product(alphabet, repeat=n)
    if start_index:
        iterator = itertools.islice(iterator, start_index, None)
    with span("exhaustive.enumerate", resilient=resilient, start_index=start_index):
        try:
            for assignment in iterator:
                err, fooled = _forced_error_and_fooled(n, assignment, covers_and_pairs)
                index += 1
                enumerated += 1
                fooled_total += fooled
                if best is None or err < best:
                    best = err
                    best_assignment = assignment
                if checkpointer is not None:
                    checkpointer.maybe_write()
                if budget is not None:
                    budget.tick(partial=None)
        except BudgetExceededError as exc:
            if checkpointer is not None:
                checkpointer.flush()
            raise BudgetExceededError(
                str(exc), partial=_partial(), checkpoint_path=checkpoint_path
            ) from exc
        except KeyboardInterrupt:
            if checkpointer is not None:
                checkpointer.flush()
            raise
        if checkpointer is not None:
            checkpointer.flush()

    if metrics is not None:
        elapsed = time.perf_counter() - start
        metrics.counter("exhaustive.searches").inc()
        metrics.counter("exhaustive.covers_enumerated").inc(len(covers_and_pairs))
        metrics.counter("exhaustive.disconnecting_pairs").inc(
            sum(len(pairs) for _cover, pairs in covers_and_pairs)
        )
        metrics.counter("exhaustive.assignments_enumerated").inc(index - start_index)
        metrics.counter("exhaustive.fooled_pairs").inc(fooled_total)
        metrics.histogram("exhaustive.search_seconds").observe(elapsed)
        metrics.gauge("exhaustive.instances_per_sec").set(
            (index - start_index) / elapsed if elapsed > 0 else 0.0
        )
        if budget is not None:
            remaining = budget.remaining_units()
            if remaining is not None:
                metrics.gauge("exhaustive.budget_remaining").set(remaining)
    return UniversalBoundReport(
        n=n,
        class_size=len(alphabet) ** n,
        minimum_forced_error=best if best is not None else 0.0,
        worst_assignment=best_assignment,
    )
