"""Exhaustive universal lower bounds over a restricted algorithm class.

Theorems 3.1/3.5 quantify over *all* t-round algorithms; the engines in
:mod:`repro.lowerbounds.kt0_constant_error` measure the forced error of
any *given* algorithm. This module closes the remaining gap at miniature
scale: it enumerates an entire (restricted but natural) class of
algorithms and minimizes the forced error over the class, producing a
statement with a real universal quantifier:

    every ID-oblivious 1-round KT-0 algorithm has forced error >= c
    on the uniform V1/V2 distribution at n = 6 (or 7),

where *ID-oblivious* means the single broadcast character of a vertex is a
function of its ID alone (the natural first-round behavior: at time 0 a
KT-0 vertex knows little else -- its input-port set is the only other
signal, and on 2-regular instances with canonical wirings it varies just
as predictably). The output rule is left fully adversarial: for each
broadcast assignment the engine grants the *best possible* output rule
subject only to the indistinguishability constraints of Lemma 3.4, so the
resulting minimum is a true lower bound for the class.

The computation: for each one-cycle cover, the disconnecting independent
directed pairs are precomputed once (they do not depend on the
algorithm); a broadcast assignment f activates the pairs whose head IDs
and tail IDs agree under f, and the optimal output rule pays, per
one-cycle instance, the cheaper of (its own YES-side mass) and (the mass
of its fooled crossed NO-instances).
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import BudgetExceededError, CheckpointError
from repro.indist.graph_builder import cross_cover
from repro.instances.enumeration import CycleCover, enumerate_one_cycle_covers
from repro.lowerbounds.vectorized import HAVE_NUMPY, scan_assignments
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.sketches import (
    MomentsSketch,
    QuantileSketch,
    merge_population,
    sketch_from_dict,
)
from repro.obs.spans import span
from repro.parallel.executor import ParallelExecutor
from repro.parallel.merge import MIN_KEYED, merge_min_keyed
from repro.parallel.shard import ShardPlan, split_budget
from repro.resilience.budget import Budget
from repro.resilience.checkpoint import Checkpointer, read_checkpoint

#: Checkpoint ``kind`` tag for this search (see repro.resilience.checkpoint).
EXHAUSTIVE_CHECKPOINT_KIND = "exhaustive"

#: Checkpoint ``kind`` tag for the sharded (``workers``/vectorized) search.
EXHAUSTIVE_SHARDED_CHECKPOINT_KIND = "exhaustive.sharded"

#: A directed pair of edges eligible for a disconnecting crossing.
DirectedPair = Tuple[Tuple[int, int], Tuple[int, int]]


def disconnecting_pairs(cover: CycleCover) -> List[DirectedPair]:
    """All independent directed pairs whose crossing splits the cycle."""
    directed = []
    for u, v in sorted(cover.edges):
        directed.append((u, v))
        directed.append((v, u))
    out: List[DirectedPair] = []
    for e1, e2 in itertools.combinations(directed, 2):
        crossed = cross_cover(cover, e1, e2)
        if crossed is not None and crossed.num_cycles == 2:
            out.append((e1, e2))
    return out


@lru_cache(maxsize=None)
def _precompute_pairs_cached(
    n: int,
) -> Tuple[Tuple[CycleCover, Tuple[DirectedPair, ...]], ...]:
    """The (cover, disconnecting pairs) table for size ``n``, computed once.

    The body -- and therefore the ``exhaustive.precompute_pairs`` span --
    only runs on a cache miss: repeated universal-bound calls at the same
    ``n`` skip the precompute entirely.
    """
    with span("exhaustive.precompute_pairs"):
        return tuple(
            (cover, tuple(disconnecting_pairs(cover)))
            for cover in enumerate_one_cycle_covers(n)
        )


def covers_and_pairs_for(
    n: int, metrics: Optional[MetricsRegistry] = None
) -> Tuple[Tuple[CycleCover, Tuple[DirectedPair, ...]], ...]:
    """Memoized pair table; counts cache hits on the metrics registry.

    Every repeated call at the same ``n`` increments the
    ``exhaustive.pair_cache_hits`` counter (when a registry is given or
    installed process-wide) and costs one dict lookup instead of the
    full :func:`disconnecting_pairs` enumeration.
    """
    if metrics is None:
        metrics = get_registry()
    hits_before = _precompute_pairs_cached.cache_info().hits
    table = _precompute_pairs_cached(n)
    if metrics is not None and _precompute_pairs_cached.cache_info().hits > hits_before:
        metrics.counter("exhaustive.pair_cache_hits").inc()
    return table


def clear_pair_cache() -> None:
    """Drop the memoized pair tables (tests that assert the precompute span)."""
    _precompute_pairs_cached.cache_clear()


def assignment_at(alphabet: Sequence[str], n: int, index: int) -> Tuple[str, ...]:
    """The ``index``-th assignment in ``itertools.product`` order.

    ``itertools.product(alphabet, repeat=n)`` enumerates base-``|alphabet|``
    counters most-significant-digit first; this inverts that bijection so
    sharded scans can report winners by global index alone.
    """
    base = len(alphabet)
    out = [alphabet[0]] * n
    for j in range(n - 1, -1, -1):
        index, digit = divmod(index, base)
        out[j] = alphabet[digit]
    return tuple(out)


def _iter_assignments(
    alphabet: Sequence[str], n: int, start: int, stop: int
) -> Iterator[Tuple[str, ...]]:
    """Assignments for global indices ``[start, stop)``, odometer-style.

    Equivalent to ``islice(product(alphabet, repeat=n), start, stop)``
    but O(n) to position at ``start`` instead of O(start), which is what
    lets a shard (or a resume) begin mid-space without replaying the
    prefix.
    """
    if start >= stop:
        return
    base = len(alphabet)
    digits = [0] * n
    index = start
    for j in range(n - 1, -1, -1):
        index, digits[j] = divmod(index, base)
    for _ in range(stop - start):
        yield tuple(alphabet[d] for d in digits)
        for j in range(n - 1, -1, -1):
            digits[j] += 1
            if digits[j] < base:
                break
            digits[j] = 0


@dataclass(frozen=True)
class UniversalBoundReport:
    """Result of the exhaustive minimization.

    ``population`` (opt-in, ``population=True`` on the search) holds
    mergeable sketch states summarizing the *whole scanned class*, not
    just the winner: a :class:`repro.obs.sketches.QuantileSketch` over
    every assignment's forced error (``"forced_error"``) and a
    :class:`repro.obs.sketches.MomentsSketch` over its fooled-pair total
    (``"fooled"``). The states are pure functions of the scanned
    assignment multiset, so serial, sharded, and vectorized searches
    produce byte-identical populations. Excluded from report equality
    (``compare=False``) so the long-standing serial == sharded report
    assertions are unaffected; compare populations explicitly.
    """

    n: int
    class_size: int
    minimum_forced_error: float
    worst_assignment: Tuple[str, ...]  # the broadcast character per vertex ID
    population: Optional[Dict[str, Dict[str, object]]] = field(
        default=None, compare=False
    )

    @property
    def is_constant(self) -> bool:
        return self.minimum_forced_error >= 0.1


def forced_error_of_assignment(
    n: int,
    assignment: Sequence[str],
    covers_and_pairs: List[Tuple[CycleCover, List[DirectedPair]]],
) -> float:
    """Forced error of the best output rule for one broadcast assignment."""
    return _forced_error_and_fooled(n, assignment, covers_and_pairs)[0]


def _forced_error_and_fooled(
    n: int,
    assignment: Sequence[str],
    covers_and_pairs: List[Tuple[CycleCover, List[DirectedPair]]],
) -> Tuple[float, int]:
    """(forced error, total fooled pairs) for one broadcast assignment.

    The fooled-pair total falls out of the error computation for free;
    keeping it visible lets the instrumented search count fooled
    instances without a second pass over the pair lists.
    """
    v1_count = len(covers_and_pairs)
    fooled_counts = []
    for _cover, pairs in covers_and_pairs:
        count = 0
        for (v1, u1), (v2, u2) in pairs:
            if assignment[v1] == assignment[v2] and assignment[u1] == assignment[u2]:
                count += 1
        fooled_counts.append(count)
    total_fooled = sum(fooled_counts)
    per_yes_instance = 0.5 / v1_count
    error = 0.0
    for count in fooled_counts:
        if total_fooled:
            yes_cost = 0.5 * count / total_fooled  # answer YES: err on fooled
        else:
            yes_cost = 0.0
        error += min(per_yes_instance, yes_cost)
    return error, total_fooled


def _new_population() -> Tuple[QuantileSketch, MomentsSketch]:
    """Fresh (forced-error quantiles, fooled-count moments) sketch pair."""
    return QuantileSketch(), MomentsSketch()


def _population_state(
    err_sketch: QuantileSketch, fooled_sketch: MomentsSketch
) -> Dict[str, Dict[str, object]]:
    return {
        "forced_error": err_sketch.to_dict(),
        "fooled": fooled_sketch.to_dict(),
    }


def _restore_population(
    state: Optional[Dict[str, Dict[str, object]]],
) -> Tuple[QuantileSketch, MomentsSketch]:
    """Sketch pair from checkpointed state (fresh when absent: checkpoints
    written before population tracking existed carry no sketch states)."""
    if not state:
        return _new_population()
    err_sketch = sketch_from_dict(dict(state["forced_error"]))
    fooled_sketch = sketch_from_dict(dict(state["fooled"]))
    if not isinstance(err_sketch, QuantileSketch) or not isinstance(
        fooled_sketch, MomentsSketch
    ):
        raise CheckpointError(
            "checkpoint population state has wrong sketch kinds"
        )
    return err_sketch, fooled_sketch


def universal_bound_id_oblivious(
    n: int,
    alphabet: Sequence[str] = ("", "0", "1"),
    metrics: Optional[MetricsRegistry] = None,
    budget: Optional[Budget] = None,
    checkpoint_path: Optional[str] = None,
    checkpoint_every: int = 256,
    checkpoint_seconds: float = 2.0,
    resume: Optional[str] = None,
    workers: int = 1,
    vectorize: Optional[bool] = None,
    population: bool = False,
    shard_cache=None,
) -> UniversalBoundReport:
    """Minimize forced error over every ID-oblivious 1-round algorithm.

    The class has |alphabet|^n members; n = 6 gives 729, n = 7 gives 2187
    -- all enumerated. The returned minimum is the universal lower bound
    for the class.

    ``workers`` fans the enumeration out over a deterministic
    :class:`repro.parallel.ShardPlan` (``workers=1``, the default, keeps
    the original in-process loop byte-for-byte). ``vectorize`` selects
    the numpy block-scoring kernel
    (:mod:`repro.lowerbounds.vectorized`); ``None`` auto-enables it when
    ``workers > 1`` and numpy is importable, and a ``True`` without
    numpy degrades cleanly to the pure-python scanner. Both paths
    produce the exact report of the serial search -- same minimum, same
    winning assignment, same tie-breaks -- for every worker count.
    Sharded runs checkpoint under kind ``"exhaustive.sharded"`` (one
    atomic file holding the whole per-shard progress vector) and resume
    only from checkpoints of that kind; serial and sharded checkpoints
    are intentionally not interchangeable.

    When ``metrics`` is given (or a registry is installed process-wide
    via :func:`repro.obs.use_registry`), the search records enumeration
    throughput (``exhaustive.assignments_enumerated`` and the
    ``exhaustive.instances_per_sec`` gauge) and fooled-instance counts;
    the fully-disabled path keeps its original lean loop and pays nothing.

    Resilience (all opt-in):

    * ``budget`` -- a :class:`repro.resilience.Budget` ticked once per
      assignment; exhaustion raises
      :class:`~repro.errors.BudgetExceededError` carrying the best-so-far
      partial :class:`UniversalBoundReport` (after flushing a final
      checkpoint when one is configured).
    * ``checkpoint_path`` -- write atomic, resumable JSON checkpoints
      (kind ``"exhaustive"``) every ``checkpoint_every`` assignments /
      ``checkpoint_seconds`` seconds. ``KeyboardInterrupt`` (SIGINT, or
      SIGTERM under :func:`repro.resilience.graceful_interrupts`)
      flushes a final checkpoint before propagating.
    * ``resume`` -- path to a previous checkpoint; the search validates
      the (n, alphabet) params and continues from the stored enumeration
      index. Assignment order is deterministic, so an interrupted +
      resumed search returns exactly the report of an uninterrupted one.

    When a :class:`repro.obs.SpanRecorder` is installed (via
    :func:`repro.obs.use_recorder`), the search additionally emits an
    ``exhaustive.search`` span with ``exhaustive.precompute_pairs`` and
    ``exhaustive.enumerate`` children; with no recorder the only cost is
    one module-level check per phase (never per assignment).

    ``population=True`` additionally accumulates mergeable sketches over
    the whole scanned class -- forced-error quantiles and fooled-count
    moments, exposed as :attr:`UniversalBoundReport.population` -- with
    byte-identical states for every ``workers``/``vectorize`` choice
    (the sketches are pure functions of the scanned assignment
    multiset). Population sketch states ride inside checkpoints, so an
    interrupted + resumed population run still summarizes every
    assignment exactly once; resuming a *pre-population* checkpoint with
    ``population=True`` starts the sketches fresh (they then cover only
    the post-resume assignments). The default (``False``) leaves the
    lean loop untouched.

    ``shard_cache`` (a :class:`repro.cache.ShardCache` bound to this
    request's normalized params) memoizes completed shards on the
    sharded path: untouched pending shards are checked before dispatch,
    freshly completed shards are stored after, and cached shards never
    tick the budget -- re-running under a budget computes only the
    delta. Applies only when the sharded path is taken (``workers > 1``
    or vectorized); the serial loop has no shards and relies on the
    engine's whole-request memoization instead. A shard entry reuses
    across runs only while the shard *boundaries* match, i.e. for the
    same worker count -- cross-worker-count reuse happens at the
    whole-request granularity, whose keys are workers-invariant.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    use_vectorize = (
        (workers > 1 and HAVE_NUMPY)
        if vectorize is None
        else bool(vectorize) and HAVE_NUMPY
    )
    with span("exhaustive.search", n=n, class_size=len(alphabet) ** n):
        if workers > 1 or use_vectorize:
            return _universal_bound_sharded(
                n,
                alphabet,
                metrics,
                budget,
                checkpoint_path,
                checkpoint_every,
                checkpoint_seconds,
                resume,
                workers,
                use_vectorize,
                population,
                shard_cache=shard_cache,
            )
        return _universal_bound_impl(
            n,
            alphabet,
            metrics,
            budget,
            checkpoint_path,
            checkpoint_every,
            checkpoint_seconds,
            resume,
            population,
        )


def _universal_bound_impl(
    n: int,
    alphabet: Sequence[str],
    metrics: Optional[MetricsRegistry],
    budget: Optional[Budget],
    checkpoint_path: Optional[str],
    checkpoint_every: int,
    checkpoint_seconds: float,
    resume: Optional[str],
    population: bool = False,
) -> UniversalBoundReport:
    if metrics is None:
        metrics = get_registry()
    covers_and_pairs = covers_and_pairs_for(n, metrics)
    params = {"n": n, "alphabet": list(alphabet)}

    start_index = 0
    best: Optional[float] = None
    best_assignment: Tuple[str, ...] = ()
    enumerated = 0
    fooled_total = 0
    err_sketch: Optional[QuantileSketch] = None
    fooled_sketch: Optional[MomentsSketch] = None
    if population:
        err_sketch, fooled_sketch = _new_population()
    if resume is not None:
        payload = read_checkpoint(resume, kind=EXHAUSTIVE_CHECKPOINT_KIND, params=params)
        state = payload["state"]
        try:
            start_index = int(state["next_index"])
            best = None if state["best"] is None else float(state["best"])
            best_assignment = tuple(state["best_assignment"])
            enumerated = int(state["enumerated"])
            fooled_total = int(state["fooled_total"])
            if population:
                err_sketch, fooled_sketch = _restore_population(
                    state.get("population")
                )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"checkpoint {resume!r} has malformed exhaustive state: {exc}"
            ) from exc

    resilient = budget is not None or checkpoint_path is not None
    # Unconditional: the timestamp is cheap, and taking it only when a
    # consumer happens to be installed made ``elapsed`` silently garbage
    # the moment a new reader was added (see the regression test in
    # tests/lowerbounds/test_exhaustive_timing.py).
    start = time.perf_counter()

    if metrics is None and not resilient and not population:
        # The original lean loop: nothing per-iteration but the math.
        with span("exhaustive.enumerate", resilient=False):
            for assignment in itertools.product(alphabet, repeat=n):
                err = forced_error_of_assignment(n, assignment, covers_and_pairs)
                if best is None or err < best:
                    best = err
                    best_assignment = assignment
        return UniversalBoundReport(
            n=n,
            class_size=len(alphabet) ** n,
            minimum_forced_error=best if best is not None else 0.0,
            worst_assignment=best_assignment,
        )

    index = start_index
    checkpointer: Optional[Checkpointer] = None
    if checkpoint_path is not None:
        def _state() -> Dict[str, object]:
            state: Dict[str, object] = {
                "next_index": index,
                "best": best,
                "best_assignment": list(best_assignment),
                "enumerated": enumerated,
                "fooled_total": fooled_total,
            }
            if err_sketch is not None and fooled_sketch is not None:
                state["population"] = _population_state(err_sketch, fooled_sketch)
            return state

        checkpointer = Checkpointer(
            checkpoint_path,
            EXHAUSTIVE_CHECKPOINT_KIND,
            params,
            _state,
            every_units=checkpoint_every,
            every_seconds=checkpoint_seconds,
        )

    def _partial() -> UniversalBoundReport:
        return UniversalBoundReport(
            n=n,
            class_size=len(alphabet) ** n,
            minimum_forced_error=best if best is not None else 0.0,
            worst_assignment=best_assignment,
            population=(
                None
                if err_sketch is None or fooled_sketch is None
                else _population_state(err_sketch, fooled_sketch)
            ),
        )

    iterator = itertools.product(alphabet, repeat=n)
    if start_index:
        iterator = itertools.islice(iterator, start_index, None)
    with span("exhaustive.enumerate", resilient=resilient, start_index=start_index):
        try:
            for assignment in iterator:
                err, fooled = _forced_error_and_fooled(n, assignment, covers_and_pairs)
                index += 1
                enumerated += 1
                fooled_total += fooled
                if err_sketch is not None:
                    err_sketch.update(err)
                    fooled_sketch.update(float(fooled))
                if best is None or err < best:
                    best = err
                    best_assignment = assignment
                if checkpointer is not None:
                    checkpointer.maybe_write()
                if budget is not None:
                    budget.tick(partial=None)
        except BudgetExceededError as exc:
            if checkpointer is not None:
                checkpointer.flush()
            raise BudgetExceededError(
                str(exc), partial=_partial(), checkpoint_path=checkpoint_path
            ) from exc
        except KeyboardInterrupt:
            if checkpointer is not None:
                checkpointer.flush()
            raise
        if checkpointer is not None:
            checkpointer.flush()

    if metrics is not None:
        elapsed = time.perf_counter() - start
        metrics.counter("exhaustive.searches").inc()
        metrics.counter("exhaustive.covers_enumerated").inc(len(covers_and_pairs))
        metrics.counter("exhaustive.disconnecting_pairs").inc(
            sum(len(pairs) for _cover, pairs in covers_and_pairs)
        )
        metrics.counter("exhaustive.assignments_enumerated").inc(index - start_index)
        metrics.counter("exhaustive.fooled_pairs").inc(fooled_total)
        metrics.histogram("exhaustive.search_seconds").observe(elapsed)
        metrics.gauge("exhaustive.instances_per_sec").set(
            (index - start_index) / elapsed if elapsed > 0 else 0.0
        )
        if budget is not None:
            remaining = budget.remaining_units()
            if remaining is not None:
                metrics.gauge("exhaustive.budget_remaining").set(remaining)
    return _partial()


# ----------------------------------------------------------------------
# sharded / vectorized search
# ----------------------------------------------------------------------
def _scan_shard_python(
    n: int,
    alphabet: Sequence[str],
    covers_and_pairs: Sequence[Tuple[object, Sequence[DirectedPair]]],
    start: int,
    stop: int,
    budget: Optional[Budget],
    sketches: Optional[Tuple[QuantileSketch, MomentsSketch]] = None,
) -> Tuple[Optional[Tuple[float, int]], int, int, int, bool]:
    """Pure-python scan of global indices ``[start, stop)``.

    Same return shape as :func:`repro.lowerbounds.vectorized
    .scan_assignments`: ``(best, next_index, enumerated, fooled_total,
    exhausted)`` with the serial loop's strict-first tie-break and
    per-assignment budget ticks. ``exhausted`` is True only when the
    budget tripped with work still remaining (a budget that raises on the
    shard's very last assignment still yields a completed shard).

    ``sketches`` (an ``(error QuantileSketch, fooled MomentsSketch)``
    pair) is updated in place with one observation per *enumerated*
    assignment -- the same multiset the vectorized scanner observes, so
    population states agree bit-for-bit across scanners.
    """
    best: Optional[Tuple[float, int]] = None
    pos = start
    enumerated = 0
    fooled_total = 0
    try:
        for assignment in _iter_assignments(alphabet, n, start, stop):
            err, fooled = _forced_error_and_fooled(n, assignment, covers_and_pairs)
            pos += 1
            enumerated += 1
            fooled_total += fooled
            if sketches is not None:
                sketches[0].update(err)
                sketches[1].update(float(fooled))
            if best is None or err < best[0]:
                best = (err, pos - 1)
            if budget is not None:
                budget.tick()
    except BudgetExceededError:
        return best, pos, enumerated, fooled_total, pos < stop
    return best, pos, enumerated, fooled_total, False


def _exhaustive_shard_worker(payload: Tuple) -> Dict[str, object]:
    """Score one shard of the assignment space (module-level: picklable).

    ``payload`` is ``(n, alphabet, start, stop, covers_and_pairs,
    shard_budget, vectorize, collect)``. Returns a JSON-ready dict so the
    pooled path ships nothing fancier than lists and ints across the
    pipe; with ``collect`` the dict additionally carries the shard's
    serialized population sketch states under ``"population"``.
    """
    n, alphabet, start, stop, table, shard_budget, vectorize, collect = payload
    sketches: Optional[Tuple[QuantileSketch, MomentsSketch]] = None
    if collect:
        sketches = _new_population()
    budget: Optional[Budget] = None
    if shard_budget is not None:
        exhausted_before_start = shard_budget.max_units == 0 or (
            shard_budget.wall_seconds is not None
            and shard_budget.wall_seconds <= 0
        )
        if exhausted_before_start:
            return {
                "best": None,
                "next_index": start,
                "enumerated": 0,
                "fooled": 0,
                "exhausted": start < stop,
                "population": (
                    None if sketches is None else _population_state(*sketches)
                ),
            }
        budget = shard_budget.to_budget()
    if vectorize and HAVE_NUMPY:
        with span("exhaustive.scan_vectorized", start=start, stop=stop):
            best, pos, enumerated, fooled, exhausted = scan_assignments(
                n, alphabet, table, start, stop, budget=budget, sketches=sketches
            )
    else:
        with span("exhaustive.scan_python", start=start, stop=stop):
            best, pos, enumerated, fooled, exhausted = _scan_shard_python(
                n, alphabet, table, start, stop, budget, sketches=sketches
            )
    return {
        "best": None if best is None else [float(best[0]), int(best[1])],
        "next_index": int(pos),
        "enumerated": int(enumerated),
        "fooled": int(fooled),
        "exhausted": bool(exhausted),
        "population": None if sketches is None else _population_state(*sketches),
    }


def _universal_bound_sharded(
    n: int,
    alphabet: Sequence[str],
    metrics: Optional[MetricsRegistry],
    budget: Optional[Budget],
    checkpoint_path: Optional[str],
    checkpoint_every: int,
    checkpoint_seconds: float,
    resume: Optional[str],
    workers: int,
    vectorize: bool,
    population: bool = False,
    shard_cache=None,
) -> UniversalBoundReport:
    """Fan the enumeration out over a :class:`ShardPlan` and min-merge.

    Determinism: shards are contiguous index ranges, every shard reports
    ``(error, global_index)``, and the fold is :data:`MIN_KEYED` (lowest
    index wins ties), so the final report is a pure function of
    ``(n, alphabet)`` -- independent of worker count, vectorization, and
    completion order, and equal to the serial search's report.

    The checkpoint (kind ``"exhaustive.sharded"``) stores the plan's
    shard starts plus the per-shard progress vector in one atomic file;
    a resume rebuilds the same plan (even under a different ``workers``)
    and re-dispatches only the incomplete shards from their stored
    positions.
    """
    if metrics is None:
        metrics = get_registry()
    alphabet = tuple(alphabet)
    total = len(alphabet) ** n
    table = covers_and_pairs_for(n, metrics)
    # Workers only score pairs; covers themselves stay parent-side so the
    # pickled payload is just index tuples.
    wire_table = tuple((None, pairs) for _cover, pairs in table)
    params = {"n": n, "alphabet": list(alphabet)}
    start_time = time.perf_counter()

    if resume is not None:
        payload = read_checkpoint(
            resume, kind=EXHAUSTIVE_SHARDED_CHECKPOINT_KIND, params=params
        )
        state = payload["state"]
        try:
            plan = ShardPlan.from_starts(
                total, [int(s) for s in state["shard_starts"]]
            )
            positions = [int(p) for p in state["positions"]]
            bests: List[Optional[Tuple[float, int]]] = [
                None if b is None else (float(b[0]), int(b[1]))
                for b in state["bests"]
            ]
            enumerated = int(state["enumerated"])
            fooled_total = int(state["fooled_total"])
            population_state = (
                dict(state["population"])
                if population and state.get("population")
                else None
            )
        except (KeyError, TypeError, ValueError, IndexError) as exc:
            raise CheckpointError(
                f"checkpoint {resume!r} has malformed sharded exhaustive "
                f"state: {exc}"
            ) from exc
        if len(positions) != plan.num_shards or len(bests) != plan.num_shards:
            raise CheckpointError(
                f"checkpoint {resume!r} shard vectors disagree with its plan"
            )
    else:
        plan = ShardPlan.for_workers(total, workers)
        positions = [shard.start for shard in plan.shards()]
        bests = [None] * plan.num_shards
        enumerated = 0
        fooled_total = 0
        population_state = None
    shards = plan.shards()

    checkpointer: Optional[Checkpointer] = None
    if checkpoint_path is not None:
        def _state() -> Dict[str, object]:
            state: Dict[str, object] = {
                "shard_starts": list(plan.starts),
                "positions": list(positions),
                "bests": [
                    None if b is None else [b[0], b[1]] for b in bests
                ],
                "enumerated": enumerated,
                "fooled_total": fooled_total,
            }
            if population:
                state["population"] = population_state
            return state

        checkpointer = Checkpointer(
            checkpoint_path,
            EXHAUSTIVE_SHARDED_CHECKPOINT_KIND,
            params,
            _state,
            every_units=checkpoint_every,
            every_seconds=checkpoint_seconds,
        )

    pending = [i for i in range(plan.num_shards) if positions[i] < shards[i].stop]

    def _shard_item(i: int) -> Dict[str, int]:
        return {
            "start": shards[i].start,
            "stop": shards[i].stop,
            "seed": shards[i].seed,
        }

    if shard_cache is not None:
        # Apply cached completed shards before dispatching anything. Only
        # untouched shards qualify (a resumed partial position means the
        # stored entry would double-count work already folded in), and
        # only complete entries count (next_index at stop, not budget-
        # exhausted). Cached units never tick the parent budget: the
        # budget limits actual work, and a hit does none.
        still_pending = []
        cached_shards = 0
        for i in pending:
            hit = None
            if positions[i] == shards[i].start:
                hit = shard_cache.get_item(_shard_item(i))
                if hit is not None and (
                    hit.get("exhausted")
                    or int(hit.get("next_index", -1)) != shards[i].stop
                ):
                    hit = None
            if hit is None:
                still_pending.append(i)
                continue
            raw_best = hit.get("best")
            if raw_best is not None:
                bests[i] = merge_min_keyed(
                    bests[i], (float(raw_best[0]), int(raw_best[1]))
                )
            positions[i] = shards[i].stop
            enumerated += int(hit.get("enumerated", 0))
            fooled_total += int(hit.get("fooled", 0))
            shard_population = hit.get("population")
            if shard_population is not None:
                population_state = merge_population(
                    population_state, shard_population
                )
            cached_shards += 1
        pending = still_pending
        if cached_shards and metrics is not None:
            metrics.counter("exhaustive.shards_cached").inc(cached_shards)

    sizes = [shards[i].stop - positions[i] for i in pending]
    shard_budgets = split_budget(budget, sizes)
    payloads = [
        (
            n,
            alphabet,
            positions[i],
            shards[i].stop,
            wire_table,
            sb,
            bool(vectorize),
            bool(population),
        )
        for i, sb in zip(pending, shard_budgets)
    ]

    ran = 0
    exhausted = False

    def _on_result(payload_index: int, result: Dict[str, object]) -> None:
        nonlocal ran, enumerated, fooled_total, exhausted, population_state
        shard_index = pending[payload_index]
        raw_best = result["best"]
        if raw_best is not None:
            bests[shard_index] = merge_min_keyed(
                bests[shard_index], (float(raw_best[0]), int(raw_best[1]))
            )
        positions[shard_index] = int(result["next_index"])
        done = int(result["enumerated"])
        ran += done
        enumerated += done
        fooled_total += int(result["fooled"])
        shard_population = result.get("population")
        if shard_population is not None:
            # merge_population is commutative, so folding in completion
            # order still yields a worker-count-invariant state.
            population_state = merge_population(population_state, shard_population)
        if result["exhausted"]:
            exhausted = True
        elif (
            shard_cache is not None
            and payloads[payload_index][2] == shards[shard_index].start
            and positions[shard_index] == shards[shard_index].stop
        ):
            # A full, untruncated scan of the shard: store it. Resumed
            # partials (dispatch started past the shard start) are never
            # stored -- their result covers only a suffix of the range
            # the key describes.
            shard_cache.put_item(
                _shard_item(shard_index),
                {
                    "best": (
                        None
                        if raw_best is None
                        else [float(raw_best[0]), int(raw_best[1])]
                    ),
                    "next_index": positions[shard_index],
                    "enumerated": done,
                    "fooled": int(result["fooled"]),
                    "exhausted": False,
                    "population": shard_population,
                },
            )
        if checkpointer is not None:
            checkpointer.maybe_write(units=done)

    executor = ParallelExecutor(workers=workers, metrics=metrics)
    try:
        executor.map(_exhaustive_shard_worker, payloads, on_result=_on_result)
    except KeyboardInterrupt:
        if checkpointer is not None:
            checkpointer.flush()
        raise
    if checkpointer is not None:
        checkpointer.flush()

    def _report() -> UniversalBoundReport:
        best = MIN_KEYED.fold(bests)
        report_population = None
        if population:
            report_population = (
                population_state
                if population_state is not None
                else _population_state(*_new_population())
            )
        if best is None:
            return UniversalBoundReport(
                n=n,
                class_size=total,
                minimum_forced_error=0.0,
                worst_assignment=(),
                population=report_population,
            )
        return UniversalBoundReport(
            n=n,
            class_size=total,
            minimum_forced_error=best[0],
            worst_assignment=assignment_at(alphabet, n, best[1]),
            population=report_population,
        )

    budget_message = f"budget exhausted during sharded exhaustive search (n={n})"
    if budget is not None and ran:
        try:
            # Replicate the serial path's accounting on the *parent*
            # budget: ticking the units the shards consumed raises at
            # exactly the point the serial per-assignment loop would.
            budget.tick(units=ran)
        except BudgetExceededError as exc:
            budget_message = str(exc)
            exhausted = True
    if exhausted:
        raise BudgetExceededError(
            budget_message, partial=_report(), checkpoint_path=checkpoint_path
        )

    if metrics is not None:
        elapsed = time.perf_counter() - start_time
        metrics.counter("exhaustive.searches").inc()
        metrics.counter("exhaustive.covers_enumerated").inc(len(table))
        metrics.counter("exhaustive.disconnecting_pairs").inc(
            sum(len(pairs) for _cover, pairs in table)
        )
        metrics.counter("exhaustive.assignments_enumerated").inc(ran)
        metrics.counter("exhaustive.fooled_pairs").inc(fooled_total)
        metrics.histogram("exhaustive.search_seconds").observe(elapsed)
        metrics.gauge("exhaustive.instances_per_sec").set(
            ran / elapsed if elapsed > 0 else 0.0
        )
        if budget is not None:
            remaining = budget.remaining_units()
            if remaining is not None:
                metrics.gauge("exhaustive.budget_remaining").set(remaining)
    return _report()
