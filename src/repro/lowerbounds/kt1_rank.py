"""The Theorem 4.4 engine: KT-1 deterministic round bounds from ranks.

The chain, fully numeric at any enumerable n:

1. rank(M_n) = B_n and rank(E_n) = n!/(2^{n/2}(n/2)!) -- certified by the
   exact rank machinery (Theorem 2.3 / Lemma 4.1);
2. deterministic CC of Partition >= log2 B_n, of TwoPartition >= log2 r
   ([KN97] Lemma 1.28 -- Corollaries 2.4 / 4.2);
3. the Section 4.3 simulation converts an r-round KT-1 BCC(1) algorithm
   for Connectivity (resp. MultiCycle) on G(P_A, P_B) into a protocol of
   8n (resp. 4n) bits per round;
4. therefore r >= CC / (bits per round) = Omega(log N) rounds, N being
   the number of vertices of the reduction graph.

The default bounds read the ranks off the closed forms (Theorem 2.3 /
Lemma 4.1 give them exactly). The ``*_certified`` variants instead
*compute* rank(M_n) / rank(E_n) on the materialized matrices through the
exact rank machinery -- so the whole Theorem 4.4 chain is numeric end to
end -- and accept ``workers`` / ``kernel`` to pick the elimination
engines (:mod:`repro.kernels`); every combination certifies the same
row, which the tests pin against the closed-form variant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.partitions.bell import bell_number, perfect_matching_count
from repro.partitions.matrices import e_matrix_rank, m_matrix_rank
from repro.twoparty.simulation import PARTITION, TWO_PARTITION, simulation_bits_per_round


@dataclass(frozen=True)
class KT1RankBound:
    """One row of the Theorem 4.4 accounting."""

    ground_set: int  # n, the Partition ground set
    variant: str
    instance_vertices: int  # N = 4n or 2n
    cc_bits: float  # log2 rank
    bits_per_round: int
    round_lower_bound: float  # cc_bits / bits_per_round

    @property
    def normalized(self) -> float:
        """round bound / log2(N): the Omega(log N) constant."""
        return self.round_lower_bound / math.log2(self.instance_vertices)


def connectivity_round_bound(n: int) -> KT1RankBound:
    """Theorem 4.4 for Connectivity via Partition (the A/L/R/B graph)."""
    cc = math.log2(bell_number(n))
    bits = simulation_bits_per_round(PARTITION, n)
    return KT1RankBound(
        ground_set=n,
        variant=PARTITION,
        instance_vertices=4 * n,
        cc_bits=cc,
        bits_per_round=bits,
        round_lower_bound=cc / bits,
    )


def multicycle_round_bound(n: int) -> KT1RankBound:
    """Theorem 4.4 for MultiCycle via TwoPartition (the L/R graph)."""
    if n % 2 != 0:
        raise ValueError(f"TwoPartition needs even n, got {n}")
    cc = math.log2(perfect_matching_count(n))
    bits = simulation_bits_per_round(TWO_PARTITION, n)
    return KT1RankBound(
        ground_set=n,
        variant=TWO_PARTITION,
        instance_vertices=2 * n,
        cc_bits=cc,
        bits_per_round=bits,
        round_lower_bound=cc / bits,
    )


def connectivity_round_bound_certified(
    n: int, workers: int = 1, kernel: str = "auto", streamed: bool = None
) -> KT1RankBound:
    """Theorem 4.4 for Connectivity with rank(M_n) *computed*, not quoted.

    Builds M_n (B_n x B_n -- enumerable for n <= 6 in reasonable time
    densely; the streamed pipeline pushes past that) and runs the exact
    rank chain; Theorem 2.3 guarantees the result equals
    :func:`connectivity_round_bound`'s closed-form row, and the tests
    pin that equality for every kernel. ``streamed`` is passed through
    to :func:`~repro.partitions.matrices.m_matrix_rank` (None = auto by
    matrix size).
    """
    rank = m_matrix_rank(n, workers=workers, kernel=kernel, streamed=streamed)
    cc = math.log2(rank)
    bits = simulation_bits_per_round(PARTITION, n)
    return KT1RankBound(
        ground_set=n,
        variant=PARTITION,
        instance_vertices=4 * n,
        cc_bits=cc,
        bits_per_round=bits,
        round_lower_bound=cc / bits,
    )


def multicycle_round_bound_certified(
    n: int, workers: int = 1, kernel: str = "auto", streamed: bool = None
) -> KT1RankBound:
    """Theorem 4.4 for MultiCycle with rank(E_n) *computed*, not quoted."""
    if n % 2 != 0:
        raise ValueError(f"TwoPartition needs even n, got {n}")
    rank = e_matrix_rank(n, workers=workers, kernel=kernel, streamed=streamed)
    cc = math.log2(rank)
    bits = simulation_bits_per_round(TWO_PARTITION, n)
    return KT1RankBound(
        ground_set=n,
        variant=TWO_PARTITION,
        instance_vertices=2 * n,
        cc_bits=cc,
        bits_per_round=bits,
        round_lower_bound=cc / bits,
    )


def round_bound_table(ns: List[int], variant: str = TWO_PARTITION) -> List[KT1RankBound]:
    """Theorem 4.4 rows over a sweep of ground-set sizes."""
    rows = []
    for n in ns:
        if variant == TWO_PARTITION:
            rows.append(multicycle_round_bound(n))
        else:
            rows.append(connectivity_round_bound(n))
    return rows


def omega_log_constant(ns: List[int], variant: str = TWO_PARTITION) -> Tuple[float, float]:
    """Min and max of bound/log2(N) over the sweep: a numeric witness that
    the bound is Theta(log N) with stable constants."""
    values = [row.normalized for row in round_bound_table(ns, variant)]
    return min(values), max(values)
