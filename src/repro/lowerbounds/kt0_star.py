"""The Theorem 3.5 engine: the warm-up pigeonhole lower bound, executable.

Closed-form side: after t rounds of any deterministic BCC(1) algorithm,
each directed edge carries a 2t-character label over {0, 1, ⊥}, so the
floor(n/3)-edge independent set S splits into at most 3^{2t} label
classes; the largest class S' has |S'| >= |S| / 3^{2t}, all crossings
within S' are indistinguishable from the central instance, and the forced
error under the star distribution is C(|S'|, 2) / (2 C(|S|, 2)).

Operational side: :func:`fool_algorithm` runs a *concrete* algorithm,
reads the labels off real transcripts, constructs the fooled instances,
verifies operational indistinguishability, and reports the error actually
achieved against the star distribution -- the adversary made executable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import combinations
from typing import List, Optional, Tuple

from repro.core.algorithm import YES, AlgorithmFactory
from repro.core.decision import decision_of_run
from repro.core.instance import BCCInstance
from repro.core.randomness import PublicCoin
from repro.core.simulator import Simulator
from repro.crossing.active import edge_label
from repro.crossing.crossing import cross
from repro.crossing.independent import DirectedEdge, independent_edge_set_on_cycle
from repro.crossing.indistinguishability import indistinguishable_runs
from repro.instances.cycles import one_cycle_instance


def label_class_count(t: int) -> int:
    """Upper bound on distinct 2t-character labels: 3^{2t}."""
    return 3 ** (2 * t)


def guaranteed_class_size(n: int, t: int) -> int:
    """|S'| >= |S| / 3^{2t} with |S| = floor(n/3) (pigeonhole)."""
    s = n // 3
    return math.ceil(s / label_class_count(t))


def theorem_3_5_error_bound(n: int, t: int) -> float:
    """The forced error of any t-round deterministic algorithm against the
    star distribution: C(|S'|, 2) / (2 C(|S|, 2)), assuming the algorithm
    answers the half-mass central instance correctly (it must, once the
    permissible error is below 1/2)."""
    s = n // 3
    s_prime = guaranteed_class_size(n, t)
    if s < 2 or s_prime < 2:
        return 0.0
    return math.comb(s_prime, 2) / (2 * math.comb(s, 2))


def minimum_rounds_for_error(n: int, epsilon: float) -> int:
    """The smallest t whose guaranteed error drops below epsilon: every
    algorithm with fewer rounds errs with probability >= epsilon.

    With epsilon = 1/n^c this is the Omega(c log n) statement of
    Theorem 3.5.
    """
    t = 0
    while theorem_3_5_error_bound(n, t) >= epsilon:
        t += 1
        if t > 8 * int(math.log(max(2, n)) / math.log(3)) + 8:
            break
    return t


@dataclass
class FoolingReport:
    """What the operational adversary achieved against one algorithm."""

    n: int
    rounds: int
    independent_set_size: int
    largest_class_size: int
    label: str
    fooled_pairs: int
    indistinguishable_pairs: int
    center_decision: str
    achieved_error: float

    @property
    def all_pairs_indistinguishable(self) -> bool:
        return self.fooled_pairs == self.indistinguishable_pairs


def fool_algorithm(
    simulator: Simulator,
    factory: AlgorithmFactory,
    n: int,
    rounds: int,
    coin: Optional[PublicCoin] = None,
    verify_operationally: bool = True,
) -> FoolingReport:
    """Run the Theorem 3.5 adversary against a concrete algorithm.

    Steps: run the algorithm on the canonical one-cycle instance; label
    the independent set S from the real transcripts; take the largest
    label class S'; every crossing within S' is indistinguishable from the
    center, so the algorithm's decision there equals its center decision
    -- and since those crossings are NO instances, each one the algorithm
    "solves" as YES is an error. The achieved error is measured against
    the star distribution.
    """
    center = one_cycle_instance(n, kt=0)
    run_center = simulator.run(center, factory, rounds, coin=coin)
    s_edges = independent_edge_set_on_cycle(n)

    by_label: dict = {}
    for e in s_edges:
        by_label.setdefault(edge_label(run_center, e), []).append(e)
    label, s_prime = max(by_label.items(), key=lambda kv: (len(kv[1]), kv[0]))

    fooled = list(combinations(s_prime, 2))
    indist = 0
    if verify_operationally:
        for e1, e2 in fooled:
            crossed = cross(center, e1, e2)
            run_crossed = simulator.run(crossed, factory, rounds, coin=coin)
            if indistinguishable_runs(simulator, run_center, run_crossed, rounds):
                indist += 1
    else:
        indist = len(fooled)

    center_decision = decision_of_run(run_center)
    total_pairs = math.comb(len(s_edges), 2)
    if center_decision == YES:
        # errs on every fooled NO instance
        err = (len(fooled) / total_pairs) * 0.5 if total_pairs else 0.0
    else:
        # errs on the half-mass center itself
        err = 0.5
    return FoolingReport(
        n=n,
        rounds=rounds,
        independent_set_size=len(s_edges),
        largest_class_size=len(s_prime),
        label=label,
        fooled_pairs=len(fooled),
        indistinguishable_pairs=indist,
        center_decision=center_decision,
        achieved_error=err,
    )
