"""Yao's minimax theorem tooling: hard distributions for TwoCycle.

Yao (Theorem 2.2) reduces randomized lower bounds to distributional ones:
exhibit a distribution mu and show every *deterministic* t-round algorithm
errs on an eps fraction of mu. This module materializes the two hard
distributions the paper uses:

* the **star distribution** of Theorem 3.5 -- mass 1/2 on one fixed
  one-cycle instance I, the rest uniform on the crossings I(e, e') over a
  fixed independent edge set S of size floor(n/3);
* the **uniform V1/V2 distribution** of Theorem 3.1 -- mass 1/2 uniform on
  all one-cycle instances, 1/2 uniform on all two-cycle instances.

Distributions are realized as weighted lists of fully wired KT-0 instances
that plug straight into :func:`repro.core.decision.distributional_error`.
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Tuple

from repro.core.algorithm import NO, YES
from repro.core.instance import BCCInstance
from repro.crossing.crossing import cross
from repro.crossing.independent import independent_edge_set_on_cycle
from repro.instances.cycles import one_cycle_instance
from repro.instances.enumeration import (
    enumerate_one_cycle_covers,
    enumerate_two_cycle_covers,
)

WeightedInput = Tuple[BCCInstance, str, float]


def star_distribution(n: int) -> List[WeightedInput]:
    """Theorem 3.5's hard distribution: (instance, truth, weight) triples.

    The central instance is the canonical n-cycle with probability 1/2;
    each crossing of a pair from the canonical independent set S gets an
    equal share of the rest. (All crossings of distinct edges in S produce
    two-cycle = NO instances.)
    """
    center = one_cycle_instance(n, kt=0)
    s_edges = independent_edge_set_on_cycle(n)
    crossings = [
        cross(center, e1, e2) for e1, e2 in combinations(s_edges, 2)
    ]
    if not crossings:
        raise ValueError(f"n={n} is too small to build the star distribution")
    weights: List[WeightedInput] = [(center, YES, 0.5)]
    share = 0.5 / len(crossings)
    for inst in crossings:
        weights.append((inst, NO, share))
    return weights


def uniform_v1_v2_distribution(n: int) -> List[WeightedInput]:
    """Theorem 3.1's hard distribution over canonically wired instances:
    1/2 uniform on V1 (one-cycle covers), 1/2 uniform on V2 (two-cycle)."""
    v1 = [
        BCCInstance.kt0_from_graph(cover.to_graph())
        for cover in enumerate_one_cycle_covers(n)
    ]
    v2 = [
        BCCInstance.kt0_from_graph(cover.to_graph())
        for cover in enumerate_two_cycle_covers(n)
    ]
    if not v2:
        raise ValueError(f"n={n} has no two-cycle instances")
    out: List[WeightedInput] = []
    out.extend((inst, YES, 0.5 / len(v1)) for inst in v1)
    out.extend((inst, NO, 0.5 / len(v2)) for inst in v2)
    return out
