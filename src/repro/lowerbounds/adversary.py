"""A general crossing adversary against arbitrary KT-0 algorithms.

Given any concrete KT-0 algorithm and any one-cycle instance, the
adversary inspects the real transcripts, finds a pair of independent
directed edges satisfying Lemma 3.4's premise whose crossing disconnects
the graph, and hands back the fooling NO-instance -- on which the
algorithm is guaranteed (and operationally verified) to behave exactly as
on the YES-instance. This is the paper's argument weaponized against any
algorithm object the user supplies.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import List, Optional, Tuple

from repro.core.algorithm import AlgorithmFactory
from repro.core.decision import decision_of_run
from repro.core.instance import BCCInstance
from repro.core.randomness import PublicCoin
from repro.core.simulator import RunResult, Simulator
from repro.crossing.crossing import cross
from repro.crossing.independent import DirectedEdge, are_independent
from repro.crossing.indistinguishability import indistinguishable_runs


@dataclass
class FoolingPair:
    """A verified fooling instance for a specific algorithm run."""

    e1: DirectedEdge
    e2: DirectedEdge
    crossed_instance: BCCInstance
    same_decision: bool
    indistinguishable: bool


def find_fooling_pairs(
    simulator: Simulator,
    factory: AlgorithmFactory,
    instance: BCCInstance,
    rounds: int,
    coin: Optional[PublicCoin] = None,
    limit: Optional[int] = None,
    require_disconnecting: bool = True,
) -> List[FoolingPair]:
    """All (or the first ``limit``) verified fooling pairs for a run.

    A pair qualifies when Lemma 3.4's premise holds on the instance's own
    run and (by default) its crossing disconnects the input graph. Each
    returned pair is *operationally verified*: the algorithm is re-run on
    the crossed instance and both indistinguishability and equality of the
    system decision are checked and recorded.
    """
    run = simulator.run(instance, factory, rounds, coin=coin)
    seqs = {v: run.transcripts[v].sent_sequence() for v in range(instance.n)}

    directed: List[DirectedEdge] = []
    for u, v in sorted(instance.input_edges):
        directed.append((u, v))
        directed.append((v, u))

    results: List[FoolingPair] = []
    for e1, e2 in combinations(directed, 2):
        (v1, u1), (v2, u2) = e1, e2
        if seqs[v1] != seqs[v2] or seqs[u1] != seqs[u2]:
            continue
        if not are_independent(instance, e1, e2):
            continue
        crossed = cross(instance, e1, e2)
        if require_disconnecting and crossed.input_graph().is_connected():
            continue
        run_crossed = simulator.run(crossed, factory, rounds, coin=coin)
        results.append(
            FoolingPair(
                e1=e1,
                e2=e2,
                crossed_instance=crossed,
                same_decision=decision_of_run(run_crossed) == decision_of_run(run),
                indistinguishable=indistinguishable_runs(
                    simulator, run, run_crossed, rounds
                ),
            )
        )
        if limit is not None and len(results) >= limit:
            break
    return results


def adversary_defeats(
    simulator: Simulator,
    factory: AlgorithmFactory,
    instance: BCCInstance,
    rounds: int,
    coin: Optional[PublicCoin] = None,
) -> bool:
    """True iff the adversary finds at least one verified fooling pair --
    i.e. the algorithm, at this round budget, provably errs on either the
    instance or one of its crossings."""
    pairs = find_fooling_pairs(simulator, factory, instance, rounds, coin, limit=1)
    return bool(pairs) and pairs[0].indistinguishable
