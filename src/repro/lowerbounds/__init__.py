"""Executable lower-bound engines, one per theorem of the paper."""

from repro.lowerbounds.adversary import FoolingPair, adversary_defeats, find_fooling_pairs
from repro.lowerbounds.exhaustive import (
    UniversalBoundReport,
    assignment_at,
    clear_pair_cache,
    covers_and_pairs_for,
    disconnecting_pairs,
    forced_error_of_assignment,
    universal_bound_id_oblivious,
)
from repro.lowerbounds.kt0_constant_error import (
    ForcedErrorReport,
    forced_error_curve,
    forced_error_of_algorithm,
)
from repro.lowerbounds.kt0_star import (
    FoolingReport,
    fool_algorithm,
    guaranteed_class_size,
    label_class_count,
    minimum_rounds_for_error,
    theorem_3_5_error_bound,
)
from repro.lowerbounds.kt1_infotheory import (
    KT1InformationBound,
    components_round_bound,
    information_bound_table,
    measure_bcc_algorithm_information,
)
from repro.lowerbounds.kt1_rank import (
    KT1RankBound,
    connectivity_round_bound,
    connectivity_round_bound_certified,
    multicycle_round_bound,
    multicycle_round_bound_certified,
    omega_log_constant,
    round_bound_table,
)
from repro.lowerbounds.report import FullReport, full_report
from repro.lowerbounds.yao import (
    WeightedInput,
    star_distribution,
    uniform_v1_v2_distribution,
)

__all__ = [
    "FoolingPair",
    "FoolingReport",
    "ForcedErrorReport",
    "FullReport",
    "full_report",
    "KT1InformationBound",
    "KT1RankBound",
    "UniversalBoundReport",
    "WeightedInput",
    "assignment_at",
    "clear_pair_cache",
    "covers_and_pairs_for",
    "disconnecting_pairs",
    "forced_error_of_assignment",
    "universal_bound_id_oblivious",
    "adversary_defeats",
    "components_round_bound",
    "connectivity_round_bound",
    "connectivity_round_bound_certified",
    "find_fooling_pairs",
    "fool_algorithm",
    "forced_error_curve",
    "forced_error_of_algorithm",
    "guaranteed_class_size",
    "information_bound_table",
    "label_class_count",
    "measure_bcc_algorithm_information",
    "minimum_rounds_for_error",
    "multicycle_round_bound",
    "multicycle_round_bound_certified",
    "omega_log_constant",
    "round_bound_table",
    "star_distribution",
    "theorem_3_5_error_bound",
    "uniform_v1_v2_distribution",
]
