"""One-call summary: all three results of the paper at a chosen scale.

:func:`full_report` runs a representative slice of every engine --
Theorem 3.5 (closed form + operational), Theorem 3.1 (forced error),
Theorem 4.4 (rank arithmetic), Theorem 4.5 (exact information) -- and
returns structured rows suitable for printing or programmatic use. The
CLI's ``all`` subcommand and downstream notebooks are the intended
callers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.core.algorithm import SilentAlgorithm
from repro.core.model import BCC1_KT0
from repro.core.simulator import Simulator
from repro.information.partition_comp import evaluate_protocol
from repro.lowerbounds.kt0_constant_error import forced_error_of_algorithm
from repro.lowerbounds.kt0_star import fool_algorithm, theorem_3_5_error_bound
from repro.lowerbounds.kt1_rank import multicycle_round_bound
from repro.twoparty.upper_bounds import TrivialPartitionCompProtocol


@dataclass
class FullReport:
    """Structured summary of one run of every engine."""

    star_n: int
    star_rounds: int
    star_error_floor: float
    star_achieved_error: float
    star_pairs_verified: bool

    forced_n: int
    forced_rounds: int
    forced_error: float

    rank_n: int
    rank_cc_bits: float
    rank_round_bound: float

    info_n: int
    info_bits: float
    info_input_entropy: float
    info_chain_holds: bool

    def rows(self) -> List[Tuple[str, str, str]]:
        """(result, quantity, value) rows for table rendering."""
        return [
            ("Thm 3.5", f"error floor (n={self.star_n}, t={self.star_rounds})", f"{self.star_error_floor:.4f}"),
            ("Thm 3.5", "operational adversary achieved error", f"{self.star_achieved_error:.4f}"),
            ("Thm 3.5", "all fooling pairs verified", str(self.star_pairs_verified)),
            ("Thm 3.1", f"forced error (n={self.forced_n}, t={self.forced_rounds})", f"{self.forced_error:.4f}"),
            ("Thm 4.4", f"CC bits (n={self.rank_n})", f"{self.rank_cc_bits:.2f}"),
            ("Thm 4.4", "round lower bound", f"{self.rank_round_bound:.4f}"),
            ("Thm 4.5", f"I(P_A; Pi) exact (n={self.info_n})", f"{self.info_bits:.4f}"),
            ("Thm 4.5", "H(P_A) = log2 B_n", f"{self.info_input_entropy:.4f}"),
            ("Thm 4.5", "inequality chain holds", str(self.info_chain_holds)),
        ]


def full_report(
    star_n: int = 15,
    star_rounds: int = 2,
    forced_n: int = 6,
    forced_rounds: int = 2,
    rank_n: int = 16,
    info_n: int = 5,
) -> FullReport:
    """Run every engine once at laptop-friendly scales."""
    sim = Simulator(BCC1_KT0)

    star = fool_algorithm(sim, SilentAlgorithm, star_n, star_rounds)
    forced = forced_error_of_algorithm(sim, SilentAlgorithm, forced_n, forced_rounds)
    rank = multicycle_round_bound(rank_n)
    info = evaluate_protocol(TrivialPartitionCompProtocol(info_n), info_n)

    return FullReport(
        star_n=star_n,
        star_rounds=star_rounds,
        star_error_floor=theorem_3_5_error_bound(star_n, star_rounds),
        star_achieved_error=star.achieved_error,
        star_pairs_verified=star.all_pairs_indistinguishable,
        forced_n=forced_n,
        forced_rounds=forced_rounds,
        forced_error=forced.forced_error,
        rank_n=rank_n,
        rank_cc_bits=rank.cc_bits,
        rank_round_bound=rank.round_lower_bound,
        info_n=info_n,
        info_bits=info.information,
        info_input_entropy=info.input_entropy,
        info_chain_holds=info.chain_holds(),
    )
