"""The Theorem 3.1 engine: constant-error forced mistakes, measured.

Theorem 3.1's combinatorial core: under the uniform V1/V2 distribution,
a t-round algorithm's behavior partitions the instance space into
indistinguishability classes; every class containing both one-cycle and
two-cycle instances forces errors on one side of it. At enumerable n the
library measures this *exactly* for any concrete algorithm:

* for every one-cycle cover, run the algorithm on its canonical KT-0
  instance and collect every crossing pair satisfying Lemma 3.4's premise
  (equal head sequences, equal tail sequences);
* each such crossing yields a two-cycle instance on which the algorithm
  provably outputs whatever it output on the one-cycle instance;
* the forced error is then evaluated against a distribution placing half
  the mass on the one-cycle instances and half on the generated two-cycle
  instances.

A silent or otherwise symmetric algorithm is fooled on *every* crossing,
forcing error 1/2; an algorithm that breaks symmetry needs enough rounds
to shrink the premise-holding pairs -- the measured decay of forced error
with t is the finite-n shadow of the Omega(log n) bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Optional, Tuple

from repro.core.algorithm import NO, YES, AlgorithmFactory
from repro.core.decision import decision_of_run
from repro.core.instance import BCCInstance
from repro.core.randomness import PublicCoin
from repro.core.simulator import Simulator
from repro.crossing.crossing import cross
from repro.crossing.independent import are_independent
from repro.instances.enumeration import enumerate_one_cycle_covers


@dataclass
class ForcedErrorReport:
    """Exact forced-error accounting for one algorithm at one (n, t)."""

    n: int
    rounds: int
    one_cycle_count: int
    yes_on_one_cycles: int  # how many one-cycle instances got YES
    fooled_two_cycle_instances: int  # crossings with the premise holding
    forced_error: float

    @property
    def errs_on_no_side(self) -> bool:
        return self.yes_on_one_cycles > 0


def _premise_pairs(run, instance: BCCInstance) -> List[Tuple[Tuple[int, int], Tuple[int, int]]]:
    """All independent directed pairs whose Lemma 3.4 premise holds and
    whose crossing disconnects (produces a TwoCycle NO instance)."""
    seqs = {v: run.transcripts[v].sent_sequence() for v in range(instance.n)}
    directed = []
    for u, v in sorted(instance.input_edges):
        directed.append((u, v))
        directed.append((v, u))
    out = []
    for e1, e2 in combinations(directed, 2):
        (v1, u1), (v2, u2) = e1, e2
        if seqs[v1] != seqs[v2] or seqs[u1] != seqs[u2]:
            continue
        if not are_independent(instance, e1, e2):
            continue
        crossed_graph_connected = _crossing_keeps_connected(instance, e1, e2)
        if crossed_graph_connected:
            continue
        out.append((e1, e2))
    return out


def _crossing_keeps_connected(instance: BCCInstance, e1, e2) -> bool:
    """Cheap connectivity test of the crossed input graph."""
    crossed = cross(instance, e1, e2)
    return crossed.input_graph().is_connected()


def forced_error_of_algorithm(
    simulator: Simulator,
    factory: AlgorithmFactory,
    n: int,
    rounds: int,
    coin: Optional[PublicCoin] = None,
) -> ForcedErrorReport:
    """Measure the exact forced error of a concrete algorithm at (n, t)."""
    one_cycles = [
        BCCInstance.kt0_from_graph(cover.to_graph())
        for cover in enumerate_one_cycle_covers(n)
    ]
    yes_count = 0
    fooled_total = 0
    error_mass = 0.0
    v1_weight = 0.5 / len(one_cycles)

    # first pass: count fooled instances per one-cycle (for the V2 weights)
    fooled_per_instance: List[int] = []
    decisions: List[str] = []
    pair_store: List[List] = []
    for inst in one_cycles:
        run = simulator.run(inst, factory, rounds, coin=coin)
        pairs = _premise_pairs(run, inst)
        fooled_per_instance.append(len(pairs))
        decisions.append(decision_of_run(run))
        pair_store.append(pairs)
    total_fooled = sum(fooled_per_instance)

    for decision, fooled in zip(decisions, fooled_per_instance):
        if decision == YES:
            yes_count += 1
            # errs on all its fooled two-cycle instances
            if total_fooled:
                error_mass += 0.5 * fooled / total_fooled
        else:
            # errs on the one-cycle instance itself
            error_mass += v1_weight
        fooled_total += fooled

    return ForcedErrorReport(
        n=n,
        rounds=rounds,
        one_cycle_count=len(one_cycles),
        yes_on_one_cycles=yes_count,
        fooled_two_cycle_instances=fooled_total,
        forced_error=error_mass,
    )


def forced_error_curve(
    simulator: Simulator,
    factory: AlgorithmFactory,
    n: int,
    round_values: List[int],
    coin: Optional[PublicCoin] = None,
) -> List[Tuple[int, float]]:
    """(t, forced error) series -- the finite-n decay curve that Theorem
    3.1 says cannot reach o(1) before t = Omega(log n)."""
    return [
        (t, forced_error_of_algorithm(simulator, factory, n, t, coin).forced_error)
        for t in round_values
    ]
