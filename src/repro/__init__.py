"""repro: a reproduction of "Connectivity Lower Bounds in Broadcast
Congested Clique" (Pai & Pemmaraju, PODC 2019).

The package provides:

* :mod:`repro.core` -- a full KT-0/KT-1 simulator for the BCC(b) model;
* :mod:`repro.graphs` -- the graph substrate (components, generators,
  arboricity);
* :mod:`repro.instances` -- the one-/two-/multi-cycle instance families and
  their exhaustive enumeration;
* :mod:`repro.problems` -- Connectivity, TwoCycle, MultiCycle and
  ConnectedComponents with verifiers;
* :mod:`repro.crossing` -- port-preserving crossings and operational
  indistinguishability (Definitions 3.2/3.3, Lemma 3.4);
* :mod:`repro.indist` -- the indistinguishability graph, polygamous Hall's
  theorem and k-matchings (Definition 3.6, Theorem 2.1, Lemmas 3.7-3.9);
* :mod:`repro.partitions` -- the set-partition lattice, Bell numbers, and
  the M_n / E_n matrices with exact rank (Theorem 2.3, Lemma 4.1);
* :mod:`repro.twoparty` -- 2-party communication protocols, the Partition
  reductions of Section 4.2 and the KT-1 simulation of Section 4.3;
* :mod:`repro.information` -- entropy/mutual-information tools and the
  PartitionComp argument (Theorem 4.5);
* :mod:`repro.algorithms` -- upper-bound BCC algorithms demonstrating the
  lower bounds are tight on uniformly sparse graphs;
* :mod:`repro.lowerbounds` -- one executable engine per theorem.
"""

__version__ = "1.0.0"
