"""Resilience: fault injection, run budgets, checkpoints, graceful exits.

Four small layers that make the library's executions survivable:

* :mod:`repro.resilience.faults` -- a seeded, deterministic
  :class:`FaultPlan` (bit flips, erasures, crash-stops; per-round /
  per-vertex schedules and rates) applied by the simulator between
  broadcast and delivery;
* :mod:`repro.resilience.budget` -- a cooperative :class:`Budget`
  (wall-clock deadline + work-unit cap) checked in the long-running
  search inner loops, raising
  :class:`~repro.errors.BudgetExceededError` with a best-so-far partial;
* :mod:`repro.resilience.checkpoint` -- atomic JSON checkpoints
  (write-to-temp + ``os.replace``) with a versioned, kind-tagged
  envelope, plus the cadenced :class:`Checkpointer`;
* :mod:`repro.resilience.harness` -- the graceful-degradation harness:
  correctness-vs-fault-rate curves for the upper-bound algorithms, with
  a schema-versioned ``fault_sweep`` JSON payload and validator.

:func:`graceful_interrupts` rounds it out: inside the context manager
SIGTERM raises ``KeyboardInterrupt`` so the final-checkpoint path covers
Ctrl-C and scheduler kills alike.
"""

from repro.resilience.budget import Budget
from repro.resilience.checkpoint import (
    CHECKPOINT_VERSION,
    Checkpointer,
    read_checkpoint,
    write_checkpoint,
)
from repro.resilience.faults import (
    FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    FaultRun,
    ScheduledFault,
)
from repro.resilience.harness import (
    FAULT_SWEEP_SCHEMA_VERSION,
    DegradationCurve,
    DegradationPoint,
    FaultSweepReport,
    HARNESS_ALGORITHMS,
    fault_sweep,
    validate_fault_sweep_payload,
)
from repro.resilience.interrupt import graceful_interrupts

__all__ = [
    "Budget",
    "CHECKPOINT_VERSION",
    "Checkpointer",
    "DegradationCurve",
    "DegradationPoint",
    "FAULT_KINDS",
    "FAULT_SWEEP_SCHEMA_VERSION",
    "FaultEvent",
    "FaultPlan",
    "FaultRun",
    "FaultSweepReport",
    "HARNESS_ALGORITHMS",
    "ScheduledFault",
    "fault_sweep",
    "graceful_interrupts",
    "read_checkpoint",
    "validate_fault_sweep_payload",
    "write_checkpoint",
]
