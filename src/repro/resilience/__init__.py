"""Resilience: fault injection, run budgets, checkpoints, graceful exits.

Four small layers that make the library's executions survivable:

* :mod:`repro.resilience.faults` -- a seeded, deterministic
  :class:`FaultPlan` (bit flips, erasures, crash-stops; per-round /
  per-vertex schedules and rates) applied by the simulator between
  broadcast and delivery;
* :mod:`repro.resilience.budget` -- a cooperative :class:`Budget`
  (wall-clock deadline + work-unit cap) checked in the long-running
  search inner loops, raising
  :class:`~repro.errors.BudgetExceededError` with a best-so-far partial;
* :mod:`repro.resilience.checkpoint` -- atomic JSON checkpoints
  (write-to-temp + ``os.replace``) with a versioned, kind-tagged
  envelope, plus the cadenced :class:`Checkpointer`;
* :mod:`repro.resilience.harness` -- the graceful-degradation harness:
  correctness-vs-fault-rate curves for the upper-bound algorithms, with
  a schema-versioned ``fault_sweep`` JSON payload and validator.

:func:`graceful_interrupts` rounds it out: inside the context manager
SIGTERM raises ``KeyboardInterrupt`` so the final-checkpoint path covers
Ctrl-C and scheduler kills alike, and registered flush hooks
(:func:`register_flush_hook`) run on the way out so open session logs
are sealed before the interrupt propagates. :mod:`repro.resilience.retry`
supplies the shared transient-``OSError`` retry policy used by
checkpoint writes and session-log appends.
"""

from repro.resilience.budget import Budget
from repro.resilience.checkpoint import (
    CHECKPOINT_VERSION,
    Checkpointer,
    read_checkpoint,
    write_checkpoint,
)
from repro.resilience.faults import (
    FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    FaultRun,
    ScheduledFault,
)
from repro.resilience.harness import (
    FAULT_SWEEP_SCHEMA_VERSION,
    DegradationCurve,
    DegradationPoint,
    FaultSweepReport,
    HARNESS_ALGORITHMS,
    fault_sweep,
    validate_fault_sweep_payload,
)
from repro.resilience.interrupt import (
    graceful_interrupts,
    register_flush_hook,
    unregister_flush_hook,
)
from repro.resilience.retry import (
    DEFAULT_RETRY_ATTEMPTS,
    DEFAULT_RETRY_BASE_DELAY,
    retry_transient,
    set_retry_sleep,
)

__all__ = [
    "Budget",
    "CHECKPOINT_VERSION",
    "Checkpointer",
    "DEFAULT_RETRY_ATTEMPTS",
    "DEFAULT_RETRY_BASE_DELAY",
    "DegradationCurve",
    "DegradationPoint",
    "FAULT_KINDS",
    "FAULT_SWEEP_SCHEMA_VERSION",
    "FaultEvent",
    "FaultPlan",
    "FaultRun",
    "FaultSweepReport",
    "HARNESS_ALGORITHMS",
    "ScheduledFault",
    "fault_sweep",
    "graceful_interrupts",
    "read_checkpoint",
    "register_flush_hook",
    "retry_transient",
    "set_retry_sleep",
    "unregister_flush_hook",
    "validate_fault_sweep_payload",
    "write_checkpoint",
]
