"""Graceful SIGINT/SIGTERM handling for interruptible CLI runs.

``KeyboardInterrupt`` already gives SIGINT a catchable shape; SIGTERM (the
default ``kill``, and what CI runners and container orchestrators send on
timeout) normally kills the process with no chance to flush a checkpoint.
:func:`graceful_interrupts` maps SIGTERM onto ``KeyboardInterrupt`` for
the duration of a ``with`` block, so one ``except KeyboardInterrupt``
covers both "the user pressed Ctrl-C" and "the scheduler said wrap it up",
and the search's final-checkpoint path runs either way.

Flush hooks close the gap checkpoints don't cover: checkpoints flush from
their own ``except KeyboardInterrupt`` handlers, but an open *session log*
(:class:`repro.replay.SessionStore`) has no such handler on the interrupt
path. Writers register a zero-argument flushable with
:func:`register_flush_hook`; when an interrupt escapes the ``with``
block, :func:`graceful_interrupts` runs every registered hook (inner
handlers first having already done their own flushing) before re-raising,
so a SIGINT/SIGTERM-killed run leaves a sealed, replayable session log
rather than just a checkpoint.

The previous handlers are restored on exit, including on exceptions, and
the context manager degrades to a no-op off the main thread (Python only
delivers signals to the main thread) -- flush hooks still run there.
"""

from __future__ import annotations

import contextlib
import itertools
import signal
import threading
from typing import Callable, Dict, Iterator

__all__ = [
    "graceful_interrupts",
    "register_flush_hook",
    "unregister_flush_hook",
]

_hooks_lock = threading.Lock()
_hooks: Dict[int, Callable[[], None]] = {}
_handles = itertools.count()


def register_flush_hook(hook: Callable[[], None]) -> int:
    """Register a flushable to run if an interrupt escapes the guard.

    Returns a handle for :func:`unregister_flush_hook`. Hooks must be
    idempotent and exception-safe in spirit; exceptions they raise are
    swallowed so one broken writer cannot block another's flush.
    """
    with _hooks_lock:
        handle = next(_handles)
        _hooks[handle] = hook
        return handle


def unregister_flush_hook(handle: int) -> None:
    """Remove a previously registered hook (missing handles are ignored)."""
    with _hooks_lock:
        _hooks.pop(handle, None)


def _run_flush_hooks() -> None:
    with _hooks_lock:
        hooks = list(_hooks.values())
    for hook in hooks:
        try:
            hook()
        except Exception:
            pass  # a failed flush must not mask the interrupt itself


@contextlib.contextmanager
def graceful_interrupts() -> Iterator[None]:
    """Within the block, SIGTERM raises KeyboardInterrupt like SIGINT does.

    On the way out of an interrupt (either signal), every registered
    flush hook runs -- sealing open session logs -- before the
    ``KeyboardInterrupt`` continues to the caller's handler.
    """
    if threading.current_thread() is not threading.main_thread():
        # Signals are main-thread only; nothing to install, nothing to
        # break -- but flush hooks still honor an interrupt raised here.
        try:
            yield
        except KeyboardInterrupt:
            _run_flush_hooks()
            raise
        return

    def _raise_interrupt(signum, frame):  # pragma: no cover - signal path
        raise KeyboardInterrupt(f"signal {signum}")

    previous = signal.getsignal(signal.SIGTERM)
    signal.signal(signal.SIGTERM, _raise_interrupt)
    try:
        yield
    except KeyboardInterrupt:
        _run_flush_hooks()
        raise
    finally:
        signal.signal(signal.SIGTERM, previous)
