"""Graceful SIGINT/SIGTERM handling for interruptible CLI runs.

``KeyboardInterrupt`` already gives SIGINT a catchable shape; SIGTERM (the
default ``kill``, and what CI runners and container orchestrators send on
timeout) normally kills the process with no chance to flush a checkpoint.
:func:`graceful_interrupts` maps SIGTERM onto ``KeyboardInterrupt`` for
the duration of a ``with`` block, so one ``except KeyboardInterrupt``
covers both "the user pressed Ctrl-C" and "the scheduler said wrap it up",
and the search's final-checkpoint path runs either way.

The previous handlers are restored on exit, including on exceptions, and
the context manager degrades to a no-op off the main thread (Python only
delivers signals to the main thread).
"""

from __future__ import annotations

import contextlib
import signal
import threading
from typing import Iterator

__all__ = ["graceful_interrupts"]


@contextlib.contextmanager
def graceful_interrupts() -> Iterator[None]:
    """Within the block, SIGTERM raises KeyboardInterrupt like SIGINT does."""
    if threading.current_thread() is not threading.main_thread():
        # Signals are main-thread only; nothing to install, nothing to break.
        yield
        return

    def _raise_interrupt(signum, frame):  # pragma: no cover - signal path
        raise KeyboardInterrupt(f"signal {signum}")

    previous = signal.getsignal(signal.SIGTERM)
    signal.signal(signal.SIGTERM, _raise_interrupt)
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)
