"""Deterministic fault injection for BCC broadcast channels.

The paper's lower bounds reason about *adversarial* executions; the clean
simulator in :mod:`repro.core.simulator` only ever runs fault-free ones.
This module supplies the missing adversary as data: a :class:`FaultPlan`
is a seeded, fully deterministic description of which broadcasts get
corrupted, dropped, or silenced, applied by the simulator between the
broadcast step and the delivery step of each round.

Fault taxonomy (the ``kind`` strings used in plans, events, and traces):

``bit_flip``
    One bit of a delivered copy of a message is flipped ('0' <-> '1').
    Applied per (sender, receiver) delivery, so two receivers of the same
    broadcast can see *different* messages -- exactly the port-level
    divergence an adversarial channel induces. Silent broadcasts (the
    paper's ⊥) carry no bits and pass through unchanged.

``erasure``
    A delivered copy of a message is replaced by the empty broadcast ⊥.
    Also per-delivery; the receiver cannot distinguish an erased message
    from deliberate silence, which is what makes the three-character
    alphabet adversarially interesting.

``crash``
    Crash-stop of the *sender*: from the crash round onward the vertex
    broadcasts ⊥ forever (fail-silent). It still hears other vertices and
    still produces an output; whether that output is useful is precisely
    the degradation the resilience harness measures.

Determinism contract: a plan's randomness comes only from ``seed``.
:meth:`FaultPlan.begin_run` returns a fresh :class:`FaultRun` whose RNG is
consumed in a fixed order (round-major, then vertex/pair in index order),
so the same (instance, algorithm, plan) triple always yields bit-identical
executions -- fault injection is replayable evidence, not noise.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import FaultInjectionError

__all__ = ["FAULT_KINDS", "FaultEvent", "FaultPlan", "FaultRun", "ScheduledFault"]

#: The fault kinds the channel layer implements.
FAULT_KINDS = ("bit_flip", "erasure", "crash")


@dataclass(frozen=True)
class ScheduledFault:
    """One explicitly scheduled fault (deterministic, rate-independent).

    Attributes
    ----------
    round_index:
        1-based round in which the fault fires.
    kind:
        One of :data:`FAULT_KINDS`.
    vertex:
        The *sender* vertex index affected.
    receiver:
        For ``bit_flip`` / ``erasure``: the receiver whose delivered copy
        is corrupted, or ``None`` for every receiver. Ignored for
        ``crash`` (a crash silences the sender for everyone).
    bit_index:
        For ``bit_flip``: which bit of the message to flip (0-based). Out
        of range (e.g. against a silent broadcast) raises
        :class:`~repro.errors.FaultInjectionError` at apply time, because
        an explicit schedule that does nothing is a driver bug.
    """

    round_index: int
    kind: str
    vertex: int
    receiver: Optional[int] = None
    bit_index: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultInjectionError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.round_index < 1:
            raise FaultInjectionError(
                f"round_index must be >= 1, got {self.round_index}"
            )
        if self.vertex < 0:
            raise FaultInjectionError(f"vertex must be >= 0, got {self.vertex}")
        if self.bit_index < 0:
            raise FaultInjectionError(f"bit_index must be >= 0, got {self.bit_index}")

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form (session logs record the plan they ran under)."""
        return {
            "round_index": self.round_index,
            "kind": self.kind,
            "vertex": self.vertex,
            "receiver": self.receiver,
            "bit_index": self.bit_index,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "ScheduledFault":
        """Inverse of :meth:`as_dict`; validation reruns in ``__post_init__``."""
        return ScheduledFault(
            round_index=data["round_index"],
            kind=data["kind"],
            vertex=data["vertex"],
            receiver=data.get("receiver"),
            bit_index=data.get("bit_index", 0),
        )


@dataclass(frozen=True)
class FaultEvent:
    """One fault as it actually happened in an execution."""

    t: int  # round index, 1-based
    kind: str
    vertex: int  # sender
    receiver: Optional[int]  # None for sender-side faults (crash)
    original: str
    delivered: str
    scheduled: bool = False  # True if from an explicit ScheduledFault

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready form, used by trace schema v2 ``fault`` events."""
        return {
            "t": self.t,
            "kind": self.kind,
            "vertex": self.vertex,
            "receiver": self.receiver,
            "original": self.original,
            "delivered": self.delivered,
            "scheduled": self.scheduled,
        }


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic adversarial channel description.

    Rates are per-opportunity probabilities: ``crash_rate`` is checked
    once per (round, live vertex); ``bit_flip_rate`` and ``erasure_rate``
    once per (round, sender, receiver) delivery. ``scheduled`` faults fire
    unconditionally at their (round, vertex) coordinates. ``first_round``
    / ``last_round`` bound the window in which *rate-driven* faults may
    fire (scheduled faults carry their own round and ignore the window).
    ``max_crashes`` caps rate-driven crash-stops (scheduled crashes are
    exempt: an explicit schedule is an explicit adversary).
    """

    seed: int = 0
    bit_flip_rate: float = 0.0
    erasure_rate: float = 0.0
    crash_rate: float = 0.0
    max_crashes: Optional[int] = None
    scheduled: Tuple[ScheduledFault, ...] = ()
    first_round: int = 1
    last_round: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("bit_flip_rate", "erasure_rate", "crash_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise FaultInjectionError(f"{name} must be in [0, 1], got {rate}")
        if self.first_round < 1:
            raise FaultInjectionError(
                f"first_round must be >= 1, got {self.first_round}"
            )
        if self.last_round is not None and self.last_round < self.first_round:
            raise FaultInjectionError(
                f"last_round {self.last_round} < first_round {self.first_round}"
            )
        if self.max_crashes is not None and self.max_crashes < 0:
            raise FaultInjectionError(
                f"max_crashes must be >= 0, got {self.max_crashes}"
            )
        if not isinstance(self.scheduled, tuple):
            object.__setattr__(self, "scheduled", tuple(self.scheduled))

    @property
    def has_rate_faults(self) -> bool:
        return (
            self.bit_flip_rate > 0.0
            or self.erasure_rate > 0.0
            or self.crash_rate > 0.0
        )

    def begin_run(self, n: int) -> "FaultRun":
        """Fresh per-execution state (RNG, crash set, event log)."""
        for fault in self.scheduled:
            if fault.vertex >= n:
                raise FaultInjectionError(
                    f"scheduled fault names vertex {fault.vertex} but the "
                    f"instance has only {n} vertices"
                )
            if fault.receiver is not None and fault.receiver >= n:
                raise FaultInjectionError(
                    f"scheduled fault names receiver {fault.receiver} but "
                    f"the instance has only {n} vertices"
                )
        return FaultRun(plan=self, n=n)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form: everything needed to rebuild the plan exactly.

        Session logs persist this so a replay runs under the *identical*
        adversary -- same seed, same rates, same schedule, same window.
        """
        return {
            "seed": self.seed,
            "bit_flip_rate": self.bit_flip_rate,
            "erasure_rate": self.erasure_rate,
            "crash_rate": self.crash_rate,
            "max_crashes": self.max_crashes,
            "scheduled": [fault.as_dict() for fault in self.scheduled],
            "first_round": self.first_round,
            "last_round": self.last_round,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "FaultPlan":
        """Inverse of :meth:`as_dict`; validation reruns in ``__post_init__``."""
        return FaultPlan(
            seed=data.get("seed", 0),
            bit_flip_rate=data.get("bit_flip_rate", 0.0),
            erasure_rate=data.get("erasure_rate", 0.0),
            crash_rate=data.get("crash_rate", 0.0),
            max_crashes=data.get("max_crashes"),
            scheduled=tuple(
                ScheduledFault.from_dict(entry)
                for entry in data.get("scheduled", ())
            ),
            first_round=data.get("first_round", 1),
            last_round=data.get("last_round"),
        )

    # Convenience constructors -----------------------------------------
    @staticmethod
    def single_rate(kind: str, rate: float, seed: int = 0) -> "FaultPlan":
        """A plan exercising exactly one fault kind at the given rate."""
        if kind not in FAULT_KINDS:
            raise FaultInjectionError(
                f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}"
            )
        kwargs = {f"{kind}_rate": rate} if kind != "crash" else {"crash_rate": rate}
        return FaultPlan(seed=seed, **kwargs)


class FaultRun:
    """Mutable per-execution fault state; created by ``FaultPlan.begin_run``.

    The simulator calls :meth:`filter_broadcasts` once per round (sender-
    side faults: crash-stop) and :meth:`filter_delivery` once per
    (sender, receiver) pair (delivery faults: bit flips and erasures), in
    fixed index order. All RNG consumption happens in that order, which is
    what makes runs bit-reproducible under a fixed seed.
    """

    __slots__ = ("plan", "n", "_rng", "_crashed", "_crashes_injected", "events", "_by_round")

    def __init__(self, plan: FaultPlan, n: int):
        self.plan = plan
        self.n = n
        self._rng = random.Random(plan.seed)
        self._crashed: set = set()
        self._crashes_injected = 0
        self.events: List[FaultEvent] = []
        # Scheduled faults indexed by round for O(1) per-round lookup.
        self._by_round: Dict[int, List[ScheduledFault]] = {}
        for fault in plan.scheduled:
            self._by_round.setdefault(fault.round_index, []).append(fault)

    # ------------------------------------------------------------------
    def _in_window(self, t: int) -> bool:
        plan = self.plan
        if t < plan.first_round:
            return False
        return plan.last_round is None or t <= plan.last_round

    def filter_broadcasts(self, t: int, messages: Tuple[str, ...]) -> Tuple[str, ...]:
        """Apply sender-side faults (crash-stop) to the round's broadcasts."""
        plan = self.plan
        out = list(messages)
        # 1. explicit scheduled crashes for this round
        for fault in self._by_round.get(t, ()):
            if fault.kind != "crash":
                continue
            if fault.vertex not in self._crashed:
                self._crashed.add(fault.vertex)
                self.events.append(
                    FaultEvent(
                        t=t,
                        kind="crash",
                        vertex=fault.vertex,
                        receiver=None,
                        original=out[fault.vertex],
                        delivered="",
                        scheduled=True,
                    )
                )
        # 2. rate-driven crashes -- one RNG draw per live vertex, fixed order
        if plan.crash_rate > 0.0 and self._in_window(t):
            for v in range(self.n):
                if v in self._crashed:
                    continue
                draw = self._rng.random()
                if draw < plan.crash_rate and (
                    plan.max_crashes is None
                    or self._crashes_injected < plan.max_crashes
                ):
                    self._crashed.add(v)
                    self._crashes_injected += 1
                    self.events.append(
                        FaultEvent(
                            t=t,
                            kind="crash",
                            vertex=v,
                            receiver=None,
                            original=out[v],
                            delivered="",
                        )
                    )
        # 3. silence every crashed vertex (including ones crashed earlier)
        for v in self._crashed:
            out[v] = ""
        return tuple(out)

    def filter_delivery(self, t: int, sender: int, receiver: int, message: str) -> str:
        """Apply delivery faults to one (sender, receiver) copy of a message."""
        plan = self.plan
        delivered = message
        # explicit scheduled faults targeting this delivery
        for fault in self._by_round.get(t, ()):
            if fault.kind == "crash" or fault.vertex != sender:
                continue
            if fault.receiver is not None and fault.receiver != receiver:
                continue
            if fault.kind == "erasure":
                if delivered != "":
                    self.events.append(
                        FaultEvent(t, "erasure", sender, receiver, delivered, "", True)
                    )
                    delivered = ""
            else:  # bit_flip
                if fault.bit_index >= len(delivered):
                    raise FaultInjectionError(
                        f"scheduled bit_flip at round {t} targets bit "
                        f"{fault.bit_index} of message {delivered!r} from "
                        f"vertex {sender} (message too short)"
                    )
                flipped = _flip(delivered, fault.bit_index)
                self.events.append(
                    FaultEvent(t, "bit_flip", sender, receiver, delivered, flipped, True)
                )
                delivered = flipped
        # rate-driven faults; RNG draws happen unconditionally (fixed count
        # per delivery) so the stream stays aligned whatever the messages are
        if self._in_window(t):
            if plan.erasure_rate > 0.0:
                if self._rng.random() < plan.erasure_rate and delivered != "":
                    self.events.append(
                        FaultEvent(t, "erasure", sender, receiver, delivered, "")
                    )
                    delivered = ""
            if plan.bit_flip_rate > 0.0:
                draw = self._rng.random()
                pick = self._rng.random()
                if draw < plan.bit_flip_rate and delivered:
                    index = int(pick * len(delivered))
                    flipped = _flip(delivered, min(index, len(delivered) - 1))
                    self.events.append(
                        FaultEvent(t, "bit_flip", sender, receiver, delivered, flipped)
                    )
                    delivered = flipped
        return delivered

    # ------------------------------------------------------------------
    def rng_digest(self) -> str:
        """SHA-256 fingerprint of the current RNG state.

        Session logs record this each round; a replay whose fault RNG
        drifted from the recorded stream is caught at the exact round the
        consumption order first differed, not at the end of the run.
        """
        state = repr(self._rng.getstate()).encode("utf-8")
        return hashlib.sha256(state).hexdigest()

    @property
    def crashed_vertices(self) -> Tuple[int, ...]:
        return tuple(sorted(self._crashed))

    @property
    def faults_injected(self) -> int:
        return len(self.events)


def _flip(message: str, index: int) -> str:
    bit = "1" if message[index] == "0" else "0"
    return message[:index] + bit + message[index + 1 :]
