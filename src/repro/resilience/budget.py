"""Cooperative run budgets for long-running searches.

The exhaustive universal-bound search, the sampled information estimator,
and the exact rank engines can run for minutes to hours. A
:class:`Budget` turns "run forever and hope" into "run exactly this much
and surface the best partial answer": inner loops call :meth:`Budget.tick`
(cheap -- an int compare, plus a clock read at most every
``check_interval`` ticks), and when either limit trips a
:class:`~repro.errors.BudgetExceededError` propagates out carrying the
caller-attached partial result.

A budget measures *work units* (assignments enumerated, samples drawn,
pivot rows eliminated -- whatever the loop's natural unit is) and wall
clock. Both limits are optional; a limitless Budget never trips and
costs one compare per tick.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.errors import BudgetExceededError

__all__ = ["Budget"]


class Budget:
    """Wall-clock + work-unit budget, checked cooperatively.

    Parameters
    ----------
    wall_seconds:
        Maximum elapsed wall-clock time, or None for unlimited. The clock
        starts at construction (or at an explicit :meth:`restart`).
    max_units:
        Maximum work units, or None for unlimited.
    check_interval:
        Read the clock only every this-many ticks; keeps the per-tick cost
        of a wall-clock budget to an int compare in the common case.
    """

    __slots__ = ("wall_seconds", "max_units", "check_interval", "_units", "_started", "_next_clock_check")

    def __init__(
        self,
        wall_seconds: Optional[float] = None,
        max_units: Optional[int] = None,
        check_interval: int = 64,
    ):
        if wall_seconds is not None and wall_seconds <= 0:
            raise ValueError(f"wall_seconds must be > 0, got {wall_seconds}")
        if max_units is not None and max_units <= 0:
            raise ValueError(f"max_units must be > 0, got {max_units}")
        if check_interval < 1:
            raise ValueError(f"check_interval must be >= 1, got {check_interval}")
        self.wall_seconds = wall_seconds
        self.max_units = max_units
        self.check_interval = check_interval
        self._units = 0
        self._started = time.monotonic()
        self._next_clock_check = check_interval

    # ------------------------------------------------------------------
    @property
    def units_done(self) -> int:
        return self._units

    def elapsed(self) -> float:
        return time.monotonic() - self._started

    def remaining_units(self) -> Optional[int]:
        if self.max_units is None:
            return None
        return max(0, self.max_units - self._units)

    def remaining_seconds(self) -> Optional[float]:
        if self.wall_seconds is None:
            return None
        return max(0.0, self.wall_seconds - self.elapsed())

    def restart(self) -> None:
        """Reset both the clock and the unit counter."""
        self._units = 0
        self._started = time.monotonic()
        self._next_clock_check = self.check_interval

    # ------------------------------------------------------------------
    def tick(self, units: int = 1, partial=None) -> None:
        """Record ``units`` of work; raise if either limit is now exceeded.

        ``partial`` is attached to the raised
        :class:`~repro.errors.BudgetExceededError` as the best-so-far
        result, so interactive callers can report progress.
        """
        self._units += units
        if self.max_units is not None and self._units >= self.max_units:
            raise BudgetExceededError(
                f"work budget exhausted: {self._units} >= {self.max_units} units",
                partial=partial,
            )
        if self.wall_seconds is not None and self._units >= self._next_clock_check:
            self._next_clock_check = self._units + self.check_interval
            elapsed = self.elapsed()
            if elapsed >= self.wall_seconds:
                raise BudgetExceededError(
                    f"wall-clock budget exhausted: {elapsed:.3f}s >= "
                    f"{self.wall_seconds:.3f}s after {self._units} units",
                    partial=partial,
                )

    def check(self, partial=None) -> None:
        """Wall-clock-only check (no unit accounting); for coarse loops."""
        if self.wall_seconds is not None:
            elapsed = self.elapsed()
            if elapsed >= self.wall_seconds:
                raise BudgetExceededError(
                    f"wall-clock budget exhausted: {elapsed:.3f}s >= "
                    f"{self.wall_seconds:.3f}s after {self._units} units",
                    partial=partial,
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Budget(wall_seconds={self.wall_seconds}, max_units={self.max_units}, "
            f"units_done={self._units})"
        )
