"""Bounded retry-with-backoff for transient I/O errors.

A single ``EINTR`` or transient ``OSError`` (NFS hiccup, overlay-fs
flush glitch, container freezer pause) should not kill an hours-long
search whose checkpoint or session log write happened to hit it.
:func:`retry_transient` retries a callable a bounded number of times
with exponential backoff, then re-raises the last error -- persistent
failures still fail, they just get a fair number of chances first.

Determinism contract: tests (and any caller that must not sleep) switch
the module into no-sleep mode via :func:`set_retry_sleep` -- backoff
delays are computed identically but never waited on, so retry behaviour
is observable without wall-clock coupling.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Optional, Tuple, Type, TypeVar

__all__ = [
    "DEFAULT_RETRY_ATTEMPTS",
    "DEFAULT_RETRY_BASE_DELAY",
    "retry_transient",
    "set_retry_sleep",
]

T = TypeVar("T")

#: Total attempts (first try + retries) when the caller does not say.
DEFAULT_RETRY_ATTEMPTS = 4

#: First backoff delay in seconds; doubles per retry (0.01, 0.02, 0.04...).
DEFAULT_RETRY_BASE_DELAY = 0.01

# The module-level sleep hook. ``None`` = no-sleep mode (deterministic
# tests); otherwise a ``sleep(seconds)`` callable. Swapped atomically by
# set_retry_sleep, read once per retry.
_sleep: Optional[Callable[[float], None]] = time.sleep


def set_retry_sleep(
    sleep: Optional[Callable[[float], None]],
) -> Optional[Callable[[float], None]]:
    """Install the backoff sleep hook; returns the previous one.

    Pass ``None`` for deterministic no-sleep mode (retries happen
    immediately), or a custom callable to observe the computed delays.
    Restore the returned previous hook when done.
    """
    global _sleep
    previous = _sleep
    _sleep = sleep
    return previous


def retry_transient(
    fn: Callable[[], T],
    attempts: int = DEFAULT_RETRY_ATTEMPTS,
    base_delay: float = DEFAULT_RETRY_BASE_DELAY,
    transient: Tuple[Type[BaseException], ...] = (OSError,),
) -> T:
    """Call ``fn`` with up to ``attempts`` tries; backoff between tries.

    Retries on ``transient`` exceptions only (default: ``OSError``, which
    includes ``InterruptedError``/EINTR). The final failure re-raises the
    original exception unchanged so callers' error mapping still applies.
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    if base_delay < 0:
        raise ValueError(f"base_delay must be >= 0, got {base_delay}")
    last: Optional[BaseException] = None
    for attempt in range(attempts):
        try:
            return fn()
        except transient as exc:  # noqa: PERF203 - bounded, cold path
            last = exc
            if attempt == attempts - 1:
                raise
            sleep = _sleep
            if sleep is not None:
                sleep(base_delay * (2**attempt))
    raise last  # pragma: no cover - unreachable (loop raises or returns)
