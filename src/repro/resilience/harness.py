"""Graceful-degradation measurement: algorithms under faulty channels.

The upper-bound algorithms in :mod:`repro.algorithms` are correct in the
clean BCC model; this harness measures how *gracefully* each one fails as
an adversarial channel (see :mod:`repro.resilience.faults`) corrupts,
drops, or silences broadcasts. For each (algorithm, fault kind, fault
rate) cell it runs seeded trials over a mixed YES/NO instance family
(one-cycle vs two-cycle covers -- the paper's own hard inputs) and
records the correctness rate, producing one degradation curve per
(algorithm, kind) pair.

The output is a schema-versioned JSON payload (``fault_sweep`` schema
version 1) mirroring the ``BENCH_*.json`` conventions, with a hand-rolled
validator shared by the unit tests, the CI smoke step, and the
``fault-sweep`` CLI subcommand.

Everything is deterministic under a fixed ``seed``: per-trial fault-plan
seeds and instance choices are derived arithmetically (no ``hash()``,
which is randomized across processes), so a sweep is reproducible
evidence, not an anecdote.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.algorithms import (
    boruvka_connectivity_factory,
    boruvka_max_rounds,
    connectivity_factory,
    full_adjacency_connectivity_factory,
    id_bit_width,
    mt16_connectivity_factory,
    mt16_rounds,
    neighbor_exchange_rounds,
)
from repro.core.algorithm import NO, YES, AlgorithmFactory
from repro.core.decision import decision_of_run
from repro.core.model import BCCModel
from repro.core.simulator import Simulator
from repro.errors import FaultInjectionError
from repro.instances import one_cycle_instance, two_cycle_instance
from repro.obs.metrics import MetricsRegistry, get_registry

# repro.obs.sketches is imported lazily inside the functions that use it:
# this module is pulled in by the ``repro.resilience`` package __init__,
# while sketches itself imports ``repro.parallel.merge`` (whose package
# __init__ reaches back into ``repro.resilience``) -- a top-level import
# here would close that cycle.
from repro.obs.stream import get_bus
from repro.resilience.faults import FAULT_KINDS, FaultPlan

__all__ = [
    "FAULT_SWEEP_SCHEMA_VERSION",
    "DegradationCurve",
    "DegradationPoint",
    "FaultSweepReport",
    "HARNESS_ALGORITHMS",
    "fault_sweep",
    "validate_fault_sweep_payload",
]

#: Bump when the fault-sweep JSON payload changes incompatibly.
FAULT_SWEEP_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class _AlgorithmSpec:
    """How to instantiate one harness algorithm at size n."""

    name: str
    kt: int

    def model(self, n: int) -> BCCModel:
        if self.name == "boruvka":
            return BCCModel(bandwidth=id_bit_width(n - 1), kt=1)
        return BCCModel(bandwidth=1, kt=self.kt)

    def factory(self, n: int) -> AlgorithmFactory:
        if self.name == "neighbor_exchange":
            return connectivity_factory(max_degree=2)
        if self.name == "flooding":
            return full_adjacency_connectivity_factory()
        if self.name == "boruvka":
            return boruvka_connectivity_factory()
        if self.name == "sketch":
            return mt16_connectivity_factory(arboricity=2)
        raise FaultInjectionError(f"unknown harness algorithm {self.name!r}")

    def rounds(self, n: int) -> int:
        if self.name == "neighbor_exchange":
            return neighbor_exchange_rounds(1, 2, id_bit_width(n - 1))
        if self.name == "flooding":
            return n
        if self.name == "boruvka":
            return boruvka_max_rounds(n)
        if self.name == "sketch":
            return mt16_rounds(arboricity=2)
        raise FaultInjectionError(f"unknown harness algorithm {self.name!r}")


#: The algorithms the fault harness knows how to evaluate.
HARNESS_ALGORITHMS: Dict[str, _AlgorithmSpec] = {
    "neighbor_exchange": _AlgorithmSpec("neighbor_exchange", kt=1),
    "flooding": _AlgorithmSpec("flooding", kt=1),
    "boruvka": _AlgorithmSpec("boruvka", kt=1),
    "sketch": _AlgorithmSpec("sketch", kt=1),
}


@dataclass(frozen=True)
class DegradationPoint:
    """One (fault rate) cell of a degradation curve."""

    rate: float
    trials: int
    correct: int
    faults_injected: int
    mean_rounds: float

    @property
    def correctness_rate(self) -> float:
        return self.correct / self.trials if self.trials else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "rate": self.rate,
            "trials": self.trials,
            "correct": self.correct,
            "correctness_rate": self.correctness_rate,
            "faults_injected": self.faults_injected,
            "mean_rounds": self.mean_rounds,
        }


@dataclass(frozen=True)
class DegradationCurve:
    """Correctness rate vs fault rate for one (algorithm, fault kind)."""

    algorithm: str
    fault_kind: str
    points: Tuple[DegradationPoint, ...]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "algorithm": self.algorithm,
            "fault_kind": self.fault_kind,
            "points": [p.as_dict() for p in self.points],
        }


@dataclass(frozen=True)
class FaultSweepReport:
    """The full sweep: one curve per (algorithm, fault kind)."""

    n: int
    trials: int
    seed: int
    wall_time_seconds: float
    curves: Tuple[DegradationCurve, ...]
    #: Population sketches over every trial of the sweep (name ->
    #: serialized sketch state, see :mod:`repro.obs.sketches`): the
    #: rounds-executed quantile sketch, the faults-per-trial moments,
    #: and the correct/wrong outcome counts. A pure function of the
    #: trial set, so serial and sharded sweeps carry identical states.
    population: Optional[Dict[str, Dict[str, Any]]] = None

    def as_payload(self) -> Dict[str, Any]:
        """The schema-versioned JSON payload (``fault_sweep`` schema v1;
        the optional ``population`` section is an additive extension the
        validator accepts but does not require)."""
        payload = {
            "schema_version": FAULT_SWEEP_SCHEMA_VERSION,
            "kind": "fault_sweep",
            "created_unix": time.time(),
            "n": self.n,
            "trials": self.trials,
            "seed": self.seed,
            "wall_time_seconds": self.wall_time_seconds,
            "curves": [c.as_dict() for c in self.curves],
        }
        if self.population is not None:
            payload["population"] = self.population
        return payload

    def rows(self) -> List[List[Any]]:
        """Flat rows for the CLI table: one per (algorithm, kind, rate)."""
        out = []
        for curve in self.curves:
            for p in curve.points:
                out.append(
                    [
                        curve.algorithm,
                        curve.fault_kind,
                        p.rate,
                        p.trials,
                        p.correct,
                        round(p.correctness_rate, 4),
                        p.faults_injected,
                        round(p.mean_rounds, 2),
                    ]
                )
        return out


def _trial_seed(seed: int, a_idx: int, k_idx: int, r_idx: int, trial: int) -> int:
    """Deterministic per-trial seed; pure arithmetic (hash() is randomized)."""
    return (
        seed * 1_000_003 + a_idx * 99_991 + k_idx * 9_973 + r_idx * 1_009 + trial
    ) % (2**31 - 1)


def _trial_instance(n: int, kt: int, trial: int, trial_seed: int):
    """Alternate YES (one-cycle) and NO (two-cycle) instances, seeded split."""
    if trial % 2 == 0:
        return one_cycle_instance(n, kt=kt), YES
    split = 3 + (trial_seed % max(1, n - 5))  # split in [3, n-3]
    return two_cycle_instance(n, split, kt=kt), NO


def _sweep_cell(
    simulator: Simulator,
    factory: AlgorithmFactory,
    rounds: int,
    n: int,
    kt: int,
    kind: str,
    rate: float,
    trials: int,
    seed: int,
    a_idx: int,
    k_idx: int,
    r_idx: int,
) -> Tuple[int, int, int, Dict[str, Dict[str, Any]]]:
    """One (algorithm, kind, rate) cell: ``(correct, faults,
    rounds_total, population)``.

    Pure given its arguments: every per-trial seed is derived
    arithmetically from the cell coordinates, so the serial loop and the
    sharded fan-out compute identical cells. ``population`` is the
    cell's per-trial sketch states (rounds quantiles, faults moments,
    outcome counts) serialized for the parent's order-invariant
    :func:`repro.obs.sketches.merge_population` fold.
    """
    from repro.obs.sketches import MomentsSketch, QuantileSketch, TopKSketch

    correct = 0
    faults = 0
    rounds_total = 0
    rounds_sketch = QuantileSketch()
    faults_sketch = MomentsSketch()
    outcome_sketch = TopKSketch()
    for trial in range(trials):
        tseed = _trial_seed(seed, a_idx, k_idx, r_idx, trial)
        instance, truth = _trial_instance(n, kt, trial, tseed)
        plan = (
            FaultPlan.single_rate(kind, rate, seed=tseed)
            if rate > 0.0
            else None
        )
        result = simulator.run(instance, factory, rounds, faults=plan)
        trial_faults = len(result.fault_events)
        faults += trial_faults
        rounds_total += result.rounds_executed
        ok = decision_of_run(result) == truth
        if ok:
            correct += 1
        rounds_sketch.update(float(result.rounds_executed))
        faults_sketch.update(float(trial_faults))
        outcome_sketch.update("correct" if ok else "wrong")
    population = {
        "rounds": rounds_sketch.to_dict(),
        "faults": faults_sketch.to_dict(),
        "outcomes": outcome_sketch.to_dict(),
    }
    return correct, faults, rounds_total, population


def _fault_cell_worker(payload: Tuple) -> Dict[str, int]:
    """Run one sweep cell in a worker process (module-level: picklable).

    ``payload`` is ``(name, a_idx, kind, k_idx, rate, r_idx, n, trials,
    seed)``. The worker builds its own Simulator/factory (cheap; cells
    are pure functions of their coordinates), records no parent-side
    metrics (the parent increments the per-cell counters itself, in cell
    order, so metric totals match the serial sweep's).
    """
    name, a_idx, kind, k_idx, rate, r_idx, n, trials, seed = payload
    spec = HARNESS_ALGORITHMS[name]
    simulator = Simulator(spec.model(n), metrics=None, trace=None)
    correct, faults, rounds_total, population = _sweep_cell(
        simulator,
        spec.factory(n),
        spec.rounds(n),
        n,
        spec.kt,
        kind,
        rate,
        trials,
        seed,
        a_idx,
        k_idx,
        r_idx,
    )
    return {
        "correct": correct,
        "faults": faults,
        "rounds_total": rounds_total,
        "population": population,
    }


def fault_sweep(
    algorithms: Sequence[str] = ("neighbor_exchange", "flooding", "boruvka", "sketch"),
    kinds: Sequence[str] = FAULT_KINDS,
    rates: Sequence[float] = (0.0, 0.01, 0.05, 0.1, 0.2),
    n: int = 8,
    trials: int = 10,
    seed: int = 0,
    metrics: Optional[MetricsRegistry] = None,
    trace=None,
    workers: int = 1,
    session=None,
    cell_cache=None,
) -> FaultSweepReport:
    """Run the full (algorithm x kind x rate) degradation sweep.

    ``n`` must be >= 6 so both one-cycle and two-cycle (split >= 3)
    instances exist. When ``metrics`` is given (or installed process-wide)
    the sweep records ``resilience.trials_run`` and
    ``resilience.faults_injected``; pass ``trace`` to stream the
    underlying simulator runs (including schema-v2 ``fault`` events).

    ``workers > 1`` runs the (algorithm, kind, rate) cells concurrently;
    every cell is a pure function of its coordinates (per-trial seeds
    are derived arithmetically), so the curves -- and the per-cell
    metric totals, which the parent increments in cell order -- are
    identical to the serial sweep's for every worker count, with one
    caveat: a ``trace`` stream is inherently ordered, so tracing forces
    the serial path regardless of ``workers``.

    ``session`` (a :class:`repro.replay.SessionStore`) records one step
    per (algorithm, kind, rate) cell. The serial path appends steps
    directly in cell order; the parallel path writes per-shard segment
    files in completion order and merges them back in shard-index order
    (:meth:`~repro.replay.SessionStore.merge_shard_steps`), so the
    recorded session is identical for every worker count.

    ``cell_cache`` (a :class:`repro.cache.ShardCache` bound to this
    sweep's ``(n, trials, seed)`` -- deliberately *not* to its
    algorithm/kind/rate lists) memoizes individual cells: every cell is
    a pure function of its grid coordinates plus that binding, so a
    tail-extended or overlapping grid recomputes only its new cells.
    Cached cells emit the same bus events and session steps as fresh
    ones, but do not run trials -- they count toward
    ``resilience.cells_cached`` instead of ``resilience.trials_run``.
    A ``trace`` disables cell caching along with the parallel path: a
    trace stream documents an *execution*, which a cache hit elides.
    """
    if n < 6:
        raise FaultInjectionError(f"fault_sweep needs n >= 6, got {n}")
    if trials < 1:
        raise FaultInjectionError(f"trials must be >= 1, got {trials}")
    if workers < 1:
        raise FaultInjectionError(f"workers must be >= 1, got {workers}")
    for name in algorithms:
        if name not in HARNESS_ALGORITHMS:
            raise FaultInjectionError(
                f"unknown algorithm {name!r}; known: {sorted(HARNESS_ALGORITHMS)}"
            )
    for kind in kinds:
        if kind not in FAULT_KINDS:
            raise FaultInjectionError(
                f"unknown fault kind {kind!r}; known: {FAULT_KINDS}"
            )
    if metrics is None:
        metrics = get_registry()
    bus = get_bus()
    start = time.perf_counter()
    if workers > 1 and trace is None:
        curves, population = _sweep_cells_parallel(
            algorithms, kinds, rates, n, trials, seed, metrics, workers, session, bus,
            cell_cache=cell_cache,
        )
    else:
        curves, population = _sweep_cells_serial(
            algorithms, kinds, rates, n, trials, seed, metrics, trace, session, bus,
            cell_cache=cell_cache,
        )
    elapsed = time.perf_counter() - start
    if metrics is not None:
        metrics.histogram("resilience.sweep_seconds").observe(elapsed)
    if bus is not None:
        bus.publish(
            "sweep.end",
            {"cells": len(algorithms) * len(kinds) * len(rates), "n": n},
        )
    return FaultSweepReport(
        n=n,
        trials=trials,
        seed=seed,
        wall_time_seconds=elapsed,
        curves=tuple(curves),
        population=population,
    )


def _sweep_cells_serial(
    algorithms: Sequence[str],
    kinds: Sequence[str],
    rates: Sequence[float],
    n: int,
    trials: int,
    seed: int,
    metrics: Optional[MetricsRegistry],
    trace,
    session=None,
    bus=None,
    cell_cache=None,
) -> Tuple[List[DegradationCurve], Optional[Dict[str, Dict[str, Any]]]]:
    """The original nested sweep loop (one Simulator per algorithm)."""
    from repro.obs.sketches import merge_population

    if trace is not None:
        # A trace documents an execution; a cache hit elides it.
        cell_cache = None
    curves: List[DegradationCurve] = []
    population: Optional[Dict[str, Dict[str, Any]]] = None
    for a_idx, name in enumerate(algorithms):
        spec = HARNESS_ALGORITHMS[name]
        simulator = Simulator(spec.model(n), metrics=metrics, trace=trace)
        factory = spec.factory(n)
        rounds = spec.rounds(n)
        for k_idx, kind in enumerate(kinds):
            points: List[DegradationPoint] = []
            for r_idx, rate in enumerate(rates):
                item = _cell_item(name, a_idx, kind, k_idx, rate, r_idx)
                cached = (
                    cell_cache.get_item(item) if cell_cache is not None else None
                )
                if cached is not None:
                    correct = int(cached["correct"])
                    faults = int(cached["faults"])
                    rounds_total = int(cached["rounds_total"])
                    cell_population = cached.get("population")
                else:
                    correct, faults, rounds_total, cell_population = _sweep_cell(
                        simulator,
                        factory,
                        rounds,
                        n,
                        spec.kt,
                        kind,
                        rate,
                        trials,
                        seed,
                        a_idx,
                        k_idx,
                        r_idx,
                    )
                    if cell_cache is not None:
                        cell_cache.put_item(
                            item,
                            {
                                "correct": correct,
                                "faults": faults,
                                "rounds_total": rounds_total,
                                "population": cell_population,
                            },
                        )
                population = merge_population(population, cell_population)
                points.append(
                    DegradationPoint(
                        rate=rate,
                        trials=trials,
                        correct=correct,
                        faults_injected=faults,
                        mean_rounds=rounds_total / trials,
                    )
                )
                if bus is not None:
                    bus.publish(
                        "sweep.cell",
                        {
                            "algorithm": name,
                            "kind": kind,
                            "rate": rate,
                            "correct": correct,
                            "trials": trials,
                        },
                    )
                if session is not None:
                    session.write_step(
                        f"{name}/{kind}/{rate}",
                        {
                            "algorithm": name,
                            "kind": kind,
                            "rate": rate,
                            "correct": correct,
                            "faults": faults,
                            "rounds_total": rounds_total,
                        },
                    )
                if metrics is not None:
                    if cached is not None:
                        metrics.counter("resilience.cells_cached").inc()
                    else:
                        metrics.counter("resilience.trials_run").inc(trials)
                        metrics.counter("resilience.faults_injected").inc(faults)
            curves.append(DegradationCurve(name, kind, tuple(points)))
    return curves, population


def _cell_item(
    name: str, a_idx: int, kind: str, k_idx: int, rate: float, r_idx: int
) -> Dict[str, Any]:
    """The cache-key item for one sweep cell.

    Grid *indices* ride alongside the names because
    :func:`_trial_seed` derives per-trial seeds from them -- the same
    cell contents at a different grid position is a different
    computation.
    """
    return {
        "algorithm": name,
        "a_idx": int(a_idx),
        "kind": kind,
        "k_idx": int(k_idx),
        "rate": float(rate),
        "r_idx": int(r_idx),
    }


def _sweep_cells_parallel(
    algorithms: Sequence[str],
    kinds: Sequence[str],
    rates: Sequence[float],
    n: int,
    trials: int,
    seed: int,
    metrics: Optional[MetricsRegistry],
    workers: int,
    session=None,
    bus=None,
    cell_cache=None,
) -> Tuple[List[DegradationCurve], Optional[Dict[str, Dict[str, Any]]]]:
    """Fan the flattened (algorithm, kind, rate) cells over a worker pool.

    Cells are dispatched and reassembled in ``(a_idx, k_idx, r_idx)``
    order; the per-cell metric counters are incremented parent-side in
    that same order, so totals match the serial sweep exactly, and the
    per-cell population sketches are folded in that same cell order
    (the fold is order-invariant anyway -- see
    :mod:`repro.obs.sketches` -- so this is belt and braces). Session
    steps go through per-shard segments (written in completion order,
    merged in shard-index order), so the recorded step sequence is the
    serial one regardless of scheduling. Live ``sweep.cell`` bus events
    fire in *completion* order -- they are a progress feed, not a
    deterministic artifact.
    """
    from repro.parallel.executor import ParallelExecutor

    payloads = [
        (name, a_idx, kind, k_idx, rate, r_idx, n, trials, seed)
        for a_idx, name in enumerate(algorithms)
        for k_idx, kind in enumerate(kinds)
        for r_idx, rate in enumerate(rates)
    ]

    def _publish(index: int, cell: Dict[str, Any]) -> None:
        name, _a_idx, kind, _k_idx, rate = payloads[index][:5]
        if bus is not None:
            bus.publish(
                "sweep.cell",
                {
                    "algorithm": name,
                    "kind": kind,
                    "rate": rate,
                    "correct": int(cell["correct"]),
                    "trials": trials,
                },
            )
        if session is not None:
            session.write_shard_step(
                index,
                f"{name}/{kind}/{rate}",
                {
                    "algorithm": name,
                    "kind": kind,
                    "rate": rate,
                    "correct": int(cell["correct"]),
                    "faults": int(cell["faults"]),
                    "rounds_total": int(cell["rounds_total"]),
                },
            )

    # Partition the grid into cached and fresh cells before dispatching:
    # only the fresh ones reach the worker pool, and the cached ones emit
    # their bus events / session shard steps parent-side, so
    # merge_shard_steps still sees every index and the merged step
    # sequence is byte-identical to an all-fresh run's.
    cells: List[Optional[Dict[str, Any]]] = [None] * len(payloads)
    fresh_indices: List[int] = []
    for index, payload in enumerate(payloads):
        hit = None
        if cell_cache is not None:
            hit = cell_cache.get_item(_cell_item(*payload[:6]))
        if hit is None:
            fresh_indices.append(index)
            continue
        cells[index] = hit
        if bus is not None or session is not None:
            _publish(index, hit)

    on_result = None
    if session is not None or bus is not None:

        def on_result(local_index: int, cell: Dict[str, Any]) -> None:
            _publish(fresh_indices[local_index], cell)

    executor = ParallelExecutor(workers=workers, metrics=metrics)
    results = executor.map(
        _fault_cell_worker, [payloads[i] for i in fresh_indices],
        on_result=on_result, span_name="resilience.sweep_map",
    )
    for local_index, cell in enumerate(results):
        index = fresh_indices[local_index]
        cells[index] = cell
        if cell_cache is not None:
            cell_cache.put_item(
                _cell_item(*payloads[index][:6]),
                {
                    "correct": int(cell["correct"]),
                    "faults": int(cell["faults"]),
                    "rounds_total": int(cell["rounds_total"]),
                    "population": cell.get("population"),
                },
            )
    if session is not None:
        session.merge_shard_steps(len(payloads))
    from repro.obs.sketches import merge_population

    fresh = set(fresh_indices)
    curves: List[DegradationCurve] = []
    population: Optional[Dict[str, Dict[str, Any]]] = None
    cursor = 0
    for name in algorithms:
        for kind in kinds:
            points: List[DegradationPoint] = []
            for rate in rates:
                cell = cells[cursor]
                was_fresh = cursor in fresh
                cursor += 1
                faults = int(cell["faults"])
                population = merge_population(population, cell.get("population"))
                points.append(
                    DegradationPoint(
                        rate=rate,
                        trials=trials,
                        correct=int(cell["correct"]),
                        faults_injected=faults,
                        mean_rounds=int(cell["rounds_total"]) / trials,
                    )
                )
                if metrics is not None:
                    if was_fresh:
                        metrics.counter("resilience.trials_run").inc(trials)
                        metrics.counter("resilience.faults_injected").inc(faults)
                    else:
                        metrics.counter("resilience.cells_cached").inc()
            curves.append(DegradationCurve(name, kind, tuple(points)))
    return curves, population


_NUMERIC = (int, float)

_REQUIRED_TOP = {
    "schema_version": int,
    "kind": str,
    "created_unix": _NUMERIC,
    "n": int,
    "trials": int,
    "seed": int,
    "wall_time_seconds": _NUMERIC,
    "curves": list,
}

_REQUIRED_POINT = {
    "rate": _NUMERIC,
    "trials": int,
    "correct": int,
    "correctness_rate": _NUMERIC,
    "faults_injected": int,
    "mean_rounds": _NUMERIC,
}


def validate_fault_sweep_payload(payload: Mapping[str, Any]) -> List[str]:
    """Return a list of schema violations (empty = valid).

    Structure and types only, in the style of
    :func:`repro.obs.validate_bench_payload`: a sweep showing terrible
    degradation is still a *valid* payload.
    """
    problems: List[str] = []
    if not isinstance(payload, Mapping):
        return [f"payload is {type(payload).__name__}, expected object"]
    for field, expected in _REQUIRED_TOP.items():
        if field not in payload:
            problems.append(f"missing required field {field!r}")
            continue
        value = payload[field]
        if expected is int and isinstance(value, bool):
            problems.append(f"field {field!r} must be an integer, got bool")
        elif not isinstance(value, expected):
            problems.append(f"field {field!r} has type {type(value).__name__}")
    if payload.get("kind") not in (None, "fault_sweep"):
        problems.append(f"kind is {payload.get('kind')!r}, expected 'fault_sweep'")
    version = payload.get("schema_version")
    if isinstance(version, int) and not isinstance(version, bool):
        if version > FAULT_SWEEP_SCHEMA_VERSION:
            problems.append(
                f"schema_version {version} is newer than supported "
                f"{FAULT_SWEEP_SCHEMA_VERSION}"
            )
        elif version < 1:
            problems.append("schema_version must be >= 1")
    curves = payload.get("curves")
    if isinstance(curves, list):
        if not curves:
            problems.append("curves is empty")
        for i, curve in enumerate(curves):
            if not isinstance(curve, Mapping):
                problems.append(f"curves[{i}] is not an object")
                continue
            if not isinstance(curve.get("algorithm"), str):
                problems.append(f"curves[{i}].algorithm is not a string")
            if curve.get("fault_kind") not in FAULT_KINDS:
                problems.append(
                    f"curves[{i}].fault_kind {curve.get('fault_kind')!r} "
                    f"not in {FAULT_KINDS}"
                )
            points = curve.get("points")
            if not isinstance(points, list) or not points:
                problems.append(f"curves[{i}].points missing or empty")
                continue
            for j, point in enumerate(points):
                if not isinstance(point, Mapping):
                    problems.append(f"curves[{i}].points[{j}] is not an object")
                    continue
                for field, expected in _REQUIRED_POINT.items():
                    value = point.get(field)
                    if isinstance(value, bool) or not isinstance(value, expected):
                        problems.append(
                            f"curves[{i}].points[{j}].{field} is not "
                            f"{'numeric' if expected is _NUMERIC else 'an integer'}"
                        )
    population = payload.get("population")
    if population is not None:
        # optional additive section: name -> serialized sketch state
        if not isinstance(population, Mapping):
            problems.append("population is not an object")
        else:
            for pname, state in population.items():
                if not isinstance(state, Mapping) or not isinstance(
                    state.get("kind"), str
                ):
                    problems.append(
                        f"population[{pname!r}] is not a serialized sketch state"
                    )
    return problems
