"""Atomic JSON checkpoints for interruptible searches.

Checkpoint files are single JSON objects written atomically
(write-to-temp in the same directory, fsync, then ``os.replace``), so a
checkpoint on disk is always either the complete previous state or the
complete new state -- never a torn hybrid. The envelope is versioned and
kind-tagged so a resume can refuse a checkpoint from a different
computation instead of silently producing garbage:

.. code-block:: json

    {
      "checkpoint_version": 1,
      "kind": "exhaustive",            // which search wrote it
      "created_unix": 1754464000.1,
      "params": {"n": 6, "alphabet": ["", "0", "1"]},
      "state": { ... search-specific resumable state ... }
    }

:class:`Checkpointer` adds cadence (write every N units / every S
seconds) so inner loops can call :meth:`Checkpointer.maybe_write` each
iteration without thrashing the disk.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import Any, Callable, Dict, Mapping, Optional

from repro.errors import CheckpointError
from repro.resilience.retry import retry_transient

__all__ = [
    "CHECKPOINT_VERSION",
    "Checkpointer",
    "read_checkpoint",
    "write_checkpoint",
]

#: Bump when the checkpoint envelope changes incompatibly.
CHECKPOINT_VERSION = 1


def write_checkpoint(
    path: str,
    kind: str,
    params: Mapping[str, Any],
    state: Mapping[str, Any],
) -> Dict[str, Any]:
    """Atomically write a checkpoint envelope to ``path``; returns it.

    The temp file lives in the target's directory so ``os.replace`` is a
    same-filesystem atomic rename on POSIX. Transient ``OSError``\\ s
    (EINTR, a momentarily full or flaky filesystem) are retried with
    bounded exponential backoff via
    :func:`repro.resilience.retry.retry_transient`; each attempt starts
    from a fresh temp file, so retries compose with atomicity -- the
    target path still only ever flips complete-to-complete.
    """
    payload = {
        "checkpoint_version": CHECKPOINT_VERSION,
        "kind": kind,
        "created_unix": time.time(),
        "params": dict(params),
        "state": dict(state),
    }
    directory = os.path.dirname(os.path.abspath(path)) or "."

    def attempt() -> None:
        fd, tmp_path = tempfile.mkstemp(
            prefix=".ckpt-", suffix=".tmp", dir=directory
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    try:
        retry_transient(attempt)
    except OSError as exc:
        raise CheckpointError(f"cannot write checkpoint {path!r}: {exc}") from exc
    return payload


def read_checkpoint(
    path: str,
    kind: Optional[str] = None,
    params: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Read and validate a checkpoint envelope.

    ``kind`` (when given) must match the stored kind; ``params`` (when
    given) must match the stored params key-by-key. Mismatches raise
    :class:`~repro.errors.CheckpointError` -- resuming an n=7 search from
    an n=6 checkpoint is an error, not an adventure.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except FileNotFoundError as exc:
        raise CheckpointError(f"checkpoint file not found: {path!r}") from exc
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"checkpoint {path!r} is not valid JSON ({exc}); it may be torn "
            f"-- atomic writes should prevent this, so suspect manual edits"
        ) from exc
    if not isinstance(payload, dict):
        raise CheckpointError(f"checkpoint {path!r} is not a JSON object")
    version = payload.get("checkpoint_version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path!r} has version {version!r}; this build "
            f"supports version {CHECKPOINT_VERSION}"
        )
    for field in ("kind", "params", "state"):
        if field not in payload:
            raise CheckpointError(f"checkpoint {path!r} missing field {field!r}")
    if kind is not None and payload["kind"] != kind:
        raise CheckpointError(
            f"checkpoint {path!r} is for kind {payload['kind']!r}, "
            f"expected {kind!r}"
        )
    if params is not None:
        stored = payload["params"]
        for key, expected in params.items():
            if stored.get(key) != expected:
                raise CheckpointError(
                    f"checkpoint {path!r} params mismatch on {key!r}: "
                    f"stored {stored.get(key)!r}, resuming run has {expected!r}"
                )
    return payload


class Checkpointer:
    """Cadenced atomic checkpoint writer bound to one path and kind.

    ``state_fn`` is called lazily (only when a write actually happens) so
    building the state dict costs nothing between checkpoints.
    """

    def __init__(
        self,
        path: str,
        kind: str,
        params: Mapping[str, Any],
        state_fn: Callable[[], Mapping[str, Any]],
        every_units: int = 256,
        every_seconds: float = 5.0,
    ):
        if every_units < 1:
            raise ValueError(f"every_units must be >= 1, got {every_units}")
        if every_seconds <= 0:
            raise ValueError(f"every_seconds must be > 0, got {every_seconds}")
        self.path = path
        self.kind = kind
        self.params = dict(params)
        self._state_fn = state_fn
        self.every_units = every_units
        self.every_seconds = every_seconds
        self._units_since_write = 0
        self._last_write = time.monotonic()
        self.writes = 0

    def maybe_write(self, units: int = 1) -> bool:
        """Write if the unit or time cadence has elapsed; returns whether."""
        self._units_since_write += units
        due_units = self._units_since_write >= self.every_units
        due_time = (
            time.monotonic() - self._last_write >= self.every_seconds
        )
        if not (due_units or due_time):
            return False
        self.flush()
        return True

    def flush(self) -> Dict[str, Any]:
        """Write unconditionally (used for final/SIGINT checkpoints)."""
        payload = write_checkpoint(self.path, self.kind, self.params, self._state_fn())
        self._units_since_write = 0
        self._last_write = time.monotonic()
        self.writes += 1
        return payload
