"""Information theory: entropy tools and the Theorem 4.5 engine."""

from repro.information.entropy import (
    binary_entropy,
    conditional_entropy,
    empirical_joint,
    entropy,
    joint_entropy,
    joint_from_function,
    marginal_x,
    marginal_y,
    mutual_information,
    uniform_distribution,
    validate_distribution,
)
from repro.information.sampling import (
    SampledInformationReport,
    estimate_protocol_information,
)
from repro.information.partition_comp import (
    PartitionCompReport,
    evaluate_protocol,
    hard_distribution,
    implied_round_lower_bound,
    information_lower_bound,
)

__all__ = [
    "PartitionCompReport",
    "SampledInformationReport",
    "binary_entropy",
    "estimate_protocol_information",
    "conditional_entropy",
    "empirical_joint",
    "entropy",
    "evaluate_protocol",
    "hard_distribution",
    "implied_round_lower_bound",
    "information_lower_bound",
    "joint_entropy",
    "joint_from_function",
    "marginal_x",
    "marginal_y",
    "mutual_information",
    "uniform_distribution",
    "validate_distribution",
]
