"""Sampled mutual-information estimation for large ground sets.

The exact Theorem 4.5 evaluation enumerates all B_n partitions, which is
fine up to n ≈ 8 (B_8 = 4140) and hopeless much beyond. This module adds
the sampled counterpart: draw P_A uniformly (the exact-uniform RGS
sampler), run the protocol, and estimate the information quantities with
the plug-in (maximum-likelihood) estimator over the empirical joint.

Two standard caveats are surfaced rather than hidden:

* the plug-in estimate of I is biased upward by roughly
  (#distinct transcripts - 1) / (2 N ln 2) bits (Miller-Madow); the
  estimator reports that correction alongside the raw value;
* when the protocol is injective on P_A (the correct-protocol regime),
  I equals H(P_A), and the plug-in estimate of H from N samples cannot
  exceed log2 N -- the report includes the support coverage so callers
  can see saturation.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional

from repro.information.entropy import (
    empirical_joint,
    entropy,
    marginal_x,
    marginal_y,
    mutual_information,
)
from repro.partitions.bell import bell_number
from repro.partitions.enumeration import random_partition
from repro.partitions.set_partition import SetPartition
from repro.twoparty.protocol import TwoPartyProtocol


@dataclass(frozen=True)
class SampledInformationReport:
    """Plug-in estimates from N protocol runs on the hard distribution."""

    n: int
    samples: int
    information_estimate: float
    miller_madow_correction: float
    input_entropy_estimate: float
    true_input_entropy: float  # log2 B_n (known exactly)
    distinct_inputs_seen: int
    distinct_transcripts_seen: int
    error_rate_estimate: float

    @property
    def corrected_information(self) -> float:
        """Miller-Madow bias-corrected estimate (still capped by log2 N)."""
        return max(0.0, self.information_estimate - self.miller_madow_correction)

    @property
    def saturated(self) -> bool:
        """True when the sample size caps the measurable entropy."""
        return self.true_input_entropy > math.log2(max(2, self.samples))


def estimate_protocol_information(
    protocol: TwoPartyProtocol,
    n: int,
    samples: int,
    rng: random.Random,
) -> SampledInformationReport:
    """Sample the Theorem 4.5 hard distribution and estimate I(P_A; Pi)."""
    if samples < 2:
        raise ValueError(f"need at least 2 samples, got {samples}")
    pb = SetPartition.finest(n)
    pairs = []
    errors = 0
    for _ in range(samples):
        pa = random_partition(n, rng)
        result = protocol.run(pa, pb)
        pairs.append((pa, result.transcript_string()))
        if result.bob_output != pa:
            errors += 1

    joint = empirical_joint(pairs)
    info = mutual_information(joint)
    distinct_x = len(marginal_x(joint))
    distinct_y = len(marginal_y(joint))
    # Miller-Madow bias of I ~ bias(H(X)) + bias(H(Y)) - bias(H(X, Y))
    bias = (
        (distinct_x - 1) + (distinct_y - 1) - (len(joint) - 1)
    ) / (2.0 * samples * math.log(2))
    return SampledInformationReport(
        n=n,
        samples=samples,
        information_estimate=info,
        miller_madow_correction=bias,
        input_entropy_estimate=entropy(marginal_x(joint)),
        true_input_entropy=math.log2(bell_number(n)),
        distinct_inputs_seen=distinct_x,
        distinct_transcripts_seen=distinct_y,
        error_rate_estimate=errors / samples,
    )
