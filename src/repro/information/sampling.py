"""Sampled mutual-information estimation for large ground sets.

The exact Theorem 4.5 evaluation enumerates all B_n partitions, which is
fine up to n ≈ 8 (B_8 = 4140) and hopeless much beyond. This module adds
the sampled counterpart: draw P_A uniformly (the exact-uniform RGS
sampler), run the protocol, and estimate the information quantities with
the plug-in (maximum-likelihood) estimator over the empirical joint.

Two standard caveats are surfaced rather than hidden:

* the plug-in estimate of I is biased upward by roughly
  (#distinct transcripts - 1) / (2 N ln 2) bits (Miller-Madow); the
  estimator reports that correction alongside the raw value;
* when the protocol is injective on P_A (the correct-protocol regime),
  I equals H(P_A), and the plug-in estimate of H from N samples cannot
  exceed log2 N -- the report includes the support coverage so callers
  can see saturation.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.errors import BudgetExceededError, CheckpointError
from repro.obs.spans import span
from repro.information.entropy import (
    empirical_joint,
    entropy,
    marginal_x,
    marginal_y,
    mutual_information,
)
from repro.parallel.executor import ParallelExecutor
from repro.parallel.merge import merge_counts
from repro.parallel.shard import ShardPlan, split_budget
from repro.partitions.bell import bell_number
from repro.partitions.enumeration import random_partition
from repro.partitions.set_partition import SetPartition
from repro.resilience.budget import Budget
from repro.resilience.checkpoint import Checkpointer, read_checkpoint
from repro.twoparty.protocol import TwoPartyProtocol

#: Checkpoint ``kind`` tag for this estimator (see repro.resilience.checkpoint).
SAMPLING_CHECKPOINT_KIND = "sampling"

#: Checkpoint ``kind`` tag for the sharded (``workers > 1``) estimator.
SAMPLING_SHARDED_CHECKPOINT_KIND = "sampling.sharded"


@dataclass(frozen=True)
class SampledInformationReport:
    """Plug-in estimates from N protocol runs on the hard distribution."""

    n: int
    samples: int
    information_estimate: float
    miller_madow_correction: float
    input_entropy_estimate: float
    true_input_entropy: float  # log2 B_n (known exactly)
    distinct_inputs_seen: int
    distinct_transcripts_seen: int
    error_rate_estimate: float
    #: Population sketches over the sampled transcripts (name ->
    #: serialized state, see :mod:`repro.obs.sketches`): transcript-bit
    #: quantiles and transcript frequency counts. Derived purely from
    #: the per-transcript counts all estimation paths compute
    #: identically, so lean / resilient / sharded reports carry the same
    #: states; excluded from equality so reports stay comparable to
    #: hand-built expected values.
    population: Optional[Dict[str, Dict[str, Any]]] = field(default=None, compare=False)

    @property
    def corrected_information(self) -> float:
        """Miller-Madow bias-corrected estimate (still capped by log2 N)."""
        return max(0.0, self.information_estimate - self.miller_madow_correction)

    @property
    def saturated(self) -> bool:
        """True when the sample size caps the measurable entropy."""
        return self.true_input_entropy > math.log2(max(2, self.samples))


def _transcript_population(
    transcript_counts: Iterable[Tuple[str, int]],
) -> Dict[str, Dict[str, Any]]:
    """Population sketches from (transcript string, count) pairs.

    Built from the per-transcript counts only -- never from the joint's
    *input* keys, which deliberately differ between the lean path
    (partition objects) and the resilient/sharded paths (canonical
    strings) -- so every estimation path produces identical states.
    """
    from repro.obs.sketches import QuantileSketch, TopKSketch

    bits = QuantileSketch()
    transcripts = TopKSketch()
    for transcript, count in transcript_counts:
        bits.update(float(len(transcript)), count=count)
        transcripts.update(transcript, count=count)
    return {
        "transcript_bits": bits.to_dict(),
        "transcripts": transcripts.to_dict(),
    }


def _transcript_counts_from_pairs(
    keyed_counts: Iterable[Tuple[Tuple[Any, str], int]],
) -> List[Tuple[str, int]]:
    """Aggregate ((input, transcript), count) items per transcript, in
    sorted transcript order."""
    per_transcript: Dict[str, int] = {}
    for (_x, transcript), count in keyed_counts:
        per_transcript[transcript] = per_transcript.get(transcript, 0) + count
    return sorted(per_transcript.items())


def _report_from_joint(
    n: int,
    samples: int,
    joint: Dict[Tuple[Any, Any], float],
    errors: int,
    population: Optional[Dict[str, Dict[str, Any]]] = None,
) -> SampledInformationReport:
    """Assemble the report from an empirical joint (keys may be relabeled).

    Every derived quantity -- entropies, mutual information, distinct
    counts, Miller-Madow bias -- is invariant under injective relabeling
    of the outcome keys, so the resilient path (which keys inputs by
    their canonical string form to stay JSON-serializable) produces
    numbers identical to the lean path (which keys by the partitions
    themselves).
    """
    info = mutual_information(joint)
    distinct_x = len(marginal_x(joint))
    distinct_y = len(marginal_y(joint))
    # Miller-Madow bias of I ~ bias(H(X)) + bias(H(Y)) - bias(H(X, Y))
    bias = (
        (distinct_x - 1) + (distinct_y - 1) - (len(joint) - 1)
    ) / (2.0 * samples * math.log(2))
    return SampledInformationReport(
        n=n,
        samples=samples,
        information_estimate=info,
        miller_madow_correction=bias,
        input_entropy_estimate=entropy(marginal_x(joint)),
        true_input_entropy=math.log2(bell_number(n)),
        distinct_inputs_seen=distinct_x,
        distinct_transcripts_seen=distinct_y,
        error_rate_estimate=errors / samples,
        population=population,
    )


def _rng_state_to_json(state: Any) -> List[Any]:
    """random.Random.getstate() -> JSON-safe nested lists (exact)."""
    return [state[0], list(state[1]), state[2]]


def _rng_state_from_json(data: Any) -> Tuple[Any, ...]:
    """Inverse of :func:`_rng_state_to_json`."""
    return (data[0], tuple(data[1]), data[2])


def estimate_protocol_information(
    protocol: TwoPartyProtocol,
    n: int,
    samples: int,
    rng: random.Random,
    budget: Optional[Budget] = None,
    checkpoint_path: Optional[str] = None,
    checkpoint_every: int = 64,
    checkpoint_seconds: float = 2.0,
    resume: Optional[str] = None,
    workers: int = 1,
) -> SampledInformationReport:
    """Sample the Theorem 4.5 hard distribution and estimate I(P_A; Pi).

    ``workers > 1`` fans the protocol runs out over a deterministic
    :class:`repro.parallel.ShardPlan`: the parent pre-draws **all** N
    inputs from ``rng`` (consuming exactly the random stream the serial
    loop would, so the caller's RNG ends in the identical state), shards
    the drawn list, and merges the per-shard joint counts key-wise. The
    merged report is bit-identical to the serial *resilient* path for
    every worker count (both sum the joint in sorted key order; the lean
    serial path differs only in float summation order, as documented on
    its checkpoint semantics). Sharded checkpoints use kind
    ``"sampling.sharded"`` and embed a digest of the drawn inputs, so a
    resume must pass a fresh ``rng`` seeded identically to the original
    run -- a mismatched seed fails checkpoint validation instead of
    silently estimating a different distribution.

    Resilience (all opt-in, mirroring
    :func:`repro.lowerbounds.exhaustive.universal_bound_id_oblivious`):

    * ``budget`` -- a :class:`repro.resilience.Budget` ticked once per
      sample; exhaustion raises
      :class:`~repro.errors.BudgetExceededError` carrying a partial
      report over the samples drawn so far (``None`` below 2 samples).
    * ``checkpoint_path`` -- atomic resumable JSON checkpoints (kind
      ``"sampling"``) carrying the joint counts, the error count, and
      the full ``random.Random`` state, so a resumed estimate consumes
      exactly the random stream an uninterrupted one would.
    * ``resume`` -- path to a previous checkpoint; validates (n,
      samples) and restores counts + RNG state, so an interrupted +
      resumed run is bit-identical to an uninterrupted resilient run
      (and agrees with the lean path up to float summation order).

    When a :class:`repro.obs.SpanRecorder` is installed the estimator
    emits a ``sampling.estimate`` span with ``sampling.draw`` (protocol
    runs) and ``sampling.reduce`` (plug-in estimation) children.
    """
    if samples < 2:
        raise ValueError(f"need at least 2 samples, got {samples}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    with span("sampling.estimate", n=n, samples=samples):
        if workers > 1:
            return _estimate_sharded(
                protocol,
                n,
                samples,
                rng,
                budget,
                checkpoint_path,
                checkpoint_every,
                checkpoint_seconds,
                resume,
                workers,
            )
        return _estimate_impl(
            protocol,
            n,
            samples,
            rng,
            budget,
            checkpoint_path,
            checkpoint_every,
            checkpoint_seconds,
            resume,
        )


def _estimate_impl(
    protocol: TwoPartyProtocol,
    n: int,
    samples: int,
    rng: random.Random,
    budget: Optional[Budget],
    checkpoint_path: Optional[str],
    checkpoint_every: int,
    checkpoint_seconds: float,
    resume: Optional[str],
) -> SampledInformationReport:
    pb = SetPartition.finest(n)
    resilient = (
        budget is not None or checkpoint_path is not None or resume is not None
    )

    if not resilient:
        # The original lean loop: nothing per-iteration but the protocol.
        pairs = []
        errors = 0
        with span("sampling.draw", resilient=False):
            for _ in range(samples):
                pa = random_partition(n, rng)
                result = protocol.run(pa, pb)
                pairs.append((pa, result.transcript_string()))
                if result.bob_output != pa:
                    errors += 1
        with span("sampling.reduce"):
            pair_counts: Dict[Tuple[Any, str], int] = {}
            for pair in pairs:
                pair_counts[pair] = pair_counts.get(pair, 0) + 1
            population = _transcript_population(
                _transcript_counts_from_pairs(pair_counts.items())
            )
            return _report_from_joint(
                n, samples, empirical_joint(pairs), errors, population
            )

    params = {"n": n, "samples": samples}
    counts: Dict[Tuple[str, str], int] = {}
    errors = 0
    done = 0
    if resume is not None:
        payload = read_checkpoint(resume, kind=SAMPLING_CHECKPOINT_KIND, params=params)
        state = payload["state"]
        try:
            done = int(state["samples_done"])
            errors = int(state["errors"])
            counts = {(str(x), str(y)): int(c) for x, y, c in state["counts"]}
            rng.setstate(_rng_state_from_json(state["rng_state"]))
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"checkpoint {resume!r} has malformed sampling state: {exc}"
            ) from exc

    checkpointer: Optional[Checkpointer] = None
    if checkpoint_path is not None:
        def _state() -> Dict[str, object]:
            return {
                "samples_done": done,
                "errors": errors,
                "counts": [[x, y, c] for (x, y), c in sorted(counts.items())],
                "rng_state": _rng_state_to_json(rng.getstate()),
            }

        checkpointer = Checkpointer(
            checkpoint_path,
            SAMPLING_CHECKPOINT_KIND,
            params,
            _state,
            every_units=checkpoint_every,
            every_seconds=checkpoint_seconds,
        )

    def _joint(total: int) -> Dict[Tuple[str, str], float]:
        # Sorted key order makes the float summation order -- and hence
        # the report -- independent of when (or whether) the run was
        # interrupted and resumed.
        return {pair: c / total for pair, c in sorted(counts.items())}

    def _partial() -> Optional[SampledInformationReport]:
        if done < 2:
            return None
        return _report_from_joint(n, done, _joint(done), errors)

    with span("sampling.draw", resilient=True, start_index=done):
        try:
            while done < samples:
                pa = random_partition(n, rng)
                result = protocol.run(pa, pb)
                key = (repr(pa), result.transcript_string())
                counts[key] = counts.get(key, 0) + 1
                if result.bob_output != pa:
                    errors += 1
                done += 1
                if checkpointer is not None:
                    checkpointer.maybe_write()
                if budget is not None:
                    budget.tick(partial=None)
        except BudgetExceededError as exc:
            if checkpointer is not None:
                checkpointer.flush()
            raise BudgetExceededError(
                str(exc), partial=_partial(), checkpoint_path=checkpoint_path
            ) from exc
        except KeyboardInterrupt:
            if checkpointer is not None:
                checkpointer.flush()
            raise
        if checkpointer is not None:
            checkpointer.flush()

    with span("sampling.reduce"):
        population = _transcript_population(
            _transcript_counts_from_pairs(counts.items())
        )
        return _report_from_joint(n, samples, _joint(samples), errors, population)


# ----------------------------------------------------------------------
# sharded estimation
# ----------------------------------------------------------------------
def _sampling_shard_worker(payload: Tuple) -> Dict[str, object]:
    """Run the protocol on one contiguous slice of the drawn inputs.

    ``payload`` is ``(protocol, n, inputs, start, shard_budget)``.
    Module-level (picklable); returns JSON-ready sorted count triples so
    the pooled path ships plain lists across the pipe. The budget is
    ticked once per sample, exactly like the serial loop; a budget that
    trips on the slice's final sample still reports a completed slice.
    """
    protocol, n, inputs, start, shard_budget = payload
    if shard_budget is not None:
        exhausted_before_start = shard_budget.max_units == 0 or (
            shard_budget.wall_seconds is not None
            and shard_budget.wall_seconds <= 0
        )
        if exhausted_before_start:
            return {
                "counts": [],
                "errors": 0,
                "done": 0,
                "exhausted": bool(inputs),
            }
    budget = None if shard_budget is None else shard_budget.to_budget()
    pb = SetPartition.finest(n)
    counts: Dict[Tuple[str, str], int] = {}
    errors = 0
    done = 0
    exhausted = False
    with span("sampling.scan_shard", start=start, size=len(inputs)):
        try:
            for pa in inputs:
                result = protocol.run(pa, pb)
                key = (repr(pa), result.transcript_string())
                counts[key] = counts.get(key, 0) + 1
                if result.bob_output != pa:
                    errors += 1
                done += 1
                if budget is not None:
                    budget.tick()
        except BudgetExceededError:
            exhausted = done < len(inputs)
    return {
        "counts": [[x, y, c] for (x, y), c in sorted(counts.items())],
        "errors": errors,
        "done": done,
        "exhausted": exhausted,
    }


def _estimate_sharded(
    protocol: TwoPartyProtocol,
    n: int,
    samples: int,
    rng: random.Random,
    budget: Optional[Budget],
    checkpoint_path: Optional[str],
    checkpoint_every: int,
    checkpoint_seconds: float,
    resume: Optional[str],
    workers: int,
) -> SampledInformationReport:
    """Fan the N protocol runs out over a :class:`ShardPlan`.

    The parent draws all inputs up front (one ``sampling.draw_inputs``
    span), so randomness lives entirely parent-side and every shard is a
    deterministic pure function of its slice. Per-shard joint counts
    merge key-wise (:func:`repro.parallel.merge_counts`); the final
    joint is summed in sorted key order, which makes the report
    independent of worker count and completion order and bit-identical
    to the serial resilient path.
    """
    with span("sampling.draw_inputs", samples=samples):
        inputs = [random_partition(n, rng) for _ in range(samples)]
    digest = hashlib.sha256(
        "\n".join(repr(pa) for pa in inputs).encode("utf-8")
    ).hexdigest()
    params = {"n": n, "samples": samples, "inputs_sha256": digest}

    counts: Dict[Tuple[str, str], int] = {}
    errors = 0
    done = 0
    if resume is not None:
        payload = read_checkpoint(
            resume, kind=SAMPLING_SHARDED_CHECKPOINT_KIND, params=params
        )
        state = payload["state"]
        try:
            plan = ShardPlan.from_starts(
                samples, [int(s) for s in state["shard_starts"]]
            )
            positions = [int(p) for p in state["positions"]]
            counts = {(str(x), str(y)): int(c) for x, y, c in state["counts"]}
            errors = int(state["errors"])
            done = int(state["done"])
        except (KeyError, TypeError, ValueError, IndexError) as exc:
            raise CheckpointError(
                f"checkpoint {resume!r} has malformed sharded sampling "
                f"state: {exc}"
            ) from exc
        if len(positions) != plan.num_shards:
            raise CheckpointError(
                f"checkpoint {resume!r} shard vectors disagree with its plan"
            )
    else:
        plan = ShardPlan.for_workers(samples, workers)
        positions = [shard.start for shard in plan.shards()]
    shards = plan.shards()

    checkpointer: Optional[Checkpointer] = None
    if checkpoint_path is not None:
        def _state() -> Dict[str, object]:
            return {
                "shard_starts": list(plan.starts),
                "positions": list(positions),
                "counts": [[x, y, c] for (x, y), c in sorted(counts.items())],
                "errors": errors,
                "done": done,
            }

        checkpointer = Checkpointer(
            checkpoint_path,
            SAMPLING_SHARDED_CHECKPOINT_KIND,
            params,
            _state,
            every_units=checkpoint_every,
            every_seconds=checkpoint_seconds,
        )

    pending = [i for i in range(plan.num_shards) if positions[i] < shards[i].stop]
    sizes = [shards[i].stop - positions[i] for i in pending]
    shard_budgets = split_budget(budget, sizes)
    payloads = [
        (protocol, n, inputs[positions[i]:shards[i].stop], positions[i], sb)
        for i, sb in zip(pending, shard_budgets)
    ]

    ran = 0
    exhausted = False

    def _on_result(payload_index: int, result: Dict[str, object]) -> None:
        nonlocal ran, errors, done, exhausted
        shard_index = pending[payload_index]
        merge_counts(
            counts,
            {(str(x), str(y)): int(c) for x, y, c in result["counts"]},
        )
        errors += int(result["errors"])
        delta = int(result["done"])
        positions[shard_index] += delta
        done += delta
        ran += delta
        if result["exhausted"]:
            exhausted = True
        if checkpointer is not None:
            checkpointer.maybe_write(units=delta)

    executor = ParallelExecutor(workers=workers)
    try:
        executor.map(_sampling_shard_worker, payloads, on_result=_on_result)
    except KeyboardInterrupt:
        if checkpointer is not None:
            checkpointer.flush()
        raise
    if checkpointer is not None:
        checkpointer.flush()

    def _joint(total: int) -> Dict[Tuple[str, str], float]:
        return {pair: c / total for pair, c in sorted(counts.items())}

    def _partial() -> Optional[SampledInformationReport]:
        if done < 2:
            return None
        return _report_from_joint(n, done, _joint(done), errors)

    budget_message = f"budget exhausted during sharded sampling (n={n})"
    if budget is not None and ran:
        try:
            # Tick the parent budget by the consumed units so "budget ==
            # exact sample count" raises, exactly as the serial
            # per-sample loop does.
            budget.tick(units=ran)
        except BudgetExceededError as exc:
            budget_message = str(exc)
            exhausted = True
    if exhausted:
        raise BudgetExceededError(
            budget_message, partial=_partial(), checkpoint_path=checkpoint_path
        )

    with span("sampling.reduce"):
        population = _transcript_population(
            _transcript_counts_from_pairs(counts.items())
        )
        return _report_from_joint(n, samples, _joint(samples), errors, population)
