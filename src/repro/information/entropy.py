"""Shannon entropy, conditional entropy, and mutual information.

Exact computations over finite joint distributions, used by the
Theorem 4.5 engine: the hard distribution there is small enough (B_n
inputs at the n we enumerate) that every quantity in the proof's chain

    |Pi| >= H(Pi) >= I(Pi; P_A) = H(P_A) - H(P_A | Pi)

can be evaluated exactly rather than estimated.

Distributions are dictionaries mapping outcomes to probabilities; joints
map (x, y) pairs. All logarithms are base 2 (bits).
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Hashable, Iterable, Mapping, Tuple

Outcome = Hashable
Distribution = Mapping[Outcome, float]
Joint = Mapping[Tuple[Outcome, Outcome], float]

_EPS = 1e-12


def validate_distribution(dist: Distribution) -> None:
    """Check non-negativity and unit total mass (within tolerance)."""
    total = 0.0
    for outcome, p in dist.items():
        if p < -_EPS:
            raise ValueError(f"negative probability {p} for {outcome!r}")
        total += p
    if abs(total - 1.0) > 1e-9:
        raise ValueError(f"probabilities sum to {total}, expected 1")


def entropy(dist: Distribution) -> float:
    """H(X) = -sum p log2 p, with 0 log 0 = 0."""
    validate_distribution(dist)
    return -sum(p * math.log2(p) for p in dist.values() if p > _EPS)


def marginal_x(joint: Joint) -> Dict[Outcome, float]:
    """The X-marginal of a joint distribution over (X, Y)."""
    out: Dict[Outcome, float] = defaultdict(float)
    for (x, _y), p in joint.items():
        out[x] += p
    return dict(out)


def marginal_y(joint: Joint) -> Dict[Outcome, float]:
    """The Y-marginal."""
    out: Dict[Outcome, float] = defaultdict(float)
    for (_x, y), p in joint.items():
        out[y] += p
    return dict(out)


def joint_entropy(joint: Joint) -> float:
    """H(X, Y)."""
    return entropy(joint)


def conditional_entropy(joint: Joint) -> float:
    """H(X | Y) = H(X, Y) - H(Y)."""
    return joint_entropy(joint) - entropy(marginal_y(joint))


def mutual_information(joint: Joint) -> float:
    """I(X; Y) = H(X) + H(Y) - H(X, Y); clipped at 0 against float error."""
    value = entropy(marginal_x(joint)) + entropy(marginal_y(joint)) - joint_entropy(joint)
    return max(0.0, value)


def joint_from_function(
    x_dist: Distribution, f
) -> Dict[Tuple[Outcome, Outcome], float]:
    """The joint of (X, f(X)) for X ~ x_dist and deterministic f.

    This is exactly the situation of Theorem 4.5's deterministic protocol
    (after Yao): Y = Pi(P_A, P_B) is a function of P_A once P_B is fixed.
    """
    joint: Dict[Tuple[Outcome, Outcome], float] = defaultdict(float)
    for x, p in x_dist.items():
        joint[(x, f(x))] += p
    return dict(joint)


def empirical_joint(samples: Iterable[Tuple[Outcome, Outcome]]) -> Dict[Tuple[Outcome, Outcome], float]:
    """Plug-in joint distribution from samples."""
    counts: Dict[Tuple[Outcome, Outcome], int] = defaultdict(int)
    total = 0
    for pair in samples:
        counts[pair] += 1
        total += 1
    if total == 0:
        raise ValueError("no samples")
    return {pair: c / total for pair, c in counts.items()}


def binary_entropy(p: float) -> float:
    """h(p) = -p log p - (1-p) log (1-p)."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    if p in (0.0, 1.0):
        return 0.0
    return -p * math.log2(p) - (1 - p) * math.log2(1 - p)


def uniform_distribution(outcomes: Iterable[Outcome]) -> Dict[Outcome, float]:
    """The uniform distribution over a finite outcome set."""
    items = list(outcomes)
    if not items:
        raise ValueError("cannot build a distribution over no outcomes")
    p = 1.0 / len(items)
    return {x: p for x in items}
